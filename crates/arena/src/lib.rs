//! Aligned immutable byte arenas with typed zero-copy views.
//!
//! The IUSX v3 persistence format stores its large flat arrays in their
//! in-memory little-endian layout at 8-byte-aligned file offsets, so an
//! index can be *opened* — one slurp of the file into an [`Arena`], a CRC
//! pass, O(sections) of validation — instead of *decoded* element by
//! element. The open path hands out [`ArenaVec`]s: either a borrowed view
//! into the shared arena (zero copy, `Arc`-shared across every structure
//! and worker thread) or a plain owned vector, behind one `Deref<[T]>`
//! surface, so query code cannot tell the difference.
//!
//! This is the **only** crate in the workspace that contains `unsafe`
//! code; every other crate keeps `#![forbid(unsafe_code)]`. The unsafe
//! surface is exactly two reinterpret casts (`&[u64] → &[u8]` and
//! `&[u8] → &[T]` for the sealed [`Pod`] types), both guarded by the
//! alignment and bounds checks in [`Arena::view`]:
//!
//! * the arena's storage is a `Vec<u64>`, so its base address is 8-byte
//!   aligned — stricter than any [`Pod`] type's alignment;
//! * a view is only created when `offset % align_of::<T>() == 0` and
//!   `offset + len · size_of::<T>()` lies inside the arena;
//! * [`Pod`] is sealed to `u8/u16/u32/u64/f64` — plain-old-data types
//!   with no invalid bit patterns and no padding, so any byte content is
//!   a valid value;
//! * the arena is immutable and `Arc`-shared: a view's backing memory
//!   lives exactly as long as the view, and nobody can write through it.
//!
//! On big-endian targets the stored little-endian bytes are *not* the
//! in-memory layout; [`Arena::view`] transparently falls back to an
//! element-wise decode into an owned vector, so callers stay portable
//! without a single `cfg` of their own.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::fmt;
use std::io::{self, Read};
use std::ops::Deref;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u16 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for f64 {}
}

/// Plain-old-data element types an [`Arena`] can hand out views of.
///
/// Sealed: exactly `u8`, `u16`, `u32`, `u64` and `f64` — fixed-size types
/// with no padding and no invalid bit patterns, whose little-endian byte
/// layout is what the IUSX v3 format stores. All have alignment ≤ 8, the
/// arena's base alignment.
pub trait Pod: Copy + PartialEq + fmt::Debug + Send + Sync + 'static + sealed::Sealed {
    /// `size_of::<Self>()`, as a trait constant for array math.
    const SIZE: usize;
    /// Decodes one element from exactly [`Pod::SIZE`] little-endian bytes
    /// (the big-endian fallback path of [`Arena::view`]).
    fn read_le(bytes: &[u8]) -> Self;
    /// Appends the little-endian encoding of `self` to `out` (the
    /// big-endian fallback path of [`as_le_bytes`]).
    fn write_le(self, out: &mut Vec<u8>);
}

macro_rules! impl_pod {
    ($($t:ty),*) => {$(
        impl Pod for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            #[inline]
            fn read_le(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("exact-size chunk"))
            }
            #[inline]
            fn write_le(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
    )*};
}

impl_pod!(u8, u16, u32, u64, f64);

struct Inner {
    /// Backing storage. `u64` words, so the base address is 8-byte
    /// aligned regardless of how the arena was filled.
    words: Vec<u64>,
    /// Logical length in bytes (the words vector may round up to 8).
    len: usize,
    /// Bytes attributed to typed views so far (diagnostics for the size
    /// accounting: `len − attributed` is headers, pads and scalars).
    attributed: AtomicUsize,
}

/// An immutable, 8-byte-aligned, `Arc`-shared byte buffer.
///
/// Cloning an arena is a reference-count bump; every [`ArenaVec`] view
/// holds one clone, so the buffer lives until the last view is dropped.
/// The whole buffer is **one heap allocation** — size accounting counts
/// it once at the structure that retains the handle, and views count as
/// zero owned bytes (see [`ArenaVec::heap_bytes`]).
#[derive(Clone)]
pub struct Arena {
    inner: Arc<Inner>,
}

impl fmt::Debug for Arena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Arena")
            .field("len", &self.inner.len)
            .field("attributed", &self.attributed_bytes())
            .finish()
    }
}

impl Arena {
    /// Copies `bytes` into a fresh aligned arena.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let words = vec![0u64; bytes.len().div_ceil(8)];
        let mut arena = Inner {
            words,
            len: bytes.len(),
            attributed: AtomicUsize::new(0),
        };
        // SAFETY: the words vector spans at least `len` bytes; u64 has no
        // padding and any byte content is valid.
        let dst = unsafe {
            std::slice::from_raw_parts_mut(arena.words.as_mut_ptr().cast::<u8>(), bytes.len())
        };
        dst.copy_from_slice(bytes);
        Self {
            inner: Arc::new(arena),
        }
    }

    /// Slurps a whole stream into an arena: reads to end in one pass,
    /// then one aligned copy. For a file of known size prefer
    /// [`Arena::from_file`], which reads straight into aligned storage.
    ///
    /// # Errors
    ///
    /// I/O errors of the underlying reader.
    pub fn from_reader(r: &mut dyn Read) -> io::Result<Self> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        Ok(Self::from_bytes(&bytes))
    }

    /// Opens `path` and reads it into an arena in a single `read` pass
    /// directly into the aligned storage (no intermediate copy).
    ///
    /// # Errors
    ///
    /// I/O errors of the open/read.
    pub fn from_file(path: &std::path::Path) -> io::Result<Self> {
        let mut file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large for memory"))?;
        let mut arena = Inner {
            words: vec![0u64; len.div_ceil(8)],
            len,
            attributed: AtomicUsize::new(0),
        };
        // SAFETY: as in `from_bytes` — the words vector spans `len` bytes.
        let dst =
            unsafe { std::slice::from_raw_parts_mut(arena.words.as_mut_ptr().cast::<u8>(), len) };
        file.read_exact(dst)?;
        // A concurrent append would make the file longer than the
        // metadata said; the envelope CRC catches torn content, but a
        // clean length check gives a better error.
        let mut probe = [0u8; 1];
        if file.read(&mut probe)? != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file grew while being read",
            ));
        }
        Ok(Self {
            inner: Arc::new(arena),
        })
    }

    /// The arena's content.
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: the words vector spans at least `len` bytes, the base
        // pointer is 8-aligned (u8 needs 1), and u8 has no invalid bit
        // patterns. The arena is immutable, so no aliasing writes exist.
        unsafe {
            std::slice::from_raw_parts(self.inner.words.as_ptr().cast::<u8>(), self.inner.len)
        }
    }

    /// Logical length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// `true` iff the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// Heap bytes of the single backing allocation (the rounded-up word
    /// storage) — what the counting allocator sees for this arena.
    pub fn alloc_bytes(&self) -> usize {
        self.inner.words.capacity() * 8
    }

    /// Bytes of this arena covered by typed views so far. The remainder
    /// (`len − attributed`) is format overhead: headers, padding, scalar
    /// fields and any sections that were decoded into owned storage.
    pub fn attributed_bytes(&self) -> usize {
        self.inner.attributed.load(Ordering::Relaxed)
    }

    /// A typed view of `len` elements starting at byte `offset`.
    ///
    /// Returns `None` when the range escapes the arena or `offset` is not
    /// aligned for `T` — the caller maps that to its own typed corruption
    /// error. On little-endian targets the view borrows the arena (zero
    /// copy); on big-endian targets it decodes into an owned vector.
    pub fn view<T: Pod>(&self, offset: usize, len: usize) -> Option<ArenaVec<T>> {
        let bytes = len.checked_mul(T::SIZE)?;
        let end = offset.checked_add(bytes)?;
        if end > self.inner.len || !offset.is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        self.inner.attributed.fetch_add(bytes, Ordering::Relaxed);
        if cfg!(target_endian = "little") {
            Some(ArenaVec {
                repr: Repr::View {
                    arena: self.clone(),
                    offset,
                    len,
                },
            })
        } else {
            let raw = &self.as_bytes()[offset..end];
            Some(ArenaVec::from(
                raw.chunks_exact(T::SIZE)
                    .map(T::read_le)
                    .collect::<Vec<T>>(),
            ))
        }
    }
}

enum Repr<T: Pod> {
    Owned(Vec<T>),
    View {
        arena: Arena,
        /// Byte offset into the arena; `offset % align_of::<T>() == 0`
        /// and `offset + len · SIZE ≤ arena.len()` (checked at creation).
        offset: usize,
        len: usize,
    },
}

/// A flat array that is either owned or a zero-copy view into an
/// [`Arena`], behind one `Deref<Target = [T]>` surface.
///
/// Built indexes hold `Owned` vectors ([`From<Vec<T>>`]); arena-opened
/// indexes hold `View`s. Equality, ordering of use, and every accessor go
/// through the slice, so the two are observably identical except for
/// [`ArenaVec::heap_bytes`] (a view owns no heap — the arena is counted
/// once, by whoever retains the [`Arena`] handle).
pub struct ArenaVec<T: Pod> {
    repr: Repr<T>,
}

impl<T: Pod> ArenaVec<T> {
    /// An empty owned vector.
    pub fn new() -> Self {
        Self {
            repr: Repr::Owned(Vec::new()),
        }
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(v) => v,
            Repr::View { arena, offset, len } => {
                // SAFETY: creation checked alignment and bounds; the
                // arena base is 8-aligned and immutable, T is sealed
                // plain-old-data, and `arena` keeps the storage alive
                // for the lifetime of `self` (and of the returned
                // borrow, which cannot outlive `self`).
                unsafe {
                    std::slice::from_raw_parts(
                        arena.as_bytes().as_ptr().add(*offset).cast::<T>(),
                        *len,
                    )
                }
            }
        }
    }

    /// Heap bytes owned by this vector itself: the full capacity for an
    /// owned vector, 0 for a view (the arena's single allocation is
    /// accounted once, where the [`Arena`] handle is retained).
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Owned(v) => v.capacity() * T::SIZE,
            Repr::View { .. } => 0,
        }
    }

    /// `true` iff this is a borrowed arena view.
    pub fn is_view(&self) -> bool {
        matches!(self.repr, Repr::View { .. })
    }
}

impl<T: Pod> Default for ArenaVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Pod> From<Vec<T>> for ArenaVec<T> {
    fn from(v: Vec<T>) -> Self {
        Self {
            repr: Repr::Owned(v),
        }
    }
}

impl<T: Pod> Deref for ArenaVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> Clone for ArenaVec<T> {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Owned(v) => Self {
                repr: Repr::Owned(v.clone()),
            },
            // Cloning a view shares the arena (no re-attribution: the
            // bytes are only counted at first view creation).
            Repr::View { arena, offset, len } => Self {
                repr: Repr::View {
                    arena: arena.clone(),
                    offset: *offset,
                    len: *len,
                },
            },
        }
    }
}

impl<T: Pod> fmt::Debug for ArenaVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl<T: Pod> PartialEq for ArenaVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod> PartialEq<Vec<T>> for ArenaVec<T> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<'a, T: Pod> IntoIterator for &'a ArenaVec<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// The little-endian byte image of a typed slice: borrowed on
/// little-endian targets (zero copy — this is what the v3 writer streams
/// out in one `write_all`), encoded element-wise on big-endian ones.
pub fn as_le_bytes<T: Pod>(slice: &[T]) -> std::borrow::Cow<'_, [u8]> {
    if cfg!(target_endian = "little") {
        // SAFETY: any initialized T is valid to read as bytes (sealed
        // plain-old-data, no padding); u8 has alignment 1.
        std::borrow::Cow::Borrowed(unsafe {
            std::slice::from_raw_parts(slice.as_ptr().cast::<u8>(), std::mem::size_of_val(slice))
        })
    } else {
        let mut out = Vec::with_capacity(std::mem::size_of_val(slice));
        for &v in slice {
            v.write_le(&mut out);
        }
        std::borrow::Cow::Owned(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_round_trips_bytes_and_is_aligned() {
        let data: Vec<u8> = (0..=255).collect();
        let arena = Arena::from_bytes(&data);
        assert_eq!(arena.as_bytes(), &data[..]);
        assert_eq!(arena.len(), 256);
        assert!(!arena.is_empty());
        assert_eq!(arena.as_bytes().as_ptr() as usize % 8, 0);
        assert!(arena.alloc_bytes() >= 256);
        // Odd lengths round the storage up but keep the logical length.
        let arena = Arena::from_bytes(&data[..13]);
        assert_eq!(arena.len(), 13);
        assert_eq!(arena.as_bytes(), &data[..13]);
    }

    #[test]
    fn typed_views_read_little_endian_content() {
        let mut bytes = Vec::new();
        for v in [1u32, 2, 3, 0xDEAD_BEEF] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        bytes.extend_from_slice(&1.5f64.to_le_bytes());
        let arena = Arena::from_bytes(&bytes);
        let ints: ArenaVec<u32> = arena.view(0, 4).unwrap();
        assert_eq!(&*ints, &[1, 2, 3, 0xDEAD_BEEF]);
        let floats: ArenaVec<f64> = arena.view(16, 1).unwrap();
        assert_eq!(&*floats, &[1.5]);
        assert_eq!(arena.attributed_bytes(), 24);
        assert_eq!(ints.heap_bytes(), 0);
        #[cfg(target_endian = "little")]
        assert!(ints.is_view());
    }

    #[test]
    fn view_rejects_misalignment_and_overrun() {
        let arena = Arena::from_bytes(&[0u8; 32]);
        assert!(arena.view::<u32>(2, 1).is_none(), "misaligned offset");
        assert!(arena.view::<u64>(4, 1).is_none(), "misaligned for u64");
        assert!(arena.view::<u32>(0, 9).is_none(), "past the end");
        assert!(arena.view::<u8>(32, 1).is_none(), "starts at the end");
        assert!(arena.view::<u8>(0, 32).is_some(), "exact fit is fine");
        assert!(arena.view::<u64>(usize::MAX & !7, 2).is_none(), "overflow");
    }

    #[test]
    fn owned_and_view_are_observably_identical() {
        let values = vec![10u64, 20, 30];
        let owned = ArenaVec::from(values.clone());
        let arena = Arena::from_bytes(&as_le_bytes(&values[..]));
        let view: ArenaVec<u64> = arena.view(0, 3).unwrap();
        assert_eq!(owned, view);
        assert_eq!(view, values);
        assert_eq!(owned.heap_bytes(), 3 * 8);
        assert_eq!(view.len(), 3);
        assert_eq!(view[1], 20);
        assert_eq!(format!("{view:?}"), format!("{:?}", values));
        let cloned = view.clone();
        assert_eq!(cloned, owned);
        // Cloning does not re-attribute.
        assert_eq!(arena.attributed_bytes(), 24);
    }

    #[test]
    fn le_bytes_round_trip_through_pod() {
        let values = [3.25f64, -0.5, f64::MAX];
        let bytes = as_le_bytes(&values[..]);
        assert_eq!(bytes.len(), 24);
        let back: Vec<f64> = bytes.chunks_exact(8).map(f64::read_le).collect();
        assert_eq!(back, values);
    }

    #[test]
    fn from_reader_and_from_file_agree() {
        let data: Vec<u8> = (0..100u8).cycle().take(1000).collect();
        let from_reader = Arena::from_reader(&mut &data[..]).unwrap();
        assert_eq!(from_reader.as_bytes(), &data[..]);
        let dir = std::env::temp_dir().join(format!("ius_arena_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("arena.bin");
        std::fs::write(&path, &data).unwrap();
        let from_file = Arena::from_file(&path).unwrap();
        assert_eq!(from_file.as_bytes(), &data[..]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
