//! Ablation benchmarks for the design choices discussed in the paper and in
//! DESIGN.md: grid-based vs simple verification queries, k-mer order, and the
//! effect of the k parameter on the number of sampled factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ius_bench::measure::sample_patterns;
use ius_datasets::pangenome::efm_like;
use ius_index::{IndexParams, IndexVariant, MinimizerIndex, UncertainIndex};
use ius_sampling::KmerOrder;
use ius_weighted::ZEstimation;
use std::time::Duration;

fn ablation_benches(c: &mut Criterion) {
    let x = efm_like(12_000, 0xEF01);
    let z = 32.0;
    let ell = 128usize;
    let est = ZEstimation::build(&x, z).expect("estimation");
    let params = IndexParams::new(z, ell, x.sigma()).expect("params");
    let patterns = sample_patterns(&est, ell, 64, 7);

    let mut group = c.benchmark_group("ablation");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));

    // (1) Simple verification query (Section 5) vs grid query (Theorem 9).
    for (label, variant) in [
        ("simple/MWSA", IndexVariant::Array),
        ("grid/MWSA-G", IndexVariant::ArrayGrid),
        ("simple/MWST", IndexVariant::Tree),
        ("grid/MWST-G", IndexVariant::TreeGrid),
    ] {
        let index =
            MinimizerIndex::build_from_estimation(&x, &est, params, variant).expect("index");
        group.bench_with_input(
            BenchmarkId::new("query-strategy", label),
            &patterns,
            |b, ps| {
                let mut cursor = 0usize;
                b.iter(|| {
                    let p = &ps[cursor % ps.len()];
                    cursor += 1;
                    index.query(p, &x).expect("query")
                })
            },
        );
    }

    // (2) Minimizer k-mer order: construction cost of the sampled factor sets.
    for (label, order) in [
        ("kr-order", KmerOrder::default()),
        ("lex-order", KmerOrder::Lexicographic),
    ] {
        let p = IndexParams::new(z, ell, x.sigma())
            .expect("params")
            .with_order(order);
        group.bench_function(BenchmarkId::new("kmer-order-build", label), |b| {
            b.iter(|| {
                MinimizerIndex::build_from_estimation(&x, &est, p, IndexVariant::Array)
                    .expect("index")
            })
        });
    }

    // (3) k parameter sweep: sampled-factor count is reported via a
    // throughput-style benchmark of the build.
    for k in [3usize, 6, 10] {
        let p = IndexParams::new(z, ell, x.sigma())
            .expect("params")
            .with_k(k)
            .expect("valid k");
        group.bench_with_input(BenchmarkId::new("k-sweep-build", k), &p, |b, p| {
            b.iter(|| {
                MinimizerIndex::build_from_estimation(&x, &est, *p, IndexVariant::Array)
                    .expect("index")
            })
        });
    }

    // Report the ablation statistics once so they appear in the bench log.
    for (label, order) in [
        ("kr-order", KmerOrder::default()),
        ("lex-order", KmerOrder::Lexicographic),
    ] {
        let p = IndexParams::new(z, ell, x.sigma())
            .expect("params")
            .with_order(order);
        let index =
            MinimizerIndex::build_from_estimation(&x, &est, p, IndexVariant::Array).expect("index");
        println!(
            "[ablation] {label}: {} sampled factors, {:.2} MB",
            index.num_sampled_factors(),
            index.size_bytes() as f64 / 1e6
        );
    }

    group.finish();
}

criterion_group!(benches, ablation_benches);
criterion_main!(benches);
