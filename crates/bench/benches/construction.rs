//! Construction-time benchmarks: one Criterion group per index family,
//! regenerating the per-index construction costs behind Figures 12, 15 and 16
//! at benchmark-friendly scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ius_bench::measure::IndexKind;
use ius_datasets::pangenome::efm_like;
use ius_index::IndexParams;
use ius_weighted::ZEstimation;
use std::time::Duration;

fn construction_benches(c: &mut Criterion) {
    let x = efm_like(12_000, 0xEF01);
    let z = 32.0;
    let est = ZEstimation::build(&x, z).expect("estimation");

    let mut group = c.benchmark_group("construction");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));

    // The z-estimation itself (the shared substrate of the classic indexes).
    group.bench_function("z-estimation/EFM*-12k/z=32", |b| {
        b.iter(|| ZEstimation::build(&x, z).expect("estimation"))
    });

    // Every index, at the paper's default ℓ = 256.
    for kind in IndexKind::all() {
        let params = IndexParams::new(z, 256, x.sigma()).expect("params");
        group.bench_with_input(
            BenchmarkId::new("index/EFM*-12k/z=32/ell=256", kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let estimation = if kind.needs_estimation() {
                        Some(&est)
                    } else {
                        None
                    };
                    kind.build(&x, estimation, params).expect("build")
                })
            },
        );
    }

    // The minimizer index at several ℓ values (the ℓ-dependence of Fig. 12a).
    for ell in [64usize, 256, 1024] {
        let params = IndexParams::new(z, ell, x.sigma()).expect("params");
        group.bench_with_input(
            BenchmarkId::new("MWSA-by-ell/EFM*-12k/z=32", ell),
            &ell,
            |b, _| {
                b.iter(|| {
                    IndexKind::Mwsa
                        .build(&x, Some(&est), params)
                        .expect("build")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, construction_benches);
criterion_main!(benches);
