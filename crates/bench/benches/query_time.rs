//! Query-time benchmarks: average pattern-matching latency of every index,
//! the per-operation view behind Figures 10 and 11.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ius_bench::measure::{sample_patterns, IndexKind};
use ius_datasets::pangenome::efm_like;
use ius_index::IndexParams;
use ius_weighted::ZEstimation;
use std::time::Duration;

fn query_benches(c: &mut Criterion) {
    let x = efm_like(12_000, 0xEF01);
    let z = 32.0;
    let est = ZEstimation::build(&x, z).expect("estimation");

    let mut group = c.benchmark_group("query");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));

    for ell in [64usize, 256] {
        let params = IndexParams::new(z, ell, x.sigma()).expect("params");
        let patterns = sample_patterns(&est, ell, 64, 0xBEEF);
        if patterns.is_empty() {
            continue;
        }
        for kind in IndexKind::all() {
            // MWST-SE produces the same query structure as MWST; skip the
            // duplicate measurement.
            if matches!(kind, IndexKind::MwstSe) {
                continue;
            }
            let index = kind.build(&x, Some(&est), params).expect("build");
            group.bench_with_input(
                BenchmarkId::new(format!("EFM*-12k/z=32/m={ell}"), kind.name()),
                &patterns,
                |b, patterns| {
                    let mut cursor = 0usize;
                    b.iter(|| {
                        let pattern = &patterns[cursor % patterns.len()];
                        cursor += 1;
                        index.query(pattern, &x).expect("query")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, query_benches);
criterion_main!(benches);
