//! Micro-benchmarks of the substrate data structures every index is built on:
//! suffix arrays, LCP/LCE, minimizer scans, the 2D grid and the heavy string.

use criterion::{criterion_group, criterion_main, Criterion};
use ius_grid::{GridPoint, RangeReporter, Rect};
use ius_sampling::{KmerOrder, MinimizerScheme};
use ius_text::lce::LceIndex;
use ius_text::sa::suffix_array;
use ius_text::suffix_tree::SuffixTree;
use ius_weighted::HeavyString;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn substrate_benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0xBA5E);
    let text: Vec<u8> = (0..200_000).map(|_| rng.gen_range(0..4u8)).collect();

    let mut group = c.benchmark_group("substrates");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(6));

    group.bench_function("suffix_array/200k-dna", |b| b.iter(|| suffix_array(&text)));

    group.bench_function("lce_index/200k-dna", |b| b.iter(|| LceIndex::new(&text)));

    let lce = LceIndex::new(&text);
    group.bench_function("lce_query/200k-dna", |b| {
        let mut i = 1usize;
        b.iter(|| {
            i = (i * 48_271) % text.len();
            let j = (i * 16_807) % text.len();
            lce.lce(i, j)
        })
    });

    group.bench_function("suffix_tree/50k-dna", |b| {
        b.iter(|| SuffixTree::new(text[..50_000].to_vec()))
    });

    for (label, order) in [
        ("kr", KmerOrder::default()),
        ("lex", KmerOrder::Lexicographic),
    ] {
        let scheme = MinimizerScheme::new(256, 6, 4, order);
        group.bench_function(format!("minimizers/200k-dna/ell=256/{label}"), |b| {
            b.iter(|| scheme.minimizers(&text))
        });
    }

    // 2D grid: build and query at the scale of a minimizer index.
    let mut ys: Vec<u32> = (0..100_000u32).collect();
    for i in (1..ys.len()).rev() {
        let j = rng.gen_range(0..=i);
        ys.swap(i, j);
    }
    let points: Vec<GridPoint> = (0..100_000u32)
        .map(|x| GridPoint::new(x, ys[x as usize], x))
        .collect();
    group.bench_function("grid_build/100k-points", |b| {
        b.iter(|| RangeReporter::new(points.clone()))
    });
    let grid = RangeReporter::new(points);
    group.bench_function("grid_query/100k-points", |b| {
        let mut q = 0u32;
        b.iter(|| {
            q = (q + 9973) % 90_000;
            grid.report(&Rect::new((q, q + 500), (q, q + 500)))
        })
    });

    // Heavy string of a pangenome-like weighted string.
    let x = ius_datasets::pangenome::efm_like(100_000, 3);
    group.bench_function("heavy_string/EFM*-100k", |b| {
        b.iter(|| HeavyString::new(&x))
    });

    group.finish();
}

criterion_group!(benches, substrate_benches);
criterion_main!(benches);
