//! `reproduce` — regenerates every table and figure of the paper's evaluation
//! on the synthetic stand-in datasets.
//!
//! ```text
//! reproduce --list                         # show the available experiments
//! reproduce --exp table2 --scale tiny      # one experiment, small data
//! reproduce --exp all --scale small        # the full evaluation
//! reproduce --exp fig6 --out results/      # also writes results/fig6.csv
//! ```
//!
//! Measured quantities follow the paper: index size (heap bytes of the final
//! structure), construction space (peak heap during construction, via the
//! counting allocator installed below), construction time (wall clock,
//! including the z-estimation where the index needs it) and average query
//! time over patterns sampled from the z-estimation.

use ius_bench::construction::{render_json, run_construction_bench, ConstructionBenchConfig};
use ius_bench::experiments::ExperimentId;
use ius_bench::measure::{
    measure_build, measure_estimation, measure_queries, sample_patterns, IndexKind,
};
use ius_bench::query_bench::{render_query_json, run_query_bench, QueryBenchConfig};
use ius_bench::recovery_bench::{render_recovery_json, run_recovery_bench, RecoveryBenchConfig};
use ius_bench::report::{default_thread_sweep, host_cpus, render_csv, render_table, Row};
use ius_bench::serve_bench::{
    measure_instrumentation_overhead, render_serve_json, run_serve_bench, ServeBenchConfig,
};
use ius_bench::slo_bench::{render_slo_json, run_slo_bench, SloBenchConfig};
use ius_bench::space_bench::{render_space_json, run_space_bench, SpaceBenchConfig};
use ius_bench::update_bench::{render_update_json, run_update_bench, UpdateBenchConfig};
use ius_datasets::registry::{efm_star, human_star, rssi_star, sars_star, Dataset, Scale};
use ius_datasets::rssi::rssi_scaled;
use ius_index::IndexParams;
use ius_memtrack::CountingAllocator;
use ius_weighted::{WeightedString, ZEstimation};
use std::collections::HashSet;
use std::path::PathBuf;
use std::time::Instant;

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator::new();

/// Above this `n·⌊z⌋` product the tree-family baselines are skipped, mirroring
/// the paper's note that the WST could not be constructed for its largest
/// configurations.
const TREE_NZ_LIMIT: usize = 48_000_000;

struct Config {
    experiments: HashSet<ExperimentId>,
    scale: Scale,
    out_dir: Option<PathBuf>,
    max_patterns: usize,
    ell_sweep: Vec<usize>,
    default_ell: usize,
    bench_construction: bool,
    bench_query: bool,
    bench_space: bool,
    bench_serve: bool,
    bench_slo: bool,
    bench_update: bool,
    bench_recovery: bool,
    bench_n: usize,
    bench_reps: usize,
    bench_patterns: usize,
    bench_threads: Option<Vec<usize>>,
    bench_shards: Vec<usize>,
    bench_workers: Vec<usize>,
    bench_clients: usize,
    bench_batch: usize,
    bench_ops: usize,
    bench_rates: Vec<f64>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for id in ExperimentId::all() {
            println!("{:<10} {}", id.key(), id.description());
        }
        return;
    }
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            print_help();
            std::process::exit(2);
        }
    };

    if config.bench_construction {
        let bench_config = ConstructionBenchConfig {
            n: config.bench_n,
            reps: config.bench_reps,
            threads: config
                .bench_threads
                .clone()
                .unwrap_or_else(default_thread_sweep),
        };
        let results = run_construction_bench(&bench_config);
        let json = render_json(&bench_config, &results);
        let path = config
            .out_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("."))
            .join("BENCH_construction.json");
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
        std::fs::write(&path, &json).expect("write BENCH_construction.json");
        println!("{json}");
        println!("wrote {}", path.display());
        return;
    }

    if config.bench_query {
        let bench_config = QueryBenchConfig {
            n: config.bench_n,
            reps: config.bench_reps,
            patterns: config.bench_patterns,
            // The batched query path takes one worker count: the widest
            // entry of the sweep (0 = all CPUs).
            threads: config
                .bench_threads
                .as_ref()
                .and_then(|sweep| {
                    sweep
                        .iter()
                        .map(|&t| if t == 0 { host_cpus() } else { t })
                        .max()
                })
                .unwrap_or_else(|| QueryBenchConfig::default().threads),
        };
        let results = run_query_bench(&bench_config);
        let json = render_query_json(&bench_config, &results);
        let path = config
            .out_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("."))
            .join("BENCH_query.json");
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
        std::fs::write(&path, &json).expect("write BENCH_query.json");
        println!("{json}");
        println!("wrote {}", path.display());
        return;
    }

    if config.bench_space {
        let bench_config = SpaceBenchConfig {
            n: config.bench_n,
            reps: config.bench_reps,
            patterns: config.bench_patterns.min(200),
            shard_counts: config.bench_shards.clone(),
            threads: config
                .bench_threads
                .clone()
                .unwrap_or_else(default_thread_sweep),
        };
        let results = run_space_bench(&bench_config);
        let json = render_space_json(&bench_config, &results);
        let path = config
            .out_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("."))
            .join("BENCH_space.json");
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
        std::fs::write(&path, &json).expect("write BENCH_space.json");
        println!("{json}");
        println!("wrote {}", path.display());
        return;
    }

    if config.bench_serve {
        let bench_config = ServeBenchConfig {
            n: config.bench_n,
            reps: config.bench_reps,
            patterns: config.bench_patterns.min(400),
            worker_counts: config.bench_workers.clone(),
            clients: config.bench_clients,
        };
        let results = run_serve_bench(&bench_config);
        // A sweep pair is ~50 ms, so the overhead comparison can afford
        // far more reps than the dataset benchmarks — a percent-level
        // difference needs them on a noisy virtualized host.
        let overhead = measure_instrumentation_overhead(
            bench_config.n,
            bench_config.patterns,
            bench_config.reps.max(16),
        );
        let json = render_serve_json(&bench_config, &results, &overhead);
        let path = config
            .out_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("."))
            .join("BENCH_serve.json");
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
        std::fs::write(&path, &json).expect("write BENCH_serve.json");
        println!("{json}");
        println!("wrote {}", path.display());
        return;
    }

    if config.bench_slo {
        let patterns = config.bench_patterns.min(400);
        let bench_config = SloBenchConfig {
            n: config.bench_n,
            patterns,
            clients: config.bench_clients,
            workers: config.bench_workers.iter().copied().max().unwrap_or(2),
            rates: config.bench_rates.clone(),
            requests_per_rate: (patterns * 10).clamp(40, 4_000),
            ..Default::default()
        };
        let results = run_slo_bench(&bench_config);
        let json = render_slo_json(&bench_config, &results);
        let path = config
            .out_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("."))
            .join("BENCH_slo.json");
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
        std::fs::write(&path, &json).expect("write BENCH_slo.json");
        println!("{json}");
        println!("wrote {}", path.display());
        return;
    }

    if config.bench_update {
        let bench_config = UpdateBenchConfig {
            n: config.bench_n,
            reps: config.bench_reps,
            patterns: config.bench_patterns.min(400),
            batch: config.bench_batch,
            threads: config
                .bench_threads
                .clone()
                .unwrap_or_else(default_thread_sweep),
            ..Default::default()
        };
        let results = run_update_bench(&bench_config);
        let json = render_update_json(&bench_config, &results);
        let path = config
            .out_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("."))
            .join("BENCH_update.json");
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
        std::fs::write(&path, &json).expect("write BENCH_update.json");
        println!("{json}");
        println!("wrote {}", path.display());
        return;
    }

    if config.bench_recovery {
        let bench_config = RecoveryBenchConfig {
            n: config.bench_n,
            ops: config.bench_ops,
            reps: config.bench_reps,
            ..Default::default()
        };
        let result = run_recovery_bench(&bench_config);
        let json = render_recovery_json(&bench_config, &result);
        let path = config
            .out_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("."))
            .join("BENCH_recovery.json");
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
        std::fs::write(&path, &json).expect("write BENCH_recovery.json");
        println!("{json}");
        println!("wrote {}", path.display());
        return;
    }

    let started = Instant::now();
    let mut rows: Vec<Row> = Vec::new();
    let want = |ids: &[ExperimentId]| ids.iter().any(|id| config.experiments.contains(id));

    if want(&[ExperimentId::Table2]) {
        rows.extend(table2(&config));
    }
    if want(&[
        ExperimentId::Fig6,
        ExperimentId::Fig8,
        ExperimentId::Fig10,
        ExperimentId::Fig12,
        ExperimentId::Fig13,
        ExperimentId::Fig15,
    ]) {
        rows.extend(sweep_vs_ell(&config));
    }
    if want(&[
        ExperimentId::Fig7,
        ExperimentId::Fig9,
        ExperimentId::Fig11,
        ExperimentId::Fig12,
        ExperimentId::Fig13,
        ExperimentId::Fig15,
    ]) {
        rows.extend(sweep_vs_z(&config));
    }
    if want(&[ExperimentId::Fig14, ExperimentId::Fig16]) {
        rows.extend(sweep_rssi(&config));
    }
    if want(&[ExperimentId::Ablation]) {
        rows.extend(ablation(&config));
    }

    // Keep only the rows belonging to the requested experiments.
    rows.retain(|r| config.experiments.iter().any(|id| id.key() == r.experiment));

    println!("{}", render_table(&rows));
    if let Some(dir) = &config.out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
        for id in &config.experiments {
            let subset: Vec<Row> = rows
                .iter()
                .filter(|r| r.experiment == id.key())
                .cloned()
                .collect();
            if subset.is_empty() {
                continue;
            }
            let path = dir.join(format!("{}.csv", id.key()));
            std::fs::write(&path, render_csv(&subset)).expect("write CSV");
            println!("wrote {}", path.display());
        }
    }
    println!(
        "reproduced {} experiment(s), {} data points, in {:.1?}",
        config.experiments.len(),
        rows.len(),
        started.elapsed()
    );
}

fn print_help() {
    println!(
        "reproduce — regenerate the paper's tables and figures\n\n\
         options:\n\
         \x20 --exp <id|all>       experiment to run (repeatable); see --list\n\
         \x20 --scale tiny|small|full   dataset scale (default: tiny)\n\
         \x20 --out <dir>          also write one CSV per experiment\n\
         \x20 --max-patterns <n>   cap on query patterns per configuration (default 200)\n\
         \x20 --full-sweep         sweep all five ℓ values instead of three\n\
         \x20 --bench-construction run the before/after construction benchmark and write\n\
         \x20                      BENCH_construction.json (to --out or the working directory)\n\
         \x20 --bench-query        run the before/after query benchmark (old single-shot vs\n\
         \x20                      sink-based engine, single-thread and batched) and write\n\
         \x20                      BENCH_query.json (to --out or the working directory)\n\
         \x20 --bench-space        run the index-lifecycle space benchmark (footprint,\n\
         \x20                      serialized size, save/load vs rebuild, sharded vs\n\
         \x20                      unsharded throughput) and write BENCH_space.json\n\
         \x20 --bench-serve        run the serving benchmark (persisted index served over\n\
         \x20                      loopback TCP, throughput + p50/p99 latency vs worker\n\
         \x20                      count, hot-reload stage) and write BENCH_serve.json\n\
         \x20 --bench-slo          run the open-loop latency-SLO benchmark (fixed arrival\n\
         \x20                      rates, latency from intended send time, knee + max\n\
         \x20                      throughput under the p99 SLO, closed-vs-open p99 delta)\n\
         \x20                      and write BENCH_slo.json\n\
         \x20 --bench-update       run the dynamic-corpus benchmark (batch ingest into a\n\
         \x20                      LiveIndex, append throughput + visible latency, query\n\
         \x20                      latency vs segment count before/after compaction under\n\
         \x20                      concurrent load, answers asserted identical to a\n\
         \x20                      from-scratch rebuild) and write BENCH_update.json\n\
         \x20 --bench-recovery     run the durability benchmark (append latency with the\n\
         \x20                      write-ahead log off/armed per fsync policy, WAL replay\n\
         \x20                      throughput vs log size) and write BENCH_recovery.json\n\
         \x20 --bench-n <n>        string length for --bench-* (default 100000)\n\
         \x20 --bench-reps <r>     repetitions per timed side for --bench-* (default 3)\n\
         \x20 --bench-patterns <p> query patterns per dataset for --bench-query/--bench-space/\n\
         \x20                      --bench-serve (default 400; space/serve cap at 200/400)\n\
         \x20 --bench-threads <t,..> thread sweep (0 = all CPUs): the multi-core sweep of\n\
         \x20                      --bench-construction/--bench-space/--bench-update, and\n\
         \x20                      the batch worker count for --bench-query (widest entry)\n\
         \x20                      (default: 1,2,all CPUs)\n\
         \x20 --bench-shards <s,..> shard counts for --bench-space (default 1,4,8)\n\
         \x20 --bench-workers <w,..> worker-pool sizes for --bench-serve (default 1,2,4)\n\
         \x20 --bench-clients <c>  concurrent client threads for --bench-serve (default 4)\n\
         \x20 --bench-rates <r,..> arrival rates (req/s) for --bench-slo (default: fractions\n\
         \x20                      of each corpus's measured closed-loop throughput)\n\
         \x20 --bench-batch <b>    rows per append batch for --bench-update (default 2000)\n\
         \x20 --bench-ops <o>      appends per policy run for --bench-recovery (default 400)\n\
         \x20 --list               list experiments\n"
    );
}

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut experiments = HashSet::new();
    let mut scale = Scale::Tiny;
    let mut out_dir = None;
    let mut max_patterns = 200usize;
    let mut full_sweep = false;
    let mut bench_construction = false;
    let mut bench_query = false;
    let mut bench_space = false;
    let mut bench_serve = false;
    let mut bench_slo = false;
    let mut bench_update = false;
    let mut bench_recovery = false;
    let mut bench_n = 100_000usize;
    let mut bench_reps = 3usize;
    let mut bench_patterns = 400usize;
    let mut bench_threads = None;
    let mut bench_shards = vec![1usize, 4, 8];
    let mut bench_workers = vec![1usize, 2, 4];
    let mut bench_clients = 4usize;
    let mut bench_batch = 2_000usize;
    let mut bench_ops = 400usize;
    let mut bench_rates: Vec<f64> = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--bench-construction" => {
                bench_construction = true;
                i += 1;
            }
            "--bench-query" => {
                bench_query = true;
                i += 1;
            }
            "--bench-space" => {
                bench_space = true;
                i += 1;
            }
            "--bench-serve" => {
                bench_serve = true;
                i += 1;
            }
            "--bench-slo" => {
                bench_slo = true;
                i += 1;
            }
            "--bench-update" => {
                bench_update = true;
                i += 1;
            }
            "--bench-rates" => {
                bench_rates = args
                    .get(i + 1)
                    .ok_or("--bench-rates needs a value")?
                    .split(',')
                    .map(|s| s.trim().parse::<f64>())
                    .collect::<Result<Vec<f64>, _>>()
                    .map_err(|e| format!("bad --bench-rates: {e}"))?;
                if bench_rates.is_empty() || !bench_rates.iter().all(|r| *r > 0.0) {
                    return Err("--bench-rates needs positive arrival rates".into());
                }
                i += 2;
            }
            "--bench-recovery" => {
                bench_recovery = true;
                i += 1;
            }
            "--bench-ops" => {
                bench_ops = args
                    .get(i + 1)
                    .ok_or("--bench-ops needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --bench-ops: {e}"))?;
                if bench_ops == 0 {
                    return Err("--bench-ops needs a positive count".into());
                }
                i += 2;
            }
            "--bench-batch" => {
                bench_batch = args
                    .get(i + 1)
                    .ok_or("--bench-batch needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --bench-batch: {e}"))?;
                if bench_batch == 0 {
                    return Err("--bench-batch needs a positive row count".into());
                }
                i += 2;
            }
            "--bench-workers" => {
                bench_workers = args
                    .get(i + 1)
                    .ok_or("--bench-workers needs a value")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<Vec<usize>, _>>()
                    .map_err(|e| format!("bad --bench-workers: {e}"))?;
                if bench_workers.is_empty() || bench_workers.contains(&0) {
                    return Err("--bench-workers needs positive worker counts".into());
                }
                i += 2;
            }
            "--bench-clients" => {
                bench_clients = args
                    .get(i + 1)
                    .ok_or("--bench-clients needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --bench-clients: {e}"))?;
                if bench_clients == 0 {
                    return Err("--bench-clients needs a positive count".into());
                }
                i += 2;
            }
            "--bench-shards" => {
                bench_shards = args
                    .get(i + 1)
                    .ok_or("--bench-shards needs a value")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<Vec<usize>, _>>()
                    .map_err(|e| format!("bad --bench-shards: {e}"))?;
                if bench_shards.is_empty() || bench_shards.contains(&0) {
                    return Err("--bench-shards needs positive shard counts".into());
                }
                i += 2;
            }
            "--bench-n" => {
                bench_n = args
                    .get(i + 1)
                    .ok_or("--bench-n needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --bench-n: {e}"))?;
                i += 2;
            }
            "--bench-reps" => {
                bench_reps = args
                    .get(i + 1)
                    .ok_or("--bench-reps needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --bench-reps: {e}"))?;
                i += 2;
            }
            "--bench-patterns" => {
                bench_patterns = args
                    .get(i + 1)
                    .ok_or("--bench-patterns needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --bench-patterns: {e}"))?;
                i += 2;
            }
            "--bench-threads" => {
                let sweep = args
                    .get(i + 1)
                    .ok_or("--bench-threads needs a value")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<Vec<usize>, _>>()
                    .map_err(|e| format!("bad --bench-threads: {e}"))?;
                if sweep.is_empty() {
                    return Err("--bench-threads needs at least one count".into());
                }
                bench_threads = Some(sweep);
                i += 2;
            }
            "--exp" => {
                let value = args.get(i + 1).ok_or("--exp needs a value")?;
                if value == "all" {
                    experiments.extend(ExperimentId::all());
                } else {
                    experiments.insert(value.parse::<ExperimentId>()?);
                }
                i += 2;
            }
            "--scale" => {
                let value = args.get(i + 1).ok_or("--scale needs a value")?;
                scale = match value.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale {other:?}")),
                };
                i += 2;
            }
            "--out" => {
                out_dir = Some(PathBuf::from(args.get(i + 1).ok_or("--out needs a value")?));
                i += 2;
            }
            "--max-patterns" => {
                max_patterns = args
                    .get(i + 1)
                    .ok_or("--max-patterns needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --max-patterns: {e}"))?;
                i += 2;
            }
            "--full-sweep" => {
                full_sweep = true;
                i += 1;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if experiments.is_empty() {
        experiments.extend(ExperimentId::all());
    }
    let ell_sweep = if full_sweep {
        vec![64, 128, 256, 512, 1024]
    } else {
        vec![64, 256, 1024]
    };
    Ok(Config {
        experiments,
        scale,
        out_dir,
        max_patterns,
        ell_sweep,
        default_ell: 256,
        bench_construction,
        bench_query,
        bench_space,
        bench_serve,
        bench_slo,
        bench_update,
        bench_recovery,
        bench_n,
        bench_reps,
        bench_patterns,
        bench_threads,
        bench_shards,
        bench_workers,
        bench_clients,
        bench_batch,
        bench_ops,
        bench_rates,
    })
}

fn dna_datasets(config: &Config) -> Vec<Dataset> {
    vec![
        sars_star(config.scale),
        efm_star(config.scale),
        human_star(config.scale),
    ]
}

fn row(
    exp: ExperimentId,
    dataset: &str,
    series: &str,
    param: &str,
    param_value: f64,
    metric: &str,
    value: f64,
) -> Row {
    Row {
        experiment: exp.key().to_string(),
        dataset: dataset.to_string(),
        series: series.to_string(),
        param: param.to_string(),
        param_value,
        metric: metric.to_string(),
        value,
    }
}

/// Table 2: dataset characteristics.
fn table2(config: &Config) -> Vec<Row> {
    let mut rows = Vec::new();
    let mut datasets = dna_datasets(config);
    datasets.push(rssi_star(config.scale));
    for dataset in &datasets {
        let x = &dataset.weighted;
        eprintln!(
            "[table2] {} (n = {}, z = {})",
            dataset.name,
            x.len(),
            dataset.default_z
        );
        let est = ZEstimation::build(x, dataset.default_z).expect("estimation");
        let e = ExperimentId::Table2;
        rows.push(row(
            e,
            dataset.name,
            "n",
            "-",
            0.0,
            "length",
            x.len() as f64,
        ));
        rows.push(row(
            e,
            dataset.name,
            "sigma",
            "-",
            0.0,
            "alphabet_size",
            x.sigma() as f64,
        ));
        rows.push(row(
            e,
            dataset.name,
            "delta",
            "-",
            0.0,
            "uncertain_percent",
            dataset.delta_percent(),
        ));
        rows.push(row(
            e,
            dataset.name,
            "default_z",
            "-",
            0.0,
            "z",
            dataset.default_z,
        ));
        rows.push(row(
            e,
            dataset.name,
            "z-estimation",
            "-",
            0.0,
            "size_mb",
            est.memory_bytes() as f64 / 1e6,
        ));
    }
    rows
}

/// One full measurement of every index at a given (dataset, z, ℓ), emitting
/// rows for all the figures that read off this configuration.
#[allow(clippy::too_many_arguments)]
fn measure_configuration(
    config: &Config,
    dataset_name: &str,
    x: &WeightedString,
    z: f64,
    ell: usize,
    param: &str,
    param_value: f64,
    exps_size: ExperimentId,
    exps_space: ExperimentId,
    exps_query: Option<ExperimentId>,
    exps_time: ExperimentId,
    include_se: bool,
    rows: &mut Vec<Row>,
) {
    let params = IndexParams::new(z, ell, x.sigma()).expect("valid parameters");
    let (est, est_cost) = measure_estimation(x, z).expect("z-estimation");
    let patterns = if exps_query.is_some() {
        sample_patterns(&est, ell, config.max_patterns, 0xC0FFEE)
    } else {
        Vec::new()
    };
    let nz = x.len() * z.floor() as usize;
    let mut kinds: Vec<IndexKind> = Vec::new();
    kinds.extend(IndexKind::array_family());
    if nz <= TREE_NZ_LIMIT {
        kinds.extend(IndexKind::tree_family());
    } else {
        eprintln!(
            "  [skip] tree-family baselines for {dataset_name} (n·z = {nz} exceeds the memory budget)"
        );
    }
    if include_se {
        kinds.push(IndexKind::MwstSe);
    }
    for kind in kinds {
        let estimation = if kind.needs_estimation() {
            Some(&est)
        } else {
            None
        };
        let built = match measure_build(kind, x, estimation, est_cost, params) {
            Ok(b) => b,
            Err(err) => {
                eprintln!("  [skip] {}: {err}", kind.name());
                continue;
            }
        };
        eprintln!(
            "  {dataset_name} {param}={param_value} {:<8} size {:>10.2} MB  space {:>10.2} MB  time {:>8.2} s",
            kind.name(),
            built.size_bytes as f64 / 1e6,
            built.peak_bytes as f64 / 1e6,
            built.wall.as_secs_f64()
        );
        rows.push(row(
            exps_size,
            dataset_name,
            kind.name(),
            param,
            param_value,
            "index_size_mb",
            built.size_bytes as f64 / 1e6,
        ));
        rows.push(row(
            exps_space,
            dataset_name,
            kind.name(),
            param,
            param_value,
            "construction_space_mb",
            built.peak_bytes as f64 / 1e6,
        ));
        rows.push(row(
            exps_time,
            dataset_name,
            kind.name(),
            param,
            param_value,
            "construction_time_s",
            built.wall.as_secs_f64(),
        ));
        if let Some(qexp) = exps_query {
            if !patterns.is_empty() && !matches!(kind, IndexKind::MwstSe) {
                let q = measure_queries(built.index.as_ref(), &patterns, x);
                rows.push(row(
                    qexp,
                    dataset_name,
                    kind.name(),
                    param,
                    param_value,
                    "avg_query_us",
                    q.avg_micros,
                ));
            }
        }
    }
}

/// Figures 6, 8, 10, 12(a,b), 13(a,b), 15(a,b): sweeps over ℓ at the default z.
fn sweep_vs_ell(config: &Config) -> Vec<Row> {
    let mut rows = Vec::new();
    for dataset in dna_datasets(config) {
        let x = &dataset.weighted;
        for &ell in &config.ell_sweep {
            if ell > x.len() {
                continue;
            }
            eprintln!(
                "[vs-ell] {} z={} ell={}",
                dataset.name, dataset.default_z, ell
            );
            measure_configuration(
                config,
                dataset.name,
                x,
                dataset.default_z,
                ell,
                "ell",
                ell as f64,
                ExperimentId::Fig6,
                ExperimentId::Fig8,
                Some(ExperimentId::Fig10),
                ExperimentId::Fig12,
                true,
                &mut rows,
            );
        }
    }
    // Figures 13/15 read the same sweep; duplicate the relevant series.
    let extra: Vec<Row> = rows
        .iter()
        .filter(|r| {
            (r.metric == "construction_space_mb" || r.metric == "construction_time_s")
                && r.param == "ell"
        })
        .map(|r| Row {
            experiment: if r.metric == "construction_space_mb" {
                ExperimentId::Fig13.key().to_string()
            } else {
                ExperimentId::Fig15.key().to_string()
            },
            ..r.clone()
        })
        .collect();
    rows.extend(extra);
    rows
}

/// Figures 7, 9, 11, 12(c,d), 13(c,d), 15(c,d): sweeps over z at the default ℓ.
fn sweep_vs_z(config: &Config) -> Vec<Row> {
    let mut rows = Vec::new();
    for dataset in dna_datasets(config) {
        let x = &dataset.weighted;
        let ell = config.default_ell.min(x.len());
        for &z in &dataset.z_sweep {
            eprintln!("[vs-z] {} z={} ell={}", dataset.name, z, ell);
            measure_configuration(
                config,
                dataset.name,
                x,
                z,
                ell,
                "z",
                z,
                ExperimentId::Fig7,
                ExperimentId::Fig9,
                Some(ExperimentId::Fig11),
                ExperimentId::Fig12,
                true,
                &mut rows,
            );
        }
    }
    let extra: Vec<Row> = rows
        .iter()
        .filter(|r| {
            (r.metric == "construction_space_mb" || r.metric == "construction_time_s")
                && r.param == "z"
        })
        .map(|r| Row {
            experiment: if r.metric == "construction_space_mb" {
                ExperimentId::Fig13.key().to_string()
            } else {
                ExperimentId::Fig15.key().to_string()
            },
            ..r.clone()
        })
        .collect();
    rows.extend(extra);
    rows
}

/// Figures 14 and 16: construction space / time of WSA vs MWST-SE on the RSSI
/// family, varying ℓ, z, σ and n.
fn sweep_rssi(config: &Config) -> Vec<Row> {
    let mut rows = Vec::new();
    let base = rssi_star(config.scale);
    let base_n = base.n();
    let kinds = [IndexKind::Wsa, IndexKind::MwstSe];
    let measure_one =
        |x: &WeightedString, z: f64, ell: usize, param: &str, value: f64, rows: &mut Vec<Row>| {
            let params = IndexParams::new(z, ell, x.sigma()).expect("valid parameters");
            let (est, est_cost) = measure_estimation(x, z).expect("z-estimation");
            for kind in kinds {
                let estimation = if kind.needs_estimation() {
                    Some(&est)
                } else {
                    None
                };
                let built = match measure_build(kind, x, estimation, est_cost, params) {
                    Ok(b) => b,
                    Err(err) => {
                        eprintln!("  [skip] {}: {err}", kind.name());
                        continue;
                    }
                };
                eprintln!(
                    "  RSSI* {param}={value} {:<8} space {:>9.2} MB  time {:>7.2} s",
                    kind.name(),
                    built.peak_bytes as f64 / 1e6,
                    built.wall.as_secs_f64()
                );
                rows.push(row(
                    ExperimentId::Fig14,
                    "RSSI*",
                    kind.name(),
                    param,
                    value,
                    "construction_space_mb",
                    built.peak_bytes as f64 / 1e6,
                ));
                rows.push(row(
                    ExperimentId::Fig16,
                    "RSSI*",
                    kind.name(),
                    param,
                    value,
                    "construction_time_s",
                    built.wall.as_secs_f64(),
                ));
            }
        };

    // (a) vs ℓ at the default z.
    for &ell in &config.ell_sweep {
        eprintln!("[rssi vs-ell] ell={ell}");
        measure_one(
            &base.weighted,
            base.default_z,
            ell,
            "ell",
            ell as f64,
            &mut rows,
        );
    }
    // (b) vs z at the default ℓ.
    for &z in &base.z_sweep {
        eprintln!("[rssi vs-z] z={z}");
        measure_one(&base.weighted, z, config.default_ell, "z", z, &mut rows);
    }
    // (c) vs σ at fixed n.
    for sigma in [16usize, 32, 64, 91] {
        eprintln!("[rssi vs-sigma] sigma={sigma}");
        let x = rssi_scaled(base_n, sigma, 0x0551);
        measure_one(
            &x,
            base.default_z,
            config.default_ell,
            "sigma",
            sigma as f64,
            &mut rows,
        );
    }
    // (d) vs n at fixed σ = 32.
    for factor in [1usize, 2, 4] {
        let n = base_n * factor;
        eprintln!("[rssi vs-n] n={n}");
        let x = rssi_scaled(n, 32, 0x0551);
        measure_one(
            &x,
            base.default_z,
            config.default_ell,
            "n",
            n as f64,
            &mut rows,
        );
    }
    rows
}

/// Design-choice ablations: grid vs simple query, k-mer order, k sweep.
fn ablation(config: &Config) -> Vec<Row> {
    use ius_index::{IndexVariant, MinimizerIndex, UncertainIndex};
    use ius_sampling::KmerOrder;
    let mut rows = Vec::new();
    let dataset = efm_star(config.scale);
    let x = &dataset.weighted;
    let z = dataset.default_z;
    let ell = config.default_ell;
    let e = ExperimentId::Ablation;
    eprintln!("[ablation] {} z={z} ell={ell}", dataset.name);
    let est = ZEstimation::build(x, z).expect("estimation");
    let patterns = sample_patterns(&est, ell, config.max_patterns, 0xAB1A);

    // (1) Simple verification query vs grid query, on tree and array forms.
    for (label, variant) in [
        ("MWST", IndexVariant::Tree),
        ("MWST-G", IndexVariant::TreeGrid),
        ("MWSA", IndexVariant::Array),
        ("MWSA-G", IndexVariant::ArrayGrid),
    ] {
        let params = IndexParams::new(z, ell, x.sigma()).expect("params");
        let index = MinimizerIndex::build_from_estimation(x, &est, params, variant).expect("index");
        let q = measure_queries(&index, &patterns, x);
        rows.push(row(
            e,
            dataset.name,
            label,
            "query",
            0.0,
            "avg_query_us",
            q.avg_micros,
        ));
        rows.push(row(
            e,
            dataset.name,
            label,
            "query",
            0.0,
            "index_size_mb",
            index.size_bytes() as f64 / 1e6,
        ));
    }

    // (2) k-mer order: Karp–Rabin fingerprints vs lexicographic.
    for (label, order) in [
        ("KR-order", KmerOrder::default()),
        ("lex-order", KmerOrder::Lexicographic),
    ] {
        let params = IndexParams::new(z, ell, x.sigma())
            .expect("params")
            .with_order(order);
        let index = MinimizerIndex::build_from_estimation(x, &est, params, IndexVariant::Array)
            .expect("index");
        rows.push(row(
            e,
            dataset.name,
            label,
            "order",
            0.0,
            "sampled_factors",
            index.num_sampled_factors() as f64,
        ));
        rows.push(row(
            e,
            dataset.name,
            label,
            "order",
            0.0,
            "index_size_mb",
            index.size_bytes() as f64 / 1e6,
        ));
    }

    // (3) k sweep (Lemma 1: density is O(1/ℓ) once k ≳ log_σ ℓ).
    for k in [2usize, 4, 6, 8, 12] {
        if k > ell {
            continue;
        }
        let params = IndexParams::new(z, ell, x.sigma())
            .expect("params")
            .with_k(k)
            .expect("valid k");
        let index = MinimizerIndex::build_from_estimation(x, &est, params, IndexVariant::Array)
            .expect("index");
        rows.push(row(
            e,
            dataset.name,
            "k-sweep",
            "k",
            k as f64,
            "sampled_factors",
            index.num_sampled_factors() as f64,
        ));
    }
    rows
}
