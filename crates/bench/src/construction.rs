//! The construction-pipeline before/after benchmark behind
//! `reproduce --bench-construction` and `BENCH_construction.json`.
//!
//! Every "old" number is a real measurement of retained runnable code (not a
//! simulation): [`ZEstimation::build_reference`],
//! [`ius_text::sa::suffix_array_prefix_doubling`] and
//! [`MinimizerIndex::build_from_estimation_reference`] are the pre-overhaul
//! implementations; the `minimizer_scan` row alone compares against the
//! per-window rescan *algorithm* (the seed's test oracle — its production
//! scan already used the monotone deque) and is therefore informational and
//! excluded from the pipeline totals. Old and new sides take the minimum
//! over the same repetition count, and outputs are asserted identical before
//! timing is trusted.

use ius_datasets::corpora::bench_corpus;
use ius_index::{IndexParams, IndexVariant, MinimizerIndex, UncertainIndex};
use ius_sampling::{KmerOrder, MinimizerScheme};
use ius_text::sa::{suffix_array, suffix_array_prefix_doubling};
use ius_weighted::{HeavyString, WeightedString, ZEstimation};
use std::time::Instant;

/// Parameters of one benchmarked configuration.
#[derive(Debug, Clone)]
pub struct ConstructionBenchConfig {
    /// Length of the generated weighted strings.
    pub n: usize,
    /// Repetitions per fast stage (the minimum is reported).
    pub reps: usize,
    /// Thread counts of the parallel-construction sweep (each point builds
    /// the z-estimation and the index at that fan-out, asserted
    /// byte-identical to the serial build before timing is trusted).
    pub threads: Vec<usize>,
}

impl Default for ConstructionBenchConfig {
    fn default() -> Self {
        Self {
            n: 100_000,
            reps: 3,
            threads: crate::report::default_thread_sweep(),
        }
    }
}

/// One point of the multi-core construction sweep.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPoint {
    /// Executor fan-out of this point.
    pub threads: usize,
    /// Milliseconds of `ZEstimation::build_with_threads` at this fan-out.
    pub z_estimation_ms: f64,
    /// Milliseconds of the explicit MWSA build (parallel factor sorts) at
    /// this fan-out.
    pub index_build_ms: f64,
}

impl ThreadPoint {
    /// End-to-end milliseconds (estimation + index build).
    pub fn pipeline_ms(&self) -> f64 {
        self.z_estimation_ms + self.index_build_ms
    }
}

/// Old/new timing of one stage, in milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct StageTiming {
    /// Milliseconds of the pre-overhaul implementation.
    pub old_ms: f64,
    /// Milliseconds of the overhauled implementation.
    pub new_ms: f64,
}

impl StageTiming {
    /// `old / new`.
    pub fn speedup(&self) -> f64 {
        self.old_ms / self.new_ms
    }
}

/// All stage timings for one dataset configuration.
#[derive(Debug, Clone)]
pub struct DatasetBench {
    /// Dataset label (`uniform`, `pangenome`, …).
    pub name: String,
    /// Human-readable generator parameters.
    pub params: String,
    /// Weight threshold z.
    pub z: f64,
    /// Minimum pattern length ℓ.
    pub ell: usize,
    /// z-estimation: reference vs optimised construction.
    pub z_estimation: StageTiming,
    /// Suffix array over the heavy string: prefix doubling vs SA-IS.
    pub suffix_array: StageTiming,
    /// Minimizer selection over the heavy string: per-window rescan vs
    /// monotone-deque scan. An *algorithmic* comparison — the seed already
    /// shipped the deque scan (the rescan was its test oracle) — so this row
    /// is informational and excluded from [`DatasetBench::pipeline`].
    pub minimizer_scan: StageTiming,
    /// Explicit MWSA build from a shared estimation: reference vs
    /// clone-free/pre-sized path.
    pub index_build: StageTiming,
    /// End-to-end construction (z-estimation + index build).
    pub pipeline: StageTiming,
    /// The multi-core sweep: the "new" estimation + index build re-timed at
    /// every configured executor fan-out, outputs asserted identical to the
    /// serial build.
    pub thread_sweep: Vec<ThreadPoint>,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn time_min<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let v = f();
        best = best.min(ms(t));
        out = Some(v);
    }
    (out.expect("at least one rep"), best)
}

/// Benchmarks one `(x, z, ℓ)` configuration.
fn bench_dataset(
    name: &str,
    params: String,
    x: &WeightedString,
    z: f64,
    ell: usize,
    reps: usize,
    threads: &[usize],
) -> DatasetBench {
    eprintln!(
        "[bench-construction] {name} (n = {}, z = {z}, ell = {ell})",
        x.len()
    );

    // z-estimation: the reference formulation vs the overhauled one; the
    // strands must be letter-for-letter identical. Both sides take the
    // minimum over the same number of repetitions (like for like).
    let (est_old, z_old) = time_min(reps.min(2), || {
        ZEstimation::build_reference(x, z).expect("reference estimation")
    });
    let (est, z_new) = time_min(reps.min(2), || {
        ZEstimation::build(x, z).expect("estimation")
    });
    for (a, b) in est.strands().iter().zip(est_old.strands()) {
        assert_eq!(a.seq(), b.seq(), "z-estimation mismatch on {name}");
        assert_eq!(
            a.extents(),
            b.extents(),
            "z-estimation extents mismatch on {name}"
        );
    }
    drop(est_old);
    eprintln!("  z-estimation     old {z_old:9.1} ms  new {z_new:9.1} ms");

    // Suffix array over the heavy string.
    let heavy = HeavyString::new(x);
    let (sa_old_v, sa_old) = time_min(reps, || suffix_array_prefix_doubling(heavy.as_ranks()));
    let (sa_new_v, sa_new) = time_min(reps, || suffix_array(heavy.as_ranks()));
    assert_eq!(sa_old_v, sa_new_v, "suffix arrays disagree on {name}");
    eprintln!("  suffix-array     old {sa_old:9.1} ms  new {sa_new:9.1} ms");

    // Minimizer selection over the heavy string. NOTE: unlike every other
    // stage, the "old" side here is the per-window rescan *algorithm*, which
    // the seed only shipped as the test oracle — its production scan already
    // used the monotone deque. The row quantifies the algorithmic gap and is
    // excluded from the pipeline totals.
    let scheme = MinimizerScheme::new(
        ell,
        ius_sampling::recommended_k(ell, x.sigma()),
        x.sigma(),
        KmerOrder::default(),
    );
    let (scan_old_v, scan_old) = time_min(reps, || scheme.minimizers_rescan(heavy.as_ranks()));
    let (scan_new_v, scan_new) = time_min(reps, || scheme.minimizers(heavy.as_ranks()));
    assert_eq!(scan_old_v, scan_new_v, "minimizer scans disagree on {name}");
    eprintln!("  minimizer-scan   old {scan_old:9.1} ms  new {scan_new:9.1} ms");

    // Explicit MWSA construction from the shared estimation.
    let params_idx = IndexParams::new(z, ell, x.sigma()).expect("params");
    let (idx_old, build_old) = time_min(reps.min(2), || {
        MinimizerIndex::build_from_estimation_reference(x, &est, params_idx, IndexVariant::Array)
            .expect("reference build")
    });
    let (idx_new, build_new) = time_min(reps.min(2), || {
        MinimizerIndex::build_from_estimation(x, &est, params_idx, IndexVariant::Array)
            .expect("build")
    });
    assert_eq!(
        idx_old.num_sampled_factors(),
        idx_new.num_sampled_factors(),
        "factor counts disagree on {name}"
    );
    eprintln!(
        "  index-build      old {build_old:9.1} ms  new {build_new:9.1} ms  ({} factors)",
        idx_new.num_sampled_factors()
    );

    let pipeline = StageTiming {
        old_ms: z_old + build_old,
        new_ms: z_new + build_new,
    };
    eprintln!(
        "  pipeline         old {:9.1} ms  new {:9.1} ms  speedup {:.2}x",
        pipeline.old_ms,
        pipeline.new_ms,
        pipeline.speedup()
    );

    // The multi-core sweep: the parallel estimation and index build at each
    // configured fan-out, asserted identical to the serial results before
    // the timing is trusted.
    let mut thread_sweep = Vec::with_capacity(threads.len());
    for &t in threads {
        let (est_t, z_ms) = time_min(reps.min(2), || {
            ZEstimation::build_with_threads(x, z, t).expect("parallel estimation")
        });
        for (a, b) in est_t.strands().iter().zip(est.strands()) {
            assert_eq!(
                a.seq(),
                b.seq(),
                "parallel z-estimation differs on {name} (t = {t})"
            );
            assert_eq!(
                a.extents(),
                b.extents(),
                "parallel extents differ on {name} (t = {t})"
            );
        }
        drop(est_t);
        let (idx_t, build_ms) = time_min(reps.min(2), || {
            MinimizerIndex::build_from_estimation_with_threads(
                x,
                &est,
                params_idx,
                IndexVariant::Array,
                t,
            )
            .expect("parallel build")
        });
        assert_eq!(
            idx_t.num_sampled_factors(),
            idx_new.num_sampled_factors(),
            "parallel factor counts differ on {name} (t = {t})"
        );
        assert_eq!(
            idx_t.size_bytes(),
            idx_new.size_bytes(),
            "parallel index size differs on {name} (t = {t})"
        );
        drop(idx_t);
        let point = ThreadPoint {
            threads: t,
            z_estimation_ms: z_ms,
            index_build_ms: build_ms,
        };
        eprintln!(
            "  threads={t:<3}      est {z_ms:9.1} ms  build {build_ms:9.1} ms  pipeline {:9.1} ms",
            point.pipeline_ms()
        );
        thread_sweep.push(point);
    }

    DatasetBench {
        name: name.to_string(),
        params,
        z,
        ell,
        z_estimation: StageTiming {
            old_ms: z_old,
            new_ms: z_new,
        },
        suffix_array: StageTiming {
            old_ms: sa_old,
            new_ms: sa_new,
        },
        minimizer_scan: StageTiming {
            old_ms: scan_old,
            new_ms: scan_new,
        },
        index_build: StageTiming {
            old_ms: build_old,
            new_ms: build_new,
        },
        pipeline,
        thread_sweep,
    }
}

/// Runs the full before/after construction benchmark.
pub fn run_construction_bench(config: &ConstructionBenchConfig) -> Vec<DatasetBench> {
    let n = config.n;
    let reps = config.reps;
    let mut results = Vec::new();

    // The corpora come from the canonical shared definition
    // (`ius_datasets::corpora`); z and ell stay per-bench parameters — the
    // high-entropy corpus is deliberately measured at ell = 128 here
    // (reported for transparency: short solid windows, the estimation
    // dominates) instead of its query-regime ell = 24.
    let corpus = |name: &str| bench_corpus(name, n, None).expect("known corpus name");

    let threads = &config.threads;

    let uniform = corpus("uniform");
    results.push(bench_dataset(
        uniform.name,
        uniform.params.clone(),
        &uniform.x,
        uniform.z,
        uniform.ell,
        reps,
        threads,
    ));

    let uniform_he = corpus("uniform_high_entropy");
    results.push(bench_dataset(
        uniform_he.name,
        uniform_he.params.clone(),
        &uniform_he.x,
        uniform_he.z,
        128,
        reps,
        threads,
    ));

    let pangenome = corpus("pangenome");
    results.push(bench_dataset(
        pangenome.name,
        pangenome.params.clone(),
        &pangenome.x,
        pangenome.z,
        pangenome.ell,
        reps,
        threads,
    ));

    let rssi = corpus("rssi");
    results.push(bench_dataset(
        rssi.name,
        rssi.params.clone(),
        &rssi.x,
        rssi.z,
        rssi.ell,
        reps,
        threads,
    ));

    results
}

/// Renders the benchmark results as the `BENCH_construction.json` document.
pub fn render_json(config: &ConstructionBenchConfig, results: &[DatasetBench]) -> String {
    fn stage(name: &str, t: &StageTiming) -> String {
        format!(
            "      \"{}\": {{ \"old_ms\": {:.2}, \"new_ms\": {:.2}, \"speedup\": {:.2} }}",
            name,
            t.old_ms,
            t.new_ms,
            t.speedup()
        )
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"n\": {}, {},\n",
        config.n,
        crate::report::json_host_fields(&config.threads)
    ));
    out.push_str(
        "  \"note\": \"old = retained pre-overhaul implementations (prefix-doubling SA, \
         reference z-estimation, cloning factor encoder); new = SA-IS, level-merged \
         z-estimation, clone-free encoder. Both sides take the minimum over the same \
         repetition count and outputs are asserted identical before timing. Exception: \
         the minimizer_scan row compares the per-window rescan ALGORITHM (the seed's \
         test oracle; its production scan already used the monotone deque) and is \
         excluded from construction_pipeline. thread_sweep re-times the new estimation \
         and index build at each executor fan-out (parallel transpose, parallel factor \
         sorts); every point's output is asserted identical to the serial build.\",\n",
    );
    out.push_str("  \"datasets\": [\n");
    for (i, d) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", d.name));
        out.push_str(&format!("      \"params\": \"{}\",\n", d.params));
        out.push_str(&format!("      \"z\": {}, \"ell\": {},\n", d.z, d.ell));
        out.push_str(&stage("z_estimation", &d.z_estimation));
        out.push_str(",\n");
        out.push_str(&stage("suffix_array", &d.suffix_array));
        out.push_str(",\n");
        out.push_str(&stage("minimizer_scan", &d.minimizer_scan));
        out.push_str(",\n");
        out.push_str(&stage("index_build", &d.index_build));
        out.push_str(",\n");
        out.push_str(&stage("construction_pipeline", &d.pipeline));
        out.push_str(",\n");
        out.push_str("      \"thread_sweep\": [\n");
        for (j, p) in d.thread_sweep.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"threads\": {}, \"z_estimation_ms\": {:.2}, \
                 \"index_build_ms\": {:.2}, \"pipeline_ms\": {:.2} }}{}\n",
                p.threads,
                p.z_estimation_ms,
                p.index_build_ms,
                p.pipeline_ms(),
                if j + 1 == d.thread_sweep.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}
