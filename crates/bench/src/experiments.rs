//! Experiment descriptors: which table/figure of the paper each run
//! reproduces and with which parameter grids.

use std::fmt;
use std::str::FromStr;

/// Identifier of one table or figure of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentId {
    /// Table 2 — dataset characteristics.
    Table2,
    /// Fig. 6 — index size vs ℓ.
    Fig6,
    /// Fig. 7 — index size vs z.
    Fig7,
    /// Fig. 8 — construction space vs ℓ.
    Fig8,
    /// Fig. 9 — construction space vs z.
    Fig9,
    /// Fig. 10 — average query time vs ℓ.
    Fig10,
    /// Fig. 11 — average query time vs z.
    Fig11,
    /// Fig. 12 — construction time vs ℓ and vs z.
    Fig12,
    /// Fig. 13 — construction space of MWST-SE vs ℓ and z.
    Fig13,
    /// Fig. 14 — construction space on the RSSI family (vs ℓ, z, σ, n).
    Fig14,
    /// Fig. 15 — construction time of MWST-SE vs ℓ and z.
    Fig15,
    /// Fig. 16 — construction time on the RSSI family (vs ℓ, z, σ, n).
    Fig16,
    /// Additional ablations called out in DESIGN.md (not a paper figure).
    Ablation,
}

impl ExperimentId {
    /// Every reproducible experiment, in presentation order.
    pub fn all() -> Vec<ExperimentId> {
        use ExperimentId::*;
        vec![
            Table2, Fig6, Fig7, Fig8, Fig9, Fig10, Fig11, Fig12, Fig13, Fig14, Fig15, Fig16,
            Ablation,
        ]
    }

    /// Short identifier used on the command line and in CSV file names.
    pub fn key(&self) -> &'static str {
        match self {
            ExperimentId::Table2 => "table2",
            ExperimentId::Fig6 => "fig6",
            ExperimentId::Fig7 => "fig7",
            ExperimentId::Fig8 => "fig8",
            ExperimentId::Fig9 => "fig9",
            ExperimentId::Fig10 => "fig10",
            ExperimentId::Fig11 => "fig11",
            ExperimentId::Fig12 => "fig12",
            ExperimentId::Fig13 => "fig13",
            ExperimentId::Fig14 => "fig14",
            ExperimentId::Fig15 => "fig15",
            ExperimentId::Fig16 => "fig16",
            ExperimentId::Ablation => "ablation",
        }
    }

    /// One-line description shown by `reproduce --list`.
    pub fn description(&self) -> &'static str {
        match self {
            ExperimentId::Table2 => "dataset characteristics (n, sigma, Δ, z-estimation size)",
            ExperimentId::Fig6 => "index size (MB) vs ℓ for the tree and array families",
            ExperimentId::Fig7 => "index size (MB) vs z for the tree and array families",
            ExperimentId::Fig8 => "construction space (MB) vs ℓ",
            ExperimentId::Fig9 => "construction space (MB) vs z",
            ExperimentId::Fig10 => "average query time (µs) vs ℓ",
            ExperimentId::Fig11 => "average query time (µs) vs z",
            ExperimentId::Fig12 => "construction time (s) vs ℓ and vs z",
            ExperimentId::Fig13 => "construction space (MB) incl. MWST-SE vs ℓ and z",
            ExperimentId::Fig14 => "construction space (MB) on RSSI* vs ℓ, z, σ and n",
            ExperimentId::Fig15 => "construction time (s) incl. MWST-SE vs ℓ and z",
            ExperimentId::Fig16 => "construction time (s) on RSSI* vs ℓ, z, σ and n",
            ExperimentId::Ablation => "grid vs simple query, k-mer order, k sweep, edge encoding",
        }
    }
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.key())
    }
}

impl FromStr for ExperimentId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized = s.trim().to_ascii_lowercase();
        ExperimentId::all()
            .into_iter()
            .find(|e| e.key() == normalized)
            .ok_or_else(|| format!("unknown experiment {s:?}; use --list to see the options"))
    }
}

/// A single experiment together with the sweep values used by the harness.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Which table/figure this reproduces.
    pub id: ExperimentId,
    /// The ℓ values swept (where applicable).
    pub ell_sweep: Vec<usize>,
    /// The default pattern length / ℓ (the paper's default is 256).
    pub default_ell: usize,
}

impl Experiment {
    /// The paper's sweeps: ℓ, m ∈ {64, 128, 256, 512, 1024}, default 256.
    pub fn with_paper_defaults(id: ExperimentId) -> Self {
        Self {
            id,
            ell_sweep: vec![64, 128, 256, 512, 1024],
            default_ell: 256,
        }
    }

    /// A reduced sweep for quick runs.
    pub fn quick(id: ExperimentId) -> Self {
        Self {
            id,
            ell_sweep: vec![64, 256, 1024],
            default_ell: 256,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_roundtrip() {
        for id in ExperimentId::all() {
            let parsed: ExperimentId = id.key().parse().unwrap();
            assert_eq!(parsed, id);
            assert!(!id.description().is_empty());
        }
        assert!("fig99".parse::<ExperimentId>().is_err());
        assert_eq!("FIG6".parse::<ExperimentId>().unwrap(), ExperimentId::Fig6);
    }

    #[test]
    fn sweeps_match_paper() {
        let e = Experiment::with_paper_defaults(ExperimentId::Fig6);
        assert_eq!(e.ell_sweep, vec![64, 128, 256, 512, 1024]);
        assert_eq!(e.default_ell, 256);
        assert!(Experiment::quick(ExperimentId::Fig6).ell_sweep.len() < e.ell_sweep.len());
    }
}
