//! # ius-bench — the experiment harness
//!
//! Everything needed to regenerate the paper's evaluation (Table 2 and
//! Figures 6–16) on the synthetic stand-in datasets: experiment descriptors,
//! measurement helpers (wall-clock, peak heap, index size, average query
//! time) and row formatting. The `reproduce` binary drives it; the Criterion
//! benches in `benches/` reuse the same building blocks for per-operation
//! timings.

#![warn(missing_docs)]

pub mod construction;
pub mod experiments;
pub mod measure;
pub mod query_bench;
pub mod recovery_bench;
pub mod report;
pub mod serve_bench;
pub mod slo_bench;
pub mod space_bench;
pub mod update_bench;

pub use construction::{ConstructionBenchConfig, DatasetBench, StageTiming};
pub use experiments::{Experiment, ExperimentId};
pub use measure::{BuildMeasurement, IndexKind, QueryMeasurement};
pub use query_bench::{FamilyQueryBench, QueryBenchConfig, QueryDatasetBench};
pub use recovery_bench::{PolicyBench, RecoveryBenchConfig, RecoveryBenchResult, ReplayBench};
pub use report::Row;
pub use serve_bench::{ReloadBench, ServeBenchConfig, ServeDatasetBench, WorkerBench};
pub use slo_bench::{ClosedLoopBaseline, RateBench, SloBenchConfig, SloDatasetBench};
pub use space_bench::{FamilySpaceBench, ShardBench, SpaceBenchConfig, SpaceDatasetBench};
pub use update_bench::{CompactionPhase, QueryPhase, UpdateBenchConfig, UpdateDatasetBench};
