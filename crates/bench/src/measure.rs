//! Measurement helpers: wall-clock, peak heap, index size and query latency.

use ius_datasets::patterns::PatternSampler;
use ius_index::{IndexFamily, IndexParams, IndexSpec, IndexStats, IndexVariant, UncertainIndex};
use ius_weighted::{Result, WeightedString, ZEstimation};
use std::time::{Duration, Instant};

/// The seven index kinds evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Weighted suffix tree baseline.
    Wst,
    /// Weighted suffix array baseline.
    Wsa,
    /// Minimizer weighted suffix tree (simple query).
    Mwst,
    /// Minimizer weighted suffix array (simple query).
    Mwsa,
    /// Minimizer weighted suffix tree with the 2D grid.
    MwstG,
    /// Minimizer weighted suffix array with the 2D grid.
    MwsaG,
    /// Minimizer weighted suffix tree built by the space-efficient
    /// construction of Section 4.
    MwstSe,
}

impl IndexKind {
    /// All kinds, in the order the paper's figures list them.
    pub fn all() -> [IndexKind; 7] {
        [
            IndexKind::Wst,
            IndexKind::Wsa,
            IndexKind::Mwst,
            IndexKind::Mwsa,
            IndexKind::MwstG,
            IndexKind::MwsaG,
            IndexKind::MwstSe,
        ]
    }

    /// The kinds shown in the tree-based panels of Figures 6–12.
    pub fn tree_family() -> [IndexKind; 3] {
        [IndexKind::Wst, IndexKind::Mwst, IndexKind::MwstG]
    }

    /// The kinds shown in the array-based panels of Figures 6–12.
    pub fn array_family() -> [IndexKind; 3] {
        [IndexKind::Wsa, IndexKind::Mwsa, IndexKind::MwsaG]
    }

    /// Display name used in reports (matches the paper).
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::Wst => "WST",
            IndexKind::Wsa => "WSA",
            IndexKind::Mwst => "MWST",
            IndexKind::Mwsa => "MWSA",
            IndexKind::MwstG => "MWST-G",
            IndexKind::MwsaG => "MWSA-G",
            IndexKind::MwstSe => "MWST-SE",
        }
    }

    /// The builder-layer family this kind maps to. All construction now goes
    /// through the unified [`IndexSpec`] entry point — the per-family match
    /// arms this harness used to hand-roll live in `ius_index::builder`.
    pub fn family(&self) -> IndexFamily {
        match self {
            IndexKind::Wst => IndexFamily::Wst,
            IndexKind::Wsa => IndexFamily::Wsa,
            IndexKind::Mwst => IndexFamily::Minimizer(IndexVariant::Tree),
            IndexKind::Mwsa => IndexFamily::Minimizer(IndexVariant::Array),
            IndexKind::MwstG => IndexFamily::Minimizer(IndexVariant::TreeGrid),
            IndexKind::MwsaG => IndexFamily::Minimizer(IndexVariant::ArrayGrid),
            IndexKind::MwstSe => IndexFamily::SpaceEfficient(IndexVariant::Tree),
        }
    }

    /// The buildable descriptor of this kind under the given parameters.
    pub fn spec(&self, params: IndexParams) -> IndexSpec {
        IndexSpec::new(self.family(), params)
    }

    /// Does constructing this index require the explicit z-estimation?
    pub fn needs_estimation(&self) -> bool {
        self.family().needs_estimation()
    }

    /// Is this one of the `Θ(nz)`-sized baselines?
    pub fn is_baseline(&self) -> bool {
        matches!(self, IndexKind::Wst | IndexKind::Wsa)
    }

    /// Builds the index through the unified builder layer.
    ///
    /// `estimation` must be `Some` for every kind except [`IndexKind::MwstSe`].
    ///
    /// # Errors
    ///
    /// Propagates construction errors of the respective index.
    pub fn build(
        &self,
        x: &WeightedString,
        estimation: Option<&ZEstimation>,
        params: IndexParams,
    ) -> Result<Box<dyn UncertainIndex + Sync>> {
        let spec = self.spec(params);
        // Fail loudly on misuse rather than silently re-deriving the
        // estimation inside the caller's timed/measured region (its cost is
        // folded in separately by `measure_build`).
        assert!(
            estimation.is_some() || !spec.family.needs_estimation(),
            "estimation required for this index kind"
        );
        let index = match estimation {
            Some(estimation) if spec.family.needs_estimation() => {
                spec.build_with_estimation(x, estimation)?
            }
            _ => spec.build(x)?,
        };
        Ok(Box::new(index))
    }
}

/// Everything measured while constructing one index.
pub struct BuildMeasurement {
    /// Which index was built.
    pub kind: IndexKind,
    /// Wall-clock construction time, including the z-estimation when the
    /// index requires it.
    pub wall: Duration,
    /// Peak heap growth during construction, in bytes. Includes the
    /// z-estimation for estimation-based indexes (approximated as
    /// `max(estimation peak, estimation retained + index peak)` when the
    /// estimation is shared across index builds).
    pub peak_bytes: usize,
    /// Final index size in bytes.
    pub size_bytes: usize,
    /// Structural statistics of the index.
    pub stats: IndexStats,
    /// The built index, for subsequent query measurements.
    pub index: Box<dyn UncertainIndex + Sync>,
}

/// Peak/retained heap of building the shared z-estimation, measured once per
/// `(dataset, z)` configuration by [`measure_estimation`].
#[derive(Debug, Clone, Copy, Default)]
pub struct EstimationCost {
    /// Peak heap growth while constructing the estimation.
    pub peak_bytes: usize,
    /// Heap retained by the estimation itself.
    pub retained_bytes: usize,
    /// Wall-clock time of constructing the estimation.
    pub wall: Duration,
}

/// Builds a z-estimation while measuring its wall-clock time and heap cost.
///
/// # Errors
///
/// Propagates threshold validation errors.
pub fn measure_estimation(x: &WeightedString, z: f64) -> Result<(ZEstimation, EstimationCost)> {
    let start = Instant::now();
    let (result, mem) = ius_memtrack::measure(|| ZEstimation::build(x, z));
    let estimation = result?;
    Ok((
        estimation,
        EstimationCost {
            peak_bytes: mem.peak_bytes,
            retained_bytes: mem.retained_bytes,
            wall: start.elapsed(),
        },
    ))
}

/// Builds one index while measuring wall-clock time, peak heap and size.
///
/// For estimation-based kinds the shared estimation's cost is folded in so
/// that the reported numbers correspond to a from-scratch construction, as
/// the paper measures them.
///
/// # Errors
///
/// Propagates construction errors.
pub fn measure_build(
    kind: IndexKind,
    x: &WeightedString,
    estimation: Option<&ZEstimation>,
    estimation_cost: EstimationCost,
    params: IndexParams,
) -> Result<BuildMeasurement> {
    let start = Instant::now();
    let (built, mem) = ius_memtrack::measure(|| kind.build(x, estimation, params));
    let index = built?;
    let mut wall = start.elapsed();
    let mut peak = mem.peak_bytes;
    if kind.needs_estimation() {
        wall += estimation_cost.wall;
        peak = estimation_cost
            .peak_bytes
            .max(estimation_cost.retained_bytes + mem.peak_bytes);
    }
    Ok(BuildMeasurement {
        kind,
        wall,
        peak_bytes: peak,
        size_bytes: index.size_bytes(),
        stats: index.stats(),
        index,
    })
}

/// Aggregate query-time measurement over a pattern set.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryMeasurement {
    /// Average time per query in microseconds.
    pub avg_micros: f64,
    /// Total number of reported occurrences over all patterns.
    pub total_occurrences: usize,
    /// Number of patterns queried.
    pub num_patterns: usize,
}

/// Runs every pattern through the index and reports the averages.
///
/// Uses the sink-based serving path (`query_into` with one reused scratch
/// and output buffer) — the configuration the query figures are meant to
/// describe.
pub fn measure_queries(
    index: &dyn UncertainIndex,
    patterns: &[Vec<u8>],
    x: &WeightedString,
) -> QueryMeasurement {
    if patterns.is_empty() {
        return QueryMeasurement::default();
    }
    let mut scratch = ius_query::QueryScratch::new();
    let mut out: Vec<usize> = Vec::new();
    let start = Instant::now();
    let mut total = 0usize;
    for pattern in patterns {
        out.clear();
        if index.query_into(pattern, x, &mut scratch, &mut out).is_ok() {
            total += out.len();
        }
    }
    let elapsed = start.elapsed();
    QueryMeasurement {
        avg_micros: elapsed.as_micros() as f64 / patterns.len() as f64,
        total_occurrences: total,
        num_patterns: patterns.len(),
    }
}

/// Samples query patterns the way the paper does (uniformly from the
/// z-estimation), capped at `max_patterns` to keep sweep runtimes sane.
pub fn sample_patterns(
    estimation: &ZEstimation,
    m: usize,
    max_patterns: usize,
    seed: u64,
) -> Vec<Vec<u8>> {
    let paper_count =
        PatternSampler::paper_pattern_count(estimation.len(), estimation.z()).min(max_patterns);
    PatternSampler::new(estimation, seed).sample_many(m, paper_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ius_datasets::pangenome::PangenomeConfig;

    #[test]
    fn all_kinds_build_and_answer_queries() {
        let x = PangenomeConfig {
            n: 800,
            delta: 0.06,
            seed: 4,
            ..Default::default()
        }
        .generate();
        let z = 8.0;
        let ell = 16usize;
        let params = IndexParams::new(z, ell, x.sigma()).unwrap();
        let (est, est_cost) = measure_estimation(&x, z).unwrap();
        let patterns = sample_patterns(&est, ell, 20, 1);
        assert!(!patterns.is_empty());
        let mut reference: Option<usize> = None;
        for kind in IndexKind::all() {
            let estimation = if kind.needs_estimation() {
                Some(&est)
            } else {
                None
            };
            let b = measure_build(kind, &x, estimation, est_cost, params).unwrap();
            // The space-efficient construction produces an MWST; all other
            // kinds report their own name.
            if matches!(kind, IndexKind::MwstSe) {
                assert_eq!(b.stats.name, "MWST");
            } else {
                assert_eq!(b.kind.name(), b.stats.name.as_str());
            }
            assert!(b.size_bytes > 0);
            let q = measure_queries(b.index.as_ref(), &patterns, &x);
            assert_eq!(q.num_patterns, patterns.len());
            match reference {
                None => reference = Some(q.total_occurrences),
                Some(expected) => assert_eq!(
                    q.total_occurrences,
                    expected,
                    "{} reports a different occurrence total",
                    kind.name()
                ),
            }
        }
    }

    #[test]
    fn kind_metadata() {
        assert_eq!(IndexKind::all().len(), 7);
        assert!(IndexKind::Wst.is_baseline());
        assert!(!IndexKind::Mwsa.is_baseline());
        assert!(IndexKind::Wsa.needs_estimation());
        assert!(!IndexKind::MwstSe.needs_estimation());
        assert_eq!(IndexKind::MwsaG.name(), "MWSA-G");
    }
}
