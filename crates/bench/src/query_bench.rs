//! The query-path before/after benchmark behind `reproduce --bench-query`
//! and `BENCH_query.json`.
//!
//! Every "old" number is a real measurement of retained runnable code (not a
//! simulation): [`UncertainIndex::query_reference`] is the pre-overhaul
//! single-shot query of each family — per-call scheme construction, fresh
//! reversed-prefix/candidate/grid-report vectors at every layer, and the
//! letter-at-a-time `equal_range_reference` binary search. The "new" side is
//! the sink-based `query_into` engine with one reused [`QueryScratch`] and a
//! reused output vector; "batched" runs the same engine through the
//! [`QueryBatch`] executor (per-worker scratch, deterministic output order).
//! Outputs of all three paths are asserted identical, per pattern, before
//! any timing is trusted, and both sides take the minimum over the same
//! repetition count.
//!
//! On a single-CPU host the batched numbers measure the executor's overhead
//! plus scratch reuse, not parallelism — the worker count is recorded in the
//! JSON so the numbers can be read honestly.

use ius_datasets::corpora::bench_corpora;
use ius_datasets::patterns::PatternSampler;
use ius_index::{
    query_batch, IndexParams, IndexVariant, MinimizerIndex, QueryBatch, QueryScratch,
    UncertainIndex, Wsa, Wst,
};
use ius_weighted::{WeightedString, ZEstimation};
use std::time::Instant;

/// Above this `n·⌊z⌋` product the WST baseline is skipped (its trie over the
/// full property text dominates build time without adding query coverage).
const WST_NZ_LIMIT: usize = 1_500_000;

/// Parameters of one query-benchmark run.
#[derive(Debug, Clone)]
pub struct QueryBenchConfig {
    /// Length of the generated weighted strings.
    pub n: usize,
    /// Repetitions per timed side (the minimum is reported).
    pub reps: usize,
    /// Query patterns sampled per dataset (half at ℓ, half at 2ℓ).
    pub patterns: usize,
    /// Worker threads of the batched executor.
    pub threads: usize,
}

impl Default for QueryBenchConfig {
    fn default() -> Self {
        Self {
            n: 100_000,
            reps: 3,
            patterns: 400,
            threads: std::thread::available_parallelism().map_or(1, |t| t.get()),
        }
    }
}

/// Old/new/batched timings of one index family on one dataset.
#[derive(Debug, Clone)]
pub struct FamilyQueryBench {
    /// Family label (`WSA`, `MWSA-G`, …).
    pub family: String,
    /// Number of patterns answered per repetition.
    pub patterns: usize,
    /// Total occurrences reported over the pattern set (identical across the
    /// three paths by assertion).
    pub occurrences: usize,
    /// Microseconds per query of the retained pre-overhaul `query_reference`.
    pub old_us: f64,
    /// Microseconds per query of `query_into` with a reused scratch.
    pub new_us: f64,
    /// Microseconds per query of the batched executor (whole set / count).
    pub batched_us: f64,
}

impl FamilyQueryBench {
    /// `old / new`: the single-thread gain from the engine overhaul.
    pub fn single_thread_speedup(&self) -> f64 {
        self.old_us / self.new_us
    }

    /// `old / batched`: the serving-throughput gain of the batched engine
    /// over the pre-overhaul single-shot loop.
    pub fn batched_speedup(&self) -> f64 {
        self.old_us / self.batched_us
    }
}

/// All family timings for one dataset configuration.
#[derive(Debug, Clone)]
pub struct QueryDatasetBench {
    /// Dataset label (`uniform`, `pangenome`, …).
    pub name: String,
    /// Human-readable generator parameters.
    pub params: String,
    /// Weight threshold z.
    pub z: f64,
    /// Minimum pattern length ℓ the indexes were built for.
    pub ell: usize,
    /// Per-family results.
    pub families: Vec<FamilyQueryBench>,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn time_min<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let v = f();
        best = best.min(ms(t));
        out = Some(v);
    }
    (out.expect("at least one rep"), best)
}

/// Benchmarks one family over one pattern set, asserting the three query
/// paths produce identical outputs before timing them.
fn bench_family(
    label: &str,
    index: &(dyn UncertainIndex + Sync),
    x: &WeightedString,
    patterns: &[Vec<u8>],
    oracle: Option<&[Vec<usize>]>,
    config: &QueryBenchConfig,
) -> (FamilyQueryBench, Vec<Vec<usize>>) {
    // Correctness first: old, new and batched answers must agree pattern by
    // pattern (and with the previous family's answers when one is given).
    let old_outputs: Vec<Vec<usize>> = patterns
        .iter()
        .map(|p| index.query_reference(p, x).expect("old query"))
        .collect();
    let mut scratch = QueryScratch::new();
    let new_outputs: Vec<Vec<usize>> = patterns
        .iter()
        .map(|p| {
            let mut out = Vec::new();
            index
                .query_into(p, x, &mut scratch, &mut out)
                .expect("new query");
            out
        })
        .collect();
    let executor = QueryBatch::with_threads(config.threads);
    let batched_outputs: Vec<Vec<usize>> = query_batch(index, patterns, x, &executor)
        .into_iter()
        .map(|entry| entry.expect("batched query").0)
        .collect();
    assert_eq!(old_outputs, new_outputs, "{label}: old vs new outputs");
    assert_eq!(
        old_outputs, batched_outputs,
        "{label}: old vs batched outputs"
    );
    if let Some(oracle) = oracle {
        assert_eq!(
            old_outputs, oracle,
            "{label}: outputs differ from the previous family"
        );
    }
    let occurrences: usize = old_outputs.iter().map(Vec::len).sum();

    // Timing. Each side accumulates the occurrence total so the work cannot
    // be optimised away; the totals must match the asserted outputs.
    let (old_total, old_ms) = time_min(config.reps, || {
        let mut total = 0usize;
        for p in patterns {
            total += index.query_reference(p, x).expect("old query").len();
        }
        total
    });
    let mut out: Vec<usize> = Vec::new();
    let (new_total, new_ms) = time_min(config.reps, || {
        let mut total = 0usize;
        for p in patterns {
            out.clear();
            index
                .query_into(p, x, &mut scratch, &mut out)
                .expect("new query");
            total += out.len();
        }
        total
    });
    let (batched_total, batched_ms) = time_min(config.reps, || {
        query_batch(index, patterns, x, &executor)
            .into_iter()
            .map(|entry| entry.expect("batched query").0.len())
            .sum::<usize>()
    });
    assert_eq!(old_total, occurrences);
    assert_eq!(new_total, occurrences);
    assert_eq!(batched_total, occurrences);

    let per_query = |total_ms: f64| total_ms * 1e3 / patterns.len() as f64;
    let result = FamilyQueryBench {
        family: label.to_string(),
        patterns: patterns.len(),
        occurrences,
        old_us: per_query(old_ms),
        new_us: per_query(new_ms),
        batched_us: per_query(batched_ms),
    };
    eprintln!(
        "  {label:<8} old {:>8.2} us  new {:>8.2} us  batched {:>8.2} us  ({}x / {}x)",
        result.old_us,
        result.new_us,
        result.batched_us,
        (result.single_thread_speedup() * 100.0).round() / 100.0,
        (result.batched_speedup() * 100.0).round() / 100.0,
    );
    (result, old_outputs)
}

/// Benchmarks one `(x, z, ℓ)` configuration across the index families.
fn bench_dataset(
    name: &str,
    params_label: String,
    x: &WeightedString,
    z: f64,
    ell: usize,
    config: &QueryBenchConfig,
) -> QueryDatasetBench {
    eprintln!(
        "[bench-query] {name} (n = {}, z = {z}, ell = {ell}, {} patterns, {} thread(s))",
        x.len(),
        config.patterns,
        config.threads
    );
    let est = ZEstimation::build(x, z).expect("estimation");
    let mut sampler = PatternSampler::new(&est, 0x9E41);
    let mut patterns = sampler.sample_many(ell, config.patterns / 2);
    patterns.extend(sampler.sample_many(2 * ell, config.patterns - config.patterns / 2));
    assert!(
        !patterns.is_empty(),
        "{name}: no solid patterns of length {ell} — pick a smaller ell"
    );

    let index_params = IndexParams::new(z, ell, x.sigma()).expect("params");
    let mut families: Vec<(String, Box<dyn UncertainIndex + Sync>)> = Vec::new();
    families.push((
        "WSA".into(),
        Box::new(Wsa::build_from_estimation(&est).expect("WSA")),
    ));
    let nz = x.len() * z.floor() as usize;
    if nz <= WST_NZ_LIMIT {
        families.push((
            "WST".into(),
            Box::new(Wst::build_from_estimation(&est).expect("WST")),
        ));
    } else {
        eprintln!("  [skip] WST (n·z = {nz} exceeds the build budget)");
    }
    for variant in [
        IndexVariant::Tree,
        IndexVariant::Array,
        IndexVariant::ArrayGrid,
    ] {
        families.push((
            variant.name().into(),
            Box::new(
                MinimizerIndex::build_from_estimation(x, &est, index_params, variant)
                    .expect("minimizer index"),
            ),
        ));
    }

    let mut results = Vec::new();
    let mut oracle: Option<Vec<Vec<usize>>> = None;
    for (label, index) in &families {
        let (result, outputs) = bench_family(
            label,
            index.as_ref(),
            x,
            &patterns,
            oracle.as_deref(),
            config,
        );
        oracle.get_or_insert(outputs);
        results.push(result);
    }
    QueryDatasetBench {
        name: name.to_string(),
        params: params_label,
        z,
        ell,
        families: results,
    }
}

/// Runs the full before/after query benchmark on the four canonical
/// benchmark corpora (`ius_datasets::corpora` — the shared definition also
/// behind the construction/space/serve benches and the `serve` presets).
pub fn run_query_bench(config: &QueryBenchConfig) -> Vec<QueryDatasetBench> {
    bench_corpora(config.n)
        .into_iter()
        .map(|corpus| {
            bench_dataset(
                corpus.name,
                corpus.params,
                &corpus.x,
                corpus.z,
                corpus.ell,
                config,
            )
        })
        .collect()
}

/// Renders the benchmark results as the `BENCH_query.json` document.
pub fn render_query_json(config: &QueryBenchConfig, results: &[QueryDatasetBench]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"n\": {}, \"patterns_per_dataset\": {}, \"reps\": {}, \"batch_threads\": {}, {},\n",
        config.n,
        config.patterns,
        config.reps,
        config.threads,
        crate::report::json_host_fields(&[config.threads])
    ));
    out.push_str(
        "  \"note\": \"old = retained pre-overhaul query path (query_reference: per-call \
         minimizer-scheme setup, fresh reversed-prefix/candidate/grid-report vectors, \
         letter-at-a-time equal_range_reference binary search); new = sink-based query_into \
         with one reused QueryScratch and reused output vector; batched = the same engine \
         through the QueryBatch executor with batch_threads workers (per-worker scratch, \
         deterministic output order — on a 1-CPU host this measures executor overhead plus \
         reuse, not parallelism). Both sides take the minimum over the same repetition \
         count, and the outputs of all three paths are asserted identical per pattern \
         before timing.\",\n",
    );
    out.push_str("  \"datasets\": [\n");
    for (i, d) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", d.name));
        out.push_str(&format!("      \"params\": \"{}\",\n", d.params));
        out.push_str(&format!("      \"z\": {}, \"ell\": {},\n", d.z, d.ell));
        out.push_str("      \"families\": [\n");
        for (j, f) in d.families.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"family\": \"{}\", \"patterns\": {}, \"occurrences\": {}, \
                 \"old_us_per_query\": {:.3}, \"new_us_per_query\": {:.3}, \
                 \"batched_us_per_query\": {:.3}, \"single_thread_speedup\": {:.2}, \
                 \"batched_speedup\": {:.2}, \"outputs_identical\": true }}{}\n",
                f.family,
                f.patterns,
                f.occurrences,
                f.old_us,
                f.new_us,
                f.batched_us,
                f.single_thread_speedup(),
                f.batched_speedup(),
                if j + 1 == d.families.len() { "" } else { "," }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_asserts_identical_outputs_and_renders_json() {
        // A tiny end-to-end run: the assertions inside bench_family are the
        // test; the JSON must contain every family row.
        let config = QueryBenchConfig {
            n: 2_000,
            reps: 1,
            patterns: 12,
            threads: 2,
        };
        let results = run_query_bench(&config);
        assert_eq!(results.len(), 4);
        let json = render_query_json(&config, &results);
        for d in &results {
            assert!(!d.families.is_empty());
            for f in &d.families {
                assert!(json.contains(&format!("\"family\": \"{}\"", f.family)));
                assert!(f.old_us > 0.0 && f.new_us > 0.0 && f.batched_us > 0.0);
            }
        }
    }
}
