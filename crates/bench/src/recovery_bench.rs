//! The durability benchmark behind `reproduce --bench-recovery` and
//! `BENCH_recovery.json`.
//!
//! Two questions, measured on the `uniform` benchmark corpus:
//!
//! * **what does the WAL cost at the ack path?** — the same append
//!   workload is driven into a `LiveIndex` with durability off, then with
//!   the log armed under each fsync policy (`never`, `interval:5`,
//!   `record`), recording per-append latency percentiles and throughput.
//!   The memtable threshold is set high enough that no segment build
//!   lands inside the timed window, so the numbers isolate the logging
//!   (and fsync) cost itself;
//! * **how fast does recovery replay?** — write-ahead logs of increasing
//!   length are left behind by a simulated crash (the index is dropped
//!   without a checkpoint) and `LiveIndex::open` is timed replaying them,
//!   reporting records/s and MB/s versus log size. Every replay asserts
//!   the recovered record count before its timing is trusted.

use ius_datasets::corpora::bench_corpus;
use ius_index::{IndexFamily, IndexParams, IndexSpec, IndexVariant};
use ius_live::{FsyncPolicy, LiveConfig, LiveIndex};
use ius_weighted::WeightedString;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Parameters of one recovery-benchmark run.
#[derive(Debug, Clone)]
pub struct RecoveryBenchConfig {
    /// Rows in the seeded corpus the appends land on.
    pub n: usize,
    /// Appends per policy run (each one WAL record when armed).
    pub ops: usize,
    /// Rows per append batch.
    pub batch: usize,
    /// Runs per measurement; the run with the lowest median is kept.
    pub reps: usize,
}

impl Default for RecoveryBenchConfig {
    fn default() -> Self {
        Self {
            n: 20_000,
            ops: 400,
            batch: 50,
            reps: 3,
        }
    }
}

/// Append-path cost under one fsync policy.
#[derive(Debug, Clone)]
pub struct PolicyBench {
    /// Policy label (`off` = durability not armed).
    pub policy: String,
    /// Median per-append latency, microseconds.
    pub append_p50_us: f64,
    /// 95th-percentile per-append latency, microseconds.
    pub append_p95_us: f64,
    /// Ingest throughput over the whole run, positions per second.
    pub throughput_pos_s: f64,
    /// Bytes the run appended to the WAL (0 with durability off).
    pub wal_bytes: u64,
}

/// One replay measurement: reopening a directory whose WAL holds
/// `records` un-checkpointed mutations.
#[derive(Debug, Clone)]
pub struct ReplayBench {
    /// Mutation records replayed (asserted against the recovery counter).
    pub records: u64,
    /// On-disk WAL size, bytes.
    pub wal_bytes: u64,
    /// Best-of-reps wall time of `LiveIndex::open`, seconds.
    pub open_s: f64,
    /// Replay rate, records per second.
    pub records_per_s: f64,
    /// Replay rate, megabytes of log per second.
    pub mb_per_s: f64,
}

/// All measurements of one benchmark run.
#[derive(Debug, Clone)]
pub struct RecoveryBenchResult {
    /// Append-path cost per policy, in measurement order.
    pub policies: Vec<PolicyBench>,
    /// Replay throughput versus log size, ascending.
    pub replays: Vec<ReplayBench>,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// A scratch directory that is removed on drop (also on panic, so a
/// failing assertion does not leak seeded state into the temp dir).
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(label: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("ius-bench-recovery-{}-{label}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The live configuration every run uses: a threshold too high to flush
/// during the timed window, no background work.
fn live_config(config: &RecoveryBenchConfig) -> LiveConfig {
    LiveConfig {
        flush_threshold: config.n + config.ops * config.batch + 1,
        auto_compact: false,
        threads: 1,
        ..Default::default()
    }
}

/// Seeds a live index over the benchmark corpus into `dir`-less memory;
/// durability (and with it the directory) is armed by the caller.
fn seed_live(x: &WeightedString, ell: usize, z: f64, config: &RecoveryBenchConfig) -> LiveIndex {
    let params = IndexParams::new(z, ell, x.sigma()).expect("params");
    let spec = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::Array), params);
    LiveIndex::from_corpus(x, spec, 2 * ell, live_config(config)).expect("seed live index")
}

/// Runs `ops` appends, returning sorted per-append latencies (µs) and the
/// wall time of the whole loop.
fn timed_appends(live: &LiveIndex, batches: &[WeightedString]) -> (Vec<f64>, f64) {
    let mut latencies_us = Vec::with_capacity(batches.len());
    let start = Instant::now();
    for batch in batches {
        let append_start = Instant::now();
        live.append(batch).expect("timed append");
        latencies_us.push(append_start.elapsed().as_secs_f64() * 1e6);
    }
    let total_s = start.elapsed().as_secs_f64();
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (latencies_us, total_s)
}

fn bench_policy(
    label: &str,
    policy: Option<FsyncPolicy>,
    x: &WeightedString,
    z: f64,
    ell: usize,
    batches: &[WeightedString],
    config: &RecoveryBenchConfig,
) -> PolicyBench {
    let mut best: Option<(Vec<f64>, f64, u64)> = None;
    for rep in 0..config.reps.max(1) {
        let scratch = ScratchDir::new(&format!("{label}-{rep}"));
        let live = seed_live(x, ell, z, config);
        if let Some(policy) = policy {
            live.enable_durability(scratch.path(), policy)
                .expect("arm durability");
        }
        let (latencies, total_s) = timed_appends(&live, batches);
        let stats = live.live_stats();
        if policy.is_some() {
            assert_eq!(
                stats.wal_records,
                batches.len() as u64,
                "{label}: acked = logged"
            );
        }
        let better = match &best {
            None => true,
            Some((best_lat, _, _)) => percentile(&latencies, 0.50) < percentile(best_lat, 0.50),
        };
        if better {
            best = Some((latencies, total_s, stats.wal_bytes));
        }
    }
    let (latencies, total_s, wal_bytes) = best.expect("at least one rep");
    let positions: usize = batches.iter().map(WeightedString::len).sum();
    let result = PolicyBench {
        policy: label.to_string(),
        append_p50_us: percentile(&latencies, 0.50),
        append_p95_us: percentile(&latencies, 0.95),
        throughput_pos_s: positions as f64 / total_s,
        wal_bytes,
    };
    eprintln!(
        "[bench-recovery] fsync {label}: append p50 {:.1} us, p95 {:.1} us, {:.0} pos/s",
        result.append_p50_us, result.append_p95_us, result.throughput_pos_s
    );
    result
}

fn bench_replay(
    records: usize,
    x: &WeightedString,
    z: f64,
    ell: usize,
    batches: &[WeightedString],
    config: &RecoveryBenchConfig,
) -> ReplayBench {
    // Leave a WAL of `records` mutations behind a simulated crash: the
    // index is dropped without any checkpoint, so reopen must replay
    // everything.
    let scratch = ScratchDir::new(&format!("replay-{records}"));
    let live = seed_live(x, ell, z, config);
    live.enable_durability(scratch.path(), FsyncPolicy::Never)
        .expect("arm durability");
    for batch in &batches[..records] {
        live.append(batch).expect("append");
    }
    let expected_len = live.len();
    drop(live);
    let wal_bytes = std::fs::metadata(scratch.path().join("live.wal"))
        .expect("wal file")
        .len();
    let mut open_s = f64::INFINITY;
    for _ in 0..config.reps.max(1) {
        let start = Instant::now();
        let reopened = LiveIndex::open(scratch.path(), live_config(config)).expect("replay");
        let elapsed = start.elapsed().as_secs_f64();
        let stats = reopened.live_stats();
        assert_eq!(stats.recovered_records, records as u64, "full replay");
        assert_eq!(reopened.len(), expected_len, "replayed corpus length");
        open_s = open_s.min(elapsed);
    }
    let result = ReplayBench {
        records: records as u64,
        wal_bytes,
        open_s,
        records_per_s: records as f64 / open_s,
        mb_per_s: wal_bytes as f64 / (1 << 20) as f64 / open_s,
    };
    eprintln!(
        "[bench-recovery] replay {} records ({} KiB): {:.1} ms, {:.0} rec/s",
        result.records,
        result.wal_bytes / 1024,
        result.open_s * 1e3,
        result.records_per_s
    );
    result
}

/// Runs the recovery benchmark.
pub fn run_recovery_bench(config: &RecoveryBenchConfig) -> RecoveryBenchResult {
    let corpus = bench_corpus("uniform", config.n, None).expect("uniform preset");
    let (x, z, ell) = (corpus.x, corpus.z, corpus.ell);
    let source = bench_corpus("uniform", config.ops * config.batch, Some(97))
        .expect("append source")
        .x;
    let batches: Vec<WeightedString> = (0..config.ops)
        .map(|i| {
            source
                .substring(i * config.batch, (i + 1) * config.batch)
                .expect("append batch")
        })
        .collect();
    eprintln!(
        "[bench-recovery] uniform (n = {}, {} appends x {} rows, reps = {})",
        x.len(),
        config.ops,
        config.batch,
        config.reps
    );

    let policies = vec![
        bench_policy("off", None, &x, z, ell, &batches, config),
        bench_policy(
            "never",
            Some(FsyncPolicy::Never),
            &x,
            z,
            ell,
            &batches,
            config,
        ),
        bench_policy(
            "interval:5",
            Some(FsyncPolicy::parse("interval:5").expect("policy")),
            &x,
            z,
            ell,
            &batches,
            config,
        ),
        bench_policy(
            "record",
            Some(FsyncPolicy::Record),
            &x,
            z,
            ell,
            &batches,
            config,
        ),
    ];

    let replays = [config.ops / 4, config.ops / 2, config.ops]
        .into_iter()
        .filter(|&records| records > 0)
        .map(|records| bench_replay(records, &x, z, ell, &batches, config))
        .collect();

    RecoveryBenchResult { policies, replays }
}

/// Renders the benchmark results as the `BENCH_recovery.json` document.
pub fn render_recovery_json(config: &RecoveryBenchConfig, result: &RecoveryBenchResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"n\": {}, \"ops\": {}, \"batch\": {}, \"reps\": {}, \"family\": \"MWSA segments\", \
         {},\n",
        config.n,
        config.ops,
        config.batch,
        config.reps,
        crate::report::json_host_fields(&[1])
    ));
    out.push_str(
        "  \"note\": \"Append-path cost of the live write-ahead log on the uniform corpus: \
         the same ops x batch append workload runs with durability off, then with the WAL \
         armed under each fsync policy; the flush threshold is set above the final corpus \
         length so no segment build lands in the timed window and the deltas isolate the \
         logging + fsync cost. The kept run is the best-of-reps by median. replay times \
         LiveIndex::open over a directory whose log holds records un-checkpointed \
         mutations (a crash simulated by dropping the index without a checkpoint); every \
         replay asserts the recovered record count and corpus length before its timing is \
         trusted.\",\n",
    );
    out.push_str("  \"append_per_fsync_policy\": [\n");
    for (i, p) in result.policies.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"policy\": \"{}\", \"append_p50_us\": {:.1}, \"append_p95_us\": {:.1}, \
             \"throughput_pos_per_s\": {:.0}, \"wal_bytes\": {} }}{}\n",
            p.policy,
            p.append_p50_us,
            p.append_p95_us,
            p.throughput_pos_s,
            p.wal_bytes,
            if i + 1 == result.policies.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"replay\": [\n");
    for (i, r) in result.replays.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"records\": {}, \"wal_bytes\": {}, \"open_s\": {:.4}, \
             \"records_per_s\": {:.0}, \"mb_per_s\": {:.2} }}{}\n",
            r.records,
            r.wal_bytes,
            r.open_s,
            r.records_per_s,
            r.mb_per_s,
            if i + 1 == result.replays.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_measures_all_policies_and_renders_json() {
        let config = RecoveryBenchConfig {
            n: 1_500,
            ops: 24,
            batch: 10,
            reps: 1,
        };
        let result = run_recovery_bench(&config);
        assert_eq!(result.policies.len(), 4);
        assert_eq!(
            result.policies[0].wal_bytes, 0,
            "durability off writes no WAL"
        );
        for p in &result.policies[1..] {
            assert!(p.wal_bytes > 0, "{}: armed runs write the WAL", p.policy);
            assert!(p.append_p50_us > 0.0);
        }
        assert_eq!(result.replays.len(), 3);
        assert!(result
            .replays
            .windows(2)
            .all(|w| w[0].records < w[1].records));
        for r in &result.replays {
            assert!(r.records_per_s > 0.0);
        }
        let json = render_recovery_json(&config, &result);
        for key in [
            "\"append_per_fsync_policy\"",
            "\"policy\": \"record\"",
            "\"replay\"",
            "\"records_per_s\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }
}
