//! Result rows and their text/CSV rendering, plus the host/thread metadata
//! shared by every `BENCH_*.json` document.

use std::fmt::Write as _;

/// Logical CPUs of the benchmarking host (1 when undetectable). Recorded in
/// every `BENCH_*.json` so multi-core sweeps can be read in context.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1)
}

/// The default thread sweep of the multi-core benchmarks: {1, 2, all CPUs},
/// deduplicated and sorted (so a single-CPU host sweeps just `[1]`).
pub fn default_thread_sweep() -> Vec<usize> {
    let mut sweep = vec![1, 2, host_cpus()];
    sweep.sort_unstable();
    sweep.dedup();
    sweep
}

/// Renders a `usize` list as a JSON array (`[1, 2, 8]`).
pub fn json_usize_list(values: &[usize]) -> String {
    let mut out = String::with_capacity(values.len() * 4 + 2);
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

/// The VM page size in bytes, read from the ELF auxiliary vector
/// (`AT_PAGESZ` in `/proc/self/auxv`); 4096 when undetectable (non-Linux
/// hosts). Recorded alongside `host_cpus` so file-open numbers (one read
/// into an aligned arena) can be related to the host's paging granularity.
pub fn page_size() -> usize {
    std::fs::read("/proc/self/auxv")
        .ok()
        .and_then(|raw| {
            raw.chunks_exact(16).find_map(|pair| {
                let key = u64::from_ne_bytes(pair[..8].try_into().ok()?);
                let value = u64::from_ne_bytes(pair[8..].try_into().ok()?);
                (key == 6).then_some(value as usize)
            })
        })
        .filter(|&p| p > 0)
        .unwrap_or(4096)
}

/// Renders the `"host_cpus": …, "threads": […], "page_size": …` JSON
/// fragment every benchmark document embeds near its top (no surrounding
/// braces, no trailing comma).
pub fn json_host_fields(threads: &[usize]) -> String {
    format!(
        "\"host_cpus\": {}, \"threads\": {}, \"page_size\": {}",
        host_cpus(),
        json_usize_list(threads),
        page_size()
    )
}

/// One measured data point of one experiment — a (series, x, metric) triple,
/// comparable to a single marker in one of the paper's plots.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Experiment key (`fig6`, `table2`, …).
    pub experiment: String,
    /// Dataset name (`SARS*`, `EFM*`, …).
    pub dataset: String,
    /// Series / index name (`WST`, `MWSA-G`, …) or statistic name for tables.
    pub series: String,
    /// Name of the swept parameter (`ell`, `z`, `sigma`, `n`, or `-`).
    pub param: String,
    /// Value of the swept parameter.
    pub param_value: f64,
    /// Metric name (`index_size_mb`, `construction_space_mb`,
    /// `avg_query_us`, `construction_time_s`, …).
    pub metric: String,
    /// Measured value.
    pub value: f64,
}

impl Row {
    /// CSV header matching [`Row::to_csv`].
    pub fn csv_header() -> &'static str {
        "experiment,dataset,series,param,param_value,metric,value"
    }

    /// Renders the row as one CSV line.
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{}",
            self.experiment,
            self.dataset,
            self.series,
            self.param,
            self.param_value,
            self.metric,
            self.value
        )
    }
}

/// Renders rows as an aligned text table grouped by experiment and dataset.
pub fn render_table(rows: &[Row]) -> String {
    let mut out = String::new();
    let mut current_group = String::new();
    for row in rows {
        let group = format!("[{}] {} — {}", row.experiment, row.dataset, row.metric);
        if group != current_group {
            if !current_group.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(out, "{group}");
            current_group = group;
        }
        let _ = writeln!(
            out,
            "    {:<10} {}={:<10} {:>14.4}",
            row.series, row.param, row.param_value, row.value
        );
    }
    out
}

/// Renders rows as a CSV document.
pub fn render_csv(rows: &[Row]) -> String {
    let mut out = String::with_capacity(rows.len() * 48 + 64);
    out.push_str(Row::csv_header());
    out.push('\n');
    for row in rows {
        out.push_str(&row.to_csv());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> Row {
        Row {
            experiment: "fig6".into(),
            dataset: "EFM*".into(),
            series: "MWSA".into(),
            param: "ell".into(),
            param_value: 256.0,
            metric: "index_size_mb".into(),
            value: 12.5,
        }
    }

    #[test]
    fn host_fields_render_as_json_fragment() {
        assert_eq!(json_usize_list(&[]), "[]");
        assert_eq!(json_usize_list(&[1, 2, 8]), "[1, 2, 8]");
        assert!(host_cpus() >= 1);
        let sweep = default_thread_sweep();
        assert_eq!(sweep.first(), Some(&1));
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(sweep.last(), Some(&host_cpus().max(2)));
        let fragment = json_host_fields(&sweep);
        assert!(fragment.starts_with(&format!("\"host_cpus\": {}", host_cpus())));
        assert!(fragment.contains("\"threads\": [1"));
    }

    #[test]
    fn csv_rendering() {
        let csv = render_csv(&[sample_row()]);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), Row::csv_header());
        assert_eq!(
            lines.next().unwrap(),
            "fig6,EFM*,MWSA,ell,256,index_size_mb,12.5"
        );
    }

    #[test]
    fn table_rendering_groups_by_experiment() {
        let mut row2 = sample_row();
        row2.series = "WSA".into();
        row2.value = 200.0;
        let text = render_table(&[sample_row(), row2]);
        assert!(text.contains("[fig6] EFM* — index_size_mb"));
        assert!(text.contains("MWSA"));
        assert!(text.contains("WSA"));
        // Only one group header.
        assert_eq!(text.matches("[fig6]").count(), 1);
    }
}
