//! The serving benchmark behind `reproduce --bench-serve` and
//! `BENCH_serve.json`.
//!
//! For each of the four benchmark corpora an MWSA-G index is built, saved,
//! and served **from the file** over loopback TCP — the full production
//! path: persistence load, admission queue, worker pool, wire encode/decode
//! on both sides. Concurrent client threads then stream the pattern set in
//! collect mode, and every wire answer is asserted byte-identical to a
//! direct in-process `query_into` on the same index before any timing is
//! trusted (count and first-`k` modes are asserted once outside the timed
//! loop). Throughput takes the best of `reps` sweeps; latency percentiles
//! pool the per-request round-trip times over all sweeps.
//!
//! A final hot-reload stage re-runs the sweep while a separate connection
//! keeps swapping the index file in, asserting that every query issued
//! during the swaps completes with the identical answer — the serving-side
//! guarantee behind zero-downtime index updates.
//!
//! On a single-CPU host the worker sweep measures queueing and protocol
//! overhead rather than parallel speedup; the worker and client counts are
//! recorded in the JSON so the numbers can be read honestly.

use ius_datasets::corpora::{bench_corpora, bench_corpus};
use ius_datasets::patterns::PatternSampler;
use ius_index::{IndexFamily, IndexParams, IndexSpec, IndexVariant, QueryScratch, UncertainIndex};
use ius_obs::clock;
use ius_server::{Client, ServedIndex, Server, ServerConfig};
use ius_weighted::{WeightedString, ZEstimation};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Parameters of one serving-benchmark run.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Length of the generated weighted strings.
    pub n: usize,
    /// Timed sweeps per worker count (throughput takes the best).
    pub reps: usize,
    /// Query patterns sampled per dataset (half at ℓ, half at 2ℓ).
    pub patterns: usize,
    /// Worker-pool sizes to sweep.
    pub worker_counts: Vec<usize>,
    /// Concurrent client threads (one connection each).
    pub clients: usize,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        Self {
            n: 100_000,
            reps: 3,
            patterns: 200,
            worker_counts: vec![1, 2, 4],
            clients: 4,
        }
    }
}

/// Throughput/latency of one worker-pool size on one dataset.
#[derive(Debug, Clone)]
pub struct WorkerBench {
    /// Worker threads serving the queries.
    pub workers: usize,
    /// Queries per timed sweep (`clients` threads × their stripes).
    pub queries: usize,
    /// Best-sweep throughput, queries per second.
    pub throughput_qps: f64,
    /// Median request round trip, microseconds (pooled over all sweeps).
    pub p50_us: f64,
    /// 99th-percentile request round trip, microseconds.
    pub p99_us: f64,
}

/// The hot-reload stage of one dataset.
#[derive(Debug, Clone)]
pub struct ReloadBench {
    /// Index swaps performed while the queries ran.
    pub reloads: u64,
    /// Queries answered during the swap storm (all asserted identical).
    pub queries: usize,
    /// Final index generation reported by the server.
    pub final_generation: u64,
}

/// All serving measurements of one dataset.
#[derive(Debug, Clone)]
pub struct ServeDatasetBench {
    /// Dataset label (`uniform`, `pangenome`, …).
    pub name: String,
    /// Human-readable generator parameters.
    pub params: String,
    /// Weight threshold z.
    pub z: f64,
    /// Minimum pattern length ℓ.
    pub ell: usize,
    /// Occurrences over the pattern set (identical on every path).
    pub occurrences: usize,
    /// Per-worker-count measurements.
    pub workers: Vec<WorkerBench>,
    /// The hot-reload stage.
    pub reload: ReloadBench,
}

/// Throughput cost of the observability layer on the serving path: the
/// same served sweep as the worker benchmark, run with the monotonic clock
/// live versus stubbed out (`ius_obs::clock` disabled — exactly the
/// recording switch every instrumentation site gates on: sampled stage
/// stamps in `run_query`, queue-wait/service histograms, slow-query log).
///
/// Both throughputs are estimated as `clients / median round trip` (the
/// serving loop is closed — one request in flight per client — so that
/// identity holds). The overhead percentage comes from pairing: each rep
/// runs the two sides back to back, and the reported figure is the
/// median across reps of the within-pair median-RTT ratio, which is
/// robust to the host-contention bursts that shift whole sweeps. The two
/// `*_qps` fields are medians over each side's sweeps, so they need not
/// reproduce `overhead_pct` exactly.
#[derive(Debug, Clone)]
pub struct InstrumentationOverhead {
    /// Queries per timed sweep (pattern set × [`OVERHEAD_SWEEP_PASSES`]).
    pub queries: usize,
    /// Order-alternated instrumented/stubbed sweep pairs.
    pub reps: usize,
    /// Served throughput with every recording site live, q/s
    /// (clients / median round trip).
    pub instrumented_qps: f64,
    /// Served throughput with the clock stubbed, q/s
    /// (clients / median round trip).
    pub stubbed_qps: f64,
    /// Throughput cost of instrumentation, percent: median across sweep
    /// pairs of the within-pair median round-trip ratio, minus one.
    pub overhead_pct: f64,
}

/// Pattern-set replays per overhead sweep: stretches one timed sweep to
/// ~50 ms so per-sweep fixed costs (thread spawn, TCP connect) and
/// scheduler noise average out inside the sweep instead of swamping a
/// percent-level difference between sweeps.
pub const OVERHEAD_SWEEP_PASSES: usize = 40;

/// Measures [`InstrumentationOverhead`] by serving an MWSA-G index over
/// the `uniform` preset from a file (the production path) and timing the
/// identical wire sweep with recording on and off. Sweeps alternate and
/// the side that goes first flips every rep, so frequency scaling and
/// cache state hit both sides equally; each side pools the round-trip
/// latencies of its `reps` sweeps and reports `clients / median`.
/// Restores the clock to enabled before returning (the flag is
/// process-global).
pub fn measure_instrumentation_overhead(
    n: usize,
    pattern_count: usize,
    reps: usize,
) -> InstrumentationOverhead {
    let corpus = bench_corpus("uniform", n, None).expect("uniform preset");
    let x = &corpus.x;
    let params = IndexParams::new(corpus.z, corpus.ell, x.sigma()).expect("params");
    let spec = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::ArrayGrid), params);
    let index = spec.build(x).expect("build MWSA-G");
    let est = ZEstimation::build(x, corpus.z).expect("estimation");
    let mut sampler = PatternSampler::new(&est, 0x0B5E);
    let mut patterns = sampler.sample_many(corpus.ell, pattern_count / 2);
    patterns.extend(sampler.sample_many(2 * corpus.ell, pattern_count - pattern_count / 2));
    assert!(!patterns.is_empty(), "overhead bench needs patterns");
    let mut scratch = QueryScratch::new();
    let expected: Vec<Vec<usize>> = patterns
        .iter()
        .map(|p| {
            let mut out = Vec::new();
            index
                .query_into(p, x, &mut scratch, &mut out)
                .expect("in-process query");
            out
        })
        .collect();

    let dir = std::env::temp_dir().join(format!("ius-bench-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create overhead scratch dir");
    let path = dir.join("overhead.iusx");
    index
        .save_to(&mut std::fs::File::create(&path).expect("create index file"))
        .expect("save index");
    let served = ServedIndex::load(&path, Some(Arc::new(x.clone()))).expect("load index file");
    let server = Server::bind(
        "127.0.0.1:0",
        served,
        Some(path),
        &ServerConfig {
            workers: 2,
            queue_depth: 64,
            ..Default::default()
        },
    )
    .expect("bind overhead server");
    let addr = server.local_addr();
    let clients = 4;

    clock::warm_up();
    // One warm sweep per mode before timing.
    timed_sweep(addr, clients, &patterns, &expected, 1);
    clock::set_enabled(false);
    timed_sweep(addr, clients, &patterns, &expected, 1);
    // Each timed sweep replays the pattern set OVERHEAD_SWEEP_PASSES
    // times, so a sweep is tens of milliseconds — long enough that thread
    // spawn, connect and scheduler noise stop mattering. The side that
    // goes first alternates every rep: a fixed order hands the second
    // side warmed caches each time and biases the comparison (that bias
    // measured larger than the instrumentation itself).
    // Closed-loop serving: each client has one request in flight, so
    // throughput is clients / round-trip time, and the median round trip
    // of thousands of requests estimates it robustly (sweep wall clocks
    // on a shared virtualized host jitter by double-digit percents).
    // Host-contention *bursts* still shift whole sweeps, so the overhead
    // is judged per pair: each rep runs one instrumented and one stubbed
    // sweep back to back (leading side flipped every rep), the two
    // sweeps of a pair share machine state, and the final figure is the
    // median of the per-pair median-RTT ratios — a burst corrupts one
    // pair's ratio, which the median across pairs then discards.
    let median_rtt_sweep = |enabled: bool| {
        clock::set_enabled(enabled);
        let (mut lat, _wall) =
            timed_sweep(addr, clients, &patterns, &expected, OVERHEAD_SWEEP_PASSES);
        lat.sort_by(f64::total_cmp);
        percentile(&lat, 0.5)
    };
    let mut on_medians: Vec<f64> = Vec::new();
    let mut off_medians: Vec<f64> = Vec::new();
    let mut pair_ratios: Vec<f64> = Vec::new();
    for rep in 0..reps.max(1) {
        let (on, off) = if rep % 2 == 0 {
            let on = median_rtt_sweep(true);
            (on, median_rtt_sweep(false))
        } else {
            let off = median_rtt_sweep(false);
            (median_rtt_sweep(true), off)
        };
        on_medians.push(on);
        off_medians.push(off);
        pair_ratios.push(on / off);
    }
    clock::set_enabled(true);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    on_medians.sort_by(f64::total_cmp);
    off_medians.sort_by(f64::total_cmp);
    pair_ratios.sort_by(f64::total_cmp);
    let sweep_queries = patterns.len() * OVERHEAD_SWEEP_PASSES;
    let instrumented_qps = clients as f64 * 1e6 / percentile(&on_medians, 0.5);
    let stubbed_qps = clients as f64 * 1e6 / percentile(&off_medians, 0.5);
    let result = InstrumentationOverhead {
        queries: sweep_queries,
        reps: reps.max(1),
        instrumented_qps,
        stubbed_qps,
        overhead_pct: (percentile(&pair_ratios, 0.5) - 1.0) * 100.0,
    };
    eprintln!(
        "[bench-serve] instrumentation overhead: {:.0} q/s instrumented vs {:.0} q/s stubbed \
         over {} queries ({:+.2}%)",
        result.instrumented_qps, result.stubbed_qps, result.queries, result.overhead_pct
    );
    result
}

/// One timed sweep: `clients` threads, each a fresh connection, each
/// streaming its stripe of the patterns in collect mode, asserting every
/// answer against the expected outputs. Returns the per-request round-trip
/// latencies (µs) and the sweep's wall time (seconds).
pub(crate) fn timed_sweep(
    addr: SocketAddr,
    clients: usize,
    patterns: &[Vec<u8>],
    expected: &[Vec<usize>],
    passes: usize,
) -> (Vec<f64>, f64) {
    let sweep_start = Instant::now();
    let mut all_latencies = Vec::with_capacity(patterns.len() * passes);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("bench client connect");
                let mut latencies = Vec::new();
                for _ in 0..passes.max(1) {
                    for (i, pattern) in patterns.iter().enumerate().skip(c).step_by(clients) {
                        let t = Instant::now();
                        let outcome = client.query(pattern).expect("bench query");
                        latencies.push(t.elapsed().as_secs_f64() * 1e6);
                        assert_eq!(
                            outcome.positions, expected[i],
                            "served output differs from in-process query_into (pattern {i})"
                        );
                    }
                }
                latencies
            }));
        }
        for handle in handles {
            all_latencies.extend(handle.join().expect("bench client thread"));
        }
    });
    (all_latencies, sweep_start.elapsed().as_secs_f64())
}

pub(crate) fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Benchmarks one corpus end to end. The index file outlives the function
/// only inside `dir`.
#[allow(clippy::too_many_arguments)]
fn bench_dataset(
    name: &str,
    params_label: String,
    x: &WeightedString,
    z: f64,
    ell: usize,
    dir: &Path,
    config: &ServeBenchConfig,
) -> ServeDatasetBench {
    eprintln!(
        "[bench-serve] {name} (n = {}, z = {z}, ell = {ell}, {} patterns, {} client(s))",
        x.len(),
        config.patterns,
        config.clients
    );
    let index_params = IndexParams::new(z, ell, x.sigma()).expect("params");
    let spec = IndexSpec::new(
        IndexFamily::Minimizer(IndexVariant::ArrayGrid),
        index_params,
    );
    let index = spec.build(x).expect("build MWSA-G");

    let est = ZEstimation::build(x, z).expect("estimation");
    let mut sampler = PatternSampler::new(&est, 0x5E4E);
    let mut patterns = sampler.sample_many(ell, config.patterns / 2);
    patterns.extend(sampler.sample_many(2 * ell, config.patterns - config.patterns / 2));
    assert!(
        !patterns.is_empty(),
        "{name}: no solid patterns of length {ell}"
    );

    // In-process ground truth through the same engine entry point the
    // server uses.
    let mut scratch = QueryScratch::new();
    let expected: Vec<Vec<usize>> = patterns
        .iter()
        .map(|p| {
            let mut out = Vec::new();
            index
                .query_into(p, x, &mut scratch, &mut out)
                .expect("in-process query");
            out
        })
        .collect();
    let occurrences: usize = expected.iter().map(Vec::len).sum();

    // Persist; the server loads from the file (the production path).
    let path = dir.join(format!("{name}.iusx"));
    index
        .save_to(&mut std::fs::File::create(&path).expect("create index file"))
        .expect("save index");
    let corpus = Arc::new(x.clone());

    let mut worker_rows = Vec::new();
    for &workers in &config.worker_counts {
        let served = ServedIndex::load(&path, Some(corpus.clone())).expect("load index file");
        let server = Server::bind(
            "127.0.0.1:0",
            served,
            Some(path.clone()),
            &ServerConfig {
                workers,
                queue_depth: 64,
                ..Default::default()
            },
        )
        .expect("bind bench server");
        let addr = server.local_addr();

        // Correctness of the non-collect modes, once, before timing.
        {
            let mut client = Client::connect(addr).expect("connect");
            for (i, pattern) in patterns.iter().enumerate().take(8) {
                let (count, _) = client.query_count(pattern).expect("count mode");
                assert_eq!(count as usize, expected[i].len(), "count mode differs");
                let first = client.query_first_k(pattern, 3).expect("first-k mode");
                assert_eq!(
                    first.positions,
                    expected[i][..expected[i].len().min(3)].to_vec(),
                    "first-k mode differs"
                );
            }
        }

        let mut best_wall = f64::INFINITY;
        let mut latencies = Vec::new();
        for _ in 0..config.reps.max(1) {
            let (sweep_latencies, wall) =
                timed_sweep(addr, config.clients, &patterns, &expected, 1);
            best_wall = best_wall.min(wall);
            latencies.extend(sweep_latencies);
        }
        server.shutdown();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let row = WorkerBench {
            workers,
            queries: patterns.len(),
            throughput_qps: patterns.len() as f64 / best_wall,
            p50_us: percentile(&latencies, 0.50),
            p99_us: percentile(&latencies, 0.99),
        };
        eprintln!(
            "  workers {workers}: {:>9.0} q/s  p50 {:>8.1} us  p99 {:>8.1} us",
            row.throughput_qps, row.p50_us, row.p99_us
        );
        worker_rows.push(row);
    }

    // Hot-reload stage: one sweep of queries while a second connection
    // keeps swapping the index file back in. Every answer is still
    // asserted identical — in-flight queries complete across swaps.
    let served = ServedIndex::load(&path, Some(corpus.clone())).expect("load index file");
    let server = Server::bind(
        "127.0.0.1:0",
        served,
        Some(path.clone()),
        &ServerConfig {
            workers: config.worker_counts.iter().copied().max().unwrap_or(2),
            queue_depth: 64,
            ..Default::default()
        },
    )
    .expect("bind reload server");
    let addr = server.local_addr();
    let stop = AtomicBool::new(false);
    let reloads = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..config.clients {
            let patterns = &patterns;
            let expected = &expected;
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for (i, pattern) in patterns.iter().enumerate().skip(c).step_by(config.clients) {
                    let outcome = client.query(pattern).expect("query during reload");
                    assert_eq!(
                        outcome.positions, expected[i],
                        "output changed under hot reload (pattern {i})"
                    );
                }
            }));
        }
        let reloader = scope.spawn(|| {
            let mut client = Client::connect(addr).expect("connect reloader");
            loop {
                client.reload(None).expect("hot reload");
                reloads.fetch_add(1, Ordering::Relaxed);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });
        for handle in handles {
            handle.join().expect("reload-stage client");
        }
        stop.store(true, Ordering::Relaxed);
        reloader.join().expect("reloader");
    });
    let final_generation = {
        let mut client = Client::connect(addr).expect("connect");
        client.stats().expect("stats").generation
    };
    server.shutdown();
    let reload = ReloadBench {
        reloads: reloads.load(Ordering::Relaxed),
        queries: patterns.len(),
        final_generation,
    };
    eprintln!(
        "  hot reload: {} swaps across {} in-flight queries, generation {}",
        reload.reloads, reload.queries, reload.final_generation
    );

    ServeDatasetBench {
        name: name.to_string(),
        params: params_label,
        z,
        ell,
        occurrences,
        workers: worker_rows,
        reload,
    }
}

/// Runs the serving benchmark on the four corpora.
pub fn run_serve_bench(config: &ServeBenchConfig) -> Vec<ServeDatasetBench> {
    let dir: PathBuf = std::env::temp_dir().join(format!("ius-bench-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    let results = bench_corpora(config.n)
        .into_iter()
        .map(|corpus| {
            bench_dataset(
                corpus.name,
                corpus.params,
                &corpus.x,
                corpus.z,
                corpus.ell,
                &dir,
                config,
            )
        })
        .collect();
    std::fs::remove_dir_all(&dir).ok();
    results
}

/// Renders the benchmark results as the `BENCH_serve.json` document.
pub fn render_serve_json(
    config: &ServeBenchConfig,
    results: &[ServeDatasetBench],
    overhead: &InstrumentationOverhead,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"n\": {}, \"patterns_per_dataset\": {}, \"reps\": {}, \"client_threads\": {}, \
         \"family\": \"MWSA-G\", {},\n",
        config.n,
        config.patterns,
        config.reps,
        config.clients,
        crate::report::json_host_fields(&config.worker_counts)
    ));
    out.push_str(
        "  \"note\": \"Every row serves a persisted MWSA-G index loaded from disk over \
         loopback TCP (length-prefixed binary protocol, bounded admission queue, per-worker \
         QueryScratch). client_threads concurrent connections stream the pattern set in \
         collect mode; every wire answer is asserted identical to a direct in-process \
         query_into before timing (count/first-k modes asserted outside the timed loop). \
         Throughput is the best of reps sweeps; p50/p99 pool per-request round trips over \
         all sweeps. The hot_reload stage re-runs the sweep while a separate connection \
         keeps swapping the index file in: reloads counts the swaps, and the asserted \
         outputs prove in-flight queries complete across swaps. On a single-CPU host the \
         worker sweep measures protocol and queueing overhead, not parallel speedup.\",\n",
    );
    out.push_str("  \"datasets\": [\n");
    for (i, d) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", d.name));
        out.push_str(&format!("      \"params\": \"{}\",\n", d.params));
        out.push_str(&format!(
            "      \"z\": {}, \"ell\": {}, \"occurrences\": {},\n",
            d.z, d.ell, d.occurrences
        ));
        out.push_str("      \"workers\": [\n");
        for (j, w) in d.workers.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"workers\": {}, \"queries\": {}, \"throughput_qps\": {:.1}, \
                 \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"outputs_identical\": true }}{}\n",
                w.workers,
                w.queries,
                w.throughput_qps,
                w.p50_us,
                w.p99_us,
                if j + 1 == d.workers.len() { "" } else { "," }
            ));
        }
        out.push_str("      ],\n");
        out.push_str(&format!(
            "      \"hot_reload\": {{ \"reloads\": {}, \"queries_during_swaps\": {}, \
             \"final_generation\": {}, \"outputs_identical\": true }}\n",
            d.reload.reloads, d.reload.queries, d.reload.final_generation
        ));
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"instrumentation_overhead\": {{ \"queries\": {}, \"reps\": {}, \
         \"instrumented_qps\": {:.1}, \"stubbed_qps\": {:.1}, \
         \"overhead_pct\": {:.2}, \"target_pct\": 2.0, \"method\": \"identical served sweep \
         (uniform corpus, 2 workers, 4 clients, collect mode, 40 passes per sweep) with \
         every recording site live vs the obs clock stubbed — the switch all \
         instrumentation gates on; per rep the two sides run back to back with the \
         leading side flipped, overhead is the median across reps of the within-pair \
         median round-trip ratio\" }}\n",
        overhead.queries,
        overhead.reps,
        overhead.instrumented_qps,
        overhead.stubbed_qps,
        overhead.overhead_pct
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_serves_all_corpora_and_renders_json() {
        // Tiny end-to-end run; the output-identity assertions inside
        // timed_sweep and the reload stage are the test.
        let config = ServeBenchConfig {
            n: 2_000,
            reps: 1,
            patterns: 8,
            worker_counts: vec![1, 2],
            clients: 2,
        };
        let results = run_serve_bench(&config);
        assert_eq!(results.len(), 4);
        let overhead = measure_instrumentation_overhead(config.n, config.patterns, 1);
        // The sampler may find fewer solid patterns than asked for at this
        // tiny n; each sweep replays whatever it found OVERHEAD_SWEEP_PASSES
        // times.
        assert!(overhead.queries > 0);
        assert_eq!(overhead.queries % OVERHEAD_SWEEP_PASSES, 0);
        assert!(overhead.queries <= config.patterns * OVERHEAD_SWEEP_PASSES);
        assert!(overhead.instrumented_qps > 0.0);
        assert!(overhead.stubbed_qps > 0.0);
        assert!(overhead.overhead_pct.is_finite());
        // The measurement must leave the process-global clock enabled.
        assert!(ius_obs::clock::enabled());
        let json = render_serve_json(&config, &results, &overhead);
        assert!(json.contains("\"instrumentation_overhead\""));
        for d in &results {
            assert!(json.contains(&format!("\"name\": \"{}\"", d.name)));
            assert_eq!(d.workers.len(), 2);
            for w in &d.workers {
                assert!(w.throughput_qps > 0.0);
                assert!(w.p50_us > 0.0 && w.p99_us >= w.p50_us);
            }
            assert!(d.reload.reloads >= 1);
            assert_eq!(d.reload.final_generation, d.reload.reloads);
        }
    }

    #[test]
    fn percentile_is_robust() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 4.0);
        assert_eq!(percentile(&sorted, 0.5), 3.0);
    }
}
