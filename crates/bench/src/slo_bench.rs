//! The open-loop latency-SLO benchmark behind `reproduce --bench-slo` and
//! `BENCH_slo.json`.
//!
//! The serving benchmark (`--bench-serve`) is *closed-loop*: each client
//! keeps exactly one request in flight, so the offered load collapses the
//! moment the server slows down, and queueing delay hides from the latency
//! percentiles — the coordinated-omission trap. This harness drives the
//! same served index *open-loop*: every request has an **intended send
//! time** on a fixed arrival schedule (at rate R, request i is due at
//! `i/R` seconds), a sender that falls behind does not stretch the
//! schedule, and every latency is measured **from the intended send
//! time** — a request that waited behind a stalled worker is charged its
//! full queueing delay, whether or not the client had sent it yet.
//!
//! Per corpus the harness first measures a closed-loop baseline (the same
//! sweep `--bench-serve` times), then sweeps arrival rates — explicit
//! ones (`--bench-rates`) or, by default, [`RATE_FRACTIONS`] of the
//! measured closed-loop throughput — and reports per rate the achieved
//! rate and the p50/p99/max latency from intended send. The sweep
//! derives:
//!
//! * the **knee**: the lowest swept rate above every SLO-meeting rate
//!   whose p99 violates the SLO (p99 < 1 ms by default) — an isolated
//!   mid-sweep miss below a rate that meets the SLO again is scheduler
//!   noise on a shared host, reported in the rows but not a knee;
//! * **max throughput under SLO**: the highest *achieved* rate whose p99
//!   still meets the SLO;
//! * the **closed-vs-open p99 delta** at that rate — the latency the
//!   closed-loop percentile hides at comparable load.
//!
//! Every wire answer is still asserted identical to an in-process
//! `query_into` before any timing is trusted. On a single-CPU host the
//! senders and the server share one core, so the knee lands well below
//! the closed-loop throughput; the client/worker counts are recorded in
//! the JSON so the numbers can be read honestly.

use crate::serve_bench::{percentile, timed_sweep};
use ius_datasets::corpora::{bench_corpora, BenchCorpus};
use ius_datasets::patterns::PatternSampler;
use ius_index::{IndexFamily, IndexParams, IndexSpec, IndexVariant, QueryScratch, UncertainIndex};
use ius_server::{Client, ServedIndex, Server, ServerConfig};
use ius_weighted::ZEstimation;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Arrival rates swept when `--bench-rates` is not given, as fractions of
/// the corpus's measured closed-loop throughput. The window reaches far
/// *below* the closed-loop number on purpose: open-loop senders share the
/// host with the server, and charging latency from intended send means the
/// p99-under-SLO knee sits well under the closed-loop throughput — that
/// gap is the finding, so the sweep has to straddle it.
pub const RATE_FRACTIONS: [f64; 5] = [0.05, 0.125, 0.25, 0.5, 1.0];

/// Parameters of one SLO-benchmark run.
#[derive(Debug, Clone)]
pub struct SloBenchConfig {
    /// Length of the generated weighted strings.
    pub n: usize,
    /// Query patterns sampled per dataset (half at ℓ, half at 2ℓ).
    pub patterns: usize,
    /// Concurrent sender threads (one connection each).
    pub clients: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Explicit arrival rates to sweep, requests/s. Empty: derive per
    /// corpus as [`RATE_FRACTIONS`] × the closed-loop throughput.
    pub rates: Vec<f64>,
    /// Open-loop requests per rate step.
    pub requests_per_rate: usize,
    /// The SLO: 99th-percentile latency from intended send time must stay
    /// below this many microseconds.
    pub slo_p99_us: f64,
}

impl Default for SloBenchConfig {
    fn default() -> Self {
        Self {
            n: 100_000,
            patterns: 200,
            clients: 4,
            workers: 2,
            rates: Vec::new(),
            requests_per_rate: 2_000,
            slo_p99_us: 1_000.0,
        }
    }
}

impl SloBenchConfig {
    /// Sender connections actually opened: [`clients`](Self::clients)
    /// capped at the worker-pool size.
    ///
    /// The serving model dedicates a worker to a connection for the
    /// connection's whole lifetime (the wire protocol is strict
    /// request→response lockstep — multiplexing is ROADMAP item 4's
    /// serving half). A sender connection beyond the pool is therefore
    /// only picked up when an earlier connection *closes*; in an
    /// open-loop sweep nothing closes until the schedule ends, so such a
    /// sender's every latency would include the wait for a worker —
    /// measuring connection starvation, not service under load.
    pub fn sender_connections(&self) -> usize {
        self.clients.min(self.workers).max(1)
    }
}

/// The closed-loop baseline of one corpus (one request in flight per
/// client, latency measured from actual send).
#[derive(Debug, Clone)]
pub struct ClosedLoopBaseline {
    /// Requests in the baseline sweep.
    pub queries: usize,
    /// Closed-loop throughput, queries per second.
    pub throughput_qps: f64,
    /// Median round trip, microseconds.
    pub p50_us: f64,
    /// 99th-percentile round trip, microseconds.
    pub p99_us: f64,
}

/// One open-loop rate step.
#[derive(Debug, Clone)]
pub struct RateBench {
    /// The scheduled arrival rate, requests/s.
    pub target_qps: f64,
    /// Requests completed divided by the sweep wall time — falls below
    /// `target_qps` once the server saturates.
    pub achieved_qps: f64,
    /// Requests sent at this rate.
    pub requests: usize,
    /// Median latency from intended send time, microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency from intended send time, microseconds.
    pub p99_us: f64,
    /// Worst latency from intended send time, microseconds.
    pub max_us: f64,
    /// Whether `p99_us` met the SLO.
    pub slo_met: bool,
}

/// All SLO measurements of one corpus.
#[derive(Debug, Clone)]
pub struct SloDatasetBench {
    /// Dataset label (`uniform`, `pangenome`, …).
    pub name: String,
    /// Human-readable generator parameters.
    pub params: String,
    /// Weight threshold z.
    pub z: f64,
    /// Minimum pattern length ℓ.
    pub ell: usize,
    /// The closed-loop baseline.
    pub closed: ClosedLoopBaseline,
    /// The rate sweep, ascending by target rate.
    pub rates: Vec<RateBench>,
    /// The capacity knee: the lowest swept rate above every SLO-meeting
    /// rate whose p99 violated the SLO (`None` when the top swept rate
    /// met it). An isolated mid-sweep miss below a rate that meets the
    /// SLO again stays visible in [`rates`](Self::rates) but is not a
    /// knee.
    pub knee_qps: Option<f64>,
    /// The highest achieved rate whose p99 met the SLO (`None` when no
    /// rate did).
    pub max_under_slo_qps: Option<f64>,
    /// Open-loop p99 minus closed-loop p99 at the rate behind
    /// `max_under_slo_qps` (or at the lowest swept rate when no rate met
    /// the SLO): the queueing delay the closed-loop number hides.
    pub closed_vs_open_p99_delta_us: f64,
    /// The target rate the delta was read at.
    pub delta_at_qps: f64,
}

/// One open-loop sweep: `clients` sender threads, each a fresh connection,
/// each owning the stripe `i ≡ c (mod clients)` of a shared arrival
/// schedule at `rate_qps`. Latencies (µs) are measured from each request's
/// intended send time; the second return is the sweep wall time (seconds,
/// slowest sender).
fn open_loop_run(
    addr: SocketAddr,
    clients: usize,
    patterns: &[Vec<u8>],
    expected: &[Vec<usize>],
    rate_qps: f64,
    total_requests: usize,
) -> (Vec<f64>, f64) {
    assert!(rate_qps > 0.0, "arrival rate must be positive");
    let barrier = std::sync::Barrier::new(clients);
    let mut all_latencies = Vec::with_capacity(total_requests);
    let mut wall = 0.0f64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let barrier = &barrier;
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("slo client connect");
                barrier.wait();
                let start = Instant::now();
                let mut latencies = Vec::new();
                let mut i = c;
                while i < total_requests {
                    let due = Duration::from_secs_f64(i as f64 / rate_qps);
                    // Sleep until the intended send time. A sender that is
                    // already late sends immediately — the schedule never
                    // stretches; the wait shows up in the latency instead.
                    // Plain sleep, never spin or yield-poll: senders share
                    // the host with the server, and a sender burning CPU
                    // on arrival precision starves the very workers it is
                    // measuring (ms-scale scheduler tails at exactly the
                    // rates whose inter-arrival gap a poll loop covers).
                    // Sleep overshoot makes the sender *late*, and
                    // lateness is charged to latency below — the honest
                    // direction for an SLO harness to err in.
                    let elapsed = start.elapsed();
                    if elapsed < due {
                        std::thread::sleep(due - elapsed);
                    }
                    let p = i % patterns.len();
                    let outcome = client.query(&patterns[p]).expect("slo query");
                    // From *intended* send: queueing behind a late sender
                    // counts, which is the whole point of the harness.
                    let lat = start.elapsed().saturating_sub(due);
                    latencies.push(lat.as_secs_f64() * 1e6);
                    assert_eq!(
                        outcome.positions, expected[p],
                        "served output differs from in-process query_into (pattern {p})"
                    );
                    i += clients;
                }
                (latencies, start.elapsed().as_secs_f64())
            }));
        }
        for handle in handles {
            let (latencies, thread_wall) = handle.join().expect("slo client thread");
            all_latencies.extend(latencies);
            wall = wall.max(thread_wall);
        }
    });
    (all_latencies, wall)
}

/// Benchmarks one corpus: closed-loop baseline, then the open-loop rate
/// sweep with knee/SLO/delta derivation.
fn bench_dataset(corpus: &BenchCorpus, dir: &Path, config: &SloBenchConfig) -> SloDatasetBench {
    let x = &corpus.x;
    let senders = config.sender_connections();
    eprintln!(
        "[bench-slo] {} (n = {}, z = {}, ell = {}, {} patterns, {} sender(s), {} worker(s))",
        corpus.name,
        x.len(),
        corpus.z,
        corpus.ell,
        config.patterns,
        senders,
        config.workers
    );
    let index_params = IndexParams::new(corpus.z, corpus.ell, x.sigma()).expect("params");
    let spec = IndexSpec::new(
        IndexFamily::Minimizer(IndexVariant::ArrayGrid),
        index_params,
    );
    let index = spec.build(x).expect("build MWSA-G");

    let est = ZEstimation::build(x, corpus.z).expect("estimation");
    let mut sampler = PatternSampler::new(&est, 0x510);
    let mut patterns = sampler.sample_many(corpus.ell, config.patterns / 2);
    patterns.extend(sampler.sample_many(2 * corpus.ell, config.patterns - config.patterns / 2));
    assert!(
        !patterns.is_empty(),
        "{}: no solid patterns of length {}",
        corpus.name,
        corpus.ell
    );
    let mut scratch = QueryScratch::new();
    let expected: Vec<Vec<usize>> = patterns
        .iter()
        .map(|p| {
            let mut out = Vec::new();
            index
                .query_into(p, x, &mut scratch, &mut out)
                .expect("in-process query");
            out
        })
        .collect();

    let path = dir.join(format!("{}.iusx", corpus.name));
    index
        .save_to(&mut std::fs::File::create(&path).expect("create index file"))
        .expect("save index");
    let served = ServedIndex::load(&path, Some(Arc::new(x.clone()))).expect("load index file");
    let server = Server::bind(
        "127.0.0.1:0",
        served,
        Some(path),
        &ServerConfig {
            workers: config.workers,
            queue_depth: 64,
            ..Default::default()
        },
    )
    .expect("bind slo server");
    let addr = server.local_addr();

    // Closed-loop baseline over roughly as many requests as one rate step,
    // after one warm pass. Same connection count as the open-loop sweep,
    // so the closed-vs-open delta compares like with like.
    let passes = (config.requests_per_rate / patterns.len()).clamp(1, 64);
    timed_sweep(addr, senders, &patterns, &expected, 1);
    let (mut closed_lat, closed_wall) = timed_sweep(addr, senders, &patterns, &expected, passes);
    closed_lat.sort_by(f64::total_cmp);
    let closed = ClosedLoopBaseline {
        queries: closed_lat.len(),
        throughput_qps: closed_lat.len() as f64 / closed_wall,
        p50_us: percentile(&closed_lat, 0.50),
        p99_us: percentile(&closed_lat, 0.99),
    };
    eprintln!(
        "  closed loop: {:>9.0} q/s  p50 {:>8.1} us  p99 {:>8.1} us",
        closed.throughput_qps, closed.p50_us, closed.p99_us
    );

    let mut targets: Vec<f64> = if config.rates.is_empty() {
        RATE_FRACTIONS
            .iter()
            .map(|f| f * closed.throughput_qps)
            .collect()
    } else {
        config.rates.clone()
    };
    targets.retain(|r| *r > 0.0);
    targets.sort_by(f64::total_cmp);
    assert!(!targets.is_empty(), "the rate sweep needs a positive rate");

    let total_requests = config.requests_per_rate.max(senders);
    let mut rate_rows = Vec::new();
    for &target_qps in &targets {
        let (mut latencies, wall) = open_loop_run(
            addr,
            senders,
            &patterns,
            &expected,
            target_qps,
            total_requests,
        );
        latencies.sort_by(f64::total_cmp);
        let p99_us = percentile(&latencies, 0.99);
        let row = RateBench {
            target_qps,
            achieved_qps: latencies.len() as f64 / wall,
            requests: latencies.len(),
            p50_us: percentile(&latencies, 0.50),
            p99_us,
            max_us: latencies.last().copied().unwrap_or(0.0),
            slo_met: p99_us < config.slo_p99_us,
        };
        eprintln!(
            "  rate {:>8.0}/s: achieved {:>8.0}/s  p50 {:>8.1} us  p99 {:>9.1} us  max {:>9.1} us  {}",
            row.target_qps,
            row.achieved_qps,
            row.p50_us,
            row.p99_us,
            row.max_us,
            if row.slo_met { "SLO met" } else { "SLO MISSED" }
        );
        rate_rows.push(row);
    }
    server.shutdown();

    // The knee is the capacity boundary, not the first blip: the lowest
    // swept rate above *every* SLO-meeting rate whose p99 broke the SLO.
    // An isolated mid-sweep miss below a rate that meets the SLO again is
    // scheduler noise on a shared host — visible in the per-rate rows,
    // but not a knee. Rows are sorted by target rate, so that is the row
    // after the last SLO-meeting one.
    let knee_qps = match rate_rows.iter().rposition(|r| r.slo_met) {
        Some(last_met) => rate_rows.get(last_met + 1).map(|r| r.target_qps),
        None => rate_rows.first().map(|r| r.target_qps),
    };
    let best_under_slo = rate_rows
        .iter()
        .filter(|r| r.slo_met)
        .max_by(|a, b| a.achieved_qps.total_cmp(&b.achieved_qps));
    let max_under_slo_qps = best_under_slo.map(|r| r.achieved_qps);
    // The delta reads off the highest SLO-meeting rate — or, when every
    // rate missed, the lowest rate, which is the kindest comparison the
    // open loop can offer.
    let delta_row = best_under_slo.unwrap_or(&rate_rows[0]);
    let closed_vs_open_p99_delta_us = delta_row.p99_us - closed.p99_us;
    let delta_at_qps = delta_row.target_qps;
    eprintln!(
        "  knee {}  max under SLO {}  open-vs-closed p99 delta {:+.1} us (at {:.0}/s)",
        knee_qps.map_or("none".into(), |k| format!("{k:.0}/s")),
        max_under_slo_qps.map_or("none".into(), |m| format!("{m:.0}/s")),
        closed_vs_open_p99_delta_us,
        delta_at_qps
    );

    SloDatasetBench {
        name: corpus.name.to_string(),
        params: corpus.params.clone(),
        z: corpus.z,
        ell: corpus.ell,
        closed,
        rates: rate_rows,
        knee_qps,
        max_under_slo_qps,
        closed_vs_open_p99_delta_us,
        delta_at_qps,
    }
}

/// Runs the SLO benchmark on the four corpora.
pub fn run_slo_bench(config: &SloBenchConfig) -> Vec<SloDatasetBench> {
    let dir: PathBuf = std::env::temp_dir().join(format!("ius-bench-slo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    let results = bench_corpora(config.n)
        .iter()
        .map(|corpus| bench_dataset(corpus, &dir, config))
        .collect();
    std::fs::remove_dir_all(&dir).ok();
    results
}

/// Renders the benchmark results as the `BENCH_slo.json` document.
pub fn render_slo_json(config: &SloBenchConfig, results: &[SloDatasetBench]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"n\": {}, \"patterns_per_dataset\": {}, \"requests_per_rate\": {}, \
         \"client_threads\": {}, \"workers\": {}, \"slo_p99_us\": {}, \"family\": \"MWSA-G\", {},\n",
        config.n,
        config.patterns,
        config.requests_per_rate,
        config.sender_connections(),
        config.workers,
        config.slo_p99_us,
        crate::report::json_host_fields(&[config.workers])
    ));
    out.push_str(
        "  \"note\": \"Open-loop latency-SLO sweep over a persisted MWSA-G index served over \
         loopback TCP. Each rate step schedules requests at fixed arrivals (request i due at \
         i/rate); a late sender never stretches the schedule, and every latency is measured \
         from the intended send time, so queueing delay is charged in full (no coordinated \
         omission). closed_loop is the same sweep with one request in flight per client, \
         latency from actual send — the comparison baseline. knee_qps is the lowest swept \
         rate above every SLO-meeting rate whose p99 broke the SLO (an isolated mid-sweep \
         miss below a rate that meets the SLO again is scheduler noise on a shared host, \
         visible in the rows but not a knee); max_under_slo_qps the highest achieved rate \
         that met it; closed_vs_open_p99_delta_us the open-minus-closed p99 at that rate. Rates \
         default to fractions of the measured closed-loop throughput unless --bench-rates \
         pins them. Sender connections are capped at the worker-pool size: a worker owns a \
         connection for its lifetime (no multiplexing yet), so an extra open-loop connection \
         would wait out the whole schedule for a worker and measure starvation, not service. \
         Senders and server share the host CPUs; every answer is asserted identical to an \
         in-process query_into.\",\n",
    );
    out.push_str("  \"datasets\": [\n");
    for (i, d) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", d.name));
        out.push_str(&format!("      \"params\": \"{}\",\n", d.params));
        out.push_str(&format!("      \"z\": {}, \"ell\": {},\n", d.z, d.ell));
        out.push_str(&format!(
            "      \"closed_loop\": {{ \"queries\": {}, \"throughput_qps\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1} }},\n",
            d.closed.queries, d.closed.throughput_qps, d.closed.p50_us, d.closed.p99_us
        ));
        out.push_str("      \"rates\": [\n");
        for (j, r) in d.rates.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"target_qps\": {:.1}, \"achieved_qps\": {:.1}, \"requests\": {}, \
                 \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1}, \"slo_met\": {}, \
                 \"outputs_identical\": true }}{}\n",
                r.target_qps,
                r.achieved_qps,
                r.requests,
                r.p50_us,
                r.p99_us,
                r.max_us,
                r.slo_met,
                if j + 1 == d.rates.len() { "" } else { "," }
            ));
        }
        out.push_str("      ],\n");
        out.push_str(&format!(
            "      \"knee_qps\": {}, \"max_under_slo_qps\": {}, \
             \"closed_vs_open_p99_delta_us\": {:.1}, \"delta_at_qps\": {:.1}\n",
            d.knee_qps.map_or("null".into(), |k| format!("{k:.1}")),
            d.max_under_slo_qps
                .map_or("null".into(), |m| format!("{m:.1}")),
            d.closed_vs_open_p99_delta_us,
            d.delta_at_qps
        ));
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_sweeps_explicit_rates_and_renders_json() {
        // Tiny end-to-end run with pinned rates; the output-identity
        // assertions inside the open-loop senders are the test.
        let config = SloBenchConfig {
            n: 2_000,
            patterns: 8,
            clients: 2,
            workers: 2,
            rates: vec![50.0, 200.0],
            requests_per_rate: 40,
            slo_p99_us: 1_000.0,
        };
        let results = run_slo_bench(&config);
        assert_eq!(results.len(), 4);
        for d in &results {
            assert!(d.closed.throughput_qps > 0.0);
            assert!(d.closed.p99_us >= d.closed.p50_us);
            assert_eq!(d.rates.len(), 2);
            assert_eq!(d.rates[0].target_qps, 50.0);
            for r in &d.rates {
                assert_eq!(r.requests, config.requests_per_rate);
                assert!(r.achieved_qps > 0.0);
                // The schedule bounds the achieved rate from above (give
                // 25% slack for wall-clock jitter at this tiny size).
                assert!(r.achieved_qps <= r.target_qps * 1.25);
                assert!(r.max_us >= r.p99_us && r.p99_us >= r.p50_us);
                assert_eq!(r.slo_met, r.p99_us < config.slo_p99_us);
            }
            // Derivations are consistent with the per-rate rows.
            if let Some(knee) = d.knee_qps {
                assert!(d.rates.iter().any(|r| r.target_qps == knee && !r.slo_met));
            }
            if d.rates.iter().all(|r| r.slo_met) {
                assert!(d.knee_qps.is_none());
            }
        }
        let json = render_slo_json(&config, &results);
        for needle in [
            "\"slo_p99_us\": 1000",
            "\"closed_loop\"",
            "\"knee_qps\"",
            "\"max_under_slo_qps\"",
            "\"closed_vs_open_p99_delta_us\"",
            "\"target_qps\": 50.0",
        ] {
            assert!(json.contains(needle), "JSON missing {needle:?}:\n{json}");
        }
    }

    #[test]
    fn open_loop_latency_is_charged_from_the_intended_send_time() {
        // A schedule far faster than one core can serve must report
        // growing queueing delay: the p99 from intended send dwarfs the
        // p50 the early requests enjoy, and the achieved rate falls short
        // of the target. This is the property a closed-loop sweep cannot
        // express.
        let corpus = bench_corpora(2_000).into_iter().next().expect("corpus");
        let dir = std::env::temp_dir().join(format!("ius-slo-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let config = SloBenchConfig {
            n: 2_000,
            patterns: 6,
            clients: 2,
            workers: 1,
            rates: vec![1.0e6],
            requests_per_rate: 200,
            slo_p99_us: 1_000.0,
        };
        let result = bench_dataset(&corpus, &dir, &config);
        std::fs::remove_dir_all(&dir).ok();
        let rate = &result.rates[0];
        assert!(
            rate.achieved_qps < rate.target_qps,
            "a million q/s schedule must saturate the server"
        );
        assert!(
            rate.max_us >= rate.p50_us,
            "queueing delay accumulates across the schedule"
        );
    }
}
