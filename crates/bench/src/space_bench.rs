//! The index-lifecycle space benchmark behind `reproduce --bench-space` and
//! `BENCH_space.json`.
//!
//! The paper sells its indexes on *space*; this benchmark makes the byte
//! footprint a first-class measured artifact alongside the construction and
//! query timings. Per family it reports the in-memory footprint
//! (`size_bytes()`, cross-checked against the counting allocator by
//! `tests/size_accounting.rs`), the serialized file size, save/load wall
//! times over in-memory buffers, and the load-vs-rebuild speedup — loading
//! never re-runs construction (no z-estimation, no suffix sorting, no tree
//! merging), so it beats a rebuild by an order of magnitude and makes
//! build-once / serve-many deployments practical. A second section measures
//! sharded ([`ius_index::ShardedIndex`]) vs unsharded query throughput at
//! `S ∈ {1, 4, 8}`.
//!
//! Correctness is asserted before any number is trusted: every loaded index
//! must answer the pattern set exactly like the index it was saved from (and
//! re-save byte-identically), and every sharded configuration must answer
//! exactly like the unsharded index.

use ius_arena::Arena;
use ius_datasets::corpora::bench_corpus;
use ius_datasets::patterns::PatternSampler;
use ius_index::persist::save_index_v2;
use ius_index::{
    load_index, open_index, save_index_with, AnyIndex, IndexFamily, IndexParams, IndexSpec,
    IndexVariant, QueryScratch, SaveOptions, ShardedIndex, UncertainIndex,
};
use ius_weighted::{WeightedString, ZEstimation};
use std::time::Instant;

/// Above this `n·⌊z⌋` product the WST baseline is skipped (same budget rule
/// as the query benchmark).
const WST_NZ_LIMIT: usize = 1_500_000;

/// Parameters of one space-benchmark run.
#[derive(Debug, Clone)]
pub struct SpaceBenchConfig {
    /// Length of the generated weighted strings.
    pub n: usize,
    /// Repetitions per timed side (the minimum is reported).
    pub reps: usize,
    /// Query patterns per dataset (half at ℓ, half at 2ℓ).
    pub patterns: usize,
    /// Shard counts of the sharded-vs-unsharded throughput section.
    pub shard_counts: Vec<usize>,
    /// Thread counts of the parallel shard-build sweep (each point builds
    /// every shard configuration at that fan-out, asserted answer-identical
    /// to the serial build).
    pub threads: Vec<usize>,
}

impl Default for SpaceBenchConfig {
    fn default() -> Self {
        Self {
            n: 100_000,
            reps: 3,
            patterns: 200,
            shard_counts: vec![1, 4, 8],
            threads: crate::report::default_thread_sweep(),
        }
    }
}

/// Footprint and save/load timings of one family on one dataset.
#[derive(Debug, Clone)]
pub struct FamilySpaceBench {
    /// Family label (`WSA`, `MWSA-G`, …).
    pub family: String,
    /// In-memory footprint reported by `size_bytes()`.
    pub size_bytes: usize,
    /// Length of the serialized v3 representation (raw sections).
    pub file_bytes: usize,
    /// Length of the v3 representation with bit-packed `u32` sections
    /// (`SaveOptions { pack_u32: true }`; ≤ `file_bytes` — the writer keeps
    /// a section raw when packing would not shrink it).
    pub file_bytes_packed: usize,
    /// Milliseconds to serialize v3 (one buffered `write_all`).
    pub save_ms: f64,
    /// Milliseconds to serialize the legacy v2 format (streamed,
    /// element-encoded) — the save-side delta of the format change.
    pub save_ms_v2: f64,
    /// Milliseconds to deserialize v3 through the streaming (owned) path.
    pub load_ms: f64,
    /// Milliseconds to deserialize the legacy v2 format.
    pub load_ms_v2: f64,
    /// Milliseconds to **open** the v3 bytes through the zero-copy arena
    /// path: one aligned copy + CRC pass + O(sections) validation, no
    /// element decoding.
    pub open_ms_v3: f64,
    /// Bytes of the arena covered by the opened index's typed views after
    /// the first query — the data a query can touch, as opposed to the
    /// whole decoded structure (the open itself streams the file once for
    /// the CRC, but materialises nothing).
    pub bytes_touched_at_first_query: usize,
    /// Milliseconds of a from-scratch rebuild (including the z-estimation
    /// where the family needs one).
    pub rebuild_ms: f64,
}

impl FamilySpaceBench {
    /// `rebuild / load`: how much faster loading is than rebuilding.
    pub fn load_speedup(&self) -> f64 {
        self.rebuild_ms / self.load_ms
    }

    /// `load / open`: how much faster the zero-copy arena open is than the
    /// element-decoding streaming load of the same bytes.
    pub fn open_speedup(&self) -> f64 {
        self.load_ms / self.open_ms_v3
    }
}

/// One sharded configuration's build cost, footprint and query latency.
#[derive(Debug, Clone)]
pub struct ShardBench {
    /// Number of shards requested.
    pub shards: usize,
    /// Milliseconds to build all per-shard indexes serially.
    pub build_ms: f64,
    /// Aggregate footprint (per-shard indexes + owned chunks).
    pub size_bytes: usize,
    /// Microseconds per query through the routing executor.
    pub query_us: f64,
    /// `(threads, build_ms)` of the parallel shard-build sweep; every point
    /// is asserted answer-identical to the serial build before its timing
    /// is trusted.
    pub build_sweep: Vec<(usize, f64)>,
}

/// All space measurements for one dataset configuration.
#[derive(Debug, Clone)]
pub struct SpaceDatasetBench {
    /// Dataset label (`uniform`, `pangenome`, `rssi`).
    pub name: String,
    /// Human-readable generator parameters.
    pub params: String,
    /// Weight threshold z.
    pub z: f64,
    /// Minimum pattern length ℓ the indexes were built for.
    pub ell: usize,
    /// Per-family footprint and persistence timings.
    pub families: Vec<FamilySpaceBench>,
    /// Family used in the sharding section.
    pub shard_family: String,
    /// Microseconds per query of the unsharded shard-section family.
    pub unsharded_query_us: f64,
    /// Sharded configurations (one per shard count).
    pub sharded: Vec<ShardBench>,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn time_min<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let v = f();
        best = best.min(ms(t));
        out = Some(v);
    }
    (out.expect("at least one rep"), best)
}

/// Answers every pattern once with a reused scratch/output buffer and
/// returns (total occurrences, microseconds per query, min over `reps`).
fn time_queries(
    index: &dyn UncertainIndex,
    x: &WeightedString,
    patterns: &[Vec<u8>],
    reps: usize,
) -> (usize, f64) {
    let mut scratch = QueryScratch::new();
    let mut out: Vec<usize> = Vec::new();
    let (total, total_ms) = time_min(reps, || {
        let mut total = 0usize;
        for pattern in patterns {
            out.clear();
            index
                .query_into(pattern, x, &mut scratch, &mut out)
                .expect("query");
            total += out.len();
        }
        total
    });
    (total, total_ms * 1e3 / patterns.len() as f64)
}

/// Measures one family: footprint, serialized size, save/load/rebuild times,
/// with the loaded index asserted identical before timing is trusted.
fn bench_family(
    spec: IndexSpec,
    x: &WeightedString,
    estimation: &ZEstimation,
    patterns: &[Vec<u8>],
    config: &SpaceBenchConfig,
) -> FamilySpaceBench {
    let label = spec.family.name();
    let index = spec.build_with_estimation(x, estimation).expect("build");

    // Serialize once for correctness checks, then time both directions.
    let mut bytes = Vec::new();
    index.save_to(&mut bytes).expect("save");
    let loaded = load_index(&mut bytes.as_slice()).expect("load");
    let mut resaved = Vec::new();
    loaded.save_to(&mut resaved).expect("re-save");
    assert_eq!(bytes, resaved, "{label}: re-save not byte-identical");
    assert_eq!(
        loaded.size_bytes(),
        index.size_bytes(),
        "{label}: size drift"
    );
    let mut scratch = QueryScratch::new();
    for pattern in patterns {
        let mut a = Vec::new();
        let mut b = Vec::new();
        index
            .query_into(pattern, x, &mut scratch, &mut a)
            .expect("query");
        loaded
            .query_into(pattern, x, &mut scratch, &mut b)
            .expect("loaded query");
        assert_eq!(a, b, "{label}: loaded index answers differently");
    }

    // The zero-copy open path must answer identically too, and so must the
    // bit-packed encoding through both read paths.
    let arena = Arena::from_bytes(&bytes);
    let opened = open_index(&arena).expect("arena open");
    let mut packed = Vec::new();
    save_index_with(&index, &mut packed, SaveOptions { pack_u32: true }).expect("save packed");
    let packed_loaded = load_index(&mut packed.as_slice()).expect("load packed");
    let packed_arena = Arena::from_bytes(&packed);
    let packed_opened = open_index(&packed_arena).expect("open packed");
    for pattern in patterns {
        let mut expect = Vec::new();
        index
            .query_into(pattern, x, &mut scratch, &mut expect)
            .expect("query");
        for (path, other) in [
            ("arena open", &opened),
            ("packed load", &packed_loaded),
            ("packed open", &packed_opened),
        ] {
            let mut got = Vec::new();
            other
                .query_into(pattern, x, &mut scratch, &mut got)
                .expect("query");
            assert_eq!(expect, got, "{label}: {path} answers differently");
        }
    }
    // Views attribute at creation, so after the open + first query the
    // attribution is exactly the data a query can dereference.
    let bytes_touched_at_first_query = arena.attributed_bytes();
    drop((opened, packed_loaded, packed_opened, packed_arena));

    let mut buf = Vec::with_capacity(bytes.len());
    let (_, save_ms) = time_min(config.reps, || {
        buf.clear();
        index.save_to(&mut buf).expect("save");
        buf.len()
    });
    let mut v2_bytes = Vec::new();
    let (_, save_ms_v2) = time_min(config.reps, || {
        v2_bytes.clear();
        save_index_v2(&index, &mut v2_bytes).expect("save v2");
        v2_bytes.len()
    });
    let (reloaded, load_ms) = time_min(config.reps, || {
        load_index(&mut bytes.as_slice()).expect("load")
    });
    drop::<AnyIndex>(reloaded);
    let (reloaded_v2, load_ms_v2) = time_min(config.reps, || {
        load_index(&mut v2_bytes.as_slice()).expect("load v2")
    });
    drop::<AnyIndex>(reloaded_v2);
    // The open path from a resident arena: CRC pass, section validation,
    // view carving — no element decoding. Symmetric with `load_ms`, which
    // decodes from a resident byte slice: the one file read both paths
    // start with is excluded from both timers. (This is also exactly the
    // server's hot-reload cost — its arena is already mapped in.)
    let open_arena = Arena::from_bytes(&bytes);
    let (opened, open_ms_v3) = time_min(config.reps, || open_index(&open_arena).expect("open"));
    drop::<AnyIndex>(opened);
    drop(open_arena);
    // The rebuild side runs the full from-scratch construction, including
    // the z-estimation for the families that need it — the cost a serving
    // process pays when it cannot load.
    let (rebuilt, rebuild_ms) = time_min(config.reps, || spec.build(x).expect("rebuild"));
    assert_eq!(rebuilt.size_bytes(), index.size_bytes());

    let result = FamilySpaceBench {
        family: label.to_string(),
        size_bytes: index.size_bytes(),
        file_bytes: bytes.len(),
        file_bytes_packed: packed.len(),
        save_ms,
        save_ms_v2,
        load_ms,
        load_ms_v2,
        open_ms_v3,
        bytes_touched_at_first_query,
        rebuild_ms,
    };
    eprintln!(
        "  {label:<8} size {:>8.2} MB  file {:>8.2} MB (packed {:>6.2} MB)  save {:>6.1} ms  \
         load {:>7.1} ms  open {:>6.2} ms ({:.0}x)  rebuild {:>8.1} ms  ({:.1}x)",
        result.size_bytes as f64 / 1e6,
        result.file_bytes as f64 / 1e6,
        result.file_bytes_packed as f64 / 1e6,
        result.save_ms,
        result.load_ms,
        result.open_ms_v3,
        result.open_speedup(),
        result.rebuild_ms,
        result.load_speedup(),
    );
    result
}

/// Benchmarks one `(x, z, ℓ)` configuration: per-family persistence plus the
/// sharded-vs-unsharded throughput section.
fn bench_dataset(
    name: &str,
    params_label: String,
    x: &WeightedString,
    z: f64,
    ell: usize,
    config: &SpaceBenchConfig,
) -> SpaceDatasetBench {
    eprintln!(
        "[bench-space] {name} (n = {}, z = {z}, ell = {ell}, {} patterns)",
        x.len(),
        config.patterns
    );
    let estimation = ZEstimation::build(x, z).expect("estimation");
    let mut sampler = PatternSampler::new(&estimation, 0x5ACE);
    let mut patterns = sampler.sample_many(ell, config.patterns / 2);
    patterns.extend(sampler.sample_many(2 * ell, config.patterns - config.patterns / 2));
    assert!(
        !patterns.is_empty(),
        "{name}: no solid patterns of length {ell} — pick a smaller ell"
    );

    let index_params = IndexParams::new(z, ell, x.sigma()).expect("params");
    let mut families_to_run = vec![IndexFamily::Wsa];
    let nz = x.len() * z.floor() as usize;
    if nz <= WST_NZ_LIMIT {
        families_to_run.push(IndexFamily::Wst);
    } else {
        eprintln!("  [skip] WST (n·z = {nz} exceeds the build budget)");
    }
    families_to_run.extend([
        IndexFamily::Minimizer(IndexVariant::Tree),
        IndexFamily::Minimizer(IndexVariant::Array),
        IndexFamily::Minimizer(IndexVariant::TreeGrid),
        IndexFamily::Minimizer(IndexVariant::ArrayGrid),
    ]);
    let families: Vec<FamilySpaceBench> = families_to_run
        .into_iter()
        .map(|family| {
            bench_family(
                IndexSpec::new(family, index_params),
                x,
                &estimation,
                &patterns,
                config,
            )
        })
        .collect();

    // Sharded vs unsharded throughput on the grid-array family (the paper's
    // strongest query configuration). Patterns reach 2ℓ, so the shard
    // overlap is 2ℓ − 1.
    let shard_spec = IndexSpec::new(
        IndexFamily::Minimizer(IndexVariant::ArrayGrid),
        index_params,
    );
    let unsharded = shard_spec
        .build_with_estimation(x, &estimation)
        .expect("unsharded");
    let expected: Vec<Vec<usize>> = patterns
        .iter()
        .map(|p| unsharded.query(p, x).expect("unsharded query"))
        .collect();
    let (_, unsharded_query_us) = time_queries(&unsharded, x, &patterns, config.reps);
    let mut sharded_results = Vec::new();
    for &shards in &config.shard_counts {
        let (sharded, build_ms) = time_min(1, || {
            ShardedIndex::build(x, shard_spec, shards, 2 * ell).expect("sharded build")
        });
        for (pattern, expect) in patterns.iter().zip(&expected) {
            assert_eq!(
                &sharded.query(pattern, x).expect("sharded query"),
                expect,
                "S = {shards}: sharded output differs from unsharded"
            );
        }
        let (_, query_us) = time_queries(&sharded, x, &patterns, config.reps);
        // The multi-core sweep: rebuild the same configuration at each
        // fan-out, asserted identical to the serial build before the
        // timing is trusted.
        let mut build_sweep = Vec::with_capacity(config.threads.len());
        for &t in &config.threads {
            let (parallel, parallel_ms) = time_min(1, || {
                ShardedIndex::build_with_threads(x, shard_spec, shards, 2 * ell, t)
                    .expect("parallel sharded build")
            });
            assert_eq!(
                parallel.size_bytes(),
                sharded.size_bytes(),
                "S = {shards}, t = {t}: parallel shard build size drift"
            );
            for (pattern, expect) in patterns.iter().zip(&expected) {
                assert_eq!(
                    &parallel.query(pattern, x).expect("parallel sharded query"),
                    expect,
                    "S = {shards}, t = {t}: parallel shard build answers differently"
                );
            }
            build_sweep.push((t, parallel_ms));
        }
        let sweep_label: Vec<String> = build_sweep
            .iter()
            .map(|(t, ms)| format!("t{t}={ms:.0}ms"))
            .collect();
        eprintln!(
            "  sharded S={shards:<2} build {build_ms:>8.1} ms  size {:>8.2} MB  query {query_us:>8.2} us \
             (unsharded {unsharded_query_us:.2} us)  sweep [{}]",
            sharded.size_bytes() as f64 / 1e6,
            sweep_label.join(", "),
        );
        sharded_results.push(ShardBench {
            shards,
            build_ms,
            size_bytes: sharded.size_bytes(),
            query_us,
            build_sweep,
        });
    }

    SpaceDatasetBench {
        name: name.to_string(),
        params: params_label,
        z,
        ell,
        families,
        shard_family: shard_spec.family.name().to_string(),
        unsharded_query_us,
        sharded: sharded_results,
    }
}

/// Runs the full space benchmark on the uniform, pangenome and RSSI
/// corpora (three of the four canonical benchmark corpora of
/// `ius_datasets::corpora`; the high-entropy uniform corpus adds no
/// lifecycle coverage).
pub fn run_space_bench(config: &SpaceBenchConfig) -> Vec<SpaceDatasetBench> {
    ["uniform", "pangenome", "rssi"]
        .into_iter()
        .map(|name| {
            let corpus = bench_corpus(name, config.n, None).expect("known corpus name");
            bench_dataset(
                corpus.name,
                corpus.params,
                &corpus.x,
                corpus.z,
                corpus.ell,
                config,
            )
        })
        .collect()
}

/// Renders the benchmark results as the `BENCH_space.json` document.
pub fn render_space_json(config: &SpaceBenchConfig, results: &[SpaceDatasetBench]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"n\": {}, \"patterns_per_dataset\": {}, \"reps\": {}, {},\n",
        config.n,
        config.patterns,
        config.reps,
        crate::report::json_host_fields(&config.threads)
    ));
    out.push_str(
        "  \"note\": \"size_bytes = in-memory footprint reported by the index (cross-checked \
         against the counting allocator in tests/size_accounting.rs); file_bytes = serialized \
         size of the v3 format (raw sections) and file_bytes_packed with bit-packed u32 \
         sections; save/load are timed over in-memory buffers and rebuild runs the full \
         from-scratch construction including the z-estimation where the family needs it \
         (minimum over the same repetition count on every side). Loading never re-runs \
         construction. open_ms_v3 times the zero-copy arena path separately from the \
         element-decoding load: CRC pass + section validation + view carving out of a resident \
         arena, no element decode — symmetric with load_ms, which decodes from a resident byte \
         slice, so the one file read both paths start with is excluded from both timers \
         (open_speedup = load_ms / open_ms_v3); save_ms_v2/load_ms_v2 are the legacy streamed \
         format's times for the same index; bytes_touched_at_first_query = arena bytes covered \
         by the opened index's typed views. Before timing, every loaded index is asserted \
         byte-identical on re-save and answer-identical on the pattern set (v3 stream, v3 \
         arena-open and packed paths alike), and every sharded configuration is asserted \
         answer-identical to the unsharded index. Sharded query times route through the \
         QueryBatch executor with per-shard scratch — on a single-CPU host they measure the \
         routing overhead, not parallelism.\",\n",
    );
    out.push_str("  \"datasets\": [\n");
    for (i, d) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", d.name));
        out.push_str(&format!("      \"params\": \"{}\",\n", d.params));
        out.push_str(&format!("      \"z\": {}, \"ell\": {},\n", d.z, d.ell));
        out.push_str("      \"families\": [\n");
        for (j, f) in d.families.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"family\": \"{}\", \"size_bytes\": {}, \"file_bytes\": {}, \
                 \"file_bytes_packed\": {}, \"save_ms\": {:.2}, \"save_ms_v2\": {:.2}, \
                 \"load_ms\": {:.2}, \"load_ms_v2\": {:.2}, \"open_ms_v3\": {:.3}, \
                 \"open_speedup\": {:.1}, \"bytes_touched_at_first_query\": {}, \
                 \"rebuild_ms\": {:.2}, \"load_speedup\": {:.2}, \
                 \"loaded_outputs_identical\": true }}{}\n",
                f.family,
                f.size_bytes,
                f.file_bytes,
                f.file_bytes_packed,
                f.save_ms,
                f.save_ms_v2,
                f.load_ms,
                f.load_ms_v2,
                f.open_ms_v3,
                f.open_speedup(),
                f.bytes_touched_at_first_query,
                f.rebuild_ms,
                f.load_speedup(),
                if j + 1 == d.families.len() { "" } else { "," }
            ));
        }
        out.push_str("      ],\n");
        out.push_str(&format!(
            "      \"shard_family\": \"{}\", \"unsharded_query_us\": {:.3},\n",
            d.shard_family, d.unsharded_query_us
        ));
        out.push_str("      \"sharded\": [\n");
        for (j, s) in d.sharded.iter().enumerate() {
            let sweep: Vec<String> = s
                .build_sweep
                .iter()
                .map(|(t, ms)| format!("{{ \"threads\": {t}, \"build_ms\": {ms:.2} }}"))
                .collect();
            out.push_str(&format!(
                "        {{ \"shards\": {}, \"build_ms\": {:.2}, \"size_bytes\": {}, \
                 \"query_us\": {:.3}, \"build_sweep\": [{}], \
                 \"outputs_identical_to_unsharded\": true }}{}\n",
                s.shards,
                s.build_ms,
                s.size_bytes,
                s.query_us,
                sweep.join(", "),
                if j + 1 == d.sharded.len() { "" } else { "," }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_asserts_round_trips_and_renders_json() {
        // A tiny end-to-end run; the assertions inside bench_family and the
        // sharded section are the real test. Shard counts kept small so the
        // smallest corpus still admits them.
        let config = SpaceBenchConfig {
            n: 3_000,
            reps: 1,
            patterns: 10,
            shard_counts: vec![1, 2],
            threads: vec![1, 2, 3],
        };
        let results = run_space_bench(&config);
        assert_eq!(results.len(), 3);
        let json = render_space_json(&config, &results);
        assert!(json.contains("\"host_cpus\":"));
        assert!(json.contains("\"threads\": [1, 2, 3]"));
        for d in &results {
            assert!(!d.families.is_empty());
            assert_eq!(d.sharded.len(), 2);
            for f in &d.families {
                assert!(json.contains(&format!("\"family\": \"{}\"", f.family)));
                assert!(f.size_bytes > 0 && f.file_bytes > 0);
                assert!(f.save_ms >= 0.0 && f.load_ms > 0.0 && f.rebuild_ms > 0.0);
                assert!(
                    f.file_bytes_packed <= f.file_bytes,
                    "{}: packing must never grow the file",
                    f.family
                );
                assert!(f.open_ms_v3 > 0.0 && f.load_ms_v2 > 0.0 && f.save_ms_v2 >= 0.0);
                assert!(
                    f.bytes_touched_at_first_query > 0
                        && f.bytes_touched_at_first_query <= f.file_bytes,
                    "{}: view attribution out of range",
                    f.family
                );
            }
            assert!(json.contains("\"open_ms_v3\":"));
            assert!(json.contains("\"page_size\":"));
            for s in &d.sharded {
                assert!(s.size_bytes > 0 && s.query_us > 0.0);
                assert_eq!(s.build_sweep.len(), 3);
            }
        }
    }
}
