//! The dynamic-corpus benchmark behind `reproduce --bench-update` and
//! `BENCH_update.json`.
//!
//! For each of the four benchmark corpora the final weighted string is
//! streamed **batch by batch into a `LiveIndex`** (MWSA-G segments), the
//! way a serving deployment would ingest it, measuring:
//!
//! * **append throughput** — positions per second over the whole ingest,
//!   including every auto-flush segment build;
//! * **append→visible latency** — the wall time from initiating an append
//!   until a query returns over the new rows (appends are synchronous and
//!   the memtable serves immediately, so this is append + one query);
//! * **query latency vs segment count** — the same pattern set timed
//!   against the many-segment pre-compaction index, then again after
//!   tiered compaction rounds (run **under concurrent query load**, with
//!   every answer still asserted identical), then after a full merge;
//! * **correctness** — every pattern is answered in all three result
//!   modes (collect / count / first-k) and asserted **byte-identical** to
//!   a from-scratch rebuild of the final corpus before any timing is
//!   trusted.
//!
//! The rebuilt single index is also timed as the static baseline, so the
//! cost of dynamism (segment fan-out) can be read directly.

use ius_datasets::corpora::bench_corpora;
use ius_datasets::patterns::PatternSampler;
use ius_index::{
    AnyIndex, CountSink, FirstKSink, IndexFamily, IndexParams, IndexSpec, IndexVariant,
    QueryScratch, UncertainIndex,
};
use ius_live::{LiveConfig, LiveIndex};
use ius_weighted::{WeightedString, ZEstimation};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Parameters of one update-benchmark run.
#[derive(Debug, Clone)]
pub struct UpdateBenchConfig {
    /// Final length of the generated weighted strings.
    pub n: usize,
    /// Timed sweeps per query measurement (the minimum total is kept).
    pub reps: usize,
    /// Query patterns sampled per dataset (half at ℓ, half at 2ℓ).
    pub patterns: usize,
    /// Rows per append batch during the ingest phase.
    pub batch: usize,
    /// Memtable rows per flushed segment; 0 derives `max(n/16, 2·ℓ·2)`
    /// so every corpus ends the ingest with a two-digit segment count.
    pub flush_threshold: usize,
    /// Concurrent query threads hammering the index while the compaction
    /// rounds run.
    pub load_threads: usize,
    /// Segment-build executor widths swept after the main phases: the
    /// whole ingest + tiered compaction is repeated at each count and
    /// asserted answer-identical to the rebuilt index (0 = all CPUs).
    pub threads: Vec<usize>,
}

impl Default for UpdateBenchConfig {
    fn default() -> Self {
        Self {
            n: 100_000,
            reps: 3,
            patterns: 200,
            batch: 2_000,
            flush_threshold: 0,
            load_threads: 2,
            threads: crate::report::default_thread_sweep(),
        }
    }
}

/// One timed query measurement: average per-pattern latency over the best
/// sweep, at a given segment count.
#[derive(Debug, Clone)]
pub struct QueryPhase {
    /// Segments serving when the measurement ran.
    pub segments: usize,
    /// Average collect-mode latency per pattern, microseconds (best of
    /// `reps` sweeps).
    pub avg_query_us: f64,
}

/// One point of the multi-core sweep: the full ingest and the tiered
/// compaction rounds repeated with the segment-build executor at a given
/// width, every answer asserted identical to the rebuilt index.
#[derive(Debug, Clone)]
pub struct UpdateThreadPoint {
    /// Executor width the `LiveIndex` was configured with.
    pub threads: usize,
    /// Wall time of the batch-by-batch ingest (including flushes), s.
    pub ingest_s: f64,
    /// Wall time of the tiered compaction rounds to quiescence, s.
    pub compact_s: f64,
}

/// The compaction-under-load stage.
#[derive(Debug, Clone)]
pub struct CompactionPhase {
    /// Tiered merges performed (≥ 1 by construction of the thresholds).
    pub merges: usize,
    /// Wall time of the rounds, seconds.
    pub duration_s: f64,
    /// Queries answered by the load threads while the merges ran (every
    /// answer asserted identical to the rebuild).
    pub concurrent_queries: usize,
}

/// All measurements of one dataset.
#[derive(Debug, Clone)]
pub struct UpdateDatasetBench {
    /// Dataset label (`uniform`, `pangenome`, …).
    pub name: String,
    /// Human-readable generator parameters.
    pub params: String,
    /// Weight threshold z.
    pub z: f64,
    /// Minimum pattern length ℓ.
    pub ell: usize,
    /// Occurrences over the pattern set (identical on every path).
    pub occurrences: usize,
    /// Positions ingested.
    pub appended: usize,
    /// Append batches.
    pub batches: usize,
    /// Segment flushes during the ingest (auto, threshold-triggered).
    pub flushes: u64,
    /// Ingest throughput, positions per second (includes segment builds).
    pub append_throughput_pos_s: f64,
    /// Median append→visible latency over the sampled batches, µs.
    pub visible_p50_us: f64,
    /// Wall time of the from-scratch rebuild of the final corpus, seconds
    /// (the static alternative to the whole ingest).
    pub rebuild_s: f64,
    /// Static-baseline average query latency (the rebuilt single index).
    pub rebuilt_avg_query_us: f64,
    /// Live query latency before any compaction.
    pub pre_compaction: QueryPhase,
    /// The tiered compaction rounds under concurrent query load.
    pub compaction: CompactionPhase,
    /// Live query latency after the tiered rounds.
    pub post_compaction: QueryPhase,
    /// Live query latency after a full merge into one segment.
    pub full_merge: QueryPhase,
    /// `pre_compaction.avg_query_us / post_compaction.avg_query_us`.
    pub compaction_speedup: f64,
    /// Ingest + compaction repeated at each configured executor width.
    pub thread_sweep: Vec<UpdateThreadPoint>,
}

/// Asserts that the live index answers **byte-identically** to the
/// rebuilt single index in all three result modes, for every pattern.
fn assert_identical(
    live: &LiveIndex,
    rebuilt: &AnyIndex,
    x: &WeightedString,
    patterns: &[Vec<u8>],
    expected: &[Vec<usize>],
    stage: &str,
) {
    let mut scratch = QueryScratch::new();
    for (i, pattern) in patterns.iter().enumerate() {
        let got = live.query_owned(pattern).expect("live collect");
        assert_eq!(
            got, expected[i],
            "{stage}: live collect differs from the rebuilt index (pattern {i})"
        );
        let mut count = CountSink::new();
        live.query_owned_into(pattern, &mut scratch, &mut count)
            .expect("live count");
        assert_eq!(
            count.count,
            expected[i].len(),
            "{stage}: count mode (pattern {i})"
        );
        let mut first = FirstKSink::new(3);
        live.query_owned_into(pattern, &mut scratch, &mut first)
            .expect("live first-k");
        let mut rebuilt_first = FirstKSink::new(3);
        rebuilt
            .query_into(pattern, x, &mut scratch, &mut rebuilt_first)
            .expect("rebuilt first-k");
        assert_eq!(
            first.positions, rebuilt_first.positions,
            "{stage}: first-k mode (pattern {i})"
        );
    }
}

/// Times one collect sweep over the pattern set (reusing one scratch and
/// output vector), returning total seconds.
fn time_live_sweep(live: &LiveIndex, patterns: &[Vec<u8>]) -> f64 {
    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();
    let start = Instant::now();
    for pattern in patterns {
        out.clear();
        live.query_owned_into(pattern, &mut scratch, &mut out)
            .expect("timed live query");
    }
    start.elapsed().as_secs_f64()
}

fn time_rebuilt_sweep(index: &AnyIndex, x: &WeightedString, patterns: &[Vec<u8>]) -> f64 {
    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();
    let start = Instant::now();
    for pattern in patterns {
        out.clear();
        index
            .query_into(pattern, x, &mut scratch, &mut out)
            .expect("timed rebuilt query");
    }
    start.elapsed().as_secs_f64()
}

fn query_phase(live: &LiveIndex, patterns: &[Vec<u8>], reps: usize) -> QueryPhase {
    let best = (0..reps.max(1))
        .map(|_| time_live_sweep(live, patterns))
        .fold(f64::INFINITY, f64::min);
    QueryPhase {
        segments: live.num_segments(),
        avg_query_us: best * 1e6 / patterns.len() as f64,
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn bench_dataset(
    name: &str,
    params_label: String,
    x: &WeightedString,
    z: f64,
    ell: usize,
    config: &UpdateBenchConfig,
) -> UpdateDatasetBench {
    let max_pattern_len = 2 * ell;
    let flush_threshold = if config.flush_threshold > 0 {
        config.flush_threshold
    } else {
        (config.n / 16).max(2 * max_pattern_len)
    };
    eprintln!(
        "[bench-update] {name} (n = {}, z = {z}, ell = {ell}, batch = {}, flush = {flush_threshold})",
        x.len(),
        config.batch
    );
    let index_params = IndexParams::new(z, ell, x.sigma()).expect("params");
    let spec = IndexSpec::new(
        IndexFamily::Minimizer(IndexVariant::ArrayGrid),
        index_params,
    );

    // The static alternative: rebuild the final corpus from scratch.
    let rebuild_start = Instant::now();
    let rebuilt = spec.build(x).expect("rebuild final corpus");
    let rebuild_s = rebuild_start.elapsed().as_secs_f64();

    // The pattern workload and its ground truth through the same engine
    // entry point the live index uses per segment.
    let est = ZEstimation::build(x, z).expect("estimation");
    let mut sampler = PatternSampler::new(&est, 0x11FE);
    let mut patterns = sampler.sample_many(ell, config.patterns / 2);
    patterns.extend(sampler.sample_many(max_pattern_len, config.patterns - config.patterns / 2));
    assert!(!patterns.is_empty(), "{name}: no solid patterns");
    let mut scratch = QueryScratch::new();
    let expected: Vec<Vec<usize>> = patterns
        .iter()
        .map(|pattern| {
            let mut out = Vec::new();
            rebuilt
                .query_into(pattern, x, &mut scratch, &mut out)
                .expect("rebuilt collect");
            out
        })
        .collect();
    let occurrences: usize = expected.iter().map(Vec::len).sum();

    // Ingest: stream the corpus into the live index batch by batch.
    // Auto-compaction stays off so the pre-compaction phase is measured
    // at an uncompacted segment count; the compaction phase below runs
    // the tiered rounds explicitly (under query load).
    let live = LiveIndex::new(
        x.alphabet().clone(),
        spec,
        max_pattern_len,
        LiveConfig {
            flush_threshold,
            compact_fanout: 4,
            auto_compact: false,
            threads: 0,
        },
    )
    .expect("live index");
    let mut visible_us: Vec<f64> = Vec::new();
    let mut batches = 0usize;
    let probe = &patterns[0];
    let append_start = Instant::now();
    let mut offset = 0usize;
    while offset < x.len() {
        let end = (offset + config.batch).min(x.len());
        let batch = x.substring(offset, end).expect("batch");
        let visible_start = Instant::now();
        live.append(&batch).expect("append");
        // Visibility is synchronous: the memtable serves the new rows to
        // the very next query. Sample the (append + probe query) wall
        // time on every 4th batch.
        if batches.is_multiple_of(4) && end >= probe.len() {
            live.query_owned(probe).expect("probe query");
            visible_us.push(visible_start.elapsed().as_secs_f64() * 1e6);
        }
        offset = end;
        batches += 1;
    }
    live.flush().expect("final flush");
    let append_s = append_start.elapsed().as_secs_f64();
    visible_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let stats = live.live_stats();
    assert_eq!(stats.corpus_len, x.len());

    // Phase 1: many segments. Correctness first, timing second.
    assert_identical(&live, &rebuilt, x, &patterns, &expected, "pre-compaction");
    let pre = query_phase(&live, &patterns, config.reps);
    let rebuilt_best = (0..config.reps.max(1))
        .map(|_| time_rebuilt_sweep(&rebuilt, x, &patterns))
        .fold(f64::INFINITY, f64::min);
    eprintln!(
        "  ingest {:.2} s ({:.0} pos/s, {} segments), queries {:.1} us/pattern (rebuilt {:.1} us)",
        append_s,
        x.len() as f64 / append_s,
        pre.segments,
        pre.avg_query_us,
        rebuilt_best * 1e6 / patterns.len() as f64
    );

    // Phase 2: tiered compaction under concurrent query load; every
    // answer issued during the merges must stay identical.
    let stop = AtomicBool::new(false);
    let concurrent = AtomicUsize::new(0);
    let mut merges = 0usize;
    let mut duration_s = 0.0f64;
    std::thread::scope(|scope| {
        for t in 0..config.load_threads.max(1) {
            let live = &live;
            let patterns = &patterns;
            let expected = &expected;
            let stop = &stop;
            let concurrent = &concurrent;
            scope.spawn(move || {
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let pattern = &patterns[i % patterns.len()];
                    let got = live.query_owned(pattern).expect("query under compaction");
                    assert_eq!(
                        got,
                        expected[i % patterns.len()],
                        "answer changed under compaction"
                    );
                    concurrent.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        let start = Instant::now();
        loop {
            let merged = live.compact_once().expect("tiered round");
            if merged == 0 {
                break;
            }
            merges += merged;
        }
        duration_s = start.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
    });
    assert!(
        merges >= 1,
        "{name}: the tiered policy must trigger at least once (fanout 4, {} segments)",
        pre.segments
    );
    assert_identical(&live, &rebuilt, x, &patterns, &expected, "post-compaction");
    let post = query_phase(&live, &patterns, config.reps);

    // Phase 3: full merge into one segment (the fully-compacted floor).
    live.compact_full().expect("full merge");
    assert_identical(&live, &rebuilt, x, &patterns, &expected, "full-merge");
    let full = query_phase(&live, &patterns, config.reps);

    // Multi-core sweep: repeat the whole ingest and the tiered rounds
    // with the segment-build executor at each configured width, and
    // assert the answers stay identical to the rebuilt index every time.
    let mut thread_sweep = Vec::with_capacity(config.threads.len());
    for &t in &config.threads {
        let sweep_live = LiveIndex::new(
            x.alphabet().clone(),
            spec,
            max_pattern_len,
            LiveConfig {
                flush_threshold,
                compact_fanout: 4,
                auto_compact: false,
                threads: t,
            },
        )
        .expect("sweep live index");
        let ingest_start = Instant::now();
        let mut offset = 0usize;
        while offset < x.len() {
            let end = (offset + config.batch).min(x.len());
            sweep_live
                .append(&x.substring(offset, end).expect("sweep batch"))
                .expect("sweep append");
            offset = end;
        }
        sweep_live.flush().expect("sweep flush");
        let ingest_s = ingest_start.elapsed().as_secs_f64();
        let compact_start = Instant::now();
        while sweep_live.compact_once().expect("sweep tiered round") > 0 {}
        let compact_s = compact_start.elapsed().as_secs_f64();
        assert_identical(
            &sweep_live,
            &rebuilt,
            x,
            &patterns,
            &expected,
            "thread-sweep",
        );
        thread_sweep.push(UpdateThreadPoint {
            threads: t,
            ingest_s,
            compact_s,
        });
    }
    eprintln!(
        "  sweep [{}]",
        thread_sweep
            .iter()
            .map(|p| format!(
                "t={}: ingest {:.2} s, compact {:.2} s",
                p.threads, p.ingest_s, p.compact_s
            ))
            .collect::<Vec<_>>()
            .join("; ")
    );
    eprintln!(
        "  compaction: {merges} merges in {duration_s:.2} s under {} concurrent queries; \
         {} -> {} -> {} segments, {:.1} -> {:.1} -> {:.1} us/pattern",
        concurrent.load(Ordering::Relaxed),
        pre.segments,
        post.segments,
        full.segments,
        pre.avg_query_us,
        post.avg_query_us,
        full.avg_query_us
    );

    UpdateDatasetBench {
        name: name.to_string(),
        params: params_label,
        z,
        ell,
        occurrences,
        appended: x.len(),
        batches,
        flushes: stats.flushes,
        append_throughput_pos_s: x.len() as f64 / append_s,
        visible_p50_us: percentile(&visible_us, 0.50),
        rebuild_s,
        rebuilt_avg_query_us: rebuilt_best * 1e6 / patterns.len() as f64,
        pre_compaction: pre,
        compaction: CompactionPhase {
            merges,
            duration_s,
            concurrent_queries: concurrent.load(Ordering::Relaxed),
        },
        post_compaction: post,
        full_merge: full,
        compaction_speedup: 0.0, // filled below
        thread_sweep,
    }
    .with_speedup()
}

impl UpdateDatasetBench {
    fn with_speedup(mut self) -> Self {
        self.compaction_speedup =
            self.pre_compaction.avg_query_us / self.post_compaction.avg_query_us;
        self
    }
}

/// Runs the update benchmark on the four corpora.
pub fn run_update_bench(config: &UpdateBenchConfig) -> Vec<UpdateDatasetBench> {
    bench_corpora(config.n)
        .into_iter()
        .map(|corpus| {
            bench_dataset(
                corpus.name,
                corpus.params,
                &corpus.x,
                corpus.z,
                corpus.ell,
                config,
            )
        })
        .collect()
}

/// Renders the benchmark results as the `BENCH_update.json` document.
pub fn render_update_json(config: &UpdateBenchConfig, results: &[UpdateDatasetBench]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"n\": {}, \"patterns_per_dataset\": {}, \"reps\": {}, \"append_batch\": {}, \
         \"family\": \"MWSA-G segments\", {},\n",
        config.n,
        config.patterns,
        config.reps,
        config.batch,
        crate::report::json_host_fields(&config.threads)
    ));
    out.push_str(
        "  \"note\": \"Each dataset's final corpus is streamed batch-by-batch into a \
         LiveIndex (immutable MWSA-G segments + naive-scanned memtable tail, overlap \
         max_pattern_len-1, tiered compaction fanout 4). Before any timing is trusted the \
         live answers are asserted byte-identical to a from-scratch rebuild of the final \
         corpus in all three result modes (collect/count/first-3) — and again after the \
         tiered compaction rounds, which run under load_threads concurrent query threads \
         whose every answer is also asserted, and once more after a full merge. \
         append_throughput includes every threshold-triggered segment build; visible_p50_us \
         is the median (append + immediate probe query) wall time, appends being \
         synchronously visible. avg_query_us is the best-of-reps sweep average in collect \
         mode; rebuilt_avg_query_us is the same sweep on the static rebuilt index \
         (the fan-out cost floor). thread_sweep repeats the whole ingest and the tiered \
         rounds with the segment-build executor at each width in threads (0 = all CPUs), \
         asserting the answers identical to the rebuilt index at every point.\",\n",
    );
    out.push_str("  \"datasets\": [\n");
    for (i, d) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", d.name));
        out.push_str(&format!("      \"params\": \"{}\",\n", d.params));
        out.push_str(&format!(
            "      \"z\": {}, \"ell\": {}, \"occurrences\": {},\n",
            d.z, d.ell, d.occurrences
        ));
        out.push_str(&format!(
            "      \"append\": {{ \"positions\": {}, \"batches\": {}, \"flushes\": {}, \
             \"throughput_pos_per_s\": {:.0}, \"visible_p50_us\": {:.1}, \
             \"rebuild_from_scratch_s\": {:.3} }},\n",
            d.appended,
            d.batches,
            d.flushes,
            d.append_throughput_pos_s,
            d.visible_p50_us,
            d.rebuild_s
        ));
        out.push_str(&format!(
            "      \"pre_compaction\": {{ \"segments\": {}, \"avg_query_us\": {:.1} }},\n",
            d.pre_compaction.segments, d.pre_compaction.avg_query_us
        ));
        out.push_str(&format!(
            "      \"compaction\": {{ \"merges\": {}, \"duration_s\": {:.3}, \
             \"concurrent_queries\": {}, \"outputs_identical\": true }},\n",
            d.compaction.merges, d.compaction.duration_s, d.compaction.concurrent_queries
        ));
        out.push_str(&format!(
            "      \"post_compaction\": {{ \"segments\": {}, \"avg_query_us\": {:.1}, \
             \"speedup_vs_pre\": {:.2} }},\n",
            d.post_compaction.segments, d.post_compaction.avg_query_us, d.compaction_speedup
        ));
        out.push_str(&format!(
            "      \"full_merge\": {{ \"segments\": {}, \"avg_query_us\": {:.1} }},\n",
            d.full_merge.segments, d.full_merge.avg_query_us
        ));
        out.push_str(&format!(
            "      \"rebuilt_single_index_avg_query_us\": {:.1},\n",
            d.rebuilt_avg_query_us
        ));
        let sweep: Vec<String> = d
            .thread_sweep
            .iter()
            .map(|p| {
                format!(
                    "{{ \"threads\": {}, \"ingest_s\": {:.3}, \"compact_s\": {:.3} }}",
                    p.threads, p.ingest_s, p.compact_s
                )
            })
            .collect();
        out.push_str(&format!(
            "      \"thread_sweep\": [{}],\n",
            sweep.join(", ")
        ));
        out.push_str("      \"outputs_identical\": true\n");
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_updates_all_corpora_and_renders_json() {
        // Tiny end-to-end run; the identity assertions inside
        // bench_dataset (pre/during/post compaction, all three result
        // modes) are the test.
        let config = UpdateBenchConfig {
            n: 3_000,
            reps: 1,
            patterns: 8,
            batch: 300,
            flush_threshold: 0,
            load_threads: 2,
            threads: vec![1, 2],
        };
        let results = run_update_bench(&config);
        assert_eq!(results.len(), 4);
        let json = render_update_json(&config, &results);
        assert!(json.contains("\"host_cpus\":"));
        assert!(json.contains("\"threads\": [1, 2]"));
        for d in &results {
            assert_eq!(d.thread_sweep.len(), 2);
            assert!(d.thread_sweep.iter().all(|p| p.ingest_s > 0.0));
            assert!(json.contains(&format!("\"name\": \"{}\"", d.name)));
            assert!(d.append_throughput_pos_s > 0.0);
            assert!(d.flushes >= 1);
            assert!(d.pre_compaction.segments > d.post_compaction.segments);
            assert!(d.compaction.merges >= 1);
            assert!(d.compaction.concurrent_queries > 0);
            assert_eq!(d.full_merge.segments, 1);
            assert!(d.visible_p50_us > 0.0);
        }
    }
}
