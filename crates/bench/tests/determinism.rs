//! Determinism suite for the shared-executor parallel paths: at every
//! thread count the parallel construction pipeline must be **byte-identical**
//! to the serial one, across all four preset benchmark corpora.
//!
//! Covered surfaces (the acceptance checklist of the parallel-construction
//! overhaul):
//!
//! * z-estimation tables — strand sequences and extents;
//! * the full minimizer construction pipeline, compared as **persisted
//!   IUSX bytes** (which serialize the `EncodedFactorSet` verbatim, so any
//!   divergence in the parallel factor sort shows up here);
//! * `ShardedIndex` built with a concurrent shard fan-out — size and
//!   query answers;
//! * `LiveIndex` ingesting with parallel segment builds and tiered
//!   compaction — query answers after every phase.

use ius_datasets::corpora::bench_corpora;
use ius_datasets::patterns::PatternSampler;
use ius_index::{
    save_index, IndexFamily, IndexParams, IndexSpec, IndexVariant, QueryScratch, ShardedIndex,
    UncertainIndex,
};
use ius_live::{LiveConfig, LiveIndex};
use ius_weighted::ZEstimation;

/// Thread counts every parallel path is swept over (1 = the inline/serial
/// schedule; 3 exercises uneven chunking; 8 oversubscribes small hosts).
const THREADS: [usize; 4] = [1, 2, 3, 8];

/// Corpus length: small enough for CI, large enough that every corpus
/// spans multiple sort chunks, shards and live segments at 8 threads.
const N: usize = 2_500;

#[test]
fn z_estimation_tables_match_serial_at_every_thread_count() {
    for corpus in bench_corpora(N) {
        let serial = ZEstimation::build(&corpus.x, corpus.z).expect("serial estimation");
        for &t in &THREADS {
            let parallel =
                ZEstimation::build_with_threads(&corpus.x, corpus.z, t).expect("parallel");
            assert_eq!(
                parallel.num_strands(),
                serial.num_strands(),
                "{} t={t}: strand count",
                corpus.name
            );
            for (j, (p, s)) in parallel.strands().iter().zip(serial.strands()).enumerate() {
                assert_eq!(
                    p.seq(),
                    s.seq(),
                    "{} t={t}: strand {j} letters",
                    corpus.name
                );
                assert_eq!(
                    p.extents(),
                    s.extents(),
                    "{} t={t}: strand {j} extents",
                    corpus.name
                );
            }
        }
    }
}

#[test]
fn persisted_index_bytes_match_serial_at_every_thread_count() {
    for corpus in bench_corpora(N) {
        let params = IndexParams::new(corpus.z, corpus.ell, corpus.x.sigma()).expect("params");
        for variant in [IndexVariant::Array, IndexVariant::ArrayGrid] {
            let spec = IndexSpec::new(IndexFamily::Minimizer(variant), params);
            let serial = spec.build(&corpus.x).expect("serial build");
            let mut expected = Vec::new();
            save_index(&serial, &mut expected).expect("serialize serial");
            for &t in &THREADS {
                let parallel = spec
                    .with_threads(t)
                    .build(&corpus.x)
                    .expect("parallel build");
                let mut bytes = Vec::new();
                save_index(&parallel, &mut bytes).expect("serialize parallel");
                assert_eq!(
                    bytes, expected,
                    "{} {variant:?} t={t}: persisted IUSX bytes diverged",
                    corpus.name
                );
            }
        }
    }
}

#[test]
fn sharded_index_matches_serial_at_every_thread_count() {
    for corpus in bench_corpora(N) {
        let x = &corpus.x;
        let params = IndexParams::new(corpus.z, corpus.ell, x.sigma()).expect("params");
        let spec = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::ArrayGrid), params);
        let max_pattern_len = 2 * corpus.ell;
        let patterns = sample_patterns(x, corpus.z, corpus.ell, 24);
        let serial = ShardedIndex::build(x, spec, 4, max_pattern_len).expect("serial shards");
        let expected: Vec<Vec<usize>> =
            patterns.iter().map(|p| query_sharded(&serial, p)).collect();
        for &t in &THREADS {
            let parallel = ShardedIndex::build_with_threads(x, spec, 4, max_pattern_len, t)
                .expect("parallel shards");
            assert_eq!(
                parallel.size_bytes(),
                serial.size_bytes(),
                "{} t={t}: sharded size",
                corpus.name
            );
            for (i, pattern) in patterns.iter().enumerate() {
                assert_eq!(
                    query_sharded(&parallel, pattern),
                    expected[i],
                    "{} t={t}: sharded answer for pattern {i}",
                    corpus.name
                );
            }
        }
    }
}

#[test]
fn live_index_matches_serial_at_every_thread_count() {
    for corpus in bench_corpora(N) {
        let x = &corpus.x;
        let params = IndexParams::new(corpus.z, corpus.ell, x.sigma()).expect("params");
        let spec = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::ArrayGrid), params);
        let max_pattern_len = 2 * corpus.ell;
        let patterns = sample_patterns(x, corpus.z, corpus.ell, 24);
        let expected = live_answers(x, spec, max_pattern_len, &patterns, 1, corpus.name);
        for &t in &THREADS[1..] {
            let got = live_answers(x, spec, max_pattern_len, &patterns, t, corpus.name);
            assert_eq!(
                got, expected,
                "{} t={t}: live answers diverged from serial",
                corpus.name
            );
        }
    }
}

/// Ingests the corpus batch-by-batch into a `LiveIndex` whose segment
/// builds and compaction merges run on a `t`-thread executor, then
/// returns the collect-mode answers after the flush, after tiered
/// compaction to quiescence, and after a full merge (concatenated, so a
/// divergence in any phase fails the comparison).
fn live_answers(
    x: &ius_weighted::WeightedString,
    spec: IndexSpec,
    max_pattern_len: usize,
    patterns: &[Vec<u8>],
    threads: usize,
    name: &str,
) -> Vec<Vec<usize>> {
    let live = LiveIndex::new(
        x.alphabet().clone(),
        spec,
        max_pattern_len,
        LiveConfig {
            flush_threshold: (N / 8).max(2 * max_pattern_len),
            compact_fanout: 2,
            auto_compact: false,
            threads,
        },
    )
    .expect("live index");
    let mut offset = 0usize;
    while offset < x.len() {
        let end = (offset + 300).min(x.len());
        live.append(&x.substring(offset, end).expect("batch"))
            .expect("append");
        offset = end;
    }
    live.flush().expect("flush");
    let mut answers = Vec::with_capacity(patterns.len() * 3);
    let mut collect = |stage: &str| {
        for pattern in patterns {
            answers.push(
                live.query_owned(pattern)
                    .unwrap_or_else(|e| panic!("{name} {stage}: {e}")),
            );
        }
    };
    collect("post-flush");
    while live.compact_once().expect("tiered round") > 0 {}
    collect("post-compaction");
    live.compact_full().expect("full merge");
    collect("full-merge");
    answers
}

fn sample_patterns(
    x: &ius_weighted::WeightedString,
    z: f64,
    ell: usize,
    count: usize,
) -> Vec<Vec<u8>> {
    let est = ZEstimation::build(x, z).expect("estimation");
    let mut sampler = PatternSampler::new(&est, 0xD373);
    let mut patterns = sampler.sample_many(ell, count / 2);
    patterns.extend(sampler.sample_many(2 * ell, count - count / 2));
    assert!(!patterns.is_empty(), "no solid patterns sampled");
    patterns
}

fn query_sharded(index: &ShardedIndex, pattern: &[u8]) -> Vec<usize> {
    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();
    index
        .query_owned_into(pattern, &mut scratch, &mut out)
        .expect("sharded query");
    out
}
