//! The canonical benchmark corpora: one shared definition of the four
//! `(generator, z, ℓ)` configurations the `BENCH_*.json` documents and the
//! `serve` binary's `--corpus` presets are built on, so the copies cannot
//! drift apart — a drifted preset would regenerate a corpus that no longer
//! matches a persisted index and serve wrong answers without an error.

use crate::pangenome::PangenomeConfig;
use crate::rssi::rssi_like;
use crate::uniform::UniformConfig;
use ius_weighted::WeightedString;

/// One benchmark corpus: the generated string plus the benchmark's weight
/// threshold and minimum pattern length for it.
#[derive(Debug, Clone)]
pub struct BenchCorpus {
    /// Stable name (`uniform`, `uniform_high_entropy`, `pangenome`,
    /// `rssi`).
    pub name: &'static str,
    /// Human-readable generator parameters (as recorded in the JSON).
    pub params: String,
    /// The generated weighted string.
    pub x: WeightedString,
    /// The benchmark weight threshold z.
    pub z: f64,
    /// The benchmark minimum pattern length ℓ.
    pub ell: usize,
}

/// Generates one named corpus at length `n`, optionally overriding the
/// preset's generator seed. `None` for an unknown name.
pub fn bench_corpus(name: &str, n: usize, seed: Option<u64>) -> Option<BenchCorpus> {
    Some(match name {
        // Near-deterministic uniform strings: long solid factors.
        "uniform" => BenchCorpus {
            name: "uniform",
            params: "sigma=4 spread=0.05 seed=0xBEC".into(),
            x: UniformConfig {
                n,
                sigma: 4,
                spread: 0.05,
                seed: seed.unwrap_or(0xBEC),
            }
            .generate(),
            z: 8.0,
            ell: 64,
        },
        // High-entropy uniform strings: short solid windows, small ℓ.
        "uniform_high_entropy" => BenchCorpus {
            name: "uniform_high_entropy",
            params: "sigma=4 spread=0.2 seed=0xBEC".into(),
            x: UniformConfig {
                n,
                sigma: 4,
                spread: 0.2,
                seed: seed.unwrap_or(0xBEC),
            }
            .generate(),
            z: 32.0,
            ell: 24,
        },
        // Pangenome-style strings (SNP allele frequencies), the paper's
        // regime.
        "pangenome" => BenchCorpus {
            name: "pangenome",
            params: "delta=0.05 seed=0xDA7A".into(),
            x: PangenomeConfig {
                n,
                delta: 0.05,
                seed: seed.unwrap_or(0xDA7A),
                ..Default::default()
            }
            .generate(),
            z: 32.0,
            ell: 128,
        },
        // Sensor-style strings (the paper's RSSI regime): large alphabet,
        // every position uncertain.
        "rssi" => BenchCorpus {
            name: "rssi",
            params: "sigma=91 channels=16 seed=0x0551".into(),
            x: rssi_like(n, seed.unwrap_or(0x0551)),
            z: 64.0,
            ell: 8,
        },
        _ => return None,
    })
}

/// The names of the four benchmark corpora, in benchmark order.
pub const BENCH_CORPUS_NAMES: [&str; 4] = ["uniform", "uniform_high_entropy", "pangenome", "rssi"];

/// Generates all four benchmark corpora at length `n`.
pub fn bench_corpora(n: usize) -> Vec<BenchCorpus> {
    BENCH_CORPUS_NAMES
        .iter()
        .map(|name| bench_corpus(name, n, None).expect("known corpus name"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_deterministic_and_complete() {
        let all = bench_corpora(500);
        assert_eq!(all.len(), 4);
        for corpus in &all {
            assert_eq!(corpus.x.len(), 500);
            assert!(corpus.z >= 1.0 && corpus.ell >= 1);
            let again = bench_corpus(corpus.name, 500, None).expect("known name");
            assert_eq!(again.x.flat_probs(), corpus.x.flat_probs());
        }
        assert!(bench_corpus("nope", 100, None).is_none());
        // A seed override really changes the corpus.
        let reseeded = bench_corpus("uniform", 500, Some(7)).expect("known name");
        assert_ne!(reseeded.x.flat_probs(), all[0].x.flat_probs());
    }
}
