//! Plain-text interchange format for weighted strings.
//!
//! The format is a simple self-describing matrix, close to the position
//! weight matrix layout of Example 1 in the paper:
//!
//! ```text
//! IUSW 1            # magic + version
//! n <length>
//! sigma <alphabet size>
//! alphabet <bytes as characters>
//! <n lines, each with sigma probabilities separated by spaces>
//! ```
//!
//! It trades compactness for being trivially inspectable and diffable, which
//! is what the examples and the benchmark harness need.

use ius_weighted::{Alphabet, Error, Result, WeightedString};
use std::io::{BufRead, BufReader, Read, Write};

/// Writes `x` in the IUSW text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer (wrapped as
/// [`Error::InvalidParameters`] to stay within the crate error type).
pub fn write_weighted<W: Write>(x: &WeightedString, mut out: W) -> Result<()> {
    let io_err = |e: std::io::Error| Error::InvalidParameters(format!("write failed: {e}"));
    writeln!(out, "IUSW 1").map_err(io_err)?;
    writeln!(out, "n {}", x.len()).map_err(io_err)?;
    writeln!(out, "sigma {}", x.sigma()).map_err(io_err)?;
    let alphabet_str: String = x.alphabet().symbols().iter().map(|&b| b as char).collect();
    writeln!(out, "alphabet {alphabet_str}").map_err(io_err)?;
    for i in 0..x.len() {
        let row: Vec<String> = x
            .distribution(i)
            .iter()
            .map(|p| format!("{p:.9}"))
            .collect();
        writeln!(out, "{}", row.join(" ")).map_err(io_err)?;
    }
    Ok(())
}

/// Reads a weighted string in the IUSW text format.
///
/// # Errors
///
/// [`Error::InvalidParameters`] on malformed input, plus the usual
/// distribution validation errors.
pub fn read_weighted<R: Read>(input: R) -> Result<WeightedString> {
    let mut lines = BufReader::new(input).lines();
    let mut next_line = || -> Result<String> {
        loop {
            match lines.next() {
                Some(Ok(line)) => {
                    let line = line.trim().to_string();
                    if !line.is_empty() && !line.starts_with('#') {
                        return Ok(line);
                    }
                }
                Some(Err(e)) => return Err(Error::InvalidParameters(format!("read failed: {e}"))),
                None => return Err(Error::InvalidParameters("unexpected end of file".into())),
            }
        }
    };

    let magic = next_line()?;
    if magic != "IUSW 1" {
        return Err(Error::InvalidParameters(format!(
            "bad magic line: {magic:?}"
        )));
    }
    let n: usize = parse_field(&next_line()?, "n")?;
    let sigma: usize = parse_field(&next_line()?, "sigma")?;
    let alphabet_line = next_line()?;
    let alphabet_str = alphabet_line
        .strip_prefix("alphabet ")
        .ok_or_else(|| Error::InvalidParameters("missing alphabet line".into()))?;
    let symbols: Vec<u8> = alphabet_str.bytes().collect();
    if symbols.len() != sigma {
        return Err(Error::InvalidParameters(format!(
            "alphabet has {} symbols but sigma is {sigma}",
            symbols.len()
        )));
    }
    let alphabet = Alphabet::new(&symbols)?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let line = next_line()?;
        let row: Vec<f64> = line
            .split_whitespace()
            .map(|t| {
                t.parse::<f64>()
                    .map_err(|e| Error::InvalidParameters(format!("bad probability {t:?}: {e}")))
            })
            .collect::<Result<Vec<f64>>>()?;
        rows.push(row);
    }
    WeightedString::from_rows(alphabet, &rows)
}

fn parse_field(line: &str, name: &str) -> Result<usize> {
    let rest = line.strip_prefix(name).ok_or_else(|| {
        Error::InvalidParameters(format!("expected `{name} <value>`, got {line:?}"))
    })?;
    rest.trim()
        .parse::<usize>()
        .map_err(|e| Error::InvalidParameters(format!("bad {name} value in {line:?}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::UniformConfig;

    #[test]
    fn roundtrip_preserves_probabilities() {
        let x = UniformConfig {
            n: 100,
            sigma: 5,
            spread: 0.7,
            seed: 4,
        }
        .generate();
        let mut buffer = Vec::new();
        write_weighted(&x, &mut buffer).unwrap();
        let y = read_weighted(&buffer[..]).unwrap();
        assert_eq!(x.len(), y.len());
        assert_eq!(x.sigma(), y.sigma());
        for i in 0..x.len() {
            for c in 0..x.sigma() as u8 {
                assert!((x.prob(i, c) - y.prob(i, c)).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(read_weighted(&b"WRONG 1\n"[..]).is_err());
        assert!(read_weighted(&b"IUSW 1\nn 2\nsigma 2\nalphabet AB\n0.5 0.5\n"[..]).is_err());
        assert!(read_weighted(&b"IUSW 1\nn x\n"[..]).is_err());
        assert!(read_weighted(&b"IUSW 1\nn 1\nsigma 3\nalphabet AB\n1 0\n"[..]).is_err());
        assert!(read_weighted(&b""[..]).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a comment\nIUSW 1\n\nn 1\nsigma 2\nalphabet AB\n# row\n0.25 0.75\n";
        let x = read_weighted(text.as_bytes()).unwrap();
        assert_eq!(x.len(), 1);
        assert!((x.prob_symbol(0, b'B').unwrap() - 0.75).abs() < 1e-9);
    }
}
