//! # ius-datasets — synthetic uncertain-string datasets and pattern samplers
//!
//! The paper evaluates on four real weighted strings (Table 2): three
//! pangenome-style DNA datasets (SARS-CoV-2, E. faecium, Human chr. 22 —
//! a reference sequence combined with SNP allele frequencies across many
//! samples) and one sensor dataset (RSSI — per-time-step distributions of
//! received signal strength across IEEE 802.15.4 channels). Those datasets
//! are not redistributable here, so this crate *simulates* them: the
//! generators expose exactly the parameters the experiments vary (length `n`,
//! alphabet size `σ`, fraction of uncertain positions `Δ`, allele-frequency
//! skew), which are the quantities the indexes' behaviour depends on.
//!
//! * [`pangenome`] — reference + SNPs model (`σ = 4`, `Δ` a few percent,
//!   heavily skewed allele frequencies ⇒ long solid factors);
//! * [`rssi`] — multi-channel sensor model (`σ` up to 91, `Δ = 100 %`,
//!   mildly skewed distributions);
//! * [`uniform`] — unstructured random weighted strings for stress tests;
//! * [`patterns`] — query-pattern samplers (patterns are drawn uniformly from
//!   the z-estimation, as in Section 7.1 of the paper);
//! * [`corpora`] — the canonical benchmark corpora (one shared definition
//!   of the four `(generator, z, ℓ)` configurations behind `BENCH_*.json`
//!   and the `serve` binary's presets);
//! * [`io`] — a plain-text interchange format for weighted strings;
//! * [`registry`] — the named, scaled-down stand-ins for the paper's datasets
//!   (`SARS*`, `EFM*`, `HUMAN*`, `RSSI*`) with their default `z`, used by the
//!   benchmark harness and the examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpora;
pub mod io;
pub mod pangenome;
pub mod patterns;
pub mod registry;
pub mod rssi;
pub mod uniform;

pub use corpora::{bench_corpora, bench_corpus, BenchCorpus, BENCH_CORPUS_NAMES};
pub use pangenome::PangenomeConfig;
pub use patterns::PatternSampler;
pub use registry::{standard_datasets, Dataset, Scale};
pub use rssi::RssiConfig;
pub use uniform::UniformConfig;
