//! Pangenome-style weighted strings: a reference sequence plus SNP allele
//! frequencies, the data model behind the paper's SARS / EFM / HUMAN datasets.

use ius_weighted::{Alphabet, WeightedString};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the pangenome generator.
#[derive(Debug, Clone)]
pub struct PangenomeConfig {
    /// Length of the weighted string.
    pub n: usize,
    /// Fraction Δ of positions at which more than one letter has positive
    /// probability (Table 2 reports 3.2 %–6 % for the real datasets).
    pub delta: f64,
    /// Fraction of polymorphic positions that carry a *common* variant
    /// (minor allele frequency up to 0.5); the rest are rare variants.
    pub common_variant_fraction: f64,
    /// Upper bound of the minor allele frequency of rare variants.
    pub rare_minor_ceiling: f64,
    /// Number of simulated samples; allele frequencies are rounded to
    /// multiples of `1/samples`, mimicking frequencies estimated from a
    /// finite cohort.
    pub samples: usize,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl Default for PangenomeConfig {
    fn default() -> Self {
        Self {
            n: 100_000,
            delta: 0.05,
            common_variant_fraction: 0.15,
            rare_minor_ceiling: 0.05,
            samples: 1_000,
            seed: 0xDA7A_5EED,
        }
    }
}

impl PangenomeConfig {
    /// Generates the weighted string described by this configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the fractions are outside `[0, 1]`.
    pub fn generate(&self) -> WeightedString {
        assert!(self.n > 0, "n must be positive");
        assert!(
            (0.0..=1.0).contains(&self.delta),
            "delta must be a fraction"
        );
        assert!(
            (0.0..=1.0).contains(&self.common_variant_fraction),
            "common_variant_fraction must be a fraction"
        );
        assert!(self.samples >= 2, "need at least two samples");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let alphabet = Alphabet::dna();
        let sigma = alphabet.size();
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let reference: usize = rng.gen_range(0..sigma);
            let mut row = vec![0.0f64; sigma];
            if rng.gen_bool(self.delta) {
                // Polymorphic site: draw a minor allele frequency.
                let minor_freq = if rng.gen_bool(self.common_variant_fraction) {
                    rng.gen_range(self.rare_minor_ceiling..0.5)
                } else {
                    rng.gen_range(0.0..self.rare_minor_ceiling)
                };
                // Round to a multiple of 1/samples, keeping at least one
                // minor-allele sample so the position stays ambiguous.
                let minor_count = ((minor_freq * self.samples as f64).round() as usize)
                    .clamp(1, self.samples / 2);
                let minor_freq = minor_count as f64 / self.samples as f64;
                // Occasionally the variant is tri-allelic (two minor alleles).
                let mut alt = rng.gen_range(0..sigma - 1);
                if alt >= reference {
                    alt += 1;
                }
                if rng.gen_bool(0.05) && minor_count >= 2 {
                    let mut alt2 = rng.gen_range(0..sigma - 1);
                    if alt2 >= reference {
                        alt2 += 1;
                    }
                    if alt2 == alt {
                        alt2 = (alt + 1) % sigma;
                        if alt2 == reference {
                            alt2 = (alt2 + 1) % sigma;
                        }
                    }
                    let half = minor_freq / 2.0;
                    row[alt] = half;
                    row[alt2] = minor_freq - half;
                } else {
                    row[alt] = minor_freq;
                }
                row[reference] = 1.0 - minor_freq;
            } else {
                row[reference] = 1.0;
            }
            rows.push(row);
        }
        WeightedString::from_rows(alphabet, &rows)
            .expect("generated rows are valid probability distributions")
    }
}

/// A scaled-down stand-in for the paper's SARS-CoV-2 dataset
/// (n = 29 903, Δ ≈ 3.6 %).
pub fn sars_like(n: usize, seed: u64) -> WeightedString {
    PangenomeConfig {
        n,
        delta: 0.036,
        common_variant_fraction: 0.10,
        rare_minor_ceiling: 0.04,
        samples: 1_181,
        seed,
    }
    .generate()
}

/// A scaled-down stand-in for the paper's E. faecium dataset (Δ ≈ 6 %).
pub fn efm_like(n: usize, seed: u64) -> WeightedString {
    PangenomeConfig {
        n,
        delta: 0.06,
        common_variant_fraction: 0.15,
        rare_minor_ceiling: 0.05,
        samples: 1_432,
        seed,
    }
    .generate()
}

/// A scaled-down stand-in for the paper's Human chromosome 22 dataset
/// (Δ ≈ 3.2 %).
pub fn human_like(n: usize, seed: u64) -> WeightedString {
    PangenomeConfig {
        n,
        delta: 0.032,
        common_variant_fraction: 0.20,
        rare_minor_ceiling: 0.05,
        samples: 2_504,
        seed,
    }
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_matches_configuration() {
        let x = PangenomeConfig {
            n: 20_000,
            delta: 0.05,
            ..Default::default()
        }
        .generate();
        assert_eq!(x.len(), 20_000);
        assert_eq!(x.sigma(), 4);
        let delta = x.uncertainty_fraction();
        assert!((delta - 0.05).abs() < 0.01, "measured Δ = {delta}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = sars_like(5_000, 7);
        let b = sars_like(5_000, 7);
        assert_eq!(a, b);
        let c = sars_like(5_000, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn skewed_frequencies_produce_long_solid_factors() {
        // The whole point of the pangenome regime: with z = 128 there must be
        // solid factors substantially longer than ℓ = 256.
        use ius_weighted::HeavyString;
        let x = efm_like(30_000, 3);
        let z = 128.0;
        let heavy = HeavyString::new(&x);
        // Occurrence probability of the heavy string over windows of length
        // 1024: at least one window should be solid.
        let len = 1024usize;
        let solid_windows = (0..x.len() - len)
            .step_by(len)
            .filter(|&i| {
                let p = heavy.range_probability(i, i + len).unwrap();
                ius_weighted::is_solid(p, z)
            })
            .count();
        assert!(
            solid_windows > 0,
            "no solid window of length {len} for z = {z}"
        );
    }

    #[test]
    fn presets_have_expected_uncertainty() {
        let sars = sars_like(20_000, 1);
        let efm = efm_like(20_000, 1);
        let human = human_like(20_000, 1);
        assert!((sars.uncertainty_fraction() - 0.036).abs() < 0.01);
        assert!((efm.uncertainty_fraction() - 0.06).abs() < 0.012);
        assert!((human.uncertainty_fraction() - 0.032).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "n must be positive")]
    fn zero_length_panics() {
        let _ = PangenomeConfig {
            n: 0,
            ..Default::default()
        }
        .generate();
    }
}
