//! Query-pattern samplers.
//!
//! Section 7.1 of the paper: "for every weighted string of length n, every
//! pattern length m, and every z we used, we selected ⌊nz/200⌋ patterns from
//! the z-estimation of the weighted string, uniformly at random". This module
//! implements exactly that sampler (plus a negative-pattern sampler used by
//! correctness tests): a pattern is a property-respecting factor of length `m`
//! of a uniformly chosen strand position, i.e. a z-solid factor of `X`.

use ius_weighted::ZEstimation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples query patterns from a z-estimation.
#[derive(Debug)]
pub struct PatternSampler<'a> {
    estimation: &'a ZEstimation,
    rng: StdRng,
}

impl<'a> PatternSampler<'a> {
    /// Creates a sampler over `estimation` with a deterministic seed.
    pub fn new(estimation: &'a ZEstimation, seed: u64) -> Self {
        Self {
            estimation,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The number of patterns the paper samples for a given `n` and `z`:
    /// `⌊n·z/200⌋`, clamped to at least 1.
    pub fn paper_pattern_count(n: usize, z: f64) -> usize {
        (((n as f64) * z) / 200.0).floor().max(1.0) as usize
    }

    /// Samples one pattern of length `m` that occurs (respecting the
    /// property) in some strand, or `None` if no strand has a
    /// property-respecting factor of that length.
    pub fn sample(&mut self, m: usize) -> Option<Vec<u8>> {
        let strands = self.estimation.strands();
        if strands.is_empty() || m == 0 {
            return None;
        }
        // Rejection-sample (strand, position) pairs; fall back to a linear
        // scan if the acceptance rate is too low.
        for _ in 0..64 {
            let j = self.rng.gen_range(0..strands.len());
            let strand = &strands[j];
            if strand.len() < m {
                continue;
            }
            let i = self.rng.gen_range(0..=strand.len() - m);
            if strand.extent(i) >= i + m {
                return Some(strand.seq()[i..i + m].to_vec());
            }
        }
        // Deterministic fallback: first admissible window of a random strand
        // order (still seed-deterministic).
        let start_strand = self.rng.gen_range(0..strands.len());
        for off in 0..strands.len() {
            let strand = &strands[(start_strand + off) % strands.len()];
            if strand.len() < m {
                continue;
            }
            let start_pos = self.rng.gen_range(0..=strand.len() - m);
            for i in (start_pos..=strand.len() - m).chain(0..start_pos) {
                if strand.extent(i) >= i + m {
                    return Some(strand.seq()[i..i + m].to_vec());
                }
            }
        }
        None
    }

    /// Samples up to `count` patterns of length `m` (fewer if the estimation
    /// has too few admissible windows).
    pub fn sample_many(&mut self, m: usize, count: usize) -> Vec<Vec<u8>> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            match self.sample(m) {
                Some(p) => out.push(p),
                None => break,
            }
        }
        out
    }

    /// Samples `count` patterns of length `m` drawn uniformly over the
    /// alphabet — overwhelmingly likely to have no solid occurrence for
    /// non-trivial `m`; used as negative controls in tests.
    pub fn sample_random(&mut self, m: usize, count: usize, sigma: usize) -> Vec<Vec<u8>> {
        (0..count)
            .map(|_| (0..m).map(|_| self.rng.gen_range(0..sigma as u8)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ius_weighted::{solid_multiplicity, WeightedString, ZEstimation};

    fn example() -> (WeightedString, ZEstimation) {
        let x = crate::pangenome::efm_like(4_000, 5);
        let est = ZEstimation::build(&x, 16.0).unwrap();
        (x, est)
    }

    #[test]
    fn sampled_patterns_are_solid_factors() {
        let (x, est) = example();
        let mut sampler = PatternSampler::new(&est, 42);
        for m in [8usize, 32, 64] {
            let patterns = sampler.sample_many(m, 20);
            assert!(!patterns.is_empty(), "no patterns of length {m}");
            for p in patterns {
                assert_eq!(p.len(), m);
                // The pattern occurs somewhere in X with probability ≥ 1/z.
                let solid_somewhere = (0..=x.len() - m)
                    .any(|i| solid_multiplicity(x.occurrence_probability(i, &p), 16.0) >= 1);
                assert!(solid_somewhere, "sampled pattern is not solid anywhere");
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let (_x, est) = example();
        let a = PatternSampler::new(&est, 7).sample_many(16, 10);
        let b = PatternSampler::new(&est, 7).sample_many(16, 10);
        let c = PatternSampler::new(&est, 8).sample_many(16, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn paper_pattern_count_formula() {
        assert_eq!(PatternSampler::paper_pattern_count(29_903, 1024.0), 153_103);
        assert_eq!(PatternSampler::paper_pattern_count(100, 1.0), 1);
        assert_eq!(PatternSampler::paper_pattern_count(10, 1.0), 1);
    }

    #[test]
    fn oversized_patterns_return_none() {
        let (_x, est) = example();
        let mut sampler = PatternSampler::new(&est, 1);
        assert!(sampler.sample(100_000).is_none());
        assert!(sampler.sample(0).is_none());
    }

    #[test]
    fn random_patterns_have_requested_shape() {
        let (_x, est) = example();
        let mut sampler = PatternSampler::new(&est, 3);
        let pats = sampler.sample_random(12, 5, 4);
        assert_eq!(pats.len(), 5);
        assert!(pats
            .iter()
            .all(|p| p.len() == 12 && p.iter().all(|&c| c < 4)));
    }
}
