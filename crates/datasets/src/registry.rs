//! Named, scaled-down stand-ins for the paper's datasets.
//!
//! Table 2 of the paper lists four datasets with their lengths, alphabet
//! sizes, uncertainty fractions Δ and default weight thresholds. The
//! benchmark harness reproduces every experiment on the synthetic stand-ins
//! below; they keep the Δ, σ and default-z structure of the originals while
//! scaling the length `n` so that the full sweep of experiments runs on a
//! workstation. The [`Scale`] knob controls that length.

use crate::pangenome;
use crate::rssi;
use ius_weighted::WeightedString;

/// How large the stand-in datasets should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few thousand positions — for unit/integration tests.
    Tiny,
    /// Tens of thousands of positions — the default for `reproduce --quick`.
    Small,
    /// Hundreds of thousands of positions — the default for full benchmark
    /// runs (`reproduce --full`).
    Full,
}

impl Scale {
    fn factor(&self) -> f64 {
        match self {
            Scale::Tiny => 0.05,
            Scale::Small => 0.4,
            Scale::Full => 1.0,
        }
    }
}

/// A named dataset with the metadata the experiments need.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Name used in reports (`SARS*`, `EFM*`, …) — the `*` marks that it is a
    /// synthetic stand-in for the paper's dataset of the same name.
    pub name: &'static str,
    /// The weighted string itself.
    pub weighted: WeightedString,
    /// The default weight-threshold denominator `z` used by the paper for
    /// this dataset.
    pub default_z: f64,
    /// The z values swept in Figure 7/9/11-style experiments.
    pub z_sweep: Vec<f64>,
}

impl Dataset {
    /// Length of the dataset.
    pub fn n(&self) -> usize {
        self.weighted.len()
    }

    /// Alphabet size.
    pub fn sigma(&self) -> usize {
        self.weighted.sigma()
    }

    /// Fraction of uncertain positions (Δ of Table 2), as a percentage.
    pub fn delta_percent(&self) -> f64 {
        self.weighted.uncertainty_fraction() * 100.0
    }
}

/// Base lengths of the stand-ins at [`Scale::Full`]; chosen so that the full
/// experiment sweep (which builds `O(n·z)`-sized baselines) stays within a
/// workstation's memory, while preserving the relative sizes of the paper's
/// datasets (SARS ≪ EFM < HUMAN; RSSI in between).
const SARS_FULL_N: usize = 29_903; // same length as the real SARS-CoV-2 genome
const EFM_FULL_N: usize = 150_000;
const HUMAN_FULL_N: usize = 250_000;
const RSSI_FULL_N: usize = 100_000;

/// The pangenome-style stand-in for SARS-CoV-2 (σ = 4, Δ ≈ 3.6 %, default z
/// chosen to keep `n·z` within workstation reach; the paper uses 1024 on the
/// real 29 903-long genome and we keep that default at full scale).
pub fn sars_star(scale: Scale) -> Dataset {
    let n = scale_n(SARS_FULL_N, scale);
    Dataset {
        name: "SARS*",
        weighted: pangenome::sars_like(n, 0x5A25),
        default_z: match scale {
            Scale::Tiny => 64.0,
            Scale::Small => 256.0,
            Scale::Full => 1024.0,
        },
        z_sweep: vec![64.0, 128.0, 256.0, 512.0, 1024.0],
    }
}

/// The pangenome-style stand-in for E. faecium (σ = 4, Δ ≈ 6 %, default z = 128).
pub fn efm_star(scale: Scale) -> Dataset {
    let n = scale_n(EFM_FULL_N, scale);
    Dataset {
        name: "EFM*",
        weighted: pangenome::efm_like(n, 0xEF01),
        default_z: 128.0,
        z_sweep: vec![8.0, 16.0, 32.0, 64.0, 128.0],
    }
}

/// The pangenome-style stand-in for Human chromosome 22 (σ = 4, Δ ≈ 3.2 %,
/// default z = 8).
pub fn human_star(scale: Scale) -> Dataset {
    let n = scale_n(HUMAN_FULL_N, scale);
    Dataset {
        name: "HUMAN*",
        weighted: pangenome::human_like(n, 0x40A2),
        default_z: 8.0,
        z_sweep: vec![2.0, 4.0, 8.0, 16.0, 32.0],
    }
}

/// The sensor stand-in for the RSSI dataset (σ = 91, Δ = 100 %, default z = 16).
pub fn rssi_star(scale: Scale) -> Dataset {
    let n = scale_n(RSSI_FULL_N, scale);
    Dataset {
        name: "RSSI*",
        weighted: rssi::rssi_like(n, 0x0551),
        default_z: 16.0,
        z_sweep: vec![4.0, 8.0, 16.0, 32.0, 64.0],
    }
}

/// All four stand-ins, in the order of Table 2.
pub fn standard_datasets(scale: Scale) -> Vec<Dataset> {
    vec![
        sars_star(scale),
        efm_star(scale),
        human_star(scale),
        rssi_star(scale),
    ]
}

fn scale_n(full: usize, scale: Scale) -> usize {
    ((full as f64 * scale.factor()).round() as usize).max(1_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_datasets_have_expected_shape() {
        let datasets = standard_datasets(Scale::Tiny);
        assert_eq!(datasets.len(), 4);
        let names: Vec<&str> = datasets.iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["SARS*", "EFM*", "HUMAN*", "RSSI*"]);
        for d in &datasets {
            assert!(d.n() >= 1_000);
            assert!(d.default_z >= 1.0);
            assert!(!d.z_sweep.is_empty());
        }
        // Table 2 shape: σ = 4 for the DNA sets, 91 for RSSI; Δ small for DNA,
        // 100 % for RSSI.
        assert_eq!(datasets[0].sigma(), 4);
        assert_eq!(datasets[3].sigma(), 91);
        assert!(datasets[0].delta_percent() < 10.0);
        assert!((datasets[3].delta_percent() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn scales_are_ordered() {
        let tiny = sars_star(Scale::Tiny).n();
        let small = sars_star(Scale::Small).n();
        let full = sars_star(Scale::Full).n();
        assert!(tiny < small && small < full);
        assert_eq!(full, 29_903);
    }

    #[test]
    fn datasets_are_reproducible() {
        let a = efm_star(Scale::Tiny);
        let b = efm_star(Scale::Tiny);
        assert_eq!(a.weighted, b.weighted);
    }
}
