//! Sensor-style weighted strings: the RSSI model of the paper.
//!
//! In the CRAWDAD RSSI dataset every position is a distribution over σ = 91
//! signal-strength values, obtained as the fraction of IEEE 802.15.4 channels
//! that reported each value at that time step. We simulate the same shape: a
//! slowly drifting true signal level, observed by `channels` noisy channels
//! whose empirical histogram becomes the per-position distribution. Every
//! position is uncertain (Δ = 100 %), distributions are concentrated around
//! the true level, and both `n` and `σ` are free parameters — exactly the
//! knobs Figures 14 and 16 of the paper vary.

use ius_weighted::{Alphabet, WeightedString};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the RSSI-style generator.
#[derive(Debug, Clone)]
pub struct RssiConfig {
    /// Length of the weighted string.
    pub n: usize,
    /// Alphabet size σ (91 in the real dataset; 16–64 in the scaled variants).
    pub sigma: usize,
    /// Number of observing channels (16 in IEEE 802.15.4).
    pub channels: usize,
    /// Probability that a channel reports a value off by one step.
    pub noise: f64,
    /// Probability that the underlying level drifts at a step.
    pub drift: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RssiConfig {
    fn default() -> Self {
        Self {
            n: 50_000,
            sigma: 91,
            channels: 16,
            noise: 0.35,
            drift: 0.2,
            seed: 0x0551,
        }
    }
}

impl RssiConfig {
    /// Generates the weighted string described by this configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `sigma < 3`, or `channels == 0`.
    pub fn generate(&self) -> WeightedString {
        assert!(self.n > 0, "n must be positive");
        assert!(self.sigma >= 3, "sigma must be at least 3");
        assert!(self.channels > 0, "need at least one channel");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let alphabet = Alphabet::integer(self.sigma).expect("sigma validated above");
        let mut level: i64 = (self.sigma / 2) as i64;
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            // Drift of the underlying level.
            if rng.gen_bool(self.drift) {
                level += if rng.gen_bool(0.5) { 1 } else { -1 };
                level = level.clamp(1, self.sigma as i64 - 2);
            }
            // Channel observations.
            let mut counts = vec![0u32; self.sigma];
            for _ in 0..self.channels {
                let mut v = level;
                if rng.gen_bool(self.noise) {
                    v += if rng.gen_bool(0.5) { 1 } else { -1 };
                    if rng.gen_bool(0.2) {
                        v += if rng.gen_bool(0.5) { 1 } else { -1 };
                    }
                }
                let v = v.clamp(0, self.sigma as i64 - 1) as usize;
                counts[v] += 1;
            }
            // Guarantee Δ = 100 %: if all channels agreed, nudge one reading.
            if counts.iter().filter(|&&c| c > 0).count() == 1 {
                let v = counts
                    .iter()
                    .position(|&c| c > 0)
                    .expect("some value observed");
                let neighbour = if v + 1 < self.sigma { v + 1 } else { v - 1 };
                counts[v] -= 1;
                counts[neighbour] += 1;
            }
            let total: f64 = self.channels as f64;
            rows.push(counts.into_iter().map(|c| c as f64 / total).collect());
        }
        WeightedString::from_rows(alphabet, &rows)
            .expect("channel histograms are valid distributions")
    }
}

/// A scaled-down stand-in for the paper's RSSI dataset (σ = 91, Δ = 100 %).
pub fn rssi_like(n: usize, seed: u64) -> WeightedString {
    RssiConfig {
        n,
        seed,
        ..Default::default()
    }
    .generate()
}

/// The `RSSI_{n,σ}` family of the paper: the base string scaled in length and
/// re-quantised to a smaller alphabet.
pub fn rssi_scaled(n: usize, sigma: usize, seed: u64) -> WeightedString {
    RssiConfig {
        n,
        sigma,
        seed,
        ..Default::default()
    }
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_position_is_uncertain() {
        let x = rssi_like(5_000, 1);
        assert_eq!(x.len(), 5_000);
        assert_eq!(x.sigma(), 91);
        assert_eq!(x.uncertainty_fraction(), 1.0);
    }

    #[test]
    fn distributions_are_concentrated() {
        // The heavy letter should usually carry well over half the mass —
        // otherwise no solid factors of useful length exist for z = 16.
        let x = rssi_like(2_000, 2);
        let mut heavy_mass = 0.0;
        for i in 0..x.len() {
            heavy_mass += x.distribution(i).iter().cloned().fold(0.0, f64::max);
        }
        heavy_mass /= x.len() as f64;
        assert!(heavy_mass > 0.55, "average heavy mass {heavy_mass} too low");
        assert!(heavy_mass < 0.999, "distributions should stay uncertain");
    }

    #[test]
    fn alphabet_scaling() {
        for sigma in [16usize, 32, 64, 91] {
            let x = rssi_scaled(1_000, sigma, 3);
            assert_eq!(x.sigma(), sigma);
            assert_eq!(x.uncertainty_fraction(), 1.0);
        }
    }

    #[test]
    fn deterministic_generation() {
        assert_eq!(rssi_like(1_000, 9), rssi_like(1_000, 9));
        assert_ne!(rssi_like(1_000, 9), rssi_like(1_000, 10));
    }

    #[test]
    #[should_panic(expected = "sigma must be at least 3")]
    fn tiny_alphabet_panics() {
        let _ = RssiConfig {
            sigma: 2,
            ..Default::default()
        }
        .generate();
    }
}
