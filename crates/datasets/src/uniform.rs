//! Unstructured random weighted strings, for stress tests and ablations.

use ius_weighted::{Alphabet, WeightedString};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the uniform generator: every position draws an
/// independent random distribution with a configurable concentration.
#[derive(Debug, Clone)]
pub struct UniformConfig {
    /// Length of the weighted string.
    pub n: usize,
    /// Alphabet size σ.
    pub sigma: usize,
    /// Concentration of the per-position distributions: 0 gives almost
    /// deterministic positions, 1 gives fully uniform positions.
    pub spread: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UniformConfig {
    fn default() -> Self {
        Self {
            n: 10_000,
            sigma: 4,
            spread: 0.5,
            seed: 0xF00D,
        }
    }
}

impl UniformConfig {
    /// Generates the weighted string described by this configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `sigma == 0`, or `spread` is not in `[0, 1]`.
    pub fn generate(&self) -> WeightedString {
        assert!(self.n > 0, "n must be positive");
        assert!(self.sigma > 0, "sigma must be positive");
        assert!(
            (0.0..=1.0).contains(&self.spread),
            "spread must be in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let alphabet = Alphabet::integer(self.sigma).expect("sigma bounded by u8");
        let rows: Vec<Vec<f64>> = (0..self.n)
            .map(|_| {
                let major = rng.gen_range(0..self.sigma);
                let minor_mass: f64 = if self.spread > 0.0 {
                    rng.gen_range(0.0..self.spread)
                } else {
                    0.0
                };
                let mut row = vec![0.0f64; self.sigma];
                if self.sigma == 1 {
                    row[0] = 1.0;
                    return row;
                }
                // Distribute the minor mass over the other letters randomly.
                let mut weights: Vec<f64> = (0..self.sigma - 1)
                    .map(|_| rng.gen_range(0.01..1.0))
                    .collect();
                let total: f64 = weights.iter().sum();
                weights.iter_mut().for_each(|w| *w *= minor_mass / total);
                let mut it = weights.into_iter();
                for (c, slot) in row.iter_mut().enumerate() {
                    if c != major {
                        *slot = it.next().expect("one weight per non-major letter");
                    }
                }
                row[major] = 1.0 - minor_mass;
                row
            })
            .collect();
        WeightedString::from_rows(alphabet, &rows).expect("rows are valid distributions")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_parameters() {
        let x = UniformConfig {
            n: 500,
            sigma: 6,
            spread: 0.8,
            seed: 1,
        }
        .generate();
        assert_eq!(x.len(), 500);
        assert_eq!(x.sigma(), 6);
    }

    #[test]
    fn zero_spread_is_deterministic_string() {
        let x = UniformConfig {
            n: 200,
            sigma: 4,
            spread: 0.0,
            seed: 2,
        }
        .generate();
        assert_eq!(x.uncertainty_fraction(), 0.0);
    }

    #[test]
    fn single_letter_alphabet() {
        let x = UniformConfig {
            n: 50,
            sigma: 1,
            spread: 0.5,
            seed: 3,
        }
        .generate();
        assert_eq!(x.sigma(), 1);
        assert_eq!(x.prob(0, 0), 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = UniformConfig {
            seed: 11,
            ..Default::default()
        }
        .generate();
        let b = UniformConfig {
            seed: 11,
            ..Default::default()
        }
        .generate();
        assert_eq!(a, b);
    }
}
