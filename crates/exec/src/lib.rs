//! # ius-exec — the workspace's one thread executor
//!
//! Before this crate, three subsystems each rolled their own threading:
//! the query batcher kept a scoped-thread fan-out in `ius_query`, the
//! server spawned an acceptor plus a worker pool by hand, and the live
//! index spawned an off-lock compaction thread. This crate extracts the
//! two shapes they all reduce to, so there is exactly one executor
//! implementation to audit:
//!
//! * [`Executor`] — a fixed-width **scoped fan-out** for finite task
//!   lists. `N` tasks are split into at most `threads` contiguous chunks,
//!   one scoped thread per chunk; results come back **in input order**,
//!   and a panicking task poisons **only its own slot** with a typed
//!   [`TaskPanic`] (the same isolation contract the PR-4 server worker
//!   loop established for connections). With one worker (or one task) the
//!   tasks run inline on the caller's thread — no spawn, no overhead —
//!   which is what makes `threads = 1` behave identically to a serial
//!   loop.
//! * [`WorkerPool`] — a bag of **named, long-running** threads (a server
//!   acceptor, protocol workers, a background compactor) with an explicit
//!   join. Unlike the fan-out these outlive the function that spawned
//!   them, so they are `'static` and non-scoped; the pool only tracks and
//!   joins them.
//!
//! Determinism is the point, not an accident: every parallel construction
//! path in the workspace (z-estimation transpose, factor-set sorting,
//! shard and segment builds) is required to produce **byte-identical**
//! output at every thread count, and the executor's contribution is that
//! task `i`'s result always lands in slot `i` regardless of which worker
//! ran it or when it finished.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;

/// A task panicked. Only that task's slot is poisoned; every other task
/// of the same [`Executor::run`] call completes and reports normally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Index of the panicking task (its position in the input order).
    pub task: usize,
    /// The panic payload, stringified (`&str` and `String` payloads are
    /// carried verbatim; anything else is summarised).
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.task, self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Stringifies a caught panic payload (the two payload types `panic!`
/// actually produces, with a fallback for exotic ones).
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A fixed-width scoped-thread executor for finite task lists.
///
/// Cloning is free (the executor is just a thread count); every call to
/// [`Executor::run`] / [`Executor::run_with`] spawns its own scoped
/// threads and joins them before returning, so the executor holds no
/// threads, no queues and no state between calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor {
    /// An executor over all available CPUs.
    pub fn new() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }

    /// An executor over exactly `threads` workers (`0` means all
    /// available CPUs).
    pub fn with_threads(threads: usize) -> Self {
        if threads == 0 {
            Self::new()
        } else {
            Self { threads }
        }
    }

    /// The configured worker count (at least 1).
    pub fn threads(&self) -> usize {
        self.threads.max(1)
    }

    /// Runs `count` stateless tasks; see [`Executor::run_with`] for the
    /// full contract.
    pub fn run<T, F>(&self, count: usize, task: F) -> Vec<Result<T, TaskPanic>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_with(count, || (), |i, _state| task(i))
    }

    /// Runs tasks `0..count`, giving each worker one mutable state built
    /// by `init` (a scratch buffer, a reusable allocation), and returns
    /// the results **in input order**: slot `i` holds task `i`'s result.
    ///
    /// Tasks are split into at most [`Executor::threads`] contiguous
    /// chunks, one scoped thread per chunk — the same static schedule at
    /// every thread count, which is what parallel construction paths rely
    /// on for byte-identical output. With one worker (or fewer than two
    /// tasks) everything runs inline on the caller's thread.
    ///
    /// A panicking task poisons only its own slot (a typed
    /// [`TaskPanic`]); its worker rebuilds the per-worker state via
    /// `init` — it may have been left inconsistent mid-panic — and keeps
    /// running the remaining tasks of its chunk.
    pub fn run_with<S, T, I, F>(&self, count: usize, init: I, task: F) -> Vec<Result<T, TaskPanic>>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        let mut slots: Vec<Option<Result<T, TaskPanic>>> = Vec::with_capacity(count);
        slots.resize_with(count, || None);
        let workers = self.threads().min(count.max(1));
        let fill = |base: usize, chunk_slots: &mut [Option<Result<T, TaskPanic>>]| {
            let mut state = init();
            for (j, slot) in chunk_slots.iter_mut().enumerate() {
                let index = base + j;
                *slot = Some(
                    catch_unwind(AssertUnwindSafe(|| task(index, &mut state))).map_err(|payload| {
                        // The state may be mid-mutation: rebuild it before
                        // the next task of this chunk.
                        state = init();
                        TaskPanic {
                            task: index,
                            message: payload_message(payload.as_ref()),
                        }
                    }),
                );
            }
        };
        if workers <= 1 {
            fill(0, &mut slots);
        } else {
            let chunk = count.div_ceil(workers);
            std::thread::scope(|scope| {
                for (w, chunk_slots) in slots.chunks_mut(chunk).enumerate() {
                    let fill = &fill;
                    scope.spawn(move || fill(w * chunk, chunk_slots));
                }
            });
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every task slot is filled"))
            .collect()
    }
}

/// A bag of named, long-running threads with an explicit join — the
/// shape of the server's acceptor + worker pool and the live index's
/// background compactor.
///
/// Dropping the pool does **not** stop or join the threads (they detach),
/// matching the serving layer's contract that only an explicit shutdown
/// tears a server down; call [`WorkerPool::join_all`] after signalling
/// the threads to stop.
#[derive(Debug, Default)]
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Spawns a named thread into the pool.
    ///
    /// # Panics
    ///
    /// If the OS refuses to spawn a thread.
    pub fn spawn<F>(&mut self, name: &str, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let handle = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(f)
            .unwrap_or_else(|e| panic!("spawning thread {name}: {e}"));
        self.handles.push(handle);
    }

    /// Number of threads spawned and not yet joined.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// `true` iff no thread is tracked.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Joins every tracked thread, returning how many of them had
    /// panicked (their panics are swallowed — a crashed worker must not
    /// take the joining thread down with it).
    pub fn join_all(&mut self) -> usize {
        let mut panicked = 0usize;
        for handle in self.handles.drain(..) {
            if handle.join().is_err() {
                panicked += 1;
            }
        }
        panicked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order_for_any_thread_count() {
        for threads in [1usize, 2, 3, 8, 64] {
            let executor = Executor::with_threads(threads);
            assert_eq!(executor.threads(), threads);
            let results = executor.run(37, |i| i * i);
            let values: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
            let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
            assert_eq!(values, expected, "threads = {threads}");
        }
    }

    #[test]
    fn a_panicking_task_poisons_only_its_own_slot_and_surfaces_typed() {
        for threads in [1usize, 2, 8] {
            let executor = Executor::with_threads(threads);
            let results = executor.run(10, |i| {
                if i == 4 {
                    panic!("task four exploded");
                }
                i + 100
            });
            for (i, result) in results.iter().enumerate() {
                if i == 4 {
                    let err = result.as_ref().unwrap_err();
                    assert_eq!(err.task, 4);
                    assert!(err.message.contains("task four exploded"));
                    assert!(err.to_string().contains("task 4 panicked"));
                } else {
                    assert_eq!(*result.as_ref().unwrap(), i + 100, "threads = {threads}");
                }
            }
        }
    }

    #[test]
    fn a_panic_rebuilds_the_worker_state_before_the_next_task() {
        // One worker ⇒ one shared state across all tasks. The panic in
        // task 1 happens after the state was corrupted; task 2 must see a
        // fresh state, not the corrupted one.
        let inits = AtomicUsize::new(0);
        let results = Executor::with_threads(1).run_with(
            3,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |i, state| {
                *state = i + 1;
                if i == 1 {
                    panic!("corrupted");
                }
                *state
            },
        );
        assert_eq!(results[0], Ok(1));
        assert!(results[1].is_err());
        assert_eq!(results[2], Ok(3));
        // Initial state + the rebuild after the panic.
        assert_eq!(inits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn non_string_panic_payloads_are_summarised() {
        let results = Executor::with_threads(1).run(1, |_| {
            std::panic::panic_any(42usize);
        });
        assert_eq!(
            results[0].as_ref().unwrap_err().message,
            "non-string panic payload"
        );
    }

    #[test]
    fn zero_tasks_and_single_worker_edge_cases() {
        let executor = Executor::with_threads(8);
        let results: Vec<Result<usize, TaskPanic>> = executor.run(0, |i| i);
        assert!(results.is_empty());
        // 0 threads means "all CPUs", never 0 workers.
        let all = Executor::with_threads(0);
        assert!(all.threads() >= 1);
        assert_eq!(Executor::default().threads(), all.threads());
        let one = Executor::with_threads(1);
        let results = one.run(5, |i| i * 2);
        assert_eq!(
            results.into_iter().map(|r| r.unwrap()).collect::<Vec<_>>(),
            vec![0, 2, 4, 6, 8]
        );
        // A single task never spawns: it runs inline even on a wide
        // executor (count caps the worker count).
        let results = executor.run(1, |i| i + 9);
        assert_eq!(results[0], Ok(9));
    }

    #[test]
    fn per_worker_state_is_initialised_once_per_worker() {
        let inits = AtomicUsize::new(0);
        let executor = Executor::with_threads(4);
        let results = executor.run_with(
            64,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                Vec::<usize>::new()
            },
            |i, scratch| {
                scratch.push(i);
                scratch.len()
            },
        );
        assert_eq!(results.len(), 64);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(inits.load(Ordering::SeqCst), 4);
        // Chunked static schedule: worker w owns tasks [w·16, w·16+16),
        // so within a chunk the per-worker scratch length counts up.
        let lengths: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
        for w in 0..4 {
            for j in 0..16 {
                assert_eq!(lengths[w * 16 + j], j + 1);
            }
        }
    }

    #[test]
    fn worker_pool_joins_and_reports_panics() {
        let mut pool = WorkerPool::new();
        assert!(pool.is_empty());
        pool.spawn("ius-test-ok", || {});
        pool.spawn("ius-test-panic", || panic!("worker down"));
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.join_all(), 1);
        assert!(pool.is_empty());
        // Joining an empty pool is a no-op.
        assert_eq!(pool.join_all(), 0);
    }
}
