//! Durability I/O primitives shared by the persistence and WAL layers.
//!
//! Three pieces, all std-only:
//!
//! * a hand-rolled **CRC32** (IEEE 802.3, the polynomial used by zip/png)
//!   with incremental hashing and [`Crc32Writer`] / [`Crc32Reader`] stream
//!   adapters, so every on-disk format can carry a checksum trailer;
//! * the [`DurableSink`] abstraction — `Write` plus an explicit
//!   [`sync`](DurableSink::sync) barrier — that all durability I/O is
//!   routed through, so tests can substitute a scripted fault device for
//!   a real file;
//! * [`SimSink`], an in-memory sink driven by a [`FaultPlan`]: full disks
//!   (ENOSPC), torn writes, device crashes after N bytes, and failing
//!   fsyncs, each surfaced as the same typed `io::Error` a real kernel
//!   would return. The bytes that "survived" are inspectable afterwards,
//!   which is what the crash-recovery property tests replay from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};

/// The reflected IEEE CRC32 polynomial.
const CRC32_POLY: u32 = 0xEDB8_8320;

/// Byte-at-a-time lookup table for [`CRC32_POLY`], built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC32_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Incremental CRC32 (IEEE) hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut state = self.state;
        for &b in bytes {
            state = (state >> 8) ^ CRC32_TABLE[((state ^ b as u32) & 0xFF) as usize];
        }
        self.state = state;
    }

    /// The checksum over everything fed so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// CRC32 (IEEE) of one byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(bytes);
    hasher.finish()
}

/// A writer adapter that checksums every byte passed through it.
#[derive(Debug)]
pub struct Crc32Writer<W> {
    inner: W,
    hasher: Crc32,
}

impl<W: Write> Crc32Writer<W> {
    /// Wraps `inner`.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            hasher: Crc32::new(),
        }
    }

    /// The checksum of everything written so far.
    pub fn crc(&self) -> u32 {
        self.hasher.finish()
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for Crc32Writer<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hasher.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A reader adapter that checksums every byte passed through it.
#[derive(Debug)]
pub struct Crc32Reader<R> {
    inner: R,
    hasher: Crc32,
}

impl<R: Read> Crc32Reader<R> {
    /// Wraps `inner`.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            hasher: Crc32::new(),
        }
    }

    /// The checksum of everything read so far.
    pub fn crc(&self) -> u32 {
        self.hasher.finish()
    }

    /// Unwraps the inner reader.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// The inner reader (for reading trailer bytes *outside* the
    /// checksummed region).
    pub fn inner_mut(&mut self) -> &mut R {
        &mut self.inner
    }
}

impl<R: Read> Read for Crc32Reader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hasher.update(&buf[..n]);
        Ok(n)
    }
}

/// A sink durable appends are routed through: sequential writes plus an
/// explicit [`sync`](DurableSink::sync) barrier (fsync on a real file).
///
/// The WAL holds one of these; production code hands it a
/// [`std::fs::File`], the fault-injection tests hand it a [`SimSink`].
pub trait DurableSink: Write + Send {
    /// Forces everything written so far to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

impl DurableSink for std::fs::File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

/// Scripted failures for a [`SimSink`]. All limits are byte offsets into
/// (or ordinals of operations on) the sink's lifetime; `None` disables
/// that fault.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Device capacity in bytes: the write that would exceed it is torn
    /// at the boundary and every later write fails with
    /// [`io::ErrorKind::StorageFull`] (ENOSPC). The device stays alive.
    pub disk_capacity: Option<u64>,
    /// Byte offset at which the device crashes: the write reaching it is
    /// torn there, and every later write *and* sync fails. Models power
    /// loss mid-write.
    pub crash_at: Option<u64>,
    /// 0-based ordinal of the first `sync` call that fails (it and every
    /// later one return an error).
    pub fail_sync_from: Option<u64>,
}

/// An in-memory [`DurableSink`] executing a [`FaultPlan`]. The bytes the
/// "device" retained are shared through an `Arc` so a test can inspect
/// what survived after the sink was moved into a WAL.
#[derive(Debug)]
pub struct SimSink {
    media: Arc<Mutex<Vec<u8>>>,
    plan: FaultPlan,
    written: u64,
    syncs: u64,
    crashed: bool,
}

impl SimSink {
    /// A sink with no scripted faults (a plain in-memory device).
    pub fn healthy() -> Self {
        Self::new(FaultPlan::default())
    }

    /// A sink executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            media: Arc::new(Mutex::new(Vec::new())),
            plan,
            written: 0,
            syncs: 0,
            crashed: false,
        }
    }

    /// Shared handle to the surviving bytes; clone it *before* moving the
    /// sink into a WAL.
    pub fn media(&self) -> Arc<Mutex<Vec<u8>>> {
        Arc::clone(&self.media)
    }

    /// Snapshot of the surviving bytes.
    pub fn contents(&self) -> Vec<u8> {
        self.media.lock().expect("sim media lock").clone()
    }

    /// Sync calls observed so far.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    fn crash_error() -> io::Error {
        io::Error::new(io::ErrorKind::BrokenPipe, "simulated device crash")
    }

    fn enospc_error() -> io::Error {
        io::Error::new(io::ErrorKind::StorageFull, "simulated full disk")
    }
}

impl Write for SimSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.crashed {
            return Err(Self::crash_error());
        }
        if buf.is_empty() {
            return Ok(0);
        }
        // The crash offset tears the write that reaches it and then kills
        // the device; a full disk tears at the capacity boundary but the
        // device stays alive (later writes fail with ENOSPC, not a crash).
        if let Some(crash_at) = self.plan.crash_at {
            let room = crash_at.saturating_sub(self.written);
            if (buf.len() as u64) > room {
                let accepted = room as usize;
                self.media
                    .lock()
                    .expect("sim media lock")
                    .extend_from_slice(&buf[..accepted]);
                self.written += accepted as u64;
                self.crashed = true;
                return if accepted > 0 {
                    Ok(accepted)
                } else {
                    Err(Self::crash_error())
                };
            }
        }
        if let Some(capacity) = self.plan.disk_capacity {
            let room = capacity.saturating_sub(self.written);
            if (buf.len() as u64) > room {
                let accepted = room as usize;
                self.media
                    .lock()
                    .expect("sim media lock")
                    .extend_from_slice(&buf[..accepted]);
                self.written += accepted as u64;
                return if accepted > 0 {
                    Ok(accepted)
                } else {
                    Err(Self::enospc_error())
                };
            }
        }
        self.media
            .lock()
            .expect("sim media lock")
            .extend_from_slice(buf);
        self.written += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl DurableSink for SimSink {
    fn sync(&mut self) -> io::Result<()> {
        if self.crashed {
            return Err(Self::crash_error());
        }
        let ordinal = self.syncs;
        self.syncs += 1;
        if self.plan.fail_sync_from.is_some_and(|k| ordinal >= k) {
            return Err(io::Error::other("simulated fsync failure"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_answer() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut hasher = Crc32::new();
        for chunk in data.chunks(7) {
            hasher.update(chunk);
        }
        assert_eq!(hasher.finish(), crc32(data));
    }

    #[test]
    fn writer_and_reader_agree() {
        let payload = b"checksummed payload bytes".to_vec();
        let mut sink = Vec::new();
        let mut writer = Crc32Writer::new(&mut sink);
        writer.write_all(&payload).unwrap();
        let written_crc = writer.crc();
        let mut reader = Crc32Reader::new(&sink[..]);
        let mut back = Vec::new();
        reader.read_to_end(&mut back).unwrap();
        assert_eq!(back, payload);
        assert_eq!(reader.crc(), written_crc);
        assert_eq!(written_crc, crc32(&payload));
    }

    #[test]
    fn sim_sink_full_disk_tears_then_refuses() {
        let mut sink = SimSink::new(FaultPlan {
            disk_capacity: Some(10),
            ..Default::default()
        });
        assert_eq!(sink.write(&[1u8; 6]).unwrap(), 6);
        // The write crossing the boundary is torn at it.
        assert_eq!(sink.write(&[2u8; 6]).unwrap(), 4);
        let err = sink.write(&[3u8; 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        // The device is alive: what landed is readable and syncable.
        assert_eq!(sink.contents().len(), 10);
        sink.sync().unwrap();
    }

    #[test]
    fn sim_sink_crash_kills_everything_after_offset() {
        let media;
        {
            let mut sink = SimSink::new(FaultPlan {
                crash_at: Some(5),
                ..Default::default()
            });
            media = sink.media();
            assert_eq!(sink.write(&[9u8; 3]).unwrap(), 3);
            assert_eq!(sink.write(&[9u8; 3]).unwrap(), 2);
            assert!(sink.write(&[9u8; 1]).is_err());
            assert!(sink.sync().is_err());
        }
        assert_eq!(media.lock().unwrap().len(), 5);
    }

    #[test]
    fn sim_sink_fsync_failure_is_scripted_by_ordinal() {
        let mut sink = SimSink::new(FaultPlan {
            fail_sync_from: Some(2),
            ..Default::default()
        });
        sink.write_all(b"abc").unwrap();
        sink.sync().unwrap();
        sink.sync().unwrap();
        assert!(sink.sync().is_err());
        assert!(sink.sync().is_err());
    }
}
