//! Durability I/O primitives shared by the persistence and WAL layers.
//!
//! Three pieces, all std-only:
//!
//! * a hand-rolled **CRC32** (IEEE 802.3, the polynomial used by zip/png)
//!   with incremental hashing and [`Crc32Writer`] / [`Crc32Reader`] stream
//!   adapters, so every on-disk format can carry a checksum trailer;
//! * the [`DurableSink`] abstraction — `Write` plus an explicit
//!   [`sync`](DurableSink::sync) barrier — that all durability I/O is
//!   routed through, so tests can substitute a scripted fault device for
//!   a real file;
//! * [`SimSink`], an in-memory sink driven by a [`FaultPlan`]: full disks
//!   (ENOSPC), torn writes, device crashes after N bytes, and failing
//!   fsyncs, each surfaced as the same typed `io::Error` a real kernel
//!   would return. The bytes that "survived" are inspectable afterwards,
//!   which is what the crash-recovery property tests replay from.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};

/// The reflected IEEE CRC32 polynomial.
const CRC32_POLY: u32 = 0xEDB8_8320;

/// Slicing-by-8 lookup tables for [`CRC32_POLY`], built at compile time.
/// `CRC32_TABLES[0]` is the classic byte-at-a-time table; table `k`
/// advances a byte that is `k` positions deeper in an 8-byte block, so
/// [`Crc32::update`] can fold 8 input bytes per step instead of 1 —
/// roughly 4–5× the throughput, which matters now that arena opens
/// checksum a whole multi-megabyte file in one slice pass. The produced
/// checksum is bit-identical to the byte-at-a-time one.
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC32_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1usize;
    while k < 8 {
        let mut i = 0usize;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// Incremental CRC32 (IEEE) hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut bytes = bytes;
        #[cfg(target_arch = "x86_64")]
        if bytes.len() >= 128 && pclmul::available() {
            let folded = bytes.len() & !63;
            self.state = pclmul::fold(self.state, &bytes[..folded]);
            bytes = &bytes[folded..];
        }
        let t = &CRC32_TABLES;
        let mut state = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ state;
            let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            state = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][(hi & 0xFF) as usize]
                ^ t[2][((hi >> 8) & 0xFF) as usize]
                ^ t[1][((hi >> 16) & 0xFF) as usize]
                ^ t[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            state = (state >> 8) ^ t[0][((state ^ b as u32) & 0xFF) as usize];
        }
        self.state = state;
    }

    /// The checksum over everything fed so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// CRC32 (IEEE) of one byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(bytes);
    hasher.finish()
}

/// Carry-less-multiplication CRC32 folding (x86-64 `PCLMULQDQ`).
///
/// The table path above tops out near 1.5 GB/s, which made the whole-file
/// checksum the dominant cost of a zero-copy arena open. This module folds
/// 64 input bytes per iteration with the classic 4×128-bit reduction
/// (folding constants `x^(512±32) mod P`, `x^(128±32) mod P`, then a
/// Barrett reduction back to 32 bits) and runs an order of magnitude
/// faster. It is only entered when the CPU reports `pclmulqdq`+`sse4.1`
/// at runtime and only for whole 64-byte blocks; remainders stay on the
/// table path, and the result is bit-identical (asserted across lengths
/// and splits in the tests below).
///
/// This is the one spot in the workspace allowed to use `unsafe`: the
/// intrinsics read 16-byte lanes from a bounds-checked slice and touch no
/// memory beyond it, and the `target_feature` contract is discharged by
/// the runtime detection in [`available`](pclmul::available).
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod pclmul {
    use std::arch::x86_64::{
        __m128i, _mm_and_si128, _mm_clmulepi64_si128, _mm_cvtsi32_si128, _mm_extract_epi32,
        _mm_loadu_si128, _mm_set_epi64x, _mm_setr_epi32, _mm_srli_si128, _mm_xor_si128,
    };

    /// `true` when the running CPU can execute [`fold`]. The detection
    /// macro caches its cpuid probe, so this is a relaxed atomic load.
    #[inline]
    pub(super) fn available() -> bool {
        std::arch::is_x86_feature_detected!("pclmulqdq")
            && std::arch::is_x86_feature_detected!("sse4.1")
    }

    /// Advances the (pre-inverted) CRC32 state over `bytes`, whose length
    /// must be a non-zero multiple of 64. Callers must have checked
    /// [`available`] first.
    #[inline]
    pub(super) fn fold(state: u32, bytes: &[u8]) -> u32 {
        debug_assert!(!bytes.is_empty() && bytes.len().is_multiple_of(64));
        // SAFETY: `available()` was checked by the caller, so the CPU
        // supports every intrinsic `fold_impl` was compiled for.
        unsafe { fold_impl(state, bytes) }
    }

    /// Loads the 16-byte lane at `bytes[offset..offset + 16]`.
    ///
    /// # Safety
    ///
    /// Caller guarantees `offset + 16 <= bytes.len()`.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn lane(bytes: &[u8], offset: usize) -> __m128i {
        debug_assert!(offset + 16 <= bytes.len());
        unsafe { _mm_loadu_si128(bytes.as_ptr().add(offset).cast()) }
    }

    /// # Safety
    ///
    /// Caller guarantees `pclmulqdq` and `sse4.1` support and the length
    /// contract of [`fold`].
    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    unsafe fn fold_impl(state: u32, bytes: &[u8]) -> u32 {
        // Folding constants for the reflected IEEE polynomial (the same
        // ones every PCLMUL CRC32 uses, going back to Gopal et al.'s
        // whitepaper): x^(4·128+32), x^(4·128−32), x^(128+32), x^(128−32)
        // mod P, the 64→32 fold constant, and the Barrett pair (P, µ).
        let k1k2 = _mm_set_epi64x(0x1_c6e4_1596, 0x1_5444_2bd4);
        let k3k4 = _mm_set_epi64x(0xccaa_009e, 0x1_7519_97d0);
        let k5 = _mm_set_epi64x(0, 0x1_63cd_6124);
        let poly_mu = _mm_set_epi64x(0x1_f701_1641, 0x1_db71_0641);
        let low32 = _mm_setr_epi32(-1, 0, 0, 0);
        let low32s = _mm_setr_epi32(-1, 0, -1, 0);

        let mut x1 = _mm_xor_si128(lane(bytes, 0), _mm_cvtsi32_si128(state as i32));
        let mut x2 = lane(bytes, 16);
        let mut x3 = lane(bytes, 32);
        let mut x4 = lane(bytes, 48);

        // Fold the running 512-bit remainder over each further 64 bytes.
        let mut offset = 64;
        while offset < bytes.len() {
            let fold = |x: __m128i, data: __m128i| {
                _mm_xor_si128(
                    _mm_xor_si128(
                        _mm_clmulepi64_si128(x, k1k2, 0x00),
                        _mm_clmulepi64_si128(x, k1k2, 0x11),
                    ),
                    data,
                )
            };
            x1 = fold(x1, lane(bytes, offset));
            x2 = fold(x2, lane(bytes, offset + 16));
            x3 = fold(x3, lane(bytes, offset + 32));
            x4 = fold(x4, lane(bytes, offset + 48));
            offset += 64;
        }

        // Fold the four 128-bit lanes into one.
        let merge = |acc: __m128i, x: __m128i| {
            _mm_xor_si128(
                _mm_xor_si128(
                    _mm_clmulepi64_si128(acc, k3k4, 0x00),
                    _mm_clmulepi64_si128(acc, k3k4, 0x11),
                ),
                x,
            )
        };
        x1 = merge(x1, x2);
        x1 = merge(x1, x3);
        x1 = merge(x1, x4);

        // 128 → 64 bits.
        x1 = _mm_xor_si128(_mm_srli_si128(x1, 8), _mm_clmulepi64_si128(x1, k3k4, 0x10));
        let high = _mm_srli_si128(x1, 4);
        x1 = _mm_xor_si128(
            _mm_clmulepi64_si128(_mm_and_si128(x1, low32), k5, 0x00),
            high,
        );

        // Barrett reduction 64 → 32 bits.
        let t = _mm_clmulepi64_si128(_mm_and_si128(x1, low32s), poly_mu, 0x10);
        let t = _mm_clmulepi64_si128(_mm_and_si128(t, low32s), poly_mu, 0x00);
        _mm_extract_epi32(_mm_xor_si128(x1, t), 1) as u32
    }
}

/// A writer adapter that checksums every byte passed through it.
#[derive(Debug)]
pub struct Crc32Writer<W> {
    inner: W,
    hasher: Crc32,
}

impl<W: Write> Crc32Writer<W> {
    /// Wraps `inner`.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            hasher: Crc32::new(),
        }
    }

    /// The checksum of everything written so far.
    pub fn crc(&self) -> u32 {
        self.hasher.finish()
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for Crc32Writer<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hasher.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A reader adapter that checksums every byte passed through it.
#[derive(Debug)]
pub struct Crc32Reader<R> {
    inner: R,
    hasher: Crc32,
}

impl<R: Read> Crc32Reader<R> {
    /// Wraps `inner`.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            hasher: Crc32::new(),
        }
    }

    /// The checksum of everything read so far.
    pub fn crc(&self) -> u32 {
        self.hasher.finish()
    }

    /// Unwraps the inner reader.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// The inner reader (for reading trailer bytes *outside* the
    /// checksummed region).
    pub fn inner_mut(&mut self) -> &mut R {
        &mut self.inner
    }
}

impl<R: Read> Read for Crc32Reader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hasher.update(&buf[..n]);
        Ok(n)
    }
}

/// A sink durable appends are routed through: sequential writes plus an
/// explicit [`sync`](DurableSink::sync) barrier (fsync on a real file).
///
/// The WAL holds one of these; production code hands it a
/// [`std::fs::File`], the fault-injection tests hand it a [`SimSink`].
pub trait DurableSink: Write + Send {
    /// Forces everything written so far to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

impl DurableSink for std::fs::File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

/// Scripted failures for a [`SimSink`]. All limits are byte offsets into
/// (or ordinals of operations on) the sink's lifetime; `None` disables
/// that fault.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Device capacity in bytes: the write that would exceed it is torn
    /// at the boundary and every later write fails with
    /// [`io::ErrorKind::StorageFull`] (ENOSPC). The device stays alive.
    pub disk_capacity: Option<u64>,
    /// Byte offset at which the device crashes: the write reaching it is
    /// torn there, and every later write *and* sync fails. Models power
    /// loss mid-write.
    pub crash_at: Option<u64>,
    /// 0-based ordinal of the first `sync` call that fails (it and every
    /// later one return an error).
    pub fail_sync_from: Option<u64>,
}

/// An in-memory [`DurableSink`] executing a [`FaultPlan`]. The bytes the
/// "device" retained are shared through an `Arc` so a test can inspect
/// what survived after the sink was moved into a WAL.
#[derive(Debug)]
pub struct SimSink {
    media: Arc<Mutex<Vec<u8>>>,
    plan: FaultPlan,
    written: u64,
    syncs: u64,
    crashed: bool,
}

impl SimSink {
    /// A sink with no scripted faults (a plain in-memory device).
    pub fn healthy() -> Self {
        Self::new(FaultPlan::default())
    }

    /// A sink executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            media: Arc::new(Mutex::new(Vec::new())),
            plan,
            written: 0,
            syncs: 0,
            crashed: false,
        }
    }

    /// Shared handle to the surviving bytes; clone it *before* moving the
    /// sink into a WAL.
    pub fn media(&self) -> Arc<Mutex<Vec<u8>>> {
        Arc::clone(&self.media)
    }

    /// Snapshot of the surviving bytes.
    pub fn contents(&self) -> Vec<u8> {
        self.media.lock().expect("sim media lock").clone()
    }

    /// Sync calls observed so far.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    fn crash_error() -> io::Error {
        io::Error::new(io::ErrorKind::BrokenPipe, "simulated device crash")
    }

    fn enospc_error() -> io::Error {
        io::Error::new(io::ErrorKind::StorageFull, "simulated full disk")
    }
}

impl Write for SimSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.crashed {
            return Err(Self::crash_error());
        }
        if buf.is_empty() {
            return Ok(0);
        }
        // The crash offset tears the write that reaches it and then kills
        // the device; a full disk tears at the capacity boundary but the
        // device stays alive (later writes fail with ENOSPC, not a crash).
        if let Some(crash_at) = self.plan.crash_at {
            let room = crash_at.saturating_sub(self.written);
            if (buf.len() as u64) > room {
                let accepted = room as usize;
                self.media
                    .lock()
                    .expect("sim media lock")
                    .extend_from_slice(&buf[..accepted]);
                self.written += accepted as u64;
                self.crashed = true;
                return if accepted > 0 {
                    Ok(accepted)
                } else {
                    Err(Self::crash_error())
                };
            }
        }
        if let Some(capacity) = self.plan.disk_capacity {
            let room = capacity.saturating_sub(self.written);
            if (buf.len() as u64) > room {
                let accepted = room as usize;
                self.media
                    .lock()
                    .expect("sim media lock")
                    .extend_from_slice(&buf[..accepted]);
                self.written += accepted as u64;
                return if accepted > 0 {
                    Ok(accepted)
                } else {
                    Err(Self::enospc_error())
                };
            }
        }
        self.media
            .lock()
            .expect("sim media lock")
            .extend_from_slice(buf);
        self.written += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl DurableSink for SimSink {
    fn sync(&mut self) -> io::Result<()> {
        if self.crashed {
            return Err(Self::crash_error());
        }
        let ordinal = self.syncs;
        self.syncs += 1;
        if self.plan.fail_sync_from.is_some_and(|k| ordinal >= k) {
            return Err(io::Error::other("simulated fsync failure"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_answer() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sliced_update_matches_bytewise_at_every_length_and_split() {
        // The slicing-by-8 fast path must be bit-identical to the plain
        // byte-at-a-time recurrence for every block/remainder mix.
        let data: Vec<u8> = (0u32..257)
            .map(|i| (i.wrapping_mul(131) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            let mut bytewise = 0xFFFF_FFFFu32;
            for &b in &data[..len] {
                bytewise =
                    (bytewise >> 8) ^ CRC32_TABLES[0][((bytewise ^ b as u32) & 0xFF) as usize];
            }
            assert_eq!(crc32(&data[..len]), bytewise ^ 0xFFFF_FFFF, "len {len}");
            // Split incrementally at an odd boundary.
            let mut hasher = Crc32::new();
            let cut = len / 3;
            hasher.update(&data[..cut]);
            hasher.update(&data[cut..len]);
            assert_eq!(hasher.finish(), crc32(&data[..len]), "split at {cut}/{len}");
        }
    }

    #[test]
    fn clmul_fold_matches_bytewise_on_large_buffers() {
        // Block sizes that straddle the 128-byte hardware-fold threshold,
        // 64-byte block boundaries, and multi-KB buffers; xorshift content
        // so no byte pattern is special.
        let mut state = 0x9E37_79B9u64;
        let data: Vec<u8> = (0..40_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect();
        for len in [
            0, 1, 63, 64, 65, 127, 128, 129, 191, 192, 1000, 4096, 4097, 39_999, 40_000,
        ] {
            let mut bytewise = 0xFFFF_FFFFu32;
            for &b in &data[..len] {
                bytewise =
                    (bytewise >> 8) ^ CRC32_TABLES[0][((bytewise ^ b as u32) & 0xFF) as usize];
            }
            assert_eq!(crc32(&data[..len]), bytewise ^ 0xFFFF_FFFF, "len {len}");
            // A split mid-buffer must land on the same value whether the
            // halves hit the hardware fold, the table path, or both.
            for cut in [0, 1, 64, 100, len / 2, len.saturating_sub(65), len] {
                let mut hasher = Crc32::new();
                hasher.update(&data[..cut.min(len)]);
                hasher.update(&data[cut.min(len)..len]);
                assert_eq!(hasher.finish(), crc32(&data[..len]), "len {len} cut {cut}");
            }
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut hasher = Crc32::new();
        for chunk in data.chunks(7) {
            hasher.update(chunk);
        }
        assert_eq!(hasher.finish(), crc32(data));
    }

    #[test]
    fn writer_and_reader_agree() {
        let payload = b"checksummed payload bytes".to_vec();
        let mut sink = Vec::new();
        let mut writer = Crc32Writer::new(&mut sink);
        writer.write_all(&payload).unwrap();
        let written_crc = writer.crc();
        let mut reader = Crc32Reader::new(&sink[..]);
        let mut back = Vec::new();
        reader.read_to_end(&mut back).unwrap();
        assert_eq!(back, payload);
        assert_eq!(reader.crc(), written_crc);
        assert_eq!(written_crc, crc32(&payload));
    }

    #[test]
    fn sim_sink_full_disk_tears_then_refuses() {
        let mut sink = SimSink::new(FaultPlan {
            disk_capacity: Some(10),
            ..Default::default()
        });
        assert_eq!(sink.write(&[1u8; 6]).unwrap(), 6);
        // The write crossing the boundary is torn at it.
        assert_eq!(sink.write(&[2u8; 6]).unwrap(), 4);
        let err = sink.write(&[3u8; 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        // The device is alive: what landed is readable and syncable.
        assert_eq!(sink.contents().len(), 10);
        sink.sync().unwrap();
    }

    #[test]
    fn sim_sink_crash_kills_everything_after_offset() {
        let media;
        {
            let mut sink = SimSink::new(FaultPlan {
                crash_at: Some(5),
                ..Default::default()
            });
            media = sink.media();
            assert_eq!(sink.write(&[9u8; 3]).unwrap(), 3);
            assert_eq!(sink.write(&[9u8; 3]).unwrap(), 2);
            assert!(sink.write(&[9u8; 1]).is_err());
            assert!(sink.sync().is_err());
        }
        assert_eq!(media.lock().unwrap().len(), 5);
    }

    #[test]
    fn sim_sink_fsync_failure_is_scripted_by_ordinal() {
        let mut sink = SimSink::new(FaultPlan {
            fail_sync_from: Some(2),
            ..Default::default()
        });
        sink.write_all(b"abc").unwrap();
        sink.sync().unwrap();
        sink.sync().unwrap();
        assert!(sink.sync().is_err());
        assert!(sink.sync().is_err());
    }
}
