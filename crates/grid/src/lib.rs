//! # ius-grid — 2D range reporting
//!
//! The grid-based variants of the uncertain-string indexes (MWST-G / MWSA-G)
//! pair up the leaves of the forward and backward minimizer solid factor
//! trees: each minimizer occurrence becomes a point `(x, y)` where `x` is the
//! leaf rank in the forward tree and `y` the leaf rank in the backward tree
//! (Section 3 of the paper, Lemma 7). A pattern query then asks for all
//! points inside an axis-aligned rectangle `I_suff(P) × I_pref(P)`.
//!
//! This crate provides:
//!
//! * [`RangeReporter`] — a merge-sort tree (static segment tree over the
//!   x-order whose nodes store y-sorted point lists). Queries run in
//!   `O(log² N + k)` time and the structure occupies `O(N log N)` words;
//!   construction is `O(N log N)`. (The paper cites a slightly stronger
//!   `O((1+k) log N)` bound via Mäkinen–Navarro; the practical behaviour is
//!   indistinguishable at the scales involved and the interface is the same.)
//! * [`NaiveGrid`] — a linear-scan baseline used for differential testing and
//!   as the honest choice for very small point sets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod naive;
pub mod reporter;

pub use naive::NaiveGrid;
pub use reporter::{RangeReporter, ReporterParts};

/// A point of the grid: a pair of leaf ranks plus an opaque payload
/// (the index stores the minimizer label it needs to verify a candidate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridPoint {
    /// Rank in the forward tree's leaf order.
    pub x: u32,
    /// Rank in the backward tree's leaf order.
    pub y: u32,
    /// Caller-defined payload carried back by queries.
    pub payload: u32,
}

impl GridPoint {
    /// Convenience constructor.
    pub fn new(x: u32, y: u32, payload: u32) -> Self {
        Self { x, y, payload }
    }
}

/// An axis-aligned half-open query rectangle `[x_lo, x_hi) × [y_lo, y_hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Inclusive lower x bound.
    pub x_lo: u32,
    /// Exclusive upper x bound.
    pub x_hi: u32,
    /// Inclusive lower y bound.
    pub y_lo: u32,
    /// Exclusive upper y bound.
    pub y_hi: u32,
}

impl Rect {
    /// Convenience constructor from half-open ranges.
    pub fn new(x: (u32, u32), y: (u32, u32)) -> Self {
        Self {
            x_lo: x.0,
            x_hi: x.1,
            y_lo: y.0,
            y_hi: y.1,
        }
    }

    /// `true` iff the rectangle contains the point.
    #[inline]
    pub fn contains(&self, p: &GridPoint) -> bool {
        p.x >= self.x_lo && p.x < self.x_hi && p.y >= self.y_lo && p.y < self.y_hi
    }

    /// `true` iff the rectangle is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x_lo >= self.x_hi || self.y_lo >= self.y_hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_contains() {
        let r = Rect::new((2, 5), (10, 20));
        assert!(r.contains(&GridPoint::new(2, 10, 0)));
        assert!(r.contains(&GridPoint::new(4, 19, 0)));
        assert!(!r.contains(&GridPoint::new(5, 10, 0)));
        assert!(!r.contains(&GridPoint::new(4, 20, 0)));
        assert!(!r.contains(&GridPoint::new(1, 15, 0)));
        assert!(!r.is_empty());
        assert!(Rect::new((3, 3), (0, 10)).is_empty());
        assert!(Rect::new((0, 1), (10, 10)).is_empty());
    }
}
