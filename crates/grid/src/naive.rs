//! Linear-scan 2D range reporting, used as ground truth and for tiny inputs.

use crate::{GridPoint, Rect};

/// A naive grid: stores the points in a vector and answers queries by a full
/// scan. `O(N)` per query, `O(N)` space — the honest structure of choice for
/// very small `N` and the reference implementation for tests.
#[derive(Debug, Clone, Default)]
pub struct NaiveGrid {
    points: Vec<GridPoint>,
}

impl NaiveGrid {
    /// Builds the structure from a point set.
    pub fn new(points: Vec<GridPoint>) -> Self {
        Self { points }
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` iff no points are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Payloads of all points inside `rect`.
    pub fn report(&self, rect: &Rect) -> Vec<u32> {
        if rect.is_empty() {
            return Vec::new();
        }
        self.points
            .iter()
            .filter(|p| rect.contains(p))
            .map(|p| p.payload)
            .collect()
    }

    /// Number of points inside `rect`.
    pub fn count(&self, rect: &Rect) -> usize {
        if rect.is_empty() {
            return 0;
        }
        self.points.iter().filter(|p| rect.contains(p)).count()
    }

    /// Approximate heap usage in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.points.capacity() * std::mem::size_of::<GridPoint>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_and_count() {
        let grid = NaiveGrid::new(vec![
            GridPoint::new(0, 0, 100),
            GridPoint::new(1, 2, 101),
            GridPoint::new(2, 1, 102),
            GridPoint::new(3, 3, 103),
        ]);
        assert_eq!(grid.len(), 4);
        let all = Rect::new((0, 4), (0, 4));
        assert_eq!(grid.count(&all), 4);
        let r = Rect::new((1, 3), (1, 3));
        let mut hits = grid.report(&r);
        hits.sort_unstable();
        assert_eq!(hits, vec![101, 102]);
        assert_eq!(grid.count(&Rect::new((0, 0), (0, 4))), 0);
    }

    #[test]
    fn empty_grid() {
        let grid = NaiveGrid::default();
        assert!(grid.is_empty());
        assert!(grid.report(&Rect::new((0, 10), (0, 10))).is_empty());
    }
}
