//! Merge-sort-tree 2D range reporting.

use crate::{GridPoint, Rect};
use ius_arena::ArenaVec;

/// The flat representation of a [`RangeReporter`], used by the persistence
/// layer to save the structure without re-running the `O(N log N)` merge on
/// load. `node_lens[i]` is the number of `(y, payload)` entries of segment
/// tree node `i`; the entries themselves are concatenated in node order in
/// `ys`/`payloads`. Each array is an [`ArenaVec`], so the parts can either
/// own their storage (the stream load path) or borrow it zero-copy from a
/// persisted arena.
#[derive(Debug, Clone, PartialEq)]
pub struct ReporterParts {
    /// Number of stored points.
    pub len: u64,
    /// x-coordinate of each point in x-sorted order.
    pub xs: ArenaVec<u32>,
    /// Entry count per segment-tree node (always `2 · size` nodes).
    pub node_lens: ArenaVec<u32>,
    /// Concatenated y-values of all nodes' entries.
    pub ys: ArenaVec<u32>,
    /// Concatenated payloads of all nodes' entries.
    pub payloads: ArenaVec<u32>,
}

/// A static merge-sort tree over a point set.
///
/// Points are sorted by `x`; a perfect binary segment tree is laid over that
/// order, and every tree node stores the y-values (with payloads) of its
/// segment, sorted by `y`. A rectangle query decomposes the x-range into
/// `O(log N)` canonical nodes and binary-searches the y-range in each:
/// `O(log² N + k)` time, `O(N log N)` space.
///
/// The per-node entry lists are stored concatenated in two flat pools
/// (`ys`/`payloads`) with a derived offset table, so a persisted reporter can
/// be reopened as zero-copy views into an [`ius_arena::Arena`].
#[derive(Debug, Clone)]
pub struct RangeReporter {
    /// Number of leaves (points), rounded up to a power of two for the tree.
    size: usize,
    /// Number of actual points.
    len: usize,
    /// x-coordinate of each point in x-sorted order (for locating ranges).
    xs: ArenaVec<u32>,
    /// Start of node `i`'s entries in `ys`/`payloads`; `2 · size + 1`
    /// entries (prefix sums of the node lengths, `u32` like the pool
    /// indices they point into — half the memory and half the open-time
    /// traffic of machine words). Derived at build/load.
    node_starts: Vec<u32>,
    /// Concatenated y-values of all nodes' entries, each node y-sorted.
    ys: ArenaVec<u32>,
    /// Payloads parallel to `ys`.
    payloads: ArenaVec<u32>,
}

impl RangeReporter {
    /// Builds the structure. `O(N log N)` time and space.
    pub fn new(mut points: Vec<GridPoint>) -> Self {
        points.sort_unstable_by_key(|p| (p.x, p.y));
        let len = points.len();
        let size = len.next_power_of_two().max(1);
        let mut node_points: Vec<Vec<(u32, u32)>> = vec![Vec::new(); 2 * size];
        let xs: Vec<u32> = points.iter().map(|p| p.x).collect();
        // Fill leaves.
        for (i, p) in points.iter().enumerate() {
            node_points[size + i].push((p.y, p.payload));
        }
        // Merge upwards.
        for node in (1..size).rev() {
            let (left, right) = (2 * node, 2 * node + 1);
            let mut merged = Vec::with_capacity(node_points[left].len() + node_points[right].len());
            let (a, b) = (&node_points[left], &node_points[right]);
            let (mut i, mut j) = (0usize, 0usize);
            while i < a.len() && j < b.len() {
                if a[i] <= b[j] {
                    merged.push(a[i]);
                    i += 1;
                } else {
                    merged.push(b[j]);
                    j += 1;
                }
            }
            merged.extend_from_slice(&a[i..]);
            merged.extend_from_slice(&b[j..]);
            node_points[node] = merged;
        }
        // Flatten the per-node lists into the two entry pools.
        let total: usize = node_points.iter().map(Vec::len).sum();
        let mut node_starts = Vec::with_capacity(2 * size + 1);
        let mut ys = Vec::with_capacity(total);
        let mut payloads = Vec::with_capacity(total);
        node_starts.push(0u32);
        for node in &node_points {
            for &(y, payload) in node {
                ys.push(y);
                payloads.push(payload);
            }
            node_starts.push(u32::try_from(ys.len()).expect("entry pools exceed u32 range"));
        }
        Self {
            size,
            len,
            xs: ArenaVec::from(xs),
            node_starts,
            ys: ArenaVec::from(ys),
            payloads: ArenaVec::from(payloads),
        }
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no points are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Payloads of all points inside `rect`.
    pub fn report(&self, rect: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        self.report_into(rect, &mut out);
        out
    }

    /// Like [`RangeReporter::report`] but appending into a reused output
    /// buffer. Returns the number of canonical segment-tree nodes touched
    /// (the `O(log N)` term of the query cost), for query instrumentation.
    pub fn report_into(&self, rect: &Rect, out: &mut Vec<u32>) -> usize {
        self.report_with(rect, |payload| out.push(payload))
    }

    /// Callback form of [`RangeReporter::report`]: invokes `emit` once per
    /// point payload inside `rect`, allocating nothing. Returns the number of
    /// canonical segment-tree nodes touched.
    pub fn report_with(&self, rect: &Rect, mut emit: impl FnMut(u32)) -> usize {
        if rect.is_empty() || self.len == 0 {
            return 0;
        }
        // Translate the x-range into a rank range over the x-sorted points.
        let lo = self.xs.partition_point(|&x| x < rect.x_lo);
        let hi = self.xs.partition_point(|&x| x < rect.x_hi);
        if lo >= hi {
            return 0;
        }
        // Canonical decomposition of [lo, hi) over the segment tree.
        let mut nodes = 0usize;
        let (mut l, mut r) = (lo + self.size, hi + self.size);
        while l < r {
            if l & 1 == 1 {
                self.emit(l, rect, &mut emit);
                nodes += 1;
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                self.emit(r, rect, &mut emit);
                nodes += 1;
            }
            l >>= 1;
            r >>= 1;
        }
        nodes
    }

    /// Number of points inside `rect`.
    pub fn count(&self, rect: &Rect) -> usize {
        if rect.is_empty() || self.len == 0 {
            return 0;
        }
        let lo = self.xs.partition_point(|&x| x < rect.x_lo);
        let hi = self.xs.partition_point(|&x| x < rect.x_hi);
        if lo >= hi {
            return 0;
        }
        let (mut l, mut r) = (lo + self.size, hi + self.size);
        let mut total = 0usize;
        while l < r {
            if l & 1 == 1 {
                total += self.count_node(l, rect);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                total += self.count_node(r, rect);
            }
            l >>= 1;
            r >>= 1;
        }
        total
    }

    /// Segment-tree node `node`'s entries: y-values and parallel payloads.
    #[inline]
    fn node(&self, node: usize) -> (&[u32], &[u32]) {
        let (start, end) = (
            self.node_starts[node] as usize,
            self.node_starts[node + 1] as usize,
        );
        (&self.ys[start..end], &self.payloads[start..end])
    }

    fn emit(&self, node: usize, rect: &Rect, emit: &mut impl FnMut(u32)) {
        let (ys, payloads) = self.node(node);
        let start = ys.partition_point(|&y| y < rect.y_lo);
        for (&y, &payload) in ys[start..].iter().zip(&payloads[start..]) {
            if y >= rect.y_hi {
                break;
            }
            emit(payload);
        }
    }

    fn count_node(&self, node: usize, rect: &Rect) -> usize {
        let (ys, _) = self.node(node);
        ys.partition_point(|&y| y < rect.y_hi) - ys.partition_point(|&y| y < rect.y_lo)
    }

    /// Approximate heap usage in bytes. Arena-backed entry pools count as
    /// zero owned bytes here; the arena itself is counted once by whoever
    /// retains its handle.
    pub fn memory_bytes(&self) -> usize {
        self.xs.heap_bytes()
            + self.ys.heap_bytes()
            + self.payloads.heap_bytes()
            + self.node_starts.capacity() * std::mem::size_of::<u32>()
    }

    /// Exports the structure as its flat representation (see
    /// [`ReporterParts`]).
    pub fn to_parts(&self) -> ReporterParts {
        let node_lens: Vec<u32> = self.node_starts.windows(2).map(|w| w[1] - w[0]).collect();
        ReporterParts {
            len: self.len as u64,
            xs: self.xs.clone(),
            node_lens: ArenaVec::from(node_lens),
            ys: self.ys.clone(),
            payloads: self.payloads.clone(),
        }
    }

    /// Reassembles the structure from its flat representation — the inverse
    /// of [`RangeReporter::to_parts`], in linear time (the merge-sort tree is
    /// *not* rebuilt). The entry pools are moved in as-is, so views stay
    /// views.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural inconsistency.
    pub fn from_parts(parts: ReporterParts) -> Result<Self, String> {
        let len = parts.len as usize;
        if parts.xs.len() != len {
            return Err(format!(
                "xs has {} entries for {len} points",
                parts.xs.len()
            ));
        }
        let size = len.next_power_of_two().max(1);
        if parts.node_lens.len() != 2 * size {
            return Err(format!(
                "expected {} segment-tree nodes, found {}",
                2 * size,
                parts.node_lens.len()
            ));
        }
        let mut node_starts = Vec::with_capacity(2 * size + 1);
        let mut offset = 0u64;
        node_starts.push(0u32);
        for &node_len in parts.node_lens.iter() {
            offset += u64::from(node_len);
            let Ok(start) = u32::try_from(offset) else {
                return Err("entry pools exceed the u32 address range".into());
            };
            node_starts.push(start);
        }
        if parts.ys.len() as u64 != offset || parts.payloads.len() as u64 != offset {
            return Err("entry arrays do not match the per-node lengths".into());
        }
        // Sortedness checks, phrased as whole-pool reduction scans so they
        // vectorize (these run over the O(n log n) entry pools on every
        // arena open). A node's entries are y-sorted iff every adjacent
        // descent in the concatenated pool falls on a node boundary: count
        // descents globally, then subtract the ones boundaries explain.
        let descents = count_adjacent_descents(&parts.ys);
        let mut boundary_descents = 0usize;
        let mut prev_boundary = 0usize; // offset 0 is never an interior descent
        for &b in &node_starts[1..node_starts.len() - 1] {
            // Empty nodes repeat an offset; each distinct boundary can
            // explain at most one descent.
            let b = b as usize;
            if b != prev_boundary && b < parts.ys.len() && parts.ys[b - 1] > parts.ys[b] {
                boundary_descents += 1;
            }
            prev_boundary = b;
        }
        if descents != boundary_descents {
            return Err("a segment-tree node's entries are not y-sorted".into());
        }
        if count_adjacent_descents(&parts.xs) != 0 {
            return Err("point x-coordinates are not sorted".into());
        }
        Ok(Self {
            size,
            len,
            xs: parts.xs,
            node_starts,
            ys: parts.ys,
            payloads: parts.payloads,
        })
    }
}

/// Number of positions `i` with `values[i] > values[i + 1]` — a branch-free
/// reduction over adjacent pairs that the compiler turns into SIMD compares.
fn count_adjacent_descents(values: &[u32]) -> usize {
    match values.len() {
        0 | 1 => 0,
        len => values[..len - 1]
            .iter()
            .zip(&values[1..])
            .fold(0usize, |acc, (&a, &b)| acc + usize::from(a > b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveGrid;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<GridPoint> {
        let mut rng = StdRng::seed_from_u64(seed);
        // Permutation pairing, as produced by the index (distinct x, distinct y).
        let mut ys: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            ys.swap(i, j);
        }
        (0..n as u32)
            .map(|x| GridPoint::new(x, ys[x as usize], 1000 + x))
            .collect()
    }

    /// Copies an arena vector out, applies `f`, and wraps it back up — the
    /// corruption tests' stand-in for direct mutation.
    fn tweak(v: &ArenaVec<u32>, f: impl FnOnce(&mut Vec<u32>)) -> ArenaVec<u32> {
        let mut owned = v.to_vec();
        f(&mut owned);
        ArenaVec::from(owned)
    }

    #[test]
    fn matches_naive_on_permutation_points() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [0usize, 1, 2, 7, 64, 200] {
            let points = random_points(n, n as u64);
            let naive = NaiveGrid::new(points.clone());
            let fast = RangeReporter::new(points);
            assert_eq!(fast.len(), n);
            for _ in 0..200 {
                let x1 = rng.gen_range(0..=(n as u32 + 2));
                let x2 = rng.gen_range(0..=(n as u32 + 2));
                let y1 = rng.gen_range(0..=(n as u32 + 2));
                let y2 = rng.gen_range(0..=(n as u32 + 2));
                let rect = Rect::new((x1.min(x2), x1.max(x2)), (y1.min(y2), y1.max(y2)));
                let mut a = naive.report(&rect);
                let mut b = fast.report(&rect);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "n={n} rect={rect:?}");
                assert_eq!(naive.count(&rect), fast.count(&rect));
            }
        }
    }

    #[test]
    fn duplicate_coordinates_are_supported() {
        // Even though the index produces permutations, the structure should
        // not silently break on duplicates.
        let points = vec![
            GridPoint::new(3, 3, 1),
            GridPoint::new(3, 3, 2),
            GridPoint::new(3, 4, 3),
            GridPoint::new(4, 3, 4),
        ];
        let naive = NaiveGrid::new(points.clone());
        let fast = RangeReporter::new(points);
        let rect = Rect::new((3, 4), (3, 4));
        let mut a = naive.report(&rect);
        let mut b = fast.report(&rect);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(a, vec![1, 2]);
    }

    #[test]
    fn report_forms_agree_and_count_canonical_nodes() {
        let points = random_points(200, 3);
        let fast = RangeReporter::new(points);
        let mut rng = StdRng::seed_from_u64(11);
        let mut reused = Vec::new();
        for _ in 0..100 {
            let x1 = rng.gen_range(0..=202u32);
            let x2 = rng.gen_range(0..=202u32);
            let y1 = rng.gen_range(0..=202u32);
            let y2 = rng.gen_range(0..=202u32);
            let rect = Rect::new((x1.min(x2), x1.max(x2)), (y1.min(y2), y1.max(y2)));
            let direct = fast.report(&rect);
            reused.clear();
            let nodes_into = fast.report_into(&rect, &mut reused);
            let mut via_callback = Vec::new();
            let nodes_with = fast.report_with(&rect, |p| via_callback.push(p));
            assert_eq!(direct, reused);
            assert_eq!(direct, via_callback);
            assert_eq!(nodes_into, nodes_with);
            // The canonical decomposition of any rank range over a segment
            // tree with 256 leaves touches at most 2·log2(256) nodes.
            assert!(nodes_into <= 16, "nodes {nodes_into}");
            if !direct.is_empty() {
                assert!(nodes_into > 0);
            }
        }
    }

    #[test]
    fn parts_round_trip_preserves_reports() {
        let mut rng = StdRng::seed_from_u64(21);
        for n in [0usize, 1, 5, 100] {
            let points = random_points(n, n as u64 + 7);
            let original = RangeReporter::new(points);
            let rebuilt = RangeReporter::from_parts(original.to_parts()).unwrap();
            assert_eq!(rebuilt.len(), original.len());
            for _ in 0..50 {
                let x1 = rng.gen_range(0..=(n as u32 + 2));
                let x2 = rng.gen_range(0..=(n as u32 + 2));
                let y1 = rng.gen_range(0..=(n as u32 + 2));
                let y2 = rng.gen_range(0..=(n as u32 + 2));
                let rect = Rect::new((x1.min(x2), x1.max(x2)), (y1.min(y2), y1.max(y2)));
                assert_eq!(rebuilt.report(&rect), original.report(&rect));
            }
            assert_eq!(rebuilt.to_parts(), original.to_parts());
        }
    }

    #[test]
    fn from_parts_rejects_corrupted_input() {
        let original = RangeReporter::new(random_points(9, 1));
        let good = original.to_parts();
        let mut bad = good.clone();
        bad.xs = tweak(&bad.xs, |v| {
            v.pop();
        });
        assert!(RangeReporter::from_parts(bad).is_err());
        let mut bad = good.clone();
        bad.node_lens = tweak(&bad.node_lens, |v| {
            v.pop();
        });
        assert!(RangeReporter::from_parts(bad).is_err());
        let mut bad = good.clone();
        bad.ys = tweak(&bad.ys, |v| v.push(0));
        assert!(RangeReporter::from_parts(bad).is_err());
        let mut bad = good;
        bad.xs = tweak(&bad.xs, |v| v.reverse());
        assert!(RangeReporter::from_parts(bad).is_err());
    }

    #[test]
    fn full_rectangle_reports_everything() {
        let points = random_points(100, 9);
        let fast = RangeReporter::new(points);
        let rect = Rect::new((0, 100), (0, 100));
        assert_eq!(fast.report(&rect).len(), 100);
        assert_eq!(fast.count(&rect), 100);
    }

    #[test]
    fn memory_grows_superlinearly_but_modestly() {
        let small = RangeReporter::new(random_points(128, 1)).memory_bytes();
        let large = RangeReporter::new(random_points(1024, 1)).memory_bytes();
        assert!(large > small);
        // N log N scaling: 1024·11 vs 128·8 ⇒ factor ≈ 11; allow a wide band.
        assert!(large < small * 32);
    }
}
