//! Batched query execution over one shared index.
//!
//! The serving-path counterpart of the per-query engine: many patterns are
//! answered over one immutable index with a [`QueryBatch`] executor —
//! scoped threads, one [`ius_query::QueryScratch`] per worker, and an output
//! vector whose `i`-th entry always answers the `i`-th pattern regardless of
//! scheduling.

use crate::traits::UncertainIndex;
use ius_query::{QueryBatch, QueryStats};
use ius_weighted::{Error, Result, WeightedString};

/// Answers every pattern in `patterns` over `index`, returning one entry per
/// pattern **in pattern order**: the sorted, deduplicated occurrence
/// positions plus the query's [`QueryStats`].
///
/// Per-pattern errors (empty pattern, pattern shorter than the index's `ℓ`)
/// are reported in the corresponding slot instead of aborting the batch.
pub fn query_batch(
    index: &(dyn UncertainIndex + Sync),
    patterns: &[Vec<u8>],
    x: &WeightedString,
    executor: &QueryBatch,
) -> Vec<Result<(Vec<usize>, QueryStats)>> {
    executor.run::<(Vec<usize>, QueryStats), Error, _>(patterns.len(), |i, scratch| {
        let mut positions = Vec::new();
        let stats = index.query_into(&patterns[i], x, scratch, &mut positions)?;
        Ok((positions, stats))
    })
}

/// Convenience wrapper over [`query_batch`] that fails on the first
/// per-pattern error and drops the stats — the batched equivalent of calling
/// [`UncertainIndex::query`] in a loop.
///
/// # Errors
///
/// The first per-pattern validation error, if any.
pub fn query_batch_positions(
    index: &(dyn UncertainIndex + Sync),
    patterns: &[Vec<u8>],
    x: &WeightedString,
    executor: &QueryBatch,
) -> Result<Vec<Vec<usize>>> {
    query_batch(index, patterns, x, executor)
        .into_iter()
        .map(|entry| entry.map(|(positions, _)| positions))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimizer_index::{IndexVariant, MinimizerIndex};
    use crate::naive::NaiveIndex;
    use crate::params::IndexParams;
    use ius_datasets::patterns::PatternSampler;
    use ius_datasets::uniform::UniformConfig;
    use ius_weighted::ZEstimation;

    #[test]
    fn batched_answers_match_single_shot_in_pattern_order() {
        let x = UniformConfig {
            n: 240,
            sigma: 2,
            spread: 0.5,
            seed: 9,
        }
        .generate();
        let z = 8.0;
        let ell = 8usize;
        let est = ZEstimation::build(&x, z).unwrap();
        let params = IndexParams::new(z, ell, x.sigma()).unwrap();
        let index =
            MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::ArrayGrid)
                .unwrap();
        let mut sampler = PatternSampler::new(&est, 4);
        let patterns = sampler.sample_many(ell, 25);
        assert!(!patterns.is_empty());
        for threads in [1usize, 3] {
            let executor = QueryBatch::with_threads(threads);
            let batched = query_batch(&index, &patterns, &x, &executor);
            assert_eq!(batched.len(), patterns.len());
            for (pattern, entry) in patterns.iter().zip(&batched) {
                let (positions, stats) = entry.as_ref().unwrap();
                assert_eq!(positions, &index.query(pattern, &x).unwrap());
                assert_eq!(stats.reported, positions.len());
            }
            let only_positions = query_batch_positions(&index, &patterns, &x, &executor).unwrap();
            assert_eq!(only_positions.len(), patterns.len());
        }
    }

    #[test]
    fn per_pattern_errors_stay_in_their_slot() {
        let x = UniformConfig {
            n: 60,
            sigma: 2,
            spread: 0.4,
            seed: 2,
        }
        .generate();
        let naive = NaiveIndex::new(4.0).unwrap();
        let patterns = vec![vec![0u8, 1], Vec::new(), vec![1u8]];
        let results = query_batch(&naive, &patterns, &x, &QueryBatch::with_threads(2));
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(Error::EmptyInput("pattern"))));
        assert!(results[2].is_ok());
        assert!(
            query_batch_positions(&naive, &patterns, &x, &QueryBatch::with_threads(2)).is_err()
        );
    }
}
