//! The unified builder layer: one descriptor that constructs any index
//! family through a single entry point.
//!
//! Before this layer existed, every consumer that needed "an index of family
//! F" — the benchmark harness, the differential tests, the sharding layer,
//! the persistence layer — hand-rolled its own per-family `match` over
//! constructors with slightly different signatures (`Wst::build_from_estimation`
//! takes only the estimation, `MinimizerIndex::build_from_estimation` wants
//! `(x, est, params, variant)`, the space-efficient builder has no estimation
//! at all). [`IndexSpec`] centralises that dispatch: a `(family, params)`
//! pair that builds through [`IndexSpec::build`] (materialising the
//! z-estimation when the family needs one) or
//! [`IndexSpec::build_with_estimation`] (sharing a pre-built estimation, as
//! the benchmark harness does across the families of one configuration).
//!
//! The result is an [`AnyIndex`]: a closed enum over the concrete index
//! types. Unlike a `Box<dyn UncertainIndex>` it can be matched on — which is
//! exactly what the persistence layer needs to write a family tag — while
//! still implementing [`UncertainIndex`] by delegation for every consumer
//! that only cares about the common interface.

use crate::minimizer_index::{IndexVariant, MinimizerIndex};
use crate::naive::NaiveIndex;
use crate::params::IndexParams;
use crate::space_efficient::SpaceEfficientBuilder;
use crate::traits::{IndexStats, UncertainIndex};
use crate::wsa::Wsa;
use crate::wst::Wst;
use ius_query::{MatchSink, QueryScratch, QueryStats};
use ius_weighted::{Result, WeightedString, ZEstimation};

/// The index families of the paper, as buildable descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexFamily {
    /// The `O(n·m)` scan oracle (stores only `z`).
    Naive,
    /// The weighted (property) suffix tree baseline.
    Wst,
    /// The weighted (property) suffix array baseline.
    Wsa,
    /// A minimizer-based index built through the explicit (z-estimation)
    /// construction.
    Minimizer(IndexVariant),
    /// A minimizer-based index built through the space-efficient (Section 4)
    /// construction. Grid variants are rejected at build time, exactly like
    /// [`SpaceEfficientBuilder`].
    SpaceEfficient(IndexVariant),
}

impl IndexFamily {
    /// Display name matching the paper's figures (`"SE-MWSA"` for the
    /// space-efficient constructions, which produce the same structure as the
    /// explicit ones).
    pub fn name(&self) -> &'static str {
        match self {
            IndexFamily::Naive => "NAIVE",
            IndexFamily::Wst => "WST",
            IndexFamily::Wsa => "WSA",
            IndexFamily::Minimizer(variant) => variant.name(),
            IndexFamily::SpaceEfficient(IndexVariant::Tree) => "SE-MWST",
            IndexFamily::SpaceEfficient(IndexVariant::Array) => "SE-MWSA",
            IndexFamily::SpaceEfficient(IndexVariant::TreeGrid) => "SE-MWST-G",
            IndexFamily::SpaceEfficient(IndexVariant::ArrayGrid) => "SE-MWSA-G",
        }
    }

    /// Does building this family require an explicit z-estimation?
    pub fn needs_estimation(&self) -> bool {
        !matches!(self, IndexFamily::Naive | IndexFamily::SpaceEfficient(_))
    }

    /// Does this family enforce the minimum pattern length ℓ?
    pub fn has_length_bound(&self) -> bool {
        matches!(
            self,
            IndexFamily::Minimizer(_) | IndexFamily::SpaceEfficient(_)
        )
    }

    /// Every family the differential harness and the persistence round-trip
    /// tests iterate over (grid variants of the space-efficient construction
    /// excluded — they are rejected by construction).
    pub fn all() -> [IndexFamily; 9] {
        [
            IndexFamily::Naive,
            IndexFamily::Wst,
            IndexFamily::Wsa,
            IndexFamily::Minimizer(IndexVariant::Tree),
            IndexFamily::Minimizer(IndexVariant::Array),
            IndexFamily::Minimizer(IndexVariant::TreeGrid),
            IndexFamily::Minimizer(IndexVariant::ArrayGrid),
            IndexFamily::SpaceEfficient(IndexVariant::Tree),
            IndexFamily::SpaceEfficient(IndexVariant::Array),
        ]
    }
}

/// A buildable index descriptor: which family, with which parameters.
///
/// The baselines only read `params.z`; the minimizer families additionally
/// use `ℓ`, `k` and the k-mer order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexSpec {
    /// The family to construct.
    pub family: IndexFamily,
    /// The ℓ-Weighted-Indexing instance parameters.
    pub params: IndexParams,
    /// Construction fan-out on the shared [`ius_exec::Executor`] (1 = serial,
    /// 0 = all CPUs). A build-time knob only: it is not part of the persisted
    /// parameters, and the built index is byte-identical at every value.
    threads: usize,
}

impl IndexSpec {
    /// Creates a descriptor (serial construction; see
    /// [`IndexSpec::with_threads`]).
    pub fn new(family: IndexFamily, params: IndexParams) -> Self {
        Self {
            family,
            params,
            threads: 1,
        }
    }

    /// Fans construction out over `threads` workers (0 = all CPUs): the
    /// z-estimation transpose and the factor sorts run on the shared
    /// executor. Queries and persistence are unaffected — the built index is
    /// byte-identical at every thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The construction fan-out (1 = serial, 0 = all CPUs).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The minimum pattern length this family will accept (`ℓ` for the
    /// minimizer families, 1 for the baselines and the oracle).
    pub fn lower_bound(&self) -> usize {
        if self.family.has_length_bound() {
            self.params.ell
        } else {
            1
        }
    }

    /// Builds the index, materialising the z-estimation internally when the
    /// family requires one.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation and construction errors of the
    /// respective family.
    pub fn build(&self, x: &WeightedString) -> Result<AnyIndex> {
        match self.family {
            IndexFamily::Naive | IndexFamily::SpaceEfficient(_) => self.dispatch(x, None),
            _ => {
                let estimation = ZEstimation::build_with_threads(x, self.params.z, self.threads)?;
                self.dispatch(x, Some(&estimation))
            }
        }
    }

    /// Builds the index from a shared, already materialised z-estimation
    /// (ignored by the families that do not need one).
    ///
    /// # Errors
    ///
    /// Propagates construction errors; additionally the estimation/parameter
    /// consistency checks of the minimizer construction.
    pub fn build_with_estimation(
        &self,
        x: &WeightedString,
        estimation: &ZEstimation,
    ) -> Result<AnyIndex> {
        self.dispatch(x, Some(estimation))
    }

    fn dispatch(&self, x: &WeightedString, estimation: Option<&ZEstimation>) -> Result<AnyIndex> {
        let est = || -> Result<&ZEstimation> {
            estimation.ok_or_else(|| {
                ius_weighted::Error::InvalidParameters("this family requires a z-estimation".into())
            })
        };
        Ok(match self.family {
            IndexFamily::Naive => AnyIndex::Naive(NaiveIndex::new(self.params.z)?),
            IndexFamily::Wst => AnyIndex::Wst(Wst::build_from_estimation(est()?)?),
            IndexFamily::Wsa => AnyIndex::Wsa(Wsa::build_from_estimation(est()?)?),
            IndexFamily::Minimizer(variant) => AnyIndex::Minimizer(Box::new(
                MinimizerIndex::build_from_estimation_with_threads(
                    x,
                    est()?,
                    self.params,
                    variant,
                    self.threads,
                )?,
            )),
            IndexFamily::SpaceEfficient(variant) => AnyIndex::Minimizer(Box::new(
                SpaceEfficientBuilder::new(self.params)
                    .with_threads(self.threads)
                    .build(x, variant)?,
            )),
        })
    }
}

/// A concrete index of any family — the closed-enum counterpart of
/// `Box<dyn UncertainIndex>`, matchable by the persistence layer.
///
/// Variant sizes differ by design: an index is a handful of long-lived
/// values per process, so boxing the bigger families would buy nothing and
/// cost an indirection on every query dispatch.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum AnyIndex {
    /// The scan oracle.
    Naive(NaiveIndex),
    /// The weighted suffix tree baseline.
    Wst(Wst),
    /// The weighted suffix array baseline.
    Wsa(Wsa),
    /// Any of the four minimizer-based variants (explicit or space-efficient
    /// construction). Boxed: the minimizer index is by far the largest
    /// variant, and the enum is moved around by value.
    Minimizer(Box<MinimizerIndex>),
}

impl AnyIndex {
    /// The length of the corpus the index was built over, when the family
    /// records it (the minimizer variants do; the oracle and the
    /// property-text baselines do not). Serving layers use this to reject
    /// a corpus of the wrong length instead of failing per-query.
    pub fn corpus_len_hint(&self) -> Option<usize> {
        match self {
            AnyIndex::Minimizer(index) => Some(index.corpus_len()),
            _ => None,
        }
    }

    /// The contained index as a trait object.
    pub fn as_dyn(&self) -> &(dyn UncertainIndex + Sync) {
        match self {
            AnyIndex::Naive(index) => index,
            AnyIndex::Wst(index) => index,
            AnyIndex::Wsa(index) => index,
            AnyIndex::Minimizer(index) => index.as_ref(),
        }
    }
}

impl UncertainIndex for AnyIndex {
    fn name(&self) -> &'static str {
        self.as_dyn().name()
    }

    fn query_into(
        &self,
        pattern: &[u8],
        x: &WeightedString,
        scratch: &mut QueryScratch,
        sink: &mut dyn MatchSink,
    ) -> Result<QueryStats> {
        self.as_dyn().query_into(pattern, x, scratch, sink)
    }

    fn query_reference(&self, pattern: &[u8], x: &WeightedString) -> Result<Vec<usize>> {
        self.as_dyn().query_reference(pattern, x)
    }

    fn size_bytes(&self) -> usize {
        self.as_dyn().size_bytes()
    }

    fn stats(&self) -> IndexStats {
        self.as_dyn().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ius_datasets::pangenome::PangenomeConfig;
    use ius_datasets::patterns::PatternSampler;

    #[test]
    fn every_family_builds_through_the_spec_and_agrees_with_its_direct_constructor() {
        let x = PangenomeConfig {
            n: 700,
            delta: 0.06,
            seed: 17,
            ..Default::default()
        }
        .generate();
        let z = 8.0;
        let ell = 16usize;
        let params = IndexParams::new(z, ell, x.sigma()).unwrap();
        let est = ZEstimation::build(&x, z).unwrap();
        let mut sampler = PatternSampler::new(&est, 2);
        let patterns = sampler.sample_many(ell, 15);
        assert!(!patterns.is_empty());
        let oracle = NaiveIndex::new(z).unwrap();
        for family in IndexFamily::all() {
            let spec = IndexSpec::new(family, params);
            assert_eq!(spec.family.name(), family.name());
            let built = spec.build(&x).unwrap();
            // The shared-estimation path builds the identical index.
            let shared = spec.build_with_estimation(&x, &est).unwrap();
            assert_eq!(built.size_bytes(), shared.size_bytes());
            for pattern in &patterns {
                let expected = oracle.query(pattern, &x).unwrap();
                assert_eq!(
                    built.query(pattern, &x).unwrap(),
                    expected,
                    "{} disagrees with the oracle",
                    family.name()
                );
                assert_eq!(shared.query(pattern, &x).unwrap(), expected);
            }
        }
    }

    #[test]
    fn spec_metadata_is_consistent() {
        let params = IndexParams::new(8.0, 32, 4).unwrap();
        let spec = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::ArrayGrid), params);
        assert_eq!(spec.lower_bound(), 32);
        assert!(spec.family.needs_estimation());
        let spec = IndexSpec::new(IndexFamily::Wsa, params);
        assert_eq!(spec.lower_bound(), 1);
        assert!(!spec.family.has_length_bound());
        assert!(spec.family.needs_estimation());
        assert!(!IndexFamily::SpaceEfficient(IndexVariant::Tree).needs_estimation());
        assert!(!IndexFamily::Naive.needs_estimation());
    }

    #[test]
    fn estimation_requiring_families_fail_cleanly_without_one() {
        // dispatch(None) is only reachable through internal misuse, but the
        // error path must still be clean: build() always materialises.
        let x = PangenomeConfig {
            n: 200,
            delta: 0.05,
            seed: 3,
            ..Default::default()
        }
        .generate();
        let params = IndexParams::new(4.0, 8, x.sigma()).unwrap();
        let spec = IndexSpec::new(IndexFamily::Wst, params);
        assert!(spec.dispatch(&x, None).is_err());
        assert!(spec.build(&x).is_ok());
    }
}
