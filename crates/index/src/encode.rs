//! Heavy-string encoding of solid factors (Lemma 3 / Corollary 4).
//!
//! Every z-solid factor differs from the heavy string `H_X` at no more than
//! `⌊log₂ z⌋` positions, so a factor anchored at a known position can be
//! stored as *(anchor, length, list of mismatches)* — `O(log z)` words instead
//! of its full text. The minimizer solid factor trees and arrays store all
//! their leaf strings this way; the structures in this module provide
//!
//! * the storage ([`EncodedFactorSet`]) and its builder,
//! * a [`LabelProvider`] implementation so that `ius-text`'s compacted tries
//!   and the array binary searches can read factor letters transparently,
//! * lexicographic comparison and LCP of two encoded factors in
//!   `O(log z)` time using an LCE index over the heavy view (the operation
//!   the paper uses to sort the sampled factors, Theorem 12), and
//! * the probability machinery needed to *verify* a candidate occurrence in
//!   `O(log z)` time without access to `X`: each mismatch stores the ratio
//!   `p(letter)/p(heavy letter)` so a window's occurrence probability is the
//!   heavy prefix-product times the ratios of the mismatches inside it.

use ius_arena::ArenaVec;
use ius_text::lce::LceIndex;
use ius_text::trie::LabelProvider;
use std::cmp::Ordering;
use std::ops::Range;
use std::sync::Arc;

/// One stored deviation of a factor from the heavy string.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mismatch {
    /// Depth of the mismatch within the factor (0 = at the anchor).
    pub depth: u32,
    /// The factor's letter at that depth (≠ the heavy letter there).
    pub letter: u8,
    /// `p(letter) / p(heavy letter)` at the corresponding position of `X`.
    pub ratio: f64,
}

/// Reading direction of a factor set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Factors read left-to-right starting at the anchor (the `T_suff` tree).
    Forward,
    /// Factors read right-to-left starting at the anchor (the `T_pref` tree).
    Backward,
}

/// A factor to be inserted into an [`EncodedFactorSet`].
#[derive(Debug, Clone)]
pub struct PendingFactor {
    /// Anchor position in `X` (the minimizer position).
    pub anchor_x: u32,
    /// Factor length (letters read from the anchor in the set's direction).
    pub len: u32,
    /// Strand the factor was sampled from (`u32::MAX` for the strand-free
    /// space-efficient construction).
    pub strand: u32,
    /// Deviations from the heavy string, sorted by increasing depth.
    pub mismatches: Vec<Mismatch>,
}

/// A sorted set of heavy-encoded factors anchored at minimizer positions.
///
/// The set owns its *heavy view*: the heavy string read in the set's
/// direction (`H_X` itself for forward sets, its reverse for backward sets),
/// so that the letter at depth `d` of a factor anchored at view position `a`
/// is `heavy_view[a + d]` unless overridden by a stored mismatch.
#[derive(Debug, Clone)]
pub struct EncodedFactorSet {
    direction: Direction,
    /// The heavy string read in the set's direction. Forward sets share the
    /// index-wide heavy allocation (no copy); backward sets own the reversed
    /// copy.
    heavy_view: Arc<Vec<u8>>,
    /// Anchor in view coordinates, per sorted leaf (derived from `anchor_x`
    /// at build/load time, never persisted).
    anchor_view: Vec<u32>,
    /// Anchor in `X` coordinates (the minimizer position), per sorted leaf.
    anchor_x: ArenaVec<u32>,
    /// Factor length per sorted leaf.
    lens: ArenaVec<u32>,
    /// Strand per sorted leaf (`u32::MAX` when strand-free).
    strands: ArenaVec<u32>,
    /// Offsets into the mismatch pools, one per leaf plus a trailing total.
    mism_start: ArenaVec<u32>,
    /// The concatenated mismatch storage, struct-of-arrays: depth, letter
    /// and probability ratio per stored mismatch. Flat [`ArenaVec`] pools,
    /// so a persisted set can borrow them zero-copy from the index arena.
    mism_depths: ArenaVec<u32>,
    mism_letters: ArenaVec<u8>,
    mism_ratios: ArenaVec<f64>,
    /// `ln(ratio)` per stored mismatch, precomputed at build time so grid
    /// verification sums log-probabilities without per-query `ln` calls.
    /// Derived from `mism_ratios`, never persisted.
    mism_log_ratios: Vec<f64>,
    /// Packed 8-letter prefix key per sorted leaf (see [`prefix_key`]),
    /// carried over from the construction sort. Non-decreasing in leaf
    /// order; used to narrow `equal_range` with integer comparisons before
    /// any letter is compared. Empty for sets built by the retained
    /// reference pipeline (the binary search then skips the narrowing).
    prefix_keys: ArenaVec<u64>,
}

impl EncodedFactorSet {
    /// Number of stored factors (leaves).
    #[inline]
    pub fn len(&self) -> usize {
        self.lens.len()
    }

    /// `true` iff the set stores no factor.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lens.is_empty()
    }

    /// Reading direction of the set.
    #[inline]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The anchor (minimizer position in `X`) of the `leaf`-th sorted factor.
    #[inline]
    pub fn anchor_x(&self, leaf: usize) -> usize {
        self.anchor_x[leaf] as usize
    }

    /// The strand of the `leaf`-th factor (`u32::MAX` when strand-free).
    #[inline]
    pub fn strand(&self, leaf: usize) -> u32 {
        self.strands[leaf]
    }

    /// The length of the `leaf`-th factor.
    #[inline]
    pub fn factor_len(&self, leaf: usize) -> usize {
        self.lens[leaf] as usize
    }

    /// The range of the `leaf`-th factor's entries in the mismatch pools.
    #[inline]
    fn mism_range(&self, leaf: usize) -> Range<usize> {
        self.mism_start[leaf] as usize..self.mism_start[leaf + 1] as usize
    }

    /// Number of stored mismatches of the `leaf`-th factor.
    #[inline]
    pub fn num_mismatches(&self, leaf: usize) -> usize {
        let r = self.mism_range(leaf);
        r.end - r.start
    }

    /// The stored mismatches of the `leaf`-th factor, materialised from the
    /// struct-of-arrays pools (convenience iterator; the hot paths read the
    /// per-component slices directly).
    pub fn mismatches(&self, leaf: usize) -> impl Iterator<Item = Mismatch> + '_ {
        let r = self.mism_range(leaf);
        self.mism_depths[r.clone()]
            .iter()
            .zip(&self.mism_letters[r.clone()])
            .zip(&self.mism_ratios[r])
            .map(|((&depth, &letter), &ratio)| Mismatch {
                depth,
                letter,
                ratio,
            })
    }

    /// The depths of the `leaf`-th factor's stored mismatches.
    #[inline]
    pub fn mismatch_depths(&self, leaf: usize) -> &[u32] {
        &self.mism_depths[self.mism_range(leaf)]
    }

    /// The letters of the `leaf`-th factor's stored mismatches, aligned with
    /// [`EncodedFactorSet::mismatch_depths`].
    #[inline]
    pub fn mismatch_letters(&self, leaf: usize) -> &[u8] {
        &self.mism_letters[self.mism_range(leaf)]
    }

    /// The probability ratios of the `leaf`-th factor's stored mismatches,
    /// aligned with [`EncodedFactorSet::mismatch_depths`].
    #[inline]
    pub fn mismatch_ratios(&self, leaf: usize) -> &[f64] {
        &self.mism_ratios[self.mism_range(leaf)]
    }

    /// The precomputed `ln(ratio)` of each stored mismatch of the `leaf`-th
    /// factor, aligned with [`EncodedFactorSet::mismatch_depths`].
    #[inline]
    pub fn mismatch_log_ratios(&self, leaf: usize) -> &[f64] {
        &self.mism_log_ratios[self.mism_range(leaf)]
    }

    /// Total number of stored mismatches.
    #[inline]
    pub fn total_mismatches(&self) -> usize {
        self.mism_depths.len()
    }

    /// The letter at `depth` of the `leaf`-th factor, or `None` past its end.
    #[inline]
    pub fn letter_at(&self, leaf: usize, depth: usize) -> Option<u8> {
        if depth >= self.lens[leaf] as usize {
            return None;
        }
        let r = self.mism_range(leaf);
        if let Some(slot) = self.mism_depths[r.clone()]
            .iter()
            .position(|&d| d as usize == depth)
        {
            return Some(self.mism_letters[r.start + slot]);
        }
        Some(self.heavy_view[self.anchor_view[leaf] as usize + depth])
    }

    /// Materialises the `leaf`-th factor (used by tests and debugging).
    pub fn materialize(&self, leaf: usize) -> Vec<u8> {
        (0..self.factor_len(leaf))
            .map(|d| self.letter_at(leaf, d).expect("depth within factor"))
            .collect()
    }

    /// The half-open range of sorted leaves whose factors have `pattern` as a
    /// prefix, by binary search — the array-based (MWSA) lookup.
    ///
    /// Two layers of acceleration over the retained reference search:
    /// patterns of length ≥ 8 are first narrowed to the run of leaves whose
    /// packed 8-letter [`prefix_key`] equals the pattern's (pure integer
    /// comparisons), and every remaining comparison walks the factor's
    /// heavy-view stretches *between* mismatches with slice (memcmp-style)
    /// comparisons instead of decoding one letter at a time — `O(m/word +
    /// log z)` per comparison rather than `O(m · log z)`.
    pub fn equal_range(&self, pattern: &[u8]) -> (usize, usize) {
        let (search_lo, search_hi) = if pattern.len() >= 8 && !self.prefix_keys.is_empty() {
            // Any factor having the (≥ 8 letter) pattern as a prefix packs
            // exactly the pattern's first eight letters, so its key equals
            // `pat_key`; keys are non-decreasing in leaf order, truncated
            // factors pad with 0 and letters pack as rank+1, so no shorter
            // factor collides with the full key.
            let pat_key = pattern_prefix_key(pattern);
            let lo = self.prefix_keys.partition_point(|&k| k < pat_key);
            let hi = self.prefix_keys.partition_point(|&k| k <= pat_key);
            (lo, hi)
        } else {
            (0, self.len())
        };
        let lo = search_lo
            + partition_point_in(search_hi - search_lo, |i| {
                self.cmp_leaf(search_lo + i, pattern, false).is_lt()
            });
        let hi = search_lo
            + partition_point_in(search_hi - search_lo, |i| {
                // Leaf's prefix (of pattern length) ≤ pattern?
                self.cmp_leaf(search_lo + i, pattern, true) != Ordering::Greater
            });
        (lo, hi)
    }

    /// The pre-overhaul `equal_range`: binary search whose comparator decodes
    /// the factor one [`EncodedFactorSet::letter_at`] call (a linear scan of
    /// the mismatch list) per letter. Retained for differential testing and
    /// as the "before" side of the query benchmark; returns exactly the same
    /// range as [`EncodedFactorSet::equal_range`].
    pub fn equal_range_reference(&self, pattern: &[u8]) -> (usize, usize) {
        let lo = self.partition_point(|leaf| {
            self.compare_leaf_to_pattern_reference(leaf, pattern)
                .is_lt()
        });
        let hi = self.partition_point(|leaf| {
            self.compare_leaf_prefix_to_pattern_reference(leaf, pattern) != Ordering::Greater
        });
        (lo, hi)
    }

    /// Compares the `leaf`-th factor with `pattern` by comparing the pure
    /// heavy-view stretches between stored mismatches as slices.
    ///
    /// With `prefix_only` the factor is compared only up to `|pattern|`
    /// letters (a shorter factor counts as smaller, an equal-or-longer one as
    /// equal); otherwise the full factor is compared as a plain string.
    fn cmp_leaf(&self, leaf: usize, pattern: &[u8], prefix_only: bool) -> Ordering {
        let len = self.factor_len(leaf);
        let limit = len.min(pattern.len());
        let base = self.anchor_view[leaf] as usize;
        let heavy = &self.heavy_view[base..base + limit];
        let mut d = 0usize;
        let r = self.mism_range(leaf);
        for (&depth, &letter) in self.mism_depths[r.clone()]
            .iter()
            .zip(&self.mism_letters[r])
        {
            let md = depth as usize;
            if md >= limit {
                break;
            }
            match heavy[d..md].cmp(&pattern[d..md]) {
                Ordering::Equal => {}
                other => return other,
            }
            match letter.cmp(&pattern[md]) {
                Ordering::Equal => {}
                other => return other,
            }
            d = md + 1;
        }
        match heavy[d..limit].cmp(&pattern[d..limit]) {
            Ordering::Equal => {}
            other => return other,
        }
        if prefix_only {
            if len >= pattern.len() {
                Ordering::Equal
            } else {
                Ordering::Less
            }
        } else {
            len.cmp(&pattern.len())
        }
    }

    /// Heap bytes retained by the set, counting the heavy view even when it
    /// is shared (see [`EncodedFactorSet::memory_bytes_without_heavy`] for
    /// the variant that avoids double counting a shared view).
    pub fn memory_bytes(&self) -> usize {
        self.heavy_view.capacity()
            + self.anchor_view.capacity() * 4
            + self.anchor_x.heap_bytes()
            + self.lens.heap_bytes()
            + self.strands.heap_bytes()
            + self.mism_start.heap_bytes()
            + self.mism_depths.heap_bytes()
            + self.mism_letters.heap_bytes()
            + self.mism_ratios.heap_bytes()
            + self.mism_log_ratios.capacity() * 8
            + self.prefix_keys.heap_bytes()
    }

    /// Heap bytes excluding the heavy view. Forward sets share the view's
    /// allocation with the index-wide heavy string, so counting it again
    /// would double count.
    pub fn memory_bytes_without_heavy(&self) -> usize {
        self.memory_bytes() - self.heavy_view.capacity()
    }

    /// `true` iff this set is the sole owner of its heavy view (backward
    /// sets own their reversed copy; forward sets usually share).
    pub fn owns_heavy_view(&self) -> bool {
        Arc::strong_count(&self.heavy_view) == 1
    }

    fn partition_point<F: Fn(usize) -> bool>(&self, pred: F) -> usize {
        partition_point_in(self.len(), pred)
    }

    // ---- persistence support (see `crate::persist`) --------------------

    /// Anchors in `X` coordinates, per sorted leaf.
    pub(crate) fn anchor_x_raw(&self) -> &[u32] {
        &self.anchor_x
    }

    /// Factor lengths, per sorted leaf.
    pub(crate) fn lens_raw(&self) -> &[u32] {
        &self.lens
    }

    /// Strand ids, per sorted leaf.
    pub(crate) fn strands_raw(&self) -> &[u32] {
        &self.strands
    }

    /// Mismatch offsets (one per leaf plus the trailing total).
    pub(crate) fn mism_start_raw(&self) -> &[u32] {
        &self.mism_start
    }

    /// The concatenated mismatch depths.
    pub(crate) fn mism_depths_raw(&self) -> &[u32] {
        &self.mism_depths
    }

    /// The concatenated mismatch letters.
    pub(crate) fn mism_letters_raw(&self) -> &[u8] {
        &self.mism_letters
    }

    /// The concatenated mismatch probability ratios.
    pub(crate) fn mism_ratios_raw(&self) -> &[f64] {
        &self.mism_ratios
    }

    /// The packed prefix keys (empty for reference-built sets).
    pub(crate) fn prefix_keys_raw(&self) -> &[u64] {
        &self.prefix_keys
    }

    /// Reassembles a set from its persisted parts. `heavy_view` must be the
    /// heavy string read in the set's direction (shared for forward sets,
    /// an owned reversed copy for backward sets); anchor view coordinates
    /// and the mismatch log-ratios are recomputed (both are derived data —
    /// no construction, i.e. no sorting, is re-run).
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural inconsistency.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_loaded_parts(
        direction: Direction,
        heavy_view: Arc<Vec<u8>>,
        anchor_x: ArenaVec<u32>,
        lens: ArenaVec<u32>,
        strands: ArenaVec<u32>,
        mism_start: ArenaVec<u32>,
        mism_depths: ArenaVec<u32>,
        mism_letters: ArenaVec<u8>,
        mism_ratios: ArenaVec<f64>,
        prefix_keys: ArenaVec<u64>,
    ) -> Result<EncodedFactorSet, String> {
        let n = heavy_view.len();
        let leaves = anchor_x.len();
        if lens.len() != leaves || strands.len() != leaves {
            return Err("factor-set leaf arrays have inconsistent lengths".into());
        }
        if mism_start.len() != leaves + 1 || mism_start.first().copied().unwrap_or(1) != 0 {
            return Err("mismatch offset table is malformed".into());
        }
        if mism_depths.len() != mism_letters.len() || mism_depths.len() != mism_ratios.len() {
            return Err("mismatch component pools have inconsistent lengths".into());
        }
        if mism_start.windows(2).any(|w| w[0] > w[1])
            || mism_start.last().map(|&v| v as usize) != Some(mism_depths.len())
        {
            return Err("mismatch offsets do not cover the mismatch storage".into());
        }
        if !prefix_keys.is_empty() && prefix_keys.len() != leaves {
            return Err("prefix-key table length does not match the leaf count".into());
        }
        let mut anchor_view = Vec::with_capacity(leaves);
        for (leaf, &a) in anchor_x.iter().enumerate() {
            let view = match direction {
                Direction::Forward => a as usize,
                Direction::Backward => {
                    if a as usize >= n {
                        return Err(format!("anchor {a} of leaf {leaf} out of range"));
                    }
                    n - 1 - a as usize
                }
            };
            if view + lens[leaf] as usize > n {
                return Err(format!("factor of leaf {leaf} runs past the heavy view"));
            }
            anchor_view.push(view as u32);
        }
        for (leaf, window) in mism_start.windows(2).enumerate() {
            let (lo, hi) = (window[0] as usize, window[1] as usize);
            // Ratios are probability quotients: strictly positive and finite,
            // or the recomputed log-ratios would be NaN/-inf and silently
            // corrupt grid verification.
            if mism_depths[lo..hi].iter().any(|&d| d >= lens[leaf])
                || mism_ratios[lo..hi]
                    .iter()
                    .any(|&r| !r.is_finite() || r <= 0.0)
            {
                return Err(format!("mismatch of leaf {leaf} is out of range"));
            }
        }
        let mism_log_ratios: Vec<f64> = mism_ratios.iter().map(|&r| r.ln()).collect();
        Ok(EncodedFactorSet {
            direction,
            heavy_view,
            anchor_view,
            anchor_x,
            lens,
            strands,
            mism_start,
            mism_depths,
            mism_letters,
            mism_ratios,
            mism_log_ratios,
            prefix_keys,
        })
    }

    /// Compares the full factor of `leaf` with `pattern` (pattern treated as
    /// a plain string; a factor that is a proper prefix of the pattern is
    /// smaller). Pre-overhaul letter-at-a-time comparator, retained for
    /// [`EncodedFactorSet::equal_range_reference`].
    fn compare_leaf_to_pattern_reference(&self, leaf: usize, pattern: &[u8]) -> Ordering {
        let len = self.factor_len(leaf);
        for (d, &pc) in pattern.iter().enumerate().take(len) {
            let c = self.letter_at(leaf, d).expect("within factor");
            match c.cmp(&pc) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        len.cmp(&pattern.len())
    }

    /// Compares the length-`|pattern|` prefix of the factor with `pattern`
    /// (a shorter factor counts as smaller). Pre-overhaul letter-at-a-time
    /// comparator, retained for [`EncodedFactorSet::equal_range_reference`].
    fn compare_leaf_prefix_to_pattern_reference(&self, leaf: usize, pattern: &[u8]) -> Ordering {
        let len = self.factor_len(leaf);
        for (d, &pc) in pattern.iter().enumerate().take(len) {
            let c = self.letter_at(leaf, d).expect("within factor");
            match c.cmp(&pc) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        if len >= pattern.len() {
            Ordering::Equal
        } else {
            Ordering::Less
        }
    }
}

impl LabelProvider for EncodedFactorSet {
    #[inline]
    fn letter(&self, leaf: usize, depth: usize) -> Option<u8> {
        self.letter_at(leaf, depth)
    }

    #[inline]
    fn len(&self, leaf: usize) -> usize {
        self.factor_len(leaf)
    }
}

/// Builder collecting factors before sorting them into an
/// [`EncodedFactorSet`].
#[derive(Debug)]
pub struct EncodedFactorSetBuilder {
    direction: Direction,
    /// Heavy string of `X` (always in forward orientation), borrowed from
    /// the index-wide heavy string — the builder never copies it.
    heavy_forward: Arc<Vec<u8>>,
    factors: Vec<PendingFactor>,
}

impl EncodedFactorSetBuilder {
    /// Creates a builder for the given direction over the heavy string of `X`
    /// (given in forward orientation; the builder derives the view it needs).
    /// Pass [`ius_weighted::HeavyString::shared_ranks`] — no letters are
    /// copied for forward sets; backward sets materialise one reversed copy
    /// at [`EncodedFactorSetBuilder::finish`] time.
    pub fn new(direction: Direction, heavy_forward: Arc<Vec<u8>>) -> Self {
        Self {
            direction,
            heavy_forward,
            factors: Vec::new(),
        }
    }

    /// Adds a factor.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if a mismatch depth exceeds the factor length or
    /// mismatches are not sorted by depth.
    pub fn push(&mut self, factor: PendingFactor) {
        debug_assert!(
            factor
                .mismatches
                .windows(2)
                .all(|w| w[0].depth < w[1].depth),
            "mismatches must be sorted by depth"
        );
        debug_assert!(
            factor.mismatches.iter().all(|m| m.depth < factor.len),
            "mismatch depth beyond factor length"
        );
        self.factors.push(factor);
    }

    /// Number of factors pushed so far.
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// `true` iff nothing was pushed yet.
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// Sorts the factors lexicographically and returns the finished set
    /// together with the LCP values of neighbouring factors (entry 0 is 0) —
    /// exactly what [`ius_text::trie::CompactedTrie::build`] needs.
    pub fn finish(self) -> (EncodedFactorSet, Vec<usize>) {
        self.finish_with_threads(1)
    }

    /// [`EncodedFactorSetBuilder::finish`] with the sort fanned out over
    /// `threads` workers (0 = all CPUs) on the shared [`ius_exec::Executor`].
    ///
    /// Each worker sorts a contiguous chunk of factor indices with the *same*
    /// comparator the serial sort uses, extended by an original-index
    /// tiebreak that makes the order a total order; a serial k-way merge then
    /// combines the runs. Because the tiebroken comparator admits exactly one
    /// sorted permutation, the emitted set is byte-identical to the serial
    /// [`EncodedFactorSetBuilder::finish`] at every thread count (and
    /// full-comparator ties are identical records anyway — same anchor, same
    /// string, hence same mismatch list).
    pub fn finish_with_threads(self, threads: usize) -> (EncodedFactorSet, Vec<usize>) {
        let n = self.heavy_forward.len();
        let heavy_view: Arc<Vec<u8>> = match self.direction {
            // Forward sets read the heavy string as-is: share the allocation.
            Direction::Forward => self.heavy_forward,
            // Backward sets read it reversed: one owned copy, unavoidable
            // because the LCE index is built over the view's orientation.
            Direction::Backward => {
                let mut v = (*self.heavy_forward).clone();
                v.reverse();
                Arc::new(v)
            }
        };
        let anchor_to_view = |anchor_x: u32| -> u32 {
            match self.direction {
                Direction::Forward => anchor_x,
                Direction::Backward => (n as u32) - 1 - anchor_x,
            }
        };
        let lce = LceIndex::new(&heavy_view);
        let factors = self.factors;
        // Packed prefix keys decide almost every comparison with one integer
        // compare; the O(log z) LCE comparator only breaks the ties of
        // factors sharing their first eight letters.
        let prefix_keys: Vec<u64> = factors
            .iter()
            .map(|f| prefix_key(f, &heavy_view, anchor_to_view(f.anchor_x) as usize))
            .collect();
        let cmp = |a: usize, b: usize| {
            prefix_keys[a]
                .cmp(&prefix_keys[b])
                .then_with(|| {
                    compare_pending(
                        &factors[a],
                        anchor_to_view(factors[a].anchor_x) as usize,
                        &factors[b],
                        anchor_to_view(factors[b].anchor_x) as usize,
                        &heavy_view,
                        &lce,
                    )
                })
                .then(factors[a].anchor_x.cmp(&factors[b].anchor_x))
                .then(factors[a].strand.cmp(&factors[b].strand))
                // Full-comparator ties are identical records; the index
                // tiebreak pins one canonical permutation so chunked sorting
                // and merging reproduce the serial order exactly.
                .then(a.cmp(&b))
        };
        let executor = ius_exec::Executor::with_threads(threads);
        let workers = executor.threads().min(factors.len().max(1));
        let order: Vec<usize> = if workers <= 1 {
            let mut order: Vec<usize> = (0..factors.len()).collect();
            order.sort_unstable_by(|&a, &b| cmp(a, b));
            order
        } else {
            let chunk = factors.len().div_ceil(workers);
            let runs = executor.run(factors.len().div_ceil(chunk), |w| {
                let lo = w * chunk;
                let hi = (lo + chunk).min(factors.len());
                let mut run: Vec<usize> = (lo..hi).collect();
                run.sort_unstable_by(|&a, &b| cmp(a, b));
                run
            });
            let runs: Vec<Vec<usize>> = runs
                .into_iter()
                .map(|outcome| match outcome {
                    Ok(run) => run,
                    Err(task_panic) => panic!("{task_panic}"),
                })
                .collect();
            merge_sorted_runs(runs, &cmp)
        };

        let total_mismatches: usize = factors.iter().map(|f| f.mismatches.len()).sum();
        let mut raw = RawFactorData::with_capacity(order.len(), total_mismatches);
        let lcps = Self::emit_sorted(
            &factors,
            &order,
            &mut raw,
            &heavy_view,
            &lce,
            anchor_to_view,
        );
        // Keep the construction sort's packed keys, reordered to leaf order,
        // as the integer narrowing index of `equal_range`.
        let leaf_keys: Vec<u64> = order.iter().map(|&idx| prefix_keys[idx]).collect();
        (raw.into_set(self.direction, heavy_view, leaf_keys), lcps)
    }

    /// The pre-overhaul `finish`: builds the LCE substrate from the retained
    /// prefix-doubling suffix array and sorts with the `O(log z)` comparator
    /// alone (no packed prefix keys). Retained for differential testing and
    /// as the "before" measurement of the construction benchmark; produces
    /// exactly the same sorted set as [`EncodedFactorSetBuilder::finish`].
    pub fn finish_reference(self) -> (EncodedFactorSet, Vec<usize>) {
        use ius_text::sa::suffix_array_prefix_doubling;
        let n = self.heavy_forward.len();
        let heavy_view: Arc<Vec<u8>> = {
            // The seed copied the heavy letters into every builder; keep that
            // cost in the reference path.
            let mut v = (*self.heavy_forward).clone();
            if self.direction == Direction::Backward {
                v.reverse();
            }
            Arc::new(v)
        };
        let anchor_to_view = |anchor_x: u32| -> u32 {
            match self.direction {
                Direction::Forward => anchor_x,
                Direction::Backward => (n as u32) - 1 - anchor_x,
            }
        };
        let lce =
            LceIndex::from_suffix_array(&heavy_view, suffix_array_prefix_doubling(&heavy_view));
        let mut order: Vec<usize> = (0..self.factors.len()).collect();
        let factors = self.factors;
        order.sort_unstable_by(|&a, &b| {
            compare_pending(
                &factors[a],
                anchor_to_view(factors[a].anchor_x) as usize,
                &factors[b],
                anchor_to_view(factors[b].anchor_x) as usize,
                &heavy_view,
                &lce,
            )
            .then(factors[a].anchor_x.cmp(&factors[b].anchor_x))
            .then(factors[a].strand.cmp(&factors[b].strand))
        });

        let mut raw = RawFactorData::with_capacity(order.len(), 0);
        let lcps = Self::emit_sorted(
            &factors,
            &order,
            &mut raw,
            &heavy_view,
            &lce,
            anchor_to_view,
        );
        // The reference pipeline predates the packed keys; leaving them
        // empty makes `equal_range` skip the integer narrowing.
        (raw.into_set(self.direction, heavy_view, Vec::new()), lcps)
    }

    /// Emits the factors into `raw` in sorted order and computes neighbour
    /// LCPs (shared tail of `finish` and `finish_reference`).
    fn emit_sorted(
        factors: &[PendingFactor],
        order: &[usize],
        raw: &mut RawFactorData,
        heavy_view: &[u8],
        lce: &LceIndex,
        anchor_to_view: impl Fn(u32) -> u32,
    ) -> Vec<usize> {
        let mut lcps = vec![0usize; order.len()];
        for (rank, &idx) in order.iter().enumerate() {
            let f = &factors[idx];
            raw.anchor_view.push(anchor_to_view(f.anchor_x));
            raw.anchor_x.push(f.anchor_x);
            raw.lens.push(f.len);
            raw.strands.push(f.strand);
            for m in &f.mismatches {
                raw.mism_depths.push(m.depth);
                raw.mism_letters.push(m.letter);
                raw.mism_ratios.push(m.ratio);
                raw.mism_log_ratios.push(m.ratio.ln());
            }
            raw.mism_start.push(raw.mism_depths.len() as u32);
            if rank > 0 {
                let prev = &factors[order[rank - 1]];
                lcps[rank] = lcp_pending(
                    prev,
                    anchor_to_view(prev.anchor_x) as usize,
                    f,
                    anchor_to_view(f.anchor_x) as usize,
                    heavy_view,
                    lce,
                );
            }
        }
        lcps
    }
}

/// Construction-time emission buffers of [`EncodedFactorSetBuilder`] — plain
/// vectors grown by `push`, converted into the set's flat pools at the end.
struct RawFactorData {
    anchor_view: Vec<u32>,
    anchor_x: Vec<u32>,
    lens: Vec<u32>,
    strands: Vec<u32>,
    mism_start: Vec<u32>,
    mism_depths: Vec<u32>,
    mism_letters: Vec<u8>,
    mism_ratios: Vec<f64>,
    mism_log_ratios: Vec<f64>,
}

impl RawFactorData {
    fn with_capacity(leaves: usize, mismatches: usize) -> Self {
        let mut mism_start = Vec::with_capacity(leaves + 1);
        mism_start.push(0);
        Self {
            anchor_view: Vec::with_capacity(leaves),
            anchor_x: Vec::with_capacity(leaves),
            lens: Vec::with_capacity(leaves),
            strands: Vec::with_capacity(leaves),
            mism_start,
            mism_depths: Vec::with_capacity(mismatches),
            mism_letters: Vec::with_capacity(mismatches),
            mism_ratios: Vec::with_capacity(mismatches),
            mism_log_ratios: Vec::with_capacity(mismatches),
        }
    }

    fn into_set(
        self,
        direction: Direction,
        heavy_view: Arc<Vec<u8>>,
        prefix_keys: Vec<u64>,
    ) -> EncodedFactorSet {
        EncodedFactorSet {
            direction,
            heavy_view,
            anchor_view: self.anchor_view,
            anchor_x: ArenaVec::from(self.anchor_x),
            lens: ArenaVec::from(self.lens),
            strands: ArenaVec::from(self.strands),
            mism_start: ArenaVec::from(self.mism_start),
            mism_depths: ArenaVec::from(self.mism_depths),
            mism_letters: ArenaVec::from(self.mism_letters),
            mism_ratios: ArenaVec::from(self.mism_ratios),
            mism_log_ratios: self.mism_log_ratios,
            prefix_keys: ArenaVec::from(prefix_keys),
        }
    }
}

/// Serial k-way merge of sorted index runs under a strict total order (the
/// tiebroken factor comparator), the combine step of the parallel sort. The
/// run count equals the worker count, so the per-element linear scan over
/// run heads is cheap.
fn merge_sorted_runs(runs: Vec<Vec<usize>>, cmp: &impl Fn(usize, usize) -> Ordering) -> Vec<usize> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut heads = vec![0usize; runs.len()];
    let mut merged = Vec::with_capacity(total);
    for _ in 0..total {
        let mut best: Option<usize> = None;
        for (r, run) in runs.iter().enumerate() {
            if heads[r] >= run.len() {
                continue;
            }
            best = match best {
                Some(b) if cmp(runs[b][heads[b]], run[heads[r]]).is_le() => Some(b),
                _ => Some(r),
            };
        }
        let b = best.expect("total counts the remaining elements");
        merged.push(runs[b][heads[b]]);
        heads[b] += 1;
    }
    merged
}

/// First index in `0..len` for which `pred` is false (`pred` must be
/// monotone), the shared binary-search kernel of the range lookups.
fn partition_point_in<F: Fn(usize) -> bool>(len: usize, pred: F) -> usize {
    let mut lo = 0usize;
    let mut hi = len;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Packs the first eight letters of a (length ≥ 8) pattern exactly like
/// [`prefix_key`] packs a factor's, for the integer narrowing of
/// [`EncodedFactorSet::equal_range`].
fn pattern_prefix_key(pattern: &[u8]) -> u64 {
    let mut key = 0u64;
    for &c in &pattern[..8] {
        key = (key << 8) | (c as u64 + 1);
    }
    key
}

/// Packs the first eight letters of a factor into a big-endian `u64` whose
/// integer order equals the lexicographic order of those prefixes (letters
/// are stored as `rank + 1`, so "past the factor's end" packs as 0 and a
/// proper prefix sorts first).
fn prefix_key(f: &PendingFactor, view: &[u8], anchor_view: usize) -> u64 {
    let mut key = 0u64;
    let take = (f.len as usize).min(8);
    for d in 0..take {
        key = (key << 8) | (letter_of(f, view, anchor_view, d) as u64 + 1);
    }
    key << (8 * (8 - take))
}

fn mismatch_letter(f: &PendingFactor, depth: usize) -> Option<u8> {
    f.mismatches
        .iter()
        .find(|m| m.depth as usize == depth)
        .map(|m| m.letter)
}

fn letter_of(f: &PendingFactor, view: &[u8], anchor_view: usize, depth: usize) -> u8 {
    mismatch_letter(f, depth).unwrap_or(view[anchor_view + depth])
}

/// Walks two encoded factors and returns the first depth at which they
/// differ, capped at the shorter length. `O(#mismatches)` LCE queries.
fn lcp_pending(
    a: &PendingFactor,
    a_view: usize,
    b: &PendingFactor,
    b_view: usize,
    view: &[u8],
    lce: &LceIndex,
) -> usize {
    let limit = (a.len.min(b.len)) as usize;
    let mut d = 0usize;
    let mut ai = 0usize;
    let mut bi = 0usize;
    while d < limit {
        // Skip mismatches whose depth is behind `d`.
        while ai < a.mismatches.len() && (a.mismatches[ai].depth as usize) < d {
            ai += 1;
        }
        while bi < b.mismatches.len() && (b.mismatches[bi].depth as usize) < d {
            bi += 1;
        }
        let next_a = a
            .mismatches
            .get(ai)
            .map_or(usize::MAX, |m| m.depth as usize);
        let next_b = b
            .mismatches
            .get(bi)
            .map_or(usize::MAX, |m| m.depth as usize);
        if next_a == d || next_b == d {
            if letter_of(a, view, a_view, d) != letter_of(b, view, b_view, d) {
                return d;
            }
            d += 1;
            continue;
        }
        // Both factors follow the heavy view until the next mismatch.
        let stretch_end = limit.min(next_a).min(next_b);
        let heavy_lce = lce.lce(a_view + d, b_view + d);
        let step = heavy_lce.min(stretch_end - d);
        if step < stretch_end - d {
            return d + step;
        }
        d = stretch_end;
    }
    limit
}

/// Lexicographic comparison of two encoded factors (`O(log z)` LCE queries).
fn compare_pending(
    a: &PendingFactor,
    a_view: usize,
    b: &PendingFactor,
    b_view: usize,
    view: &[u8],
    lce: &LceIndex,
) -> Ordering {
    let l = lcp_pending(a, a_view, b, b_view, view, lce);
    let limit = (a.len.min(b.len)) as usize;
    if l >= limit {
        return a.len.cmp(&b.len);
    }
    letter_of(a, view, a_view, l).cmp(&letter_of(b, view, b_view, l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Reference materialisation of a pending factor over a heavy view.
    fn materialize_pending(f: &PendingFactor, view: &[u8], anchor_view: usize) -> Vec<u8> {
        (0..f.len as usize)
            .map(|d| letter_of(f, view, anchor_view, d))
            .collect()
    }

    fn random_factor(
        rng: &mut StdRng,
        n: usize,
        direction: Direction,
        sigma: u8,
        heavy: &[u8],
    ) -> PendingFactor {
        let anchor_x = rng.gen_range(0..n as u32);
        let max_len = match direction {
            Direction::Forward => n as u32 - anchor_x,
            Direction::Backward => anchor_x + 1,
        };
        let len = rng.gen_range(1..=max_len.min(30));
        let mut depths: Vec<u32> = (0..len).collect();
        // Choose up to 4 mismatch depths.
        let count = rng.gen_range(0..=3.min(len as usize));
        let mut mismatches = Vec::new();
        for _ in 0..count {
            let idx = rng.gen_range(0..depths.len());
            let depth = depths.swap_remove(idx);
            let abs = match direction {
                Direction::Forward => anchor_x + depth,
                Direction::Backward => anchor_x - depth,
            } as usize;
            let heavy_letter = heavy[abs];
            let mut letter = rng.gen_range(0..sigma);
            if letter == heavy_letter {
                letter = (letter + 1) % sigma;
            }
            mismatches.push(Mismatch {
                depth,
                letter,
                ratio: 0.5,
            });
        }
        mismatches.sort_by_key(|m| m.depth);
        PendingFactor {
            anchor_x,
            len,
            strand: 0,
            mismatches,
        }
    }

    #[test]
    fn sorted_set_orders_and_lcps_match_materialised_strings() {
        let mut rng = StdRng::seed_from_u64(12);
        for direction in [Direction::Forward, Direction::Backward] {
            let n = 60usize;
            let sigma = 3u8;
            let heavy: Arc<Vec<u8>> = Arc::new((0..n).map(|_| rng.gen_range(0..sigma)).collect());
            let view: Vec<u8> = match direction {
                Direction::Forward => (*heavy).clone(),
                Direction::Backward => {
                    let mut v = (*heavy).clone();
                    v.reverse();
                    v
                }
            };
            let anchor_to_view = |anchor_x: u32| match direction {
                Direction::Forward => anchor_x as usize,
                Direction::Backward => n - 1 - anchor_x as usize,
            };
            // Materialise each factor's expected string up front, then move
            // the factor into the builder — no per-factor clone needed.
            let mut builder = EncodedFactorSetBuilder::new(direction, Arc::clone(&heavy));
            let mut expected: Vec<Vec<u8>> = Vec::new();
            for _ in 0..80 {
                let f = random_factor(&mut rng, n, direction, sigma, &heavy);
                expected.push(materialize_pending(&f, &view, anchor_to_view(f.anchor_x)));
                builder.push(f);
            }
            let (set, lcps) = builder.finish();
            assert_eq!(set.len(), expected.len());
            // The sorted set must materialise exactly the pushed multiset of
            // strings, in sorted order, with matching neighbour LCPs.
            expected.sort();
            let strings: Vec<Vec<u8>> = (0..set.len()).map(|i| set.materialize(i)).collect();
            assert_eq!(strings, expected, "sorted factors differ ({direction:?})");
            for i in 1..strings.len() {
                let direct = strings[i - 1]
                    .iter()
                    .zip(strings[i].iter())
                    .take_while(|(a, b)| a == b)
                    .count();
                assert_eq!(lcps[i], direct, "LCP mismatch at {i} ({direction:?})");
            }
            // The stored view letters must agree with the anchors.
            for (leaf, s) in strings.iter().enumerate() {
                let anchor_view = anchor_to_view(set.anchor_x(leaf) as u32);
                for (d, &letter) in s.iter().enumerate() {
                    let stored = set.letter_at(leaf, d).unwrap();
                    assert_eq!(stored, letter, "leaf {leaf} depth {d}");
                    if set.mismatch_depths(leaf).iter().all(|&md| md as usize != d) {
                        assert_eq!(view[anchor_view + d], letter);
                    }
                }
            }
        }
    }

    #[test]
    fn equal_range_matches_linear_scan() {
        let mut rng = StdRng::seed_from_u64(77);
        let n = 50usize;
        let sigma = 2u8;
        let heavy: Arc<Vec<u8>> = Arc::new((0..n).map(|_| rng.gen_range(0..sigma)).collect());
        let mut builder = EncodedFactorSetBuilder::new(Direction::Forward, Arc::clone(&heavy));
        for _ in 0..60 {
            builder.push(random_factor(
                &mut rng,
                n,
                Direction::Forward,
                sigma,
                &heavy,
            ));
        }
        let (set, _) = builder.finish();
        for _ in 0..300 {
            // Lengths up to 15 cover both search branches: plain binary
            // search (m < 8) and the packed-prefix-key narrowing (m ≥ 8).
            let m = rng.gen_range(1..16usize);
            let pattern: Vec<u8> = if rng.gen_bool(0.5) {
                // Borrow a real factor's prefix so long patterns also hit
                // non-empty ranges, not just misses.
                let leaf = rng.gen_range(0..set.len());
                let mut p = set.materialize(leaf);
                p.truncate(m);
                while p.len() < m {
                    p.push(rng.gen_range(0..sigma));
                }
                p
            } else {
                (0..m).map(|_| rng.gen_range(0..sigma)).collect()
            };
            let (lo, hi) = set.equal_range(&pattern);
            // The slice-stretch comparator must agree exactly with the
            // retained letter-at-a-time binary search.
            assert_eq!(
                (lo, hi),
                set.equal_range_reference(&pattern),
                "pattern {pattern:?}"
            );
            for leaf in 0..set.len() {
                let is_prefix = set.materialize(leaf).starts_with(&pattern);
                let in_range = leaf >= lo && leaf < hi;
                assert_eq!(is_prefix, in_range, "leaf {leaf} pattern {pattern:?}");
            }
        }
    }

    #[test]
    fn parallel_finish_is_byte_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(0xCAFE);
        for direction in [Direction::Forward, Direction::Backward] {
            let n = 70usize;
            let sigma = 3u8;
            let heavy: Arc<Vec<u8>> = Arc::new((0..n).map(|_| rng.gen_range(0..sigma)).collect());
            let factors: Vec<PendingFactor> = (0..150)
                .map(|_| random_factor(&mut rng, n, direction, sigma, &heavy))
                .collect();
            let mut serial_builder = EncodedFactorSetBuilder::new(direction, Arc::clone(&heavy));
            for f in &factors {
                serial_builder.push(f.clone());
            }
            let (serial, serial_lcps) = serial_builder.finish();
            for threads in [2usize, 3, 8] {
                let mut builder = EncodedFactorSetBuilder::new(direction, Arc::clone(&heavy));
                for f in &factors {
                    builder.push(f.clone());
                }
                let (parallel, lcps) = builder.finish_with_threads(threads);
                assert_eq!(lcps, serial_lcps, "{direction:?} threads={threads}");
                assert_eq!(parallel.anchor_x_raw(), serial.anchor_x_raw());
                assert_eq!(parallel.lens_raw(), serial.lens_raw());
                assert_eq!(parallel.strands_raw(), serial.strands_raw());
                assert_eq!(parallel.mism_start_raw(), serial.mism_start_raw());
                assert_eq!(parallel.mism_depths_raw(), serial.mism_depths_raw());
                assert_eq!(parallel.mism_letters_raw(), serial.mism_letters_raw());
                assert_eq!(parallel.mism_ratios_raw(), serial.mism_ratios_raw());
                assert_eq!(parallel.prefix_keys_raw(), serial.prefix_keys_raw());
            }
        }
    }

    #[test]
    fn letter_at_and_label_provider_agree() {
        let heavy = Arc::new(vec![0u8, 1, 2, 3, 0, 1, 2, 3]);
        let mut builder = EncodedFactorSetBuilder::new(Direction::Forward, heavy);
        builder.push(PendingFactor {
            anchor_x: 2,
            len: 5,
            strand: 7,
            mismatches: vec![Mismatch {
                depth: 1,
                letter: 0,
                ratio: 0.25,
            }],
        });
        let (set, _) = builder.finish();
        assert_eq!(set.len(), 1);
        assert_eq!(set.materialize(0), vec![2, 0, 0, 1, 2]);
        assert_eq!(set.letter_at(0, 1), Some(0));
        assert_eq!(set.letter_at(0, 5), None);
        assert_eq!(LabelProvider::letter(&set, 0, 4), Some(2));
        assert_eq!(LabelProvider::len(&set, 0), 5);
        assert_eq!(set.strand(0), 7);
        assert_eq!(set.anchor_x(0), 2);
        assert_eq!(set.num_mismatches(0), 1);
        assert_eq!(set.total_mismatches(), 1);
        assert!(set.memory_bytes() > set.memory_bytes_without_heavy());
    }

    #[test]
    fn loaded_parts_validation_rejects_corruption() {
        let heavy: Arc<Vec<u8>> = Arc::new(vec![0, 1, 0, 1, 0]);
        let good = |ratio: f64| {
            EncodedFactorSet::from_loaded_parts(
                Direction::Forward,
                Arc::clone(&heavy),
                vec![1].into(),
                vec![3].into(),
                vec![0].into(),
                vec![0, 1].into(),
                vec![2u32].into(),
                vec![0u8].into(),
                vec![ratio].into(),
                ArenaVec::new(),
            )
        };
        assert!(good(0.5).is_ok());
        // Non-positive or non-finite ratios would make the recomputed
        // log-ratios NaN/-inf and silently corrupt verification.
        assert!(good(0.0).is_err());
        assert!(good(-1.0).is_err());
        assert!(good(f64::NAN).is_err());
        // Depth beyond the factor length.
        assert!(EncodedFactorSet::from_loaded_parts(
            Direction::Forward,
            Arc::clone(&heavy),
            vec![1].into(),
            vec![3].into(),
            vec![0].into(),
            vec![0, 1].into(),
            vec![3u32].into(),
            vec![0u8].into(),
            vec![0.5].into(),
            ArenaVec::new(),
        )
        .is_err());
        // Factor running past the heavy view.
        assert!(EncodedFactorSet::from_loaded_parts(
            Direction::Forward,
            Arc::clone(&heavy),
            vec![4].into(),
            vec![2].into(),
            vec![0].into(),
            vec![0, 0].into(),
            ArenaVec::new(),
            ArenaVec::new(),
            ArenaVec::new(),
            ArenaVec::new(),
        )
        .is_err());
    }

    #[test]
    fn empty_builder_finishes_cleanly() {
        let builder = EncodedFactorSetBuilder::new(Direction::Backward, Arc::new(vec![0, 1, 0]));
        assert!(builder.is_empty());
        let (set, lcps) = builder.finish();
        assert!(set.is_empty());
        assert!(lcps.is_empty());
        assert_eq!(set.equal_range(&[0]), (0, 0));
    }
}
