//! # ius-index — indexes for uncertain (weighted) strings
//!
//! This crate contains the indexes evaluated in *"Space-Efficient Indexes for
//! Uncertain Strings"* (ICDE 2024):
//!
//! | Index | Paper role | Type |
//! |-------|-----------|------|
//! | [`NaiveIndex`] | ground truth (not in the paper) | `O(n·m)` scan |
//! | [`Wst`] | state-of-the-art baseline | weighted (property) suffix **tree**, `O(nz)` size |
//! | [`Wsa`] | state-of-the-art baseline | weighted (property) suffix **array**, `O(nz)` size |
//! | [`MinimizerIndex`] (MWST / MWSA) | **Contribution 1** | minimizer-sampled solid factor trees/arrays, `O(n + (nz/ℓ)·log z)` expected size, simple query of Section 5 |
//! | [`MinimizerIndex`] (MWST-G / MWSA-G) | **Contribution 1** | same + 2D-grid query of Theorem 9 |
//! | [`space_efficient::SpaceEfficientBuilder`] (MWST-SE) | **Contribution 2** | constructs the minimizer index in `O(n + (nz/ℓ)·log z)` expected space without materialising the z-estimation |
//!
//! All indexes answer the same query: given a pattern `P` (of length `m ≥ ℓ`
//! for the minimizer-based ones), report every position of the uncertain
//! string `X` where `P` occurs with probability at least `1/z`. The serving
//! entry point is the sink-based [`UncertainIndex::query_into`] (reusable
//! [`QueryScratch`], pluggable [`MatchSink`], per-query [`QueryStats`]);
//! [`UncertainIndex::query`] is a thin allocating wrapper over it, and
//! [`query_batch`] answers many patterns over one index with per-worker
//! scratch and deterministic output order. Every index is differentially
//! tested against [`NaiveIndex`] in this crate's test-suite (see
//! `tests/differential.rs`) and in `tests/` at the workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod builder;
pub mod encode;
pub mod minimizer_index;
pub mod naive;
pub mod overlap;
pub mod params;
pub mod persist;
pub mod property_text;
pub mod shard;
pub mod space_efficient;
pub mod traits;
pub mod wsa;
pub mod wst;

pub use batch::{query_batch, query_batch_positions};
pub use builder::{AnyIndex, IndexFamily, IndexSpec};
pub use ius_query::{
    finalize_into, CountSink, FirstKSink, MatchSink, QueryBatch, QueryScratch, QueryStats,
};
pub use minimizer_index::{IndexVariant, MinimizerIndex};
pub use naive::NaiveIndex;
pub use params::IndexParams;
pub use persist::{
    load_any_index, load_index, open_any_index, open_index, save_index, save_index_with, LoadedAny,
    SaveOptions, FORMAT_VERSION,
};
pub use shard::ShardedIndex;
pub use space_efficient::SpaceEfficientBuilder;
pub use traits::{validate_pattern, IndexStats, UncertainIndex};
pub use wsa::Wsa;
pub use wst::Wst;
