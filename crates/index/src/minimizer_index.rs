//! The minimizer-based indexes: MWST, MWSA, MWST-G and MWSA-G
//! (Contribution 1 of the paper, Sections 3 and 5).
//!
//! All four variants share the same sampled data: the forward and backward
//! minimizer solid factor sets, heavy-string-encoded (`O(log z)` words per
//! factor). They differ in
//!
//! * how a pattern part is located — by walking a compacted trie (**tree**
//!   variants, `MWST*`) or by binary search over the sorted factor array
//!   (**array** variants, `MWSA*`), and
//! * how candidate occurrences are produced — by enumerating the subtree of
//!   the *longer* pattern part and verifying each candidate against `X`
//!   (the **simple** query of Section 5), or by a 2D range-reporting query
//!   that pairs the two parts and verifies candidates in `O(log z)` time from
//!   the stored mismatches alone (the **grid** variants of Theorem 9).

use crate::encode::{
    Direction, EncodedFactorSet, EncodedFactorSetBuilder, Mismatch, PendingFactor,
};
use crate::params::IndexParams;
use crate::traits::{finalize_positions, validate_pattern, IndexStats, UncertainIndex};
use ius_arena::{Arena, ArenaVec};
use ius_grid::{GridPoint, RangeReporter, Rect};
use ius_obs::clock;
use ius_query::{finalize_into, MatchSink, QueryScratch};
use ius_sampling::MinimizerScheme;
use ius_text::trie::CompactedTrie;
use ius_weighted::{is_solid, Error, HeavyString, Result, WeightedString, ZEstimation};
use std::collections::HashMap;

pub use ius_query::QueryStats;

/// Which of the four index variants of the paper to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexVariant {
    /// MWST — minimizer solid factor trees, simple (verification) query.
    Tree,
    /// MWSA — sorted factor arrays, simple (verification) query.
    Array,
    /// MWST-G — trees plus the 2D grid of Theorem 9.
    TreeGrid,
    /// MWSA-G — arrays plus the 2D grid of Theorem 9.
    ArrayGrid,
}

impl IndexVariant {
    /// Does this variant keep the compacted tries?
    pub fn has_tree(&self) -> bool {
        matches!(self, IndexVariant::Tree | IndexVariant::TreeGrid)
    }

    /// Does this variant keep the 2D grid?
    pub fn has_grid(&self) -> bool {
        matches!(self, IndexVariant::TreeGrid | IndexVariant::ArrayGrid)
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            IndexVariant::Tree => "MWST",
            IndexVariant::Array => "MWSA",
            IndexVariant::TreeGrid => "MWST-G",
            IndexVariant::ArrayGrid => "MWSA-G",
        }
    }
}

/// A minimizer-based uncertain-string index (any of MWST / MWSA / MWST-G /
/// MWSA-G, depending on the [`IndexVariant`]).
#[derive(Debug, Clone)]
pub struct MinimizerIndex {
    params: IndexParams,
    variant: IndexVariant,
    n: usize,
    sigma: usize,
    /// The minimizer scheme, constructed once at build time so queries do
    /// not re-derive the keyer for every pattern.
    scheme: MinimizerScheme,
    heavy: HeavyString,
    fwd: EncodedFactorSet,
    bwd: EncodedFactorSet,
    fwd_trie: Option<CompactedTrie>,
    bwd_trie: Option<CompactedTrie>,
    grid: Option<RangeReporter>,
    /// Per grid point: the (forward leaf, backward leaf) it pairs,
    /// interleaved `[fwd₀, bwd₀, fwd₁, bwd₁, …]` so the pool is one flat
    /// array an arena open can view zero-copy.
    pairs: ArenaVec<u32>,
    /// The persisted arena the index's views borrow from, when it was opened
    /// through the arena path (`None` for built or stream-loaded indexes).
    /// Held so size accounting can count the single backing allocation once.
    arena: Option<Arena>,
    /// `"explicit"` (from a z-estimation) or `"space-efficient"` (Section 4).
    construction: &'static str,
}

impl MinimizerIndex {
    /// Builds the index from a weighted string, materialising the
    /// z-estimation internally (the Theorem 9 construction path).
    ///
    /// # Errors
    ///
    /// Propagates parameter and estimation validation errors.
    pub fn build(x: &WeightedString, params: IndexParams, variant: IndexVariant) -> Result<Self> {
        let estimation = ZEstimation::build(x, params.z)?;
        Self::build_from_estimation(x, &estimation, params, variant)
    }

    /// Builds the index from an already materialised z-estimation.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameters`] if the estimation's `z` differs from the
    /// parameters' `z` or the lengths are inconsistent.
    pub fn build_from_estimation(
        x: &WeightedString,
        estimation: &ZEstimation,
        params: IndexParams,
        variant: IndexVariant,
    ) -> Result<Self> {
        Self::build_from_estimation_with_threads(x, estimation, params, variant, 1)
    }

    /// [`MinimizerIndex::build_from_estimation`] with the factor sorts fanned
    /// out over `threads` workers (0 = all CPUs) on the shared
    /// [`ius_exec::Executor`]. The built index is byte-identical at every
    /// thread count; the factor *collection* stays serial (it walks the
    /// strands in order).
    ///
    /// # Errors
    ///
    /// Same contract as [`MinimizerIndex::build_from_estimation`].
    pub fn build_from_estimation_with_threads(
        x: &WeightedString,
        estimation: &ZEstimation,
        params: IndexParams,
        variant: IndexVariant,
        threads: usize,
    ) -> Result<Self> {
        if (estimation.z() - params.z).abs() > 1e-9 {
            return Err(Error::InvalidParameters(format!(
                "estimation built for z = {} but parameters say z = {}",
                estimation.z(),
                params.z
            )));
        }
        if estimation.len() != x.len() {
            return Err(Error::InvalidParameters(format!(
                "estimation length {} does not match |X| = {}",
                estimation.len(),
                x.len()
            )));
        }
        let heavy = HeavyString::new(x);
        let scheme = MinimizerScheme::new(params.ell, params.k, x.sigma(), params.order);

        // Both builders borrow the heavy ranks — nothing is copied here, and
        // the forward factor set keeps sharing the allocation after `finish`.
        let mut fwd_builder =
            EncodedFactorSetBuilder::new(Direction::Forward, heavy.shared_ranks());
        let mut bwd_builder =
            EncodedFactorSetBuilder::new(Direction::Backward, heavy.shared_ranks());

        // Per-strand deviation buffer, reused across strands.
        let mut deviations: Vec<(u32, u8, f64)> = Vec::new();
        for (strand_id, strand) in estimation.strands().iter().enumerate() {
            let seq = strand.seq();
            let extents = strand.extents();
            // Positions where this strand deviates from the heavy string,
            // with the probability ratios needed for O(log z) verification.
            deviations.clear();
            let heavy_ranks = heavy.as_ranks();
            for (p, (&s, &h)) in seq.iter().zip(heavy_ranks).enumerate() {
                if s != h {
                    let ratio = x.prob(p, s) / x.prob(p, h);
                    deviations.push((p as u32, s, ratio));
                }
            }
            let minimizers = scheme.minimizers_respecting(seq, extents);
            // For backward factors we need, per minimizer position i, the
            // earliest start b whose property interval still covers i.
            for &anchor in &minimizers {
                // Forward factor: the longest property-respecting factor
                // starting at the minimizer.
                let end = strand.extent(anchor);
                let fwd_len = (end - anchor) as u32;
                let fwd_mismatches =
                    collect_mismatches(&deviations, anchor as u32, end as u32, false, |pos| {
                        pos - anchor as u32
                    });
                fwd_builder.push(PendingFactor {
                    anchor_x: anchor as u32,
                    len: fwd_len,
                    strand: strand_id as u32,
                    mismatches: fwd_mismatches,
                });
                // Backward factor: the longest property-respecting factor
                // ending at the minimizer, reversed. Its start is the first
                // position whose extent reaches past the anchor (extents are
                // non-decreasing, so binary search applies). Depths decrease
                // with position, so the collector emits in reverse to keep
                // them sorted without a post-hoc sort.
                let b = extents.partition_point(|&e| (e as usize) < anchor + 1);
                let bwd_len = (anchor - b + 1) as u32;
                let bwd_mismatches =
                    collect_mismatches(&deviations, b as u32, anchor as u32 + 1, true, |pos| {
                        anchor as u32 - pos
                    });
                bwd_builder.push(PendingFactor {
                    anchor_x: anchor as u32,
                    len: bwd_len,
                    strand: strand_id as u32,
                    mismatches: bwd_mismatches,
                });
            }
        }

        let (fwd, fwd_lcps) = fwd_builder.finish_with_threads(threads);
        let (bwd, bwd_lcps) = bwd_builder.finish_with_threads(threads);
        Self::assemble(
            x, params, variant, heavy, fwd, fwd_lcps, bwd, bwd_lcps, "explicit",
        )
    }

    /// The pre-overhaul explicit construction, retained for differential
    /// testing and as the "before" measurement of the construction
    /// benchmark: copies the heavy letters into each builder, collects the
    /// per-strand deviations into fresh vectors, sorts backward mismatches
    /// post hoc and finishes through [`EncodedFactorSetBuilder::finish_reference`]
    /// (prefix-doubling suffix array, key-less comparator sort). Produces an
    /// index identical to [`MinimizerIndex::build_from_estimation`].
    ///
    /// # Errors
    ///
    /// Same contract as [`MinimizerIndex::build_from_estimation`].
    pub fn build_from_estimation_reference(
        x: &WeightedString,
        estimation: &ZEstimation,
        params: IndexParams,
        variant: IndexVariant,
    ) -> Result<Self> {
        if (estimation.z() - params.z).abs() > 1e-9 {
            return Err(Error::InvalidParameters(format!(
                "estimation built for z = {} but parameters say z = {}",
                estimation.z(),
                params.z
            )));
        }
        if estimation.len() != x.len() {
            return Err(Error::InvalidParameters(format!(
                "estimation length {} does not match |X| = {}",
                estimation.len(),
                x.len()
            )));
        }
        let heavy = HeavyString::new(x);
        let scheme = MinimizerScheme::new(params.ell, params.k, x.sigma(), params.order);

        let mut fwd_builder = EncodedFactorSetBuilder::new(
            Direction::Forward,
            std::sync::Arc::new(heavy.as_ranks().to_vec()),
        );
        let mut bwd_builder = EncodedFactorSetBuilder::new(
            Direction::Backward,
            std::sync::Arc::new(heavy.as_ranks().to_vec()),
        );

        for (strand_id, strand) in estimation.strands().iter().enumerate() {
            let seq = strand.seq();
            let extents = strand.extents();
            let deviations: Vec<(u32, u8, f64)> = (0..seq.len())
                .filter(|&p| seq[p] != heavy.letter(p))
                .map(|p| {
                    let ratio = x.prob(p, seq[p]) / x.prob(p, heavy.letter(p));
                    (p as u32, seq[p], ratio)
                })
                .collect();
            let minimizers = scheme.minimizers_respecting(seq, extents);
            for &anchor in &minimizers {
                let end = strand.extent(anchor);
                let fwd_mismatches =
                    collect_mismatches(&deviations, anchor as u32, end as u32, false, |pos| {
                        pos - anchor as u32
                    });
                fwd_builder.push(PendingFactor {
                    anchor_x: anchor as u32,
                    len: (end - anchor) as u32,
                    strand: strand_id as u32,
                    mismatches: fwd_mismatches,
                });
                let b = extents.partition_point(|&e| (e as usize) < anchor + 1);
                let mut bwd_mismatches =
                    collect_mismatches(&deviations, b as u32, anchor as u32 + 1, false, |pos| {
                        anchor as u32 - pos
                    });
                bwd_mismatches.sort_by_key(|m| m.depth);
                bwd_builder.push(PendingFactor {
                    anchor_x: anchor as u32,
                    len: (anchor - b + 1) as u32,
                    strand: strand_id as u32,
                    mismatches: bwd_mismatches,
                });
            }
        }

        let (fwd, fwd_lcps) = fwd_builder.finish_reference();
        let (bwd, bwd_lcps) = bwd_builder.finish_reference();
        Self::assemble(
            x, params, variant, heavy, fwd, fwd_lcps, bwd, bwd_lcps, "explicit",
        )
    }

    /// Assembles the final index from the sorted factor sets (shared by the
    /// explicit and the space-efficient construction paths).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        x: &WeightedString,
        params: IndexParams,
        variant: IndexVariant,
        heavy: HeavyString,
        fwd: EncodedFactorSet,
        fwd_lcps: Vec<usize>,
        bwd: EncodedFactorSet,
        bwd_lcps: Vec<usize>,
        construction: &'static str,
    ) -> Result<Self> {
        let (fwd_trie, bwd_trie) = if variant.has_tree() {
            let fwd_lengths: Vec<usize> = (0..fwd.len()).map(|i| fwd.factor_len(i)).collect();
            let bwd_lengths: Vec<usize> = (0..bwd.len()).map(|i| bwd.factor_len(i)).collect();
            (
                Some(CompactedTrie::build(&fwd_lengths, &fwd_lcps, &fwd)),
                Some(CompactedTrie::build(&bwd_lengths, &bwd_lcps, &bwd)),
            )
        } else {
            (None, None)
        };

        let (grid, pairs) = if variant.has_grid() {
            let mut by_label: HashMap<(u32, u32), u32> = HashMap::with_capacity(fwd.len());
            for leaf in 0..fwd.len() {
                by_label.insert((fwd.anchor_x(leaf) as u32, fwd.strand(leaf)), leaf as u32);
            }
            let mut points = Vec::with_capacity(bwd.len());
            let mut pairs = Vec::with_capacity(2 * bwd.len());
            for bwd_leaf in 0..bwd.len() {
                let label = (bwd.anchor_x(bwd_leaf) as u32, bwd.strand(bwd_leaf));
                if let Some(&fwd_leaf) = by_label.get(&label) {
                    let payload = (pairs.len() / 2) as u32;
                    pairs.push(fwd_leaf);
                    pairs.push(bwd_leaf as u32);
                    points.push(GridPoint::new(fwd_leaf, bwd_leaf as u32, payload));
                }
            }
            // Unpaired backward leaves leave slack behind the capacity guess;
            // the pair table is retained for the index's lifetime.
            pairs.shrink_to_fit();
            (Some(RangeReporter::new(points)), ArenaVec::from(pairs))
        } else {
            (None, ArenaVec::new())
        };

        Ok(Self {
            params,
            variant,
            n: x.len(),
            sigma: x.sigma(),
            scheme: MinimizerScheme::new(params.ell, params.k, x.sigma(), params.order),
            heavy,
            fwd,
            bwd,
            fwd_trie,
            bwd_trie,
            grid,
            pairs,
            arena: None,
            construction,
        })
    }

    /// The `(forward leaf, backward leaf)` pair a grid payload refers to.
    #[inline]
    fn pair(&self, payload: usize) -> (u32, u32) {
        (self.pairs[2 * payload], self.pairs[2 * payload + 1])
    }

    /// The index parameters (`z`, `ℓ`, `k`, order).
    pub fn params(&self) -> &IndexParams {
        &self.params
    }

    /// The variant this index was built as.
    pub fn variant(&self) -> IndexVariant {
        self.variant
    }

    /// `"explicit"` or `"space-efficient"` — which construction produced it.
    pub fn construction(&self) -> &'static str {
        self.construction
    }

    /// Length of the corpus `X` the index was built over (candidate starts
    /// are verified against it, so serving the index with a corpus of a
    /// different length is always an error).
    pub fn corpus_len(&self) -> usize {
        self.n
    }

    // ---- persistence support (see `crate::persist`) --------------------

    pub(crate) fn persist_parts(&self) -> MinimizerParts<'_> {
        MinimizerParts {
            n: self.n,
            sigma: self.sigma,
            heavy: &self.heavy,
            fwd: &self.fwd,
            bwd: &self.bwd,
            fwd_trie: self.fwd_trie.as_ref(),
            bwd_trie: self.bwd_trie.as_ref(),
            grid: self.grid.as_ref(),
            pairs: &self.pairs,
        }
    }

    /// Reassembles a minimizer index from its persisted parts. Only the
    /// minimizer scheme is re-derived (an `O(1)` keyer setup, not a
    /// construction step); everything else is taken as loaded.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_loaded_parts(
        params: IndexParams,
        variant: IndexVariant,
        n: usize,
        sigma: usize,
        heavy: HeavyString,
        fwd: EncodedFactorSet,
        bwd: EncodedFactorSet,
        fwd_trie: Option<CompactedTrie>,
        bwd_trie: Option<CompactedTrie>,
        grid: Option<RangeReporter>,
        pairs: ArenaVec<u32>,
        arena: Option<Arena>,
        construction: &'static str,
    ) -> Self {
        Self {
            params,
            variant,
            n,
            sigma,
            scheme: MinimizerScheme::new(params.ell, params.k, sigma, params.order),
            heavy,
            fwd,
            bwd,
            fwd_trie,
            bwd_trie,
            grid,
            pairs,
            arena,
            construction,
        }
    }

    /// Number of sampled minimizer factors (leaves of the forward structure).
    pub fn num_sampled_factors(&self) -> usize {
        self.fwd.len()
    }

    /// Runs a query and additionally reports candidate/verification counts —
    /// a convenience wrapper over the sink-based engine with a one-shot
    /// scratch.
    ///
    /// # Errors
    ///
    /// Same contract as [`UncertainIndex::query`].
    pub fn query_with_stats(
        &self,
        pattern: &[u8],
        x: &WeightedString,
    ) -> Result<(Vec<usize>, QueryStats)> {
        let mut scratch = QueryScratch::new();
        let mut positions = Vec::new();
        let stats = self.run_query(pattern, x, &mut scratch, &mut positions)?;
        Ok((positions, stats))
    }

    /// The sink-based query engine: locate the two pattern parts, enumerate
    /// candidates (grid pairing or subtree walk), verify, and stream the
    /// survivors into `sink`. All intermediate state lives in `scratch`, so
    /// steady-state calls allocate nothing.
    fn run_query(
        &self,
        pattern: &[u8],
        x: &WeightedString,
        scratch: &mut QueryScratch,
        sink: &mut dyn MatchSink,
    ) -> Result<QueryStats> {
        validate_pattern(pattern, self.params.ell)?;
        // Stage tracing is sampled: only queries that draw a ticket (1 in
        // `clock::STAGE_SAMPLE_EVERY` per thread, never while the clock is
        // stubbed) pay for clock stamps. A timed query's stamps are chained
        // — each boundary is read once and ends one stage while starting
        // the next, so four stages cost five reads; an untimed query pays
        // one thread-local tick and leaves the stage fields 0.
        let timed = clock::stage_ticket();
        let stamp = || if timed { clock::now_ns() } else { 0 };
        let t_scan = stamp();
        let mu = self
            .scheme
            .window_minimizer_with(&pattern[..self.params.ell], &mut scratch.kmer_keys);
        let suffix_part = &pattern[mu..];
        scratch.pattern_rev.clear();
        scratch
            .pattern_rev
            .extend(pattern[..=mu].iter().rev().copied());

        let t_locate = stamp();
        let mut stats = QueryStats {
            scan_ns: t_locate.saturating_sub(t_scan),
            timed,
            ..QueryStats::default()
        };
        scratch.positions.clear();
        let t_report = if self.variant.has_grid() {
            let fwd_range = self.locate(&self.fwd, self.fwd_trie.as_ref(), suffix_part);
            let bwd_range = self.locate(&self.bwd, self.bwd_trie.as_ref(), &scratch.pattern_rev);
            let t_verify = stamp();
            stats.locate_ns = t_verify.saturating_sub(t_locate);
            let rect = Rect::new(
                (fwd_range.0 as u32, fwd_range.1 as u32),
                (bwd_range.0 as u32, bwd_range.1 as u32),
            );
            let grid = self.grid.as_ref().expect("grid variant holds a grid");
            scratch.grid.clear();
            stats.grid_nodes = grid.report_into(&rect, &mut scratch.grid);
            for &payload in &scratch.grid {
                let (fwd_leaf, bwd_leaf) = self.pair(payload as usize);
                stats.candidates += 1;
                let anchor = self.fwd.anchor_x(fwd_leaf as usize);
                let Some(start) = anchor.checked_sub(mu) else {
                    continue;
                };
                if start + pattern.len() > self.n {
                    continue;
                }
                if self.verify_encoded(
                    pattern.len(),
                    mu,
                    start,
                    fwd_leaf as usize,
                    bwd_leaf as usize,
                ) {
                    stats.verified += 1;
                    scratch.positions.push(start);
                }
            }
            let t = stamp();
            stats.verify_ns = t.saturating_sub(t_verify);
            t
        } else {
            // Simple query (Section 5): walk the longer of the two parts and
            // verify every leaf below it against X. The reversed prefix part
            // has mu + 1 letters.
            let use_forward = suffix_part.len() > mu;
            let (set, trie, part): (&EncodedFactorSet, Option<&CompactedTrie>, &[u8]) =
                if use_forward {
                    (&self.fwd, self.fwd_trie.as_ref(), suffix_part)
                } else {
                    (
                        &self.bwd,
                        self.bwd_trie.as_ref(),
                        scratch.pattern_rev.as_slice(),
                    )
                };
            let (lo, hi) = self.locate(set, trie, part);
            let t_verify = stamp();
            stats.locate_ns = t_verify.saturating_sub(t_locate);
            for leaf in lo..hi {
                stats.candidates += 1;
                let anchor = set.anchor_x(leaf);
                let Some(start) = anchor.checked_sub(mu) else {
                    continue;
                };
                if start + pattern.len() > self.n {
                    continue;
                }
                let p = x.occurrence_probability(start, pattern);
                if is_solid(p, self.params.z) {
                    stats.verified += 1;
                    scratch.positions.push(start);
                }
            }
            let t = stamp();
            stats.verify_ns = t.saturating_sub(t_verify);
            t
        };
        stats.reported = finalize_into(&mut scratch.positions, false, sink);
        stats.report_ns = stamp().saturating_sub(t_report);
        Ok(stats)
    }

    /// Locates the half-open sorted-leaf range whose factors have `part` as a
    /// prefix, using the trie when present and binary search otherwise.
    fn locate(
        &self,
        set: &EncodedFactorSet,
        trie: Option<&CompactedTrie>,
        part: &[u8],
    ) -> (usize, usize) {
        match trie {
            Some(trie) => match trie.descend(part, set) {
                Some(descent) => (descent.leaves.0 as usize, descent.leaves.1 as usize),
                None => (0, 0),
            },
            None => set.equal_range(part),
        }
    }

    /// Like [`MinimizerIndex::locate`] but through the retained pre-overhaul
    /// binary search ([`EncodedFactorSet::equal_range_reference`]).
    fn locate_reference(
        &self,
        set: &EncodedFactorSet,
        trie: Option<&CompactedTrie>,
        part: &[u8],
    ) -> (usize, usize) {
        match trie {
            Some(trie) => match trie.descend(part, set) {
                Some(descent) => (descent.leaves.0 as usize, descent.leaves.1 as usize),
                None => (0, 0),
            },
            None => set.equal_range_reference(part),
        }
    }

    /// Verifies a grid candidate in `O(log z)` time from the heavy prefix
    /// products and the stored mismatch ratios — no access to `X`. Uses the
    /// log-ratios precomputed at build time, so no `ln` is evaluated per
    /// candidate (the sums are bit-identical to the reference path, which
    /// takes the same `ln` of the same ratios at query time).
    fn verify_encoded(
        &self,
        m: usize,
        mu: usize,
        start: usize,
        fwd_leaf: usize,
        bwd_leaf: usize,
    ) -> bool {
        let end = start + m;
        let mut log_prob = self.heavy.range_log_probability(start, end);
        // Mismatches of the backward factor cover positions [start, anchor);
        // depth d corresponds to position anchor - d, so depths 1..=mu fall
        // inside the pattern window (depth 0 is the anchor itself, accounted
        // for by the forward factor).
        for (&depth, log_ratio) in self
            .bwd
            .mismatch_depths(bwd_leaf)
            .iter()
            .zip(self.bwd.mismatch_log_ratios(bwd_leaf))
        {
            let d = depth as usize;
            if d >= 1 && d <= mu {
                log_prob += log_ratio;
            }
        }
        // Mismatches of the forward factor cover positions [anchor, end);
        // depth d corresponds to position anchor + d, inside the window for
        // d < m - mu.
        for (&depth, log_ratio) in self
            .fwd
            .mismatch_depths(fwd_leaf)
            .iter()
            .zip(self.fwd.mismatch_log_ratios(fwd_leaf))
        {
            let d = depth as usize;
            if d < m - mu {
                log_prob += log_ratio;
            }
        }
        is_solid(log_prob.exp(), self.params.z)
    }

    /// The pre-overhaul candidate verification, retained for
    /// [`UncertainIndex::query_reference`]: takes `ln` of every in-window
    /// mismatch ratio at query time. Identical outcome to
    /// [`MinimizerIndex::verify_encoded`].
    fn verify_encoded_reference(
        &self,
        m: usize,
        mu: usize,
        start: usize,
        fwd_leaf: usize,
        bwd_leaf: usize,
    ) -> bool {
        let end = start + m;
        let mut log_prob = self.heavy.range_log_probability(start, end);
        for (&depth, &ratio) in self
            .bwd
            .mismatch_depths(bwd_leaf)
            .iter()
            .zip(self.bwd.mismatch_ratios(bwd_leaf))
        {
            let d = depth as usize;
            if d >= 1 && d <= mu {
                log_prob += ratio.ln();
            }
        }
        for (&depth, &ratio) in self
            .fwd
            .mismatch_depths(fwd_leaf)
            .iter()
            .zip(self.fwd.mismatch_ratios(fwd_leaf))
        {
            let d = depth as usize;
            if d < m - mu {
                log_prob += ratio.ln();
            }
        }
        is_solid(log_prob.exp(), self.params.z)
    }
}

/// A borrowed view of the persisted state of a [`MinimizerIndex`], consumed
/// by `crate::persist`.
pub(crate) struct MinimizerParts<'a> {
    pub(crate) n: usize,
    pub(crate) sigma: usize,
    pub(crate) heavy: &'a HeavyString,
    pub(crate) fwd: &'a EncodedFactorSet,
    pub(crate) bwd: &'a EncodedFactorSet,
    pub(crate) fwd_trie: Option<&'a CompactedTrie>,
    pub(crate) bwd_trie: Option<&'a CompactedTrie>,
    pub(crate) grid: Option<&'a RangeReporter>,
    /// Interleaved `[fwd₀, bwd₀, fwd₁, bwd₁, …]` grid pairs.
    pub(crate) pairs: &'a [u32],
}

/// Extracts the deviations of a strand from the heavy string that fall into
/// `[from, to)` (absolute positions), mapping them to factor-relative depths.
/// With `reverse` the slice is walked back to front, which keeps the output
/// sorted by depth when `depth_of` is position-decreasing (backward factors).
fn collect_mismatches(
    deviations: &[(u32, u8, f64)],
    from: u32,
    to: u32,
    reverse: bool,
    depth_of: impl Fn(u32) -> u32,
) -> Vec<Mismatch> {
    let lo = deviations.partition_point(|&(p, _, _)| p < from);
    let hi = deviations.partition_point(|&(p, _, _)| p < to);
    let map = |&(p, letter, ratio): &(u32, u8, f64)| Mismatch {
        depth: depth_of(p),
        letter,
        ratio,
    };
    if reverse {
        deviations[lo..hi].iter().rev().map(map).collect()
    } else {
        deviations[lo..hi].iter().map(map).collect()
    }
}

impl UncertainIndex for MinimizerIndex {
    fn name(&self) -> &'static str {
        self.variant.name()
    }

    fn query_into(
        &self,
        pattern: &[u8],
        x: &WeightedString,
        scratch: &mut QueryScratch,
        sink: &mut dyn MatchSink,
    ) -> Result<QueryStats> {
        self.run_query(pattern, x, scratch, sink)
    }

    fn query_reference(&self, pattern: &[u8], x: &WeightedString) -> Result<Vec<usize>> {
        // The pre-overhaul single-shot query, retained verbatim for
        // differential testing and as the "before" side of the query
        // benchmark: per-query scheme construction, fresh reversed-prefix /
        // candidate / grid-report vectors, letter-at-a-time binary search.
        if pattern.is_empty() {
            return Err(Error::EmptyInput("pattern"));
        }
        if pattern.len() < self.params.ell {
            return Err(Error::PatternTooShort {
                pattern: pattern.len(),
                lower_bound: self.params.ell,
            });
        }
        let scheme = MinimizerScheme::new(
            self.params.ell,
            self.params.k,
            self.sigma,
            self.params.order,
        );
        let mu = scheme.window_minimizer(&pattern[..self.params.ell]);
        let suffix_part = &pattern[mu..];
        let prefix_part_rev: Vec<u8> = pattern[..=mu].iter().rev().copied().collect();

        let mut positions = Vec::new();
        if self.variant.has_grid() {
            let fwd_range = self.locate_reference(&self.fwd, self.fwd_trie.as_ref(), suffix_part);
            let bwd_range =
                self.locate_reference(&self.bwd, self.bwd_trie.as_ref(), &prefix_part_rev);
            let rect = Rect::new(
                (fwd_range.0 as u32, fwd_range.1 as u32),
                (bwd_range.0 as u32, bwd_range.1 as u32),
            );
            let grid = self.grid.as_ref().expect("grid variant holds a grid");
            for payload in grid.report(&rect) {
                let (fwd_leaf, bwd_leaf) = self.pair(payload as usize);
                let anchor = self.fwd.anchor_x(fwd_leaf as usize);
                let Some(start) = anchor.checked_sub(mu) else {
                    continue;
                };
                if start + pattern.len() > self.n {
                    continue;
                }
                if self.verify_encoded_reference(
                    pattern.len(),
                    mu,
                    start,
                    fwd_leaf as usize,
                    bwd_leaf as usize,
                ) {
                    positions.push(start);
                }
            }
        } else {
            let use_forward = suffix_part.len() >= prefix_part_rev.len();
            let (set, trie, part): (&EncodedFactorSet, Option<&CompactedTrie>, &[u8]) =
                if use_forward {
                    (&self.fwd, self.fwd_trie.as_ref(), suffix_part)
                } else {
                    (&self.bwd, self.bwd_trie.as_ref(), &prefix_part_rev)
                };
            let (lo, hi) = self.locate_reference(set, trie, part);
            for leaf in lo..hi {
                let anchor = set.anchor_x(leaf);
                let Some(start) = anchor.checked_sub(mu) else {
                    continue;
                };
                if start + pattern.len() > self.n {
                    continue;
                }
                let p = x.occurrence_probability(start, pattern);
                if is_solid(p, self.params.z) {
                    positions.push(start);
                }
            }
        }
        Ok(finalize_positions(positions))
    }

    fn size_bytes(&self) -> usize {
        let tries = self.fwd_trie.as_ref().map_or(0, |t| t.memory_bytes())
            + self.bwd_trie.as_ref().map_or(0, |t| t.memory_bytes());
        let grid = self.grid.as_ref().map_or(0, |g| g.memory_bytes()) + self.pairs.heap_bytes();
        // The forward set normally shares its heavy view with `self.heavy`
        // (count the allocation once), but the reference construction path
        // gives it an owned copy. The backward set always owns its reversed
        // copy.
        let fwd_bytes = if self.fwd.owns_heavy_view() {
            self.fwd.memory_bytes()
        } else {
            self.fwd.memory_bytes_without_heavy()
        };
        // Arena-backed components report zero owned bytes for their views;
        // the single backing allocation is counted here, once.
        let arena = self.arena.as_ref().map_or(0, Arena::alloc_bytes);
        self.heavy.memory_bytes() + fwd_bytes + self.bwd.memory_bytes() + tries + grid + arena
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            name: self.name().to_string(),
            size_bytes: self.size_bytes(),
            num_nodes: self.fwd_trie.as_ref().map_or(0, |t| t.num_nodes())
                + self.bwd_trie.as_ref().map_or(0, |t| t.num_nodes()),
            num_leaves: self.fwd.len() + self.bwd.len(),
            num_grid_points: self.grid.as_ref().map_or(0, |g| g.len()),
            num_mismatches: self.fwd.total_mismatches() + self.bwd.total_mismatches(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ius_datasets::pangenome::PangenomeConfig;
    use ius_datasets::patterns::PatternSampler;
    use ius_datasets::uniform::UniformConfig;

    fn all_variants() -> [IndexVariant; 4] {
        [
            IndexVariant::Tree,
            IndexVariant::Array,
            IndexVariant::TreeGrid,
            IndexVariant::ArrayGrid,
        ]
    }

    // The cross-family differential coverage that used to live here (the
    // copy-pasted `check_against_naive` helpers) moved into the shared
    // harness `tests/differential.rs`, which also exercises the sink-based
    // and batched entry points.

    #[test]
    fn new_engine_matches_the_retained_reference_query() {
        let x = PangenomeConfig {
            n: 1_200,
            delta: 0.08,
            seed: 5,
            ..Default::default()
        }
        .generate();
        let z = 16.0;
        let ell = 32;
        let est = ZEstimation::build(&x, z).unwrap();
        let params = IndexParams::new(z, ell, x.sigma()).unwrap();
        let mut sampler = PatternSampler::new(&est, 3);
        let mut patterns = sampler.sample_many(ell, 20);
        patterns.extend(sampler.sample_many(64, 10));
        patterns.extend(sampler.sample_random(ell, 5, 4));
        for variant in all_variants() {
            let index = MinimizerIndex::build_from_estimation(&x, &est, params, variant).unwrap();
            let mut scratch = QueryScratch::new();
            for pattern in &patterns {
                let old = index.query_reference(pattern, &x).unwrap();
                let mut new = Vec::new();
                let stats = index
                    .query_into(pattern, &x, &mut scratch, &mut new)
                    .unwrap();
                assert_eq!(new, old, "{} pattern {:?}", index.name(), &pattern[..4]);
                assert_eq!(stats.reported, new.len());
                if variant.has_grid() && !new.is_empty() {
                    assert!(stats.grid_nodes > 0);
                }
            }
        }
    }

    #[test]
    fn overhauled_construction_matches_reference_construction() {
        // The clone-free/pre-sized pipeline must produce exactly the factor
        // sets of the retained pre-overhaul path.
        for (x, z, ell) in [
            (
                UniformConfig {
                    n: 400,
                    sigma: 2,
                    spread: 0.5,
                    seed: 2,
                }
                .generate(),
                8.0,
                8usize,
            ),
            (
                PangenomeConfig {
                    n: 2_000,
                    delta: 0.08,
                    seed: 7,
                    ..Default::default()
                }
                .generate(),
                16.0,
                32usize,
            ),
        ] {
            let est = ZEstimation::build(&x, z).unwrap();
            let params = IndexParams::new(z, ell, x.sigma()).unwrap();
            for variant in [IndexVariant::Array, IndexVariant::TreeGrid] {
                let new = MinimizerIndex::build_from_estimation(&x, &est, params, variant).unwrap();
                let reference =
                    MinimizerIndex::build_from_estimation_reference(&x, &est, params, variant)
                        .unwrap();
                assert_eq!(new.num_sampled_factors(), reference.num_sampled_factors());
                for set in [(&new.fwd, &reference.fwd), (&new.bwd, &reference.bwd)] {
                    let (a, b) = set;
                    assert_eq!(a.len(), b.len());
                    for leaf in 0..a.len() {
                        assert_eq!(a.anchor_x(leaf), b.anchor_x(leaf), "leaf {leaf}");
                        assert_eq!(a.factor_len(leaf), b.factor_len(leaf), "leaf {leaf}");
                        assert_eq!(a.strand(leaf), b.strand(leaf), "leaf {leaf}");
                        assert_eq!(
                            a.mismatches(leaf).collect::<Vec<_>>(),
                            b.mismatches(leaf).collect::<Vec<_>>(),
                            "leaf {leaf}"
                        );
                    }
                }
                let mut sampler = PatternSampler::new(&est, 5);
                for pattern in sampler.sample_many(ell, 10) {
                    assert_eq!(
                        new.query(&pattern, &x).unwrap(),
                        reference.query(&pattern, &x).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn rejects_short_patterns_and_empty_patterns() {
        let x = UniformConfig {
            n: 120,
            sigma: 2,
            spread: 0.5,
            seed: 4,
        }
        .generate();
        let params = IndexParams::new(4.0, 16, 2).unwrap();
        let index = MinimizerIndex::build(&x, params, IndexVariant::Array).unwrap();
        assert!(matches!(
            index.query(&[0; 8], &x),
            Err(Error::PatternTooShort {
                pattern: 8,
                lower_bound: 16
            })
        ));
        assert!(index.query(&[], &x).is_err());
    }

    #[test]
    fn index_is_much_smaller_than_baselines_for_large_ell() {
        use crate::wsa::Wsa;
        use crate::wst::Wst;
        let x = PangenomeConfig {
            n: 4_000,
            delta: 0.05,
            seed: 9,
            ..Default::default()
        }
        .generate();
        let z = 32.0;
        let est = ZEstimation::build(&x, z).unwrap();
        let wst = Wst::build_from_estimation(&est).unwrap();
        let wsa = Wsa::build_from_estimation(&est).unwrap();
        let params = IndexParams::new(z, 256, 4).unwrap();
        let mwsa =
            MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::Array).unwrap();
        let mwst =
            MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::Tree).unwrap();
        assert!(
            mwsa.size_bytes() * 4 < wsa.size_bytes(),
            "MWSA should be ≫ smaller than WSA"
        );
        assert!(
            mwst.size_bytes() * 4 < wst.size_bytes(),
            "MWST should be ≫ smaller than WST"
        );
        // Array variants are smaller than tree variants (Fig. 6 vs 6b shape).
        assert!(mwsa.size_bytes() < mwst.size_bytes());
    }

    #[test]
    fn size_decreases_with_ell_and_grows_with_z() {
        let x = PangenomeConfig {
            n: 3_000,
            delta: 0.06,
            seed: 2,
            ..Default::default()
        }
        .generate();
        let sizes: Vec<usize> = [32usize, 128, 512]
            .iter()
            .map(|&ell| {
                let params = IndexParams::new(16.0, ell, 4).unwrap();
                MinimizerIndex::build(&x, params, IndexVariant::Array)
                    .unwrap()
                    .size_bytes()
            })
            .collect();
        assert!(
            sizes[0] > sizes[1] && sizes[1] > sizes[2],
            "sizes {sizes:?} not decreasing in ℓ"
        );
        let size_small_z = MinimizerIndex::build(
            &x,
            IndexParams::new(4.0, 64, 4).unwrap(),
            IndexVariant::Array,
        )
        .unwrap()
        .size_bytes();
        let size_large_z = MinimizerIndex::build(
            &x,
            IndexParams::new(64.0, 64, 4).unwrap(),
            IndexVariant::Array,
        )
        .unwrap()
        .size_bytes();
        assert!(size_large_z > size_small_z);
    }

    #[test]
    fn stats_and_metadata_are_consistent() {
        // A pangenome-style string guarantees that solid windows of length ℓ
        // exist, so every variant actually samples factors.
        let x = PangenomeConfig {
            n: 600,
            delta: 0.05,
            seed: 13,
            ..Default::default()
        }
        .generate();
        let params = IndexParams::new(8.0, 16, 4).unwrap();
        for variant in all_variants() {
            let index = MinimizerIndex::build(&x, params, variant).unwrap();
            let stats = index.stats();
            assert_eq!(stats.name, variant.name());
            assert_eq!(index.construction(), "explicit");
            assert_eq!(stats.size_bytes, index.size_bytes());
            assert_eq!(variant.has_tree(), stats.num_nodes > 0);
            assert_eq!(variant.has_grid(), stats.num_grid_points > 0);
            assert!(stats.num_leaves > 0);
            assert_eq!(index.params().ell, 16);
        }
    }

    #[test]
    fn index_without_solid_windows_is_empty_but_queryable() {
        // High-entropy distributions with a small z: no window of length ℓ is
        // solid, so nothing is sampled; queries must still answer correctly
        // (with the empty set).
        let x = UniformConfig {
            n: 200,
            sigma: 4,
            spread: 0.9,
            seed: 13,
        }
        .generate();
        let params = IndexParams::new(2.0, 16, 4).unwrap();
        for variant in all_variants() {
            let index = MinimizerIndex::build(&x, params, variant).unwrap();
            assert_eq!(index.num_sampled_factors(), 0);
            let pattern = vec![0u8; 16];
            assert_eq!(index.query(&pattern, &x).unwrap(), Vec::<usize>::new());
        }
    }

    #[test]
    fn query_stats_count_candidates() {
        let x = PangenomeConfig {
            n: 1_000,
            delta: 0.05,
            seed: 21,
            ..Default::default()
        }
        .generate();
        let z = 8.0;
        let est = ZEstimation::build(&x, z).unwrap();
        let params = IndexParams::new(z, 32, 4).unwrap();
        let index =
            MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::Array).unwrap();
        let mut sampler = PatternSampler::new(&est, 1);
        let pattern = sampler
            .sample(32)
            .expect("a solid pattern of length 32 exists");
        let (positions, stats) = index.query_with_stats(&pattern, &x).unwrap();
        assert!(!positions.is_empty());
        assert!(stats.candidates >= stats.verified);
        assert!(stats.verified >= stats.reported);
        assert_eq!(stats.reported, positions.len());
    }
}
