//! The naive scan "index": the ground truth every real index is tested
//! against.

use crate::traits::{IndexStats, UncertainIndex};
use ius_weighted::{solid, Error, Result, WeightedString};

/// A trivial index that stores only `z` and scans `X` at query time.
///
/// `O(1)` size, `O(n·m)` query — useful as the correctness oracle and as a
/// baseline in micro-benchmarks for very short texts.
#[derive(Debug, Clone)]
pub struct NaiveIndex {
    z: f64,
}

impl NaiveIndex {
    /// Creates the index for a weight threshold `1/z`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidThreshold`] unless `z ≥ 1` and finite.
    pub fn new(z: f64) -> Result<Self> {
        if !(z.is_finite() && z >= 1.0) {
            return Err(Error::InvalidThreshold(z));
        }
        Ok(Self { z })
    }

    /// The threshold denominator.
    pub fn z(&self) -> f64 {
        self.z
    }
}

impl UncertainIndex for NaiveIndex {
    fn name(&self) -> &'static str {
        "NAIVE"
    }

    fn query(&self, pattern: &[u8], x: &WeightedString) -> Result<Vec<usize>> {
        if pattern.is_empty() {
            return Err(Error::EmptyInput("pattern"));
        }
        Ok(solid::occurrences(x, pattern, self.z))
    }

    fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            name: self.name().to_string(),
            size_bytes: self.size_bytes(),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ius_weighted::string::paper_example;

    #[test]
    fn queries_match_reference_matcher() {
        let x = paper_example();
        let idx = NaiveIndex::new(4.0).unwrap();
        assert_eq!(idx.query(&[0, 0, 0, 0], &x).unwrap(), vec![0]);
        assert_eq!(idx.query(&[0, 1], &x).unwrap(), vec![0, 3, 4]);
        assert!(idx.query(&[], &x).is_err());
        assert_eq!(idx.name(), "NAIVE");
        assert!(idx.size_bytes() < 64);
    }

    #[test]
    fn rejects_bad_threshold() {
        assert!(NaiveIndex::new(0.0).is_err());
        assert!(NaiveIndex::new(f64::INFINITY).is_err());
    }
}
