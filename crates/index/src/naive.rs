//! The naive scan "index": the ground truth every real index is tested
//! against.

use crate::traits::{validate_pattern, IndexStats, UncertainIndex};
use ius_query::{finalize_into, MatchSink, QueryScratch, QueryStats};
use ius_weighted::{is_solid, solid, Error, Result, WeightedString};

/// A trivial index that stores only `z` and scans `X` at query time.
///
/// `O(1)` size, `O(n·m)` query — useful as the correctness oracle and as a
/// baseline in micro-benchmarks for very short texts.
#[derive(Debug, Clone)]
pub struct NaiveIndex {
    z: f64,
}

impl NaiveIndex {
    /// Creates the index for a weight threshold `1/z`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidThreshold`] unless `z ≥ 1` and finite.
    pub fn new(z: f64) -> Result<Self> {
        if !(z.is_finite() && z >= 1.0) {
            return Err(Error::InvalidThreshold(z));
        }
        Ok(Self { z })
    }

    /// The threshold denominator.
    pub fn z(&self) -> f64 {
        self.z
    }
}

impl UncertainIndex for NaiveIndex {
    fn name(&self) -> &'static str {
        "NAIVE"
    }

    fn query_into(
        &self,
        pattern: &[u8],
        x: &WeightedString,
        scratch: &mut QueryScratch,
        sink: &mut dyn MatchSink,
    ) -> Result<QueryStats> {
        validate_pattern(pattern, 1)?;
        let mut stats = QueryStats::default();
        scratch.positions.clear();
        if pattern.len() <= x.len() {
            for start in 0..=x.len() - pattern.len() {
                stats.candidates += 1;
                if is_solid(x.occurrence_probability(start, pattern), self.z) {
                    stats.verified += 1;
                    scratch.positions.push(start);
                }
            }
        }
        // The scan emits strictly increasing positions: no sort needed.
        stats.reported = finalize_into(&mut scratch.positions, true, sink);
        Ok(stats)
    }

    fn query_reference(&self, pattern: &[u8], x: &WeightedString) -> Result<Vec<usize>> {
        // The pre-overhaul implementation: one fresh output vector per call.
        if pattern.is_empty() {
            return Err(Error::EmptyInput("pattern"));
        }
        Ok(solid::occurrences(x, pattern, self.z))
    }

    fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            name: self.name().to_string(),
            size_bytes: self.size_bytes(),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ius_weighted::string::paper_example;

    #[test]
    fn queries_match_reference_matcher() {
        let x = paper_example();
        let idx = NaiveIndex::new(4.0).unwrap();
        assert_eq!(idx.query(&[0, 0, 0, 0], &x).unwrap(), vec![0]);
        assert_eq!(idx.query(&[0, 1], &x).unwrap(), vec![0, 3, 4]);
        assert!(idx.query(&[], &x).is_err());
        assert!(idx.query_reference(&[], &x).is_err());
        assert_eq!(idx.query_reference(&[0, 1], &x).unwrap(), vec![0, 3, 4]);
        assert_eq!(idx.name(), "NAIVE");
        assert!(idx.size_bytes() < 64);
    }

    #[test]
    fn sink_query_reports_scan_stats() {
        let x = paper_example();
        let idx = NaiveIndex::new(4.0).unwrap();
        let mut scratch = QueryScratch::new();
        let mut positions = Vec::new();
        let stats = idx
            .query_into(&[0, 1], &x, &mut scratch, &mut positions)
            .unwrap();
        assert_eq!(positions, vec![0, 3, 4]);
        assert_eq!(stats.candidates, x.len() - 1);
        assert_eq!(stats.verified, 3);
        assert_eq!(stats.reported, 3);
        assert_eq!(stats.grid_nodes, 0);
        // Longer than the text: no candidates, empty answer.
        let stats = idx
            .query_into(&vec![0u8; x.len() + 1], &x, &mut scratch, &mut positions)
            .unwrap();
        assert_eq!(stats.candidates, 0);
    }

    #[test]
    fn rejects_bad_threshold() {
        assert!(NaiveIndex::new(0.0).is_err());
        assert!(NaiveIndex::new(f64::INFINITY).is_err());
    }
}
