//! The shared overlap/home-range routing rule of every composite index.
//!
//! Both composites in this workspace — the static [`crate::ShardedIndex`]
//! and the dynamic `ius_live::LiveIndex` — cut one logical weighted string
//! into an ordered sequence of *home ranges* that tile `[0, n)`, and build
//! each part's index over its home range extended by an **overlap** of
//! `max_pattern_len − 1` positions to the right. The invariants both rely
//! on live here, in one place:
//!
//! * **No loss:** an occurrence of a pattern of length `m ≤ max_pattern_len`
//!   starting at position `p` spans the window `[p, p + m)`, which lies
//!   entirely inside the chunk of the part whose home range contains `p`
//!   (the chunk extends `max_pattern_len − 1` positions past the home end).
//! * **No duplication:** each part reports only starts inside its own home
//!   range; hits in the overlap region (starts belonging to the *next*
//!   part's home range) are dropped by [`retain_home_and_globalize`]. That
//!   single filter is the deduplication.
//! * **Global order for free:** home ranges are disjoint and increasing and
//!   each part's output is sorted, so the concatenation of the filtered
//!   per-part outputs is globally sorted — the final merge needs no sort.

/// The chunk overlap implied by a maximum supported pattern length: a
/// window of at most `max_pattern_len` letters starting on the last home
/// position needs `max_pattern_len − 1` more positions to verify.
///
/// # Panics
///
/// Panics in debug builds if `max_pattern_len` is zero (callers validate it
/// before any overlap arithmetic).
#[inline]
pub fn overlap_len(max_pattern_len: usize) -> usize {
    debug_assert!(max_pattern_len > 0, "max_pattern_len must be positive");
    max_pattern_len - 1
}

/// The exclusive end of the chunk covering one home range
/// `[offset, offset + home_len)` plus the overlap, clipped at the logical
/// length `n` (the last part has nothing to its right).
#[inline]
pub fn chunk_end(offset: usize, home_len: usize, overlap: usize, n: usize) -> usize {
    (offset + home_len + overlap).min(n)
}

/// The dedup-and-translate step of the composite query fan-out: keeps only
/// chunk-local starts inside the home range (`pos < home_len` — overlap
/// hits are the next part's responsibility) and translates the survivors to
/// global coordinates by adding the part's `offset`.
///
/// The input order is preserved, so a sorted per-part output stays sorted.
#[inline]
pub fn retain_home_and_globalize(positions: &mut Vec<usize>, home_len: usize, offset: usize) {
    positions.retain(|&pos| pos < home_len);
    for pos in positions.iter_mut() {
        *pos += offset;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_is_one_less_than_the_pattern_bound() {
        assert_eq!(overlap_len(1), 0);
        assert_eq!(overlap_len(64), 63);
    }

    #[test]
    fn chunk_end_clips_at_the_logical_length() {
        assert_eq!(chunk_end(0, 10, 7, 100), 17);
        assert_eq!(chunk_end(90, 10, 7, 100), 100);
        assert_eq!(chunk_end(95, 5, 0, 100), 100);
    }

    #[test]
    fn home_filter_drops_overlap_hits_and_translates_the_rest() {
        let mut positions = vec![0, 3, 9, 10, 14];
        retain_home_and_globalize(&mut positions, 10, 100);
        assert_eq!(positions, vec![100, 103, 109]);
        // Order (and hence global sortedness) is preserved.
        assert!(positions.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn home_filter_handles_empty_inputs() {
        let mut positions: Vec<usize> = Vec::new();
        retain_home_and_globalize(&mut positions, 5, 7);
        assert!(positions.is_empty());
    }
}
