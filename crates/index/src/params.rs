//! Parameters shared by the minimizer-based indexes.

use ius_sampling::{recommended_k, KmerOrder};
use ius_weighted::{Error, Result};

/// Parameters of the ℓ-Weighted-Indexing problem instance and of the
/// minimizer scheme used to solve it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexParams {
    /// Weight-threshold denominator `z` (the threshold is `1/z`).
    pub z: f64,
    /// Lower bound ℓ on the length of supported patterns.
    pub ell: usize,
    /// k-mer length of the `(ℓ, k)`-minimizer scheme.
    pub k: usize,
    /// Total order on k-mers used by the scheme.
    pub order: KmerOrder,
}

impl IndexParams {
    /// Creates parameters with the recommended `k ≈ ⌈log_σ ℓ⌉ + 1` (Lemma 1)
    /// and the Karp–Rabin k-mer order used by the paper's implementation.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidThreshold`] if `z < 1` or not finite;
    /// [`Error::InvalidParameters`] if `ell == 0`.
    pub fn new(z: f64, ell: usize, sigma: usize) -> Result<Self> {
        if !(z.is_finite() && z >= 1.0) {
            return Err(Error::InvalidThreshold(z));
        }
        if ell == 0 {
            return Err(Error::InvalidParameters("ℓ must be positive".into()));
        }
        Ok(Self {
            z,
            ell,
            k: recommended_k(ell, sigma),
            order: KmerOrder::default(),
        })
    }

    /// Overrides the k-mer length.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameters`] unless `1 ≤ k ≤ ℓ`.
    pub fn with_k(mut self, k: usize) -> Result<Self> {
        if k == 0 || k > self.ell {
            return Err(Error::InvalidParameters(format!(
                "k = {k} must satisfy 1 ≤ k ≤ ℓ = {}",
                self.ell
            )));
        }
        self.k = k;
        Ok(self)
    }

    /// Overrides the k-mer order (e.g. to the lexicographic order for the
    /// ablation experiments).
    pub fn with_order(mut self, order: KmerOrder) -> Self {
        self.order = order;
        self
    }

    /// The maximum number of heavy-string mismatches any z-solid factor can
    /// have (`⌊log₂ z⌋`, Lemma 3).
    pub fn max_mismatches(&self) -> usize {
        ius_weighted::heavy::max_solid_mismatches(self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommended_parameters() {
        let p = IndexParams::new(128.0, 256, 4).unwrap();
        assert_eq!(p.k, 5);
        assert_eq!(p.max_mismatches(), 7);
        assert!(matches!(p.order, KmerOrder::KarpRabin { .. }));
    }

    #[test]
    fn validation() {
        assert!(IndexParams::new(0.5, 64, 4).is_err());
        assert!(IndexParams::new(f64::NAN, 64, 4).is_err());
        assert!(IndexParams::new(4.0, 0, 4).is_err());
        let p = IndexParams::new(4.0, 16, 4).unwrap();
        assert!(p.with_k(0).is_err());
        assert!(p.with_k(17).is_err());
        assert_eq!(p.with_k(3).unwrap().k, 3);
    }

    #[test]
    fn order_override() {
        let p = IndexParams::new(4.0, 16, 4)
            .unwrap()
            .with_order(KmerOrder::Lexicographic);
        assert_eq!(p.order, KmerOrder::Lexicographic);
    }
}
