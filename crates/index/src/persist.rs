//! Versioned binary persistence for every index family.
//!
//! The build environment has no crates.io access, so the format is
//! hand-rolled rather than serde-derived: a little-endian binary layout
//! behind a fixed envelope
//!
//! ```text
//! magic "IUSX" (4 bytes) · format version (u16) · family tag (u8) · payload
//! · CRC32 trailer (u32, over magic+version+tag+payload)
//! ```
//!
//! Every envelope — including the nested per-shard envelopes inside a
//! sharded file — carries its own CRC32 (IEEE, from [`ius_faultio`])
//! trailer, computed over everything from the magic through the last
//! payload byte. Silent bit-rot is therefore detected at open, not served;
//! a mismatch is a typed `InvalidData` error, never a panic.
//!
//! Family tags: `0` NAIVE, `1` WST, `2` WSA, `3` minimizer (any of
//! MWST/MWSA/MWST-G/MWSA-G, explicit or space-efficient construction),
//! `4` sharded. Every multi-byte integer and float is little-endian
//! (`f64` as the LE bytes of its IEEE-754 bits, so round trips are
//! bit-exact). Vectors are a `u64` length followed by the elements.
//!
//! **Version policy:** the version is bumped on any layout change; readers
//! reject versions they do not know (no silent migration). Derived data is
//! not stored when reloading it is linear-time and allocation-only — leaf
//! fragments of the WST, anchor view coordinates and mismatch log-ratios of
//! the factor sets, and the minimizer scheme (re-derived from the stored
//! parameters) are all recomputed on load; the expensive construction steps
//! (z-estimation, suffix sorting, trie and merge-sort-tree assembly) are
//! **never** re-run, which is what makes loading an order of magnitude
//! faster than rebuilding (see `BENCH_space.json`).
//!
//! Entry points: [`save_index`]/[`load_index`] over [`AnyIndex`], plus
//! inherent `save_to`/`load_from` on every concrete family (including
//! [`ShardedIndex`], whose payload nests one envelope per shard).

use crate::builder::AnyIndex;
use crate::encode::{Direction, EncodedFactorSet, Mismatch};
use crate::minimizer_index::{IndexVariant, MinimizerIndex};
use crate::naive::NaiveIndex;
use crate::params::IndexParams;
use crate::property_text::PropertyText;
use crate::shard::ShardedIndex;
use crate::traits::UncertainIndex;
use crate::wsa::Wsa;
use crate::wst::Wst;
use ius_faultio::{Crc32Reader, Crc32Writer};
use ius_grid::{RangeReporter, ReporterParts};
use ius_sampling::KmerOrder;
use ius_text::trie::{CompactedTrie, TrieParts};
use ius_weighted::HeavyString;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// The four magic bytes opening every saved index.
pub const MAGIC: [u8; 4] = *b"IUSX";

/// The current on-disk format version. Version 2 added the CRC32 trailer
/// behind every envelope; version-1 files (no checksum) are rejected typed
/// like any other unknown version.
pub const FORMAT_VERSION: u16 = 2;

const TAG_NAIVE: u8 = 0;
const TAG_WST: u8 = 1;
const TAG_WSA: u8 = 2;
const TAG_MINIMIZER: u8 = 3;
const TAG_SHARDED: u8 = 4;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// ---------------------------------------------------------------------------
// Wire primitives
// ---------------------------------------------------------------------------

fn write_u8(w: &mut dyn Write, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

fn write_u16(w: &mut dyn Write, v: u16) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u32(w: &mut dyn Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut dyn Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64(w: &mut dyn Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_bits().to_le_bytes())
}

fn read_u8(r: &mut dyn Read) -> io::Result<u8> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    Ok(buf[0])
}

fn read_u16(r: &mut dyn Read) -> io::Result<u16> {
    let mut buf = [0u8; 2];
    r.read_exact(&mut buf)?;
    Ok(u16::from_le_bytes(buf))
}

fn read_u32(r: &mut dyn Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut dyn Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_f64(r: &mut dyn Read) -> io::Result<f64> {
    Ok(f64::from_bits(read_u64(r)?))
}

fn read_len(r: &mut dyn Read) -> io::Result<usize> {
    let len = read_u64(r)?;
    usize::try_from(len).map_err(|_| bad("length prefix exceeds the address space"))
}

/// Reads `len` raw bytes in bounded chunks, so a corrupted length prefix
/// fails with EOF instead of one absurd up-front allocation.
fn read_byte_vec(r: &mut dyn Read, len: usize) -> io::Result<Vec<u8>> {
    let mut out = Vec::new();
    let mut buf = [0u8; 8192];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(buf.len());
        r.read_exact(&mut buf[..take])?;
        out.extend_from_slice(&buf[..take]);
        remaining -= take;
    }
    // Loaded vectors are retained for the index's lifetime: keep them exact
    // so a loaded index's footprint matches the built one's.
    out.shrink_to_fit();
    Ok(out)
}

fn write_bytes(w: &mut dyn Write, bytes: &[u8]) -> io::Result<()> {
    write_u64(w, bytes.len() as u64)?;
    w.write_all(bytes)
}

fn read_bytes(r: &mut dyn Read) -> io::Result<Vec<u8>> {
    let len = read_len(r)?;
    read_byte_vec(r, len)
}

/// Elements per chunk of the vector writers below: conversions go through a
/// bounded stack-side buffer and reach the writer as large `write_all`s, so
/// saving to an unbuffered `File` does not degenerate into one syscall per
/// element.
const WRITE_CHUNK: usize = 8192;

fn write_vec_u32(w: &mut dyn Write, values: &[u32]) -> io::Result<()> {
    write_u64(w, values.len() as u64)?;
    let mut buf = Vec::with_capacity(WRITE_CHUNK.min(values.len()) * 4);
    for chunk in values.chunks(WRITE_CHUNK) {
        buf.clear();
        for &v in chunk {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

fn read_vec_u32(r: &mut dyn Read) -> io::Result<Vec<u32>> {
    let len = read_len(r)?;
    let bytes = read_byte_vec(
        r,
        len.checked_mul(4)
            .ok_or_else(|| bad("u32 vector overflow"))?,
    )?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn write_vec_u16(w: &mut dyn Write, values: &[u16]) -> io::Result<()> {
    write_u64(w, values.len() as u64)?;
    let mut buf = Vec::with_capacity(WRITE_CHUNK.min(values.len()) * 2);
    for chunk in values.chunks(WRITE_CHUNK) {
        buf.clear();
        for &v in chunk {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

fn read_vec_u16(r: &mut dyn Read) -> io::Result<Vec<u16>> {
    let len = read_len(r)?;
    let bytes = read_byte_vec(
        r,
        len.checked_mul(2)
            .ok_or_else(|| bad("u16 vector overflow"))?,
    )?;
    Ok(bytes
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes([c[0], c[1]]))
        .collect())
}

fn write_vec_u64(w: &mut dyn Write, values: &[u64]) -> io::Result<()> {
    write_u64(w, values.len() as u64)?;
    let mut buf = Vec::with_capacity(WRITE_CHUNK.min(values.len()) * 8);
    for chunk in values.chunks(WRITE_CHUNK) {
        buf.clear();
        for &v in chunk {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

fn read_vec_u64(r: &mut dyn Read) -> io::Result<Vec<u64>> {
    let len = read_len(r)?;
    let bytes = read_byte_vec(
        r,
        len.checked_mul(8)
            .ok_or_else(|| bad("u64 vector overflow"))?,
    )?;
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect())
}

fn write_vec_f64(w: &mut dyn Write, values: &[f64]) -> io::Result<()> {
    write_u64(w, values.len() as u64)?;
    let mut buf = Vec::with_capacity(WRITE_CHUNK.min(values.len()) * 8);
    for chunk in values.chunks(WRITE_CHUNK) {
        buf.clear();
        for &v in chunk {
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

fn read_vec_f64(r: &mut dyn Read) -> io::Result<Vec<f64>> {
    Ok(read_vec_u64(r)?.into_iter().map(f64::from_bits).collect())
}

// ---------------------------------------------------------------------------
// Envelope
// ---------------------------------------------------------------------------

fn write_envelope(w: &mut dyn Write, tag: u8) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    write_u16(w, FORMAT_VERSION)?;
    write_u8(w, tag)
}

fn read_envelope(r: &mut dyn Read) -> io::Result<u8> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(bad("not an IUSX index file (bad magic)"));
    }
    let version = read_u16(r)?;
    if version != FORMAT_VERSION {
        return Err(bad(format!(
            "unsupported format version {version} (this build reads version {FORMAT_VERSION})"
        )));
    }
    read_u8(r)
}

/// Writes one complete checksummed envelope: magic/version/tag and the
/// payload emitted by `payload` go through a CRC32 hasher, then the
/// checksum follows as a trailer. Nested envelopes (the per-shard ones of
/// a sharded file) each carry their own trailer, which the enclosing
/// envelope's checksum also covers.
fn write_checksummed(
    w: &mut dyn Write,
    tag: u8,
    payload: impl FnOnce(&mut dyn Write) -> io::Result<()>,
) -> io::Result<()> {
    let mut cw = Crc32Writer::new(w);
    write_envelope(&mut cw, tag)?;
    payload(&mut cw)?;
    let crc = cw.crc();
    write_u32(cw.into_inner(), crc)
}

/// Reads one complete checksummed envelope, handing the tag and the
/// checksummed payload stream to `body`, then verifies the trailer.
fn read_checksummed<T>(
    r: &mut dyn Read,
    body: impl FnOnce(u8, &mut dyn Read) -> io::Result<T>,
) -> io::Result<T> {
    let mut cr = Crc32Reader::new(r);
    let tag = read_envelope(&mut cr)?;
    let value = body(tag, &mut cr)?;
    let computed = cr.crc();
    let stored = read_u32(cr.inner_mut())?;
    if stored != computed {
        return Err(bad(format!(
            "index checksum mismatch (stored {stored:#010x}, computed {computed:#010x}): \
             the file is corrupt"
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Shared components
// ---------------------------------------------------------------------------

fn write_order(w: &mut dyn Write, order: KmerOrder) -> io::Result<()> {
    match order {
        KmerOrder::Lexicographic => {
            write_u8(w, 0)?;
            write_u64(w, 0)
        }
        KmerOrder::KarpRabin { seed } => {
            write_u8(w, 1)?;
            write_u64(w, seed)
        }
    }
}

fn read_order(r: &mut dyn Read) -> io::Result<KmerOrder> {
    let tag = read_u8(r)?;
    let seed = read_u64(r)?;
    match tag {
        0 => Ok(KmerOrder::Lexicographic),
        1 => Ok(KmerOrder::KarpRabin { seed }),
        other => Err(bad(format!("unknown k-mer order tag {other}"))),
    }
}

pub(crate) fn write_params(w: &mut dyn Write, params: &IndexParams) -> io::Result<()> {
    write_f64(w, params.z)?;
    write_u64(w, params.ell as u64)?;
    write_u64(w, params.k as u64)?;
    write_order(w, params.order)
}

pub(crate) fn read_params(r: &mut dyn Read) -> io::Result<IndexParams> {
    let z = read_f64(r)?;
    let ell = read_len(r)?;
    let k = read_len(r)?;
    let order = read_order(r)?;
    if !(z.is_finite() && z >= 1.0) {
        return Err(bad(format!("invalid stored threshold z = {z}")));
    }
    if ell == 0 || k == 0 || k > ell {
        return Err(bad(format!("invalid stored parameters ℓ = {ell}, k = {k}")));
    }
    Ok(IndexParams { z, ell, k, order })
}

fn write_property_text(w: &mut dyn Write, pt: &PropertyText) -> io::Result<()> {
    write_u64(w, pt.n() as u64)?;
    write_u64(w, pt.num_strands() as u64)?;
    write_bytes(w, pt.text())?;
    write_vec_u32(w, pt.trunc_raw())?;
    write_vec_u32(w, pt.psa())?;
    match pt.trunc_lcp_raw() {
        Some(lcps) => {
            write_u8(w, 1)?;
            write_vec_u32(w, lcps)
        }
        None => write_u8(w, 0),
    }
}

fn read_property_text(r: &mut dyn Read) -> io::Result<PropertyText> {
    let n = read_len(r)?;
    let num_strands = read_len(r)?;
    let text = read_bytes(r)?;
    let trunc = read_vec_u32(r)?;
    let psa = read_vec_u32(r)?;
    let trunc_lcp = match read_u8(r)? {
        0 => None,
        1 => Some(read_vec_u32(r)?),
        other => return Err(bad(format!("bad truncated-LCP flag {other}"))),
    };
    PropertyText::from_parts(n, num_strands, text, trunc, psa, trunc_lcp).map_err(bad)
}

fn write_trie(w: &mut dyn Write, trie: &CompactedTrie) -> io::Result<()> {
    let parts = trie.to_parts();
    write_vec_u32(w, &parts.depth)?;
    write_vec_u32(w, &parts.leaf_lo)?;
    write_vec_u32(w, &parts.leaf_hi)?;
    write_vec_u32(w, &parts.children_start)?;
    write_vec_u16(w, &parts.children_len)?;
    write_bytes(w, &parts.is_leaf)?;
    write_bytes(w, &parts.child_letters)?;
    write_vec_u32(w, &parts.child_nodes)?;
    write_u32(w, parts.root)?;
    write_u64(w, parts.num_leaves)
}

fn read_trie(r: &mut dyn Read) -> io::Result<CompactedTrie> {
    let parts = TrieParts {
        depth: read_vec_u32(r)?,
        leaf_lo: read_vec_u32(r)?,
        leaf_hi: read_vec_u32(r)?,
        children_start: read_vec_u32(r)?,
        children_len: read_vec_u16(r)?,
        is_leaf: read_bytes(r)?,
        child_letters: read_bytes(r)?,
        child_nodes: read_vec_u32(r)?,
        root: read_u32(r)?,
        num_leaves: read_u64(r)?,
    };
    CompactedTrie::from_parts(parts).map_err(bad)
}

fn write_reporter(w: &mut dyn Write, reporter: &RangeReporter) -> io::Result<()> {
    let parts = reporter.to_parts();
    write_u64(w, parts.len)?;
    write_vec_u32(w, &parts.xs)?;
    write_vec_u32(w, &parts.node_lens)?;
    write_vec_u32(w, &parts.ys)?;
    write_vec_u32(w, &parts.payloads)
}

fn read_reporter_parts(r: &mut dyn Read) -> io::Result<ReporterParts> {
    Ok(ReporterParts {
        len: read_u64(r)?,
        xs: read_vec_u32(r)?,
        node_lens: read_vec_u32(r)?,
        ys: read_vec_u32(r)?,
        payloads: read_vec_u32(r)?,
    })
}

fn write_heavy(w: &mut dyn Write, heavy: &HeavyString) -> io::Result<()> {
    write_bytes(w, heavy.as_ranks())?;
    write_vec_f64(w, heavy.log_prefix())
}

fn read_heavy(r: &mut dyn Read) -> io::Result<HeavyString> {
    let letters = read_bytes(r)?;
    let log_prefix = read_vec_f64(r)?;
    HeavyString::from_parts(letters, log_prefix).map_err(|e| bad(e.to_string()))
}

/// Writes a factor set. The heavy view is *not* stored: forward sets read
/// the index-wide heavy string (shared or as their own copy — only the
/// ownership flag is recorded), backward sets read its reversal; both are
/// reconstructed from the heavy string on load.
fn write_factor_set(w: &mut dyn Write, set: &EncodedFactorSet) -> io::Result<()> {
    write_u8(
        w,
        match set.direction() {
            Direction::Forward => 0,
            Direction::Backward => 1,
        },
    )?;
    write_u8(w, u8::from(set.owns_heavy_view()))?;
    write_vec_u32(w, set.anchor_x_raw())?;
    write_vec_u32(w, set.lens_raw())?;
    write_vec_u32(w, set.strands_raw())?;
    write_vec_u32(w, set.mism_start_raw())?;
    let mismatches = set.mismatches_raw();
    write_u64(w, mismatches.len() as u64)?;
    let mut buf = Vec::with_capacity(WRITE_CHUNK.min(mismatches.len()) * 13);
    for chunk in mismatches.chunks(WRITE_CHUNK) {
        buf.clear();
        for m in chunk {
            buf.extend_from_slice(&m.depth.to_le_bytes());
            buf.push(m.letter);
            buf.extend_from_slice(&m.ratio.to_bits().to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    write_vec_u64(w, set.prefix_keys_raw())
}

fn read_factor_set(r: &mut dyn Read, heavy: &HeavyString) -> io::Result<EncodedFactorSet> {
    let direction = match read_u8(r)? {
        0 => Direction::Forward,
        1 => Direction::Backward,
        other => return Err(bad(format!("unknown factor-set direction {other}"))),
    };
    let owns_view = match read_u8(r)? {
        0 => false,
        1 => true,
        other => return Err(bad(format!("bad heavy-view ownership flag {other}"))),
    };
    let heavy_view: Arc<Vec<u8>> = match (direction, owns_view) {
        (Direction::Forward, false) => heavy.shared_ranks(),
        (Direction::Forward, true) => Arc::new(heavy.as_ranks().to_vec()),
        (Direction::Backward, _) => {
            let mut reversed = heavy.as_ranks().to_vec();
            reversed.reverse();
            Arc::new(reversed)
        }
    };
    let anchor_x = read_vec_u32(r)?;
    let lens = read_vec_u32(r)?;
    let strands = read_vec_u32(r)?;
    let mism_start = read_vec_u32(r)?;
    let mism_count = read_len(r)?;
    let mut mismatches = Vec::with_capacity(mism_count.min(1 << 20));
    for _ in 0..mism_count {
        mismatches.push(Mismatch {
            depth: read_u32(r)?,
            letter: read_u8(r)?,
            ratio: read_f64(r)?,
        });
    }
    mismatches.shrink_to_fit();
    let prefix_keys = read_vec_u64(r)?;
    EncodedFactorSet::from_loaded_parts(
        direction,
        heavy_view,
        anchor_x,
        lens,
        strands,
        mism_start,
        mismatches,
        prefix_keys,
    )
    .map_err(bad)
}

// ---------------------------------------------------------------------------
// Family payloads
// ---------------------------------------------------------------------------

fn write_minimizer_payload(w: &mut dyn Write, index: &MinimizerIndex) -> io::Result<()> {
    write_params(w, index.params())?;
    write_u8(
        w,
        match index.variant() {
            IndexVariant::Tree => 0,
            IndexVariant::Array => 1,
            IndexVariant::TreeGrid => 2,
            IndexVariant::ArrayGrid => 3,
        },
    )?;
    write_u8(
        w,
        match index.construction() {
            "space-efficient" => 1,
            _ => 0,
        },
    )?;
    let parts = index.persist_parts();
    write_u64(w, parts.n as u64)?;
    write_u64(w, parts.sigma as u64)?;
    write_heavy(w, parts.heavy)?;
    write_factor_set(w, parts.fwd)?;
    write_factor_set(w, parts.bwd)?;
    for trie in [parts.fwd_trie, parts.bwd_trie] {
        match trie {
            Some(trie) => {
                write_u8(w, 1)?;
                write_trie(w, trie)?;
            }
            None => write_u8(w, 0)?,
        }
    }
    match parts.grid {
        Some(grid) => {
            write_u8(w, 1)?;
            write_reporter(w, grid)?;
            write_u64(w, parts.pairs.len() as u64)?;
            for &(fwd_leaf, bwd_leaf) in parts.pairs {
                write_u32(w, fwd_leaf)?;
                write_u32(w, bwd_leaf)?;
            }
        }
        None => write_u8(w, 0)?,
    }
    Ok(())
}

fn read_minimizer_payload(r: &mut dyn Read) -> io::Result<MinimizerIndex> {
    let params = read_params(r)?;
    let variant = match read_u8(r)? {
        0 => IndexVariant::Tree,
        1 => IndexVariant::Array,
        2 => IndexVariant::TreeGrid,
        3 => IndexVariant::ArrayGrid,
        other => return Err(bad(format!("unknown index variant tag {other}"))),
    };
    let construction = match read_u8(r)? {
        0 => "explicit",
        1 => "space-efficient",
        other => return Err(bad(format!("unknown construction tag {other}"))),
    };
    let n = read_len(r)?;
    let sigma = read_len(r)?;
    if sigma == 0 || sigma > 256 {
        return Err(bad(format!("invalid stored alphabet size {sigma}")));
    }
    let heavy = read_heavy(r)?;
    if heavy.len() != n {
        return Err(bad("heavy string length does not match the stored n"));
    }
    let fwd = read_factor_set(r, &heavy)?;
    let bwd = read_factor_set(r, &heavy)?;
    if fwd.direction() != Direction::Forward || bwd.direction() != Direction::Backward {
        return Err(bad("factor sets stored in the wrong order"));
    }
    let mut tries = [None, None];
    for slot in &mut tries {
        *slot = match read_u8(r)? {
            0 => None,
            1 => Some(read_trie(r)?),
            other => return Err(bad(format!("bad trie presence flag {other}"))),
        };
    }
    let [fwd_trie, bwd_trie] = tries;
    if variant.has_tree() != fwd_trie.is_some() || variant.has_tree() != bwd_trie.is_some() {
        return Err(bad("stored tries do not match the index variant"));
    }
    if let (Some(trie), set_len) = (&fwd_trie, fwd.len()) {
        if trie.num_leaves() != set_len {
            return Err(bad("forward trie does not match the forward factor set"));
        }
    }
    if let (Some(trie), set_len) = (&bwd_trie, bwd.len()) {
        if trie.num_leaves() != set_len {
            return Err(bad("backward trie does not match the backward factor set"));
        }
    }
    let (grid, pairs) = match read_u8(r)? {
        0 => (None, Vec::new()),
        1 => {
            let grid_parts = read_reporter_parts(r)?;
            let count = read_len(r)?;
            let mut pairs = Vec::with_capacity(count.min(1 << 20));
            for _ in 0..count {
                let fwd_leaf = read_u32(r)?;
                let bwd_leaf = read_u32(r)?;
                if fwd_leaf as usize >= fwd.len() || bwd_leaf as usize >= bwd.len() {
                    return Err(bad("grid pair references a leaf out of range"));
                }
                pairs.push((fwd_leaf, bwd_leaf));
            }
            pairs.shrink_to_fit();
            // Every grid point's payload indexes the pair table at query
            // time; reject out-of-range payloads here rather than panicking
            // on the first grid query.
            if grid_parts
                .payloads
                .iter()
                .any(|&payload| payload as usize >= pairs.len())
            {
                return Err(bad("grid payload references a pair out of range"));
            }
            let grid = RangeReporter::from_parts(grid_parts).map_err(bad)?;
            if grid.len() != pairs.len() {
                return Err(bad("grid point count does not match the pair table"));
            }
            (Some(grid), pairs)
        }
        other => return Err(bad(format!("bad grid presence flag {other}"))),
    };
    if variant.has_grid() != grid.is_some() {
        return Err(bad("stored grid does not match the index variant"));
    }
    Ok(MinimizerIndex::from_loaded_parts(
        params,
        variant,
        n,
        sigma,
        heavy,
        fwd,
        bwd,
        fwd_trie,
        bwd_trie,
        grid,
        pairs,
        construction,
    ))
}

// ---------------------------------------------------------------------------
// Public per-family API
// ---------------------------------------------------------------------------

impl NaiveIndex {
    /// Serializes the index into `w` (envelope + payload).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the writer.
    pub fn save_to(&self, w: &mut dyn Write) -> io::Result<()> {
        write_checksummed(w, TAG_NAIVE, |w| write_f64(w, self.z()))
    }

    /// Deserializes an index previously written by [`NaiveIndex::save_to`].
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on a malformed or mismatched file.
    pub fn load_from(r: &mut dyn Read) -> io::Result<Self> {
        match load_index(r)? {
            AnyIndex::Naive(index) => Ok(index),
            other => Err(bad(format!(
                "expected a NAIVE file, found {}",
                other.name()
            ))),
        }
    }
}

impl Wst {
    /// Serializes the index into `w` (envelope + payload).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the writer.
    pub fn save_to(&self, w: &mut dyn Write) -> io::Result<()> {
        write_checksummed(w, TAG_WST, |w| {
            write_f64(w, self.z())?;
            write_property_text(w, self.property_text_ref())?;
            write_trie(w, self.trie_ref())
        })
    }

    /// Deserializes an index previously written by [`Wst::save_to`].
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on a malformed or mismatched file.
    pub fn load_from(r: &mut dyn Read) -> io::Result<Self> {
        match load_index(r)? {
            AnyIndex::Wst(index) => Ok(index),
            other => Err(bad(format!("expected a WST file, found {}", other.name()))),
        }
    }
}

impl Wsa {
    /// Serializes the index into `w` (envelope + payload).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the writer.
    pub fn save_to(&self, w: &mut dyn Write) -> io::Result<()> {
        write_checksummed(w, TAG_WSA, |w| {
            write_f64(w, self.z())?;
            write_property_text(w, self.property_text())
        })
    }

    /// Deserializes an index previously written by [`Wsa::save_to`].
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on a malformed or mismatched file.
    pub fn load_from(r: &mut dyn Read) -> io::Result<Self> {
        match load_index(r)? {
            AnyIndex::Wsa(index) => Ok(index),
            other => Err(bad(format!("expected a WSA file, found {}", other.name()))),
        }
    }
}

impl MinimizerIndex {
    /// Serializes the index into `w` (envelope + payload).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the writer.
    pub fn save_to(&self, w: &mut dyn Write) -> io::Result<()> {
        write_checksummed(w, TAG_MINIMIZER, |w| write_minimizer_payload(w, self))
    }

    /// Deserializes an index previously written by
    /// [`MinimizerIndex::save_to`]. No construction is re-run: the factor
    /// sets, tries and grid come back exactly as stored.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on a malformed or mismatched file.
    pub fn load_from(r: &mut dyn Read) -> io::Result<Self> {
        match load_index(r)? {
            AnyIndex::Minimizer(index) => Ok(*index),
            other => Err(bad(format!(
                "expected a minimizer-index file, found {}",
                other.name()
            ))),
        }
    }
}

impl AnyIndex {
    /// Serializes the contained index — an alias of [`save_index`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the writer.
    pub fn save_to(&self, w: &mut dyn Write) -> io::Result<()> {
        save_index(self, w)
    }

    /// Deserializes any single-machine family — an alias of [`load_index`].
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on a malformed file.
    pub fn load_from(r: &mut dyn Read) -> io::Result<Self> {
        load_index(r)
    }
}

/// Serializes any index family into `w`.
///
/// # Errors
///
/// Propagates I/O errors of the writer.
pub fn save_index(index: &AnyIndex, w: &mut dyn Write) -> io::Result<()> {
    match index {
        AnyIndex::Naive(index) => index.save_to(w),
        AnyIndex::Wst(index) => index.save_to(w),
        AnyIndex::Wsa(index) => index.save_to(w),
        AnyIndex::Minimizer(index) => index.save_to(w),
    }
}

/// Deserializes an index saved by [`save_index`] (or any family's
/// `save_to`), dispatching on the stored family tag. Loading performs only
/// linear-time reassembly — the z-estimation, suffix sorts and tree merges
/// of construction are never re-run.
///
/// # Errors
///
/// I/O errors, or `InvalidData` on bad magic, an unknown version/tag, or a
/// structurally inconsistent payload.
pub fn load_index(r: &mut dyn Read) -> io::Result<AnyIndex> {
    read_checksummed(r, load_index_payload)
}

/// Any structure a persisted index file can contain: a single-machine family
/// or a sharded composite. Returned by [`load_any_index`], which is what
/// consumers that accept *any* index file (e.g. the `ius_server` serving
/// layer) dispatch on.
#[derive(Debug, Clone)]
pub enum LoadedAny {
    /// A single-machine family (NAIVE/WST/WSA/minimizer variants).
    Index(AnyIndex),
    /// A sharded composite (self-contained: the shards own their chunks of
    /// `X`).
    Sharded(ShardedIndex),
}

/// Deserializes **any** index file — single-machine families and sharded
/// composites alike — dispatching on the stored family tag.
///
/// # Errors
///
/// I/O errors, or `InvalidData` on bad magic, an unknown version/tag, or a
/// structurally inconsistent payload.
pub fn load_any_index(r: &mut dyn Read) -> io::Result<LoadedAny> {
    read_checksummed(r, |tag, r| {
        if tag == TAG_SHARDED {
            read_sharded_payload(r).map(LoadedAny::Sharded)
        } else {
            load_index_payload(tag, r).map(LoadedAny::Index)
        }
    })
}

fn load_index_payload(tag: u8, r: &mut dyn Read) -> io::Result<AnyIndex> {
    match tag {
        TAG_NAIVE => {
            let z = read_f64(r)?;
            NaiveIndex::new(z)
                .map(AnyIndex::Naive)
                .map_err(|e| bad(e.to_string()))
        }
        TAG_WST => {
            let z = read_f64(r)?;
            if !(z.is_finite() && z >= 1.0) {
                return Err(bad(format!("invalid stored threshold z = {z}")));
            }
            let property_text = read_property_text(r)?;
            let trie = read_trie(r)?;
            if trie.num_leaves() != property_text.psa().len() {
                return Err(bad("trie does not match the property suffix array"));
            }
            Ok(AnyIndex::Wst(Wst::from_loaded_parts(
                z,
                property_text,
                trie,
            )))
        }
        TAG_WSA => {
            let z = read_f64(r)?;
            if !(z.is_finite() && z >= 1.0) {
                return Err(bad(format!("invalid stored threshold z = {z}")));
            }
            let property_text = read_property_text(r)?;
            Ok(AnyIndex::Wsa(Wsa::from_loaded_parts(z, property_text)))
        }
        TAG_MINIMIZER => Ok(AnyIndex::Minimizer(Box::new(read_minimizer_payload(r)?))),
        TAG_SHARDED => Err(bad(
            "this is a sharded-index file; use ShardedIndex::load_from",
        )),
        other => Err(bad(format!("unknown family tag {other}"))),
    }
}

// ---------------------------------------------------------------------------
// Sharded indexes (payload nests one envelope per shard)
// ---------------------------------------------------------------------------

impl ShardedIndex {
    /// Serializes the sharded index: routing metadata, the per-shard chunks
    /// of `X` (each shard owns its chunk, so the file is self-contained) and
    /// one nested index envelope per shard.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the writer.
    pub fn save_to(&self, w: &mut dyn Write) -> io::Result<()> {
        write_checksummed(w, TAG_SHARDED, |w| {
            write_params(w, &self.spec().params)?;
            write_u8(w, family_tag(self.spec().family))?;
            write_u64(w, self.len() as u64)?;
            write_u64(w, self.max_pattern_len() as u64)?;
            write_u64(w, self.num_shards() as u64)?;
            for shard in self.shards() {
                write_u64(w, shard.offset as u64)?;
                write_u64(w, shard.home_len as u64)?;
                write_bytes(w, shard.x.alphabet().symbols())?;
                write_u64(w, shard.x.len() as u64)?;
                write_vec_f64(w, shard.x.flat_probs())?;
                shard.index.save_to(w)?;
            }
            Ok(())
        })
    }

    /// Deserializes a sharded index written by [`ShardedIndex::save_to`].
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on a malformed file.
    pub fn load_from(r: &mut dyn Read) -> io::Result<Self> {
        read_checksummed(r, |tag, r| {
            if tag != TAG_SHARDED {
                return Err(bad(format!(
                    "expected a sharded-index file (tag {TAG_SHARDED}), found tag {tag}"
                )));
            }
            read_sharded_payload(r)
        })
    }
}

/// Reads the sharded payload (everything after the envelope).
fn read_sharded_payload(r: &mut dyn Read) -> io::Result<ShardedIndex> {
    let params = read_params(r)?;
    let family = family_from_tag(read_u8(r)?)?;
    let n = read_len(r)?;
    let max_pattern_len = read_len(r)?;
    let num_shards = read_len(r)?;
    let mut shards = Vec::with_capacity(num_shards.min(1 << 16));
    for _ in 0..num_shards {
        let offset = read_len(r)?;
        let home_len = read_len(r)?;
        let symbols = read_bytes(r)?;
        let chunk_len = read_len(r)?;
        let probs = read_vec_f64(r)?;
        let alphabet = ius_weighted::Alphabet::new(&symbols).map_err(|e| bad(e.to_string()))?;
        if probs.len() != chunk_len * alphabet.size() {
            return Err(bad("shard probability matrix has the wrong shape"));
        }
        let x = ius_weighted::WeightedString::from_flat(alphabet, probs)
            .map_err(|e| bad(e.to_string()))?;
        let index = load_index(r)?;
        shards.push(crate::shard::Shard {
            offset,
            home_len,
            x,
            index,
        });
    }
    ShardedIndex::from_loaded_parts(
        crate::builder::IndexSpec::new(family, params),
        n,
        max_pattern_len,
        shards,
    )
    .map_err(bad)
}

fn family_tag(family: crate::builder::IndexFamily) -> u8 {
    use crate::builder::IndexFamily;
    match family {
        IndexFamily::Naive => 0,
        IndexFamily::Wst => 1,
        IndexFamily::Wsa => 2,
        IndexFamily::Minimizer(IndexVariant::Tree) => 3,
        IndexFamily::Minimizer(IndexVariant::Array) => 4,
        IndexFamily::Minimizer(IndexVariant::TreeGrid) => 5,
        IndexFamily::Minimizer(IndexVariant::ArrayGrid) => 6,
        IndexFamily::SpaceEfficient(IndexVariant::Tree) => 7,
        IndexFamily::SpaceEfficient(IndexVariant::Array) => 8,
        IndexFamily::SpaceEfficient(IndexVariant::TreeGrid) => 9,
        IndexFamily::SpaceEfficient(IndexVariant::ArrayGrid) => 10,
    }
}

fn family_from_tag(tag: u8) -> io::Result<crate::builder::IndexFamily> {
    use crate::builder::IndexFamily;
    Ok(match tag {
        0 => IndexFamily::Naive,
        1 => IndexFamily::Wst,
        2 => IndexFamily::Wsa,
        3 => IndexFamily::Minimizer(IndexVariant::Tree),
        4 => IndexFamily::Minimizer(IndexVariant::Array),
        5 => IndexFamily::Minimizer(IndexVariant::TreeGrid),
        6 => IndexFamily::Minimizer(IndexVariant::ArrayGrid),
        7 => IndexFamily::SpaceEfficient(IndexVariant::Tree),
        8 => IndexFamily::SpaceEfficient(IndexVariant::Array),
        9 => IndexFamily::SpaceEfficient(IndexVariant::TreeGrid),
        10 => IndexFamily::SpaceEfficient(IndexVariant::ArrayGrid),
        other => return Err(bad(format!("unknown index-family tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{IndexFamily, IndexSpec};
    use crate::traits::UncertainIndex;
    use ius_datasets::uniform::UniformConfig;

    fn sample_bytes() -> Vec<u8> {
        let x = UniformConfig {
            n: 160,
            sigma: 2,
            spread: 0.5,
            seed: 8,
        }
        .generate();
        let params = IndexParams::new(4.0, 8, x.sigma()).unwrap();
        let index = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::ArrayGrid), params)
            .build(&x)
            .unwrap();
        let mut bytes = Vec::new();
        index.save_to(&mut bytes).unwrap();
        bytes
    }

    #[test]
    fn envelope_is_validated() {
        let bytes = sample_bytes();
        // Truncation anywhere fails cleanly, never panics.
        for cut in [0usize, 3, 5, 7, 20, bytes.len() - 1] {
            assert!(load_index(&mut &bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Bad magic.
        let mut corrupt = bytes.clone();
        corrupt[0] = b'X';
        assert!(load_index(&mut corrupt.as_slice()).is_err());
        // Unknown version.
        let mut corrupt = bytes.clone();
        corrupt[4] = 0xFF;
        assert!(load_index(&mut corrupt.as_slice()).is_err());
        // Unknown family tag.
        let mut corrupt = bytes;
        corrupt[6] = 0xEE;
        assert!(load_index(&mut corrupt.as_slice()).is_err());
    }

    #[test]
    fn checksum_detects_silent_bit_rot() {
        let bytes = sample_bytes();
        // An untouched file round-trips.
        assert!(load_index(&mut bytes.as_slice()).is_ok());
        // Flip one bit deep in the payload (past the envelope, before the
        // trailer): structurally the file may still parse, but the CRC32
        // trailer must catch it with a typed error, never a panic.
        for &at in &[16usize, bytes.len() / 2, bytes.len() - 8] {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 0x40;
            let err = load_index(&mut corrupt.as_slice())
                .expect_err("bit flip must not load")
                .to_string();
            assert!(!err.is_empty());
        }
        // Corrupting the trailer itself is also detected.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        assert!(load_index(&mut corrupt.as_slice()).is_err());
    }

    #[test]
    fn typed_loaders_reject_other_families() {
        let bytes = sample_bytes();
        assert!(Wsa::load_from(&mut bytes.as_slice()).is_err());
        assert!(Wst::load_from(&mut bytes.as_slice()).is_err());
        assert!(NaiveIndex::load_from(&mut bytes.as_slice()).is_err());
        assert!(ShardedIndex::load_from(&mut bytes.as_slice()).is_err());
        assert!(MinimizerIndex::load_from(&mut bytes.as_slice()).is_ok());
    }

    #[test]
    fn naive_round_trip() {
        let naive = NaiveIndex::new(7.5).unwrap();
        let mut bytes = Vec::new();
        naive.save_to(&mut bytes).unwrap();
        let loaded = NaiveIndex::load_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(loaded.z(), 7.5);
        assert_eq!(loaded.name(), "NAIVE");
    }
}
