//! Versioned binary persistence for every index family.
//!
//! The build environment has no crates.io access, so the format is
//! hand-rolled rather than serde-derived: a little-endian binary layout
//! behind a fixed envelope. Format **version 3** (current):
//!
//! ```text
//! magic "IUSX" (4) · version (u16) · family tag (u8) · envelope length (u64)
//! · payload (sections at 8-byte-aligned offsets) · CRC32 trailer (u32)
//! ```
//!
//! The envelope length counts everything from the magic through the trailer
//! inclusive, which lets a reader locate the trailer without streaming the
//! payload. Every large flat array is a **section**:
//!
//! ```text
//! element count (u64) · encoding (u8) · zero pad to an 8-byte-aligned
//! offset relative to the envelope start · data
//! ```
//!
//! Encoding `0` stores the elements as raw little-endian values — because
//! the offset is 8-byte aligned, an in-memory copy of the file can hand out
//! **zero-copy borrowed views** of the data (see [`ius_arena`]). Encoding
//! `1` (opt-in via [`SaveOptions::pack_u32`], `u32` sections only)
//! bit-packs the values at the minimum fixed width
//! `⌈log₂(max+1)⌉`: `width (u8) · packed word count (u64) · pad ·
//! little-endian u64 words`, LSB-first; packed sections decode to owned
//! vectors at open.
//!
//! Two read paths exist for v3 files:
//!
//! - **Streaming** ([`load_index`]/[`load_any_index`]): decodes every
//!   section into owned memory; works mid-stream (the live-index segment
//!   files embed an envelope after a segment prefix).
//! - **Arena open** ([`open_index`]/[`open_any_index`]): the whole file is
//!   read into one 8-byte-aligned [`Arena`] allocation up front, the CRC32
//!   trailer is verified over the raw bytes (slicing-by-8, so this is
//!   bandwidth-bound), and every raw section becomes a borrowed view.
//!   Open cost is O(header + validation), not O(elements) — no per-element
//!   decode, no per-table allocation.
//!
//! Version-2 files (streamed scalar payload, no length field, no
//! alignment) are still **read** bit-compatibly by [`load_index`]; the v2
//! writer survives as the `#[doc(hidden)]` [`save_index_v2`] for the
//! backward-compat differential suite. Version bumps are rejected typed;
//! there is no silent migration. Every envelope — including the nested
//! per-shard envelopes inside a sharded file — carries its own CRC32
//! (IEEE, from [`ius_faultio`]) trailer; silent bit-rot is detected at
//! open, not served, and a mismatch is a typed `InvalidData` error, never
//! a panic.
//!
//! Derived data is not stored when reloading it is linear-time and
//! allocation-only — leaf fragments of the WST, anchor view coordinates
//! and mismatch log-ratios of the factor sets (ratios are stored raw so a
//! re-save is byte-identical), and the minimizer scheme are all recomputed
//! on load; the expensive construction steps (z-estimation, suffix
//! sorting, trie and merge-sort-tree assembly) are **never** re-run.
//!
//! Family tags: `0` NAIVE, `1` WST, `2` WSA, `3` minimizer (any of
//! MWST/MWSA/MWST-G/MWSA-G, explicit or space-efficient construction),
//! `4` sharded. Every multi-byte integer and float is little-endian
//! (`f64` as the LE bytes of its IEEE-754 bits, so round trips are
//! bit-exact).
//!
//! Entry points: [`save_index`]/[`load_index`]/[`open_index`] over
//! [`AnyIndex`], [`open_any_index`] for files that may be sharded, and
//! inherent `save_to`/`load_from` on every concrete family.

use crate::builder::AnyIndex;
use crate::encode::{Direction, EncodedFactorSet};
use crate::minimizer_index::{IndexVariant, MinimizerIndex};
use crate::naive::NaiveIndex;
use crate::params::IndexParams;
use crate::property_text::PropertyText;
use crate::shard::ShardedIndex;
use crate::traits::UncertainIndex;
use crate::wsa::Wsa;
use crate::wst::Wst;
use ius_arena::{as_le_bytes, Arena, ArenaVec, Pod};
use ius_faultio::{crc32, Crc32Reader, Crc32Writer};
use ius_grid::{RangeReporter, ReporterParts};
use ius_sampling::KmerOrder;
use ius_text::trie::{CompactedTrie, TrieParts};
use ius_weighted::HeavyString;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// The four magic bytes opening every saved index.
pub const MAGIC: [u8; 4] = *b"IUSX";

/// The current on-disk format version: arena-openable 8-byte-aligned
/// sections with an envelope length field. Version 2 (streamed scalars,
/// CRC32 trailer) is still read; version-1 files (no checksum) are
/// rejected typed like any other unknown version.
pub const FORMAT_VERSION: u16 = 3;

/// The previous streamed format, still accepted by every load path.
pub const V2_FORMAT_VERSION: u16 = 2;

const TAG_NAIVE: u8 = 0;
const TAG_WST: u8 = 1;
const TAG_WSA: u8 = 2;
const TAG_MINIMIZER: u8 = 3;
const TAG_SHARDED: u8 = 4;

/// Section encodings (the `u8` after the element count).
const ENC_RAW: u8 = 0;
const ENC_PACKED: u8 = 1;

/// Bytes of the v3 envelope header: magic, version, tag, envelope length.
const V3_HEADER: usize = 15;

/// Options controlling how [`save_index_with`] encodes sections.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SaveOptions {
    /// Bit-pack `u32` sections (position lists, mismatch depth tables,
    /// grid pools …) at the minimum fixed width when that is smaller than
    /// the raw encoding. Shrinks files; packed sections decode to owned
    /// vectors at open instead of borrowing from the arena, so the
    /// zero-copy open path only stays allocation-free for raw sections.
    pub pack_u32: bool,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// ---------------------------------------------------------------------------
// Wire primitives (shared by the v2 stream format and v3 scalar fields)
// ---------------------------------------------------------------------------

fn write_u8(w: &mut dyn Write, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

fn write_u16(w: &mut dyn Write, v: u16) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u32(w: &mut dyn Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut dyn Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64(w: &mut dyn Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_bits().to_le_bytes())
}

fn read_u8(r: &mut dyn Read) -> io::Result<u8> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    Ok(buf[0])
}

fn read_u16(r: &mut dyn Read) -> io::Result<u16> {
    let mut buf = [0u8; 2];
    r.read_exact(&mut buf)?;
    Ok(u16::from_le_bytes(buf))
}

fn read_u32(r: &mut dyn Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut dyn Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_f64(r: &mut dyn Read) -> io::Result<f64> {
    Ok(f64::from_bits(read_u64(r)?))
}

fn read_len(r: &mut dyn Read) -> io::Result<usize> {
    let len = read_u64(r)?;
    usize::try_from(len).map_err(|_| bad("length prefix exceeds the address space"))
}

/// Reads `len` raw bytes in bounded chunks, so a corrupted length prefix
/// fails with EOF instead of one absurd up-front allocation.
fn read_byte_vec(r: &mut dyn Read, len: usize) -> io::Result<Vec<u8>> {
    let mut out = Vec::new();
    let mut buf = [0u8; 8192];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(buf.len());
        r.read_exact(&mut buf[..take])?;
        out.extend_from_slice(&buf[..take]);
        remaining -= take;
    }
    // Loaded vectors are retained for the index's lifetime: keep them exact
    // so a loaded index's footprint matches the built one's.
    out.shrink_to_fit();
    Ok(out)
}

fn write_bytes(w: &mut dyn Write, bytes: &[u8]) -> io::Result<()> {
    write_u64(w, bytes.len() as u64)?;
    w.write_all(bytes)
}

fn read_bytes(r: &mut dyn Read) -> io::Result<Vec<u8>> {
    let len = read_len(r)?;
    read_byte_vec(r, len)
}

/// Elements per chunk of the v2 vector writers below: conversions go
/// through a bounded stack-side buffer and reach the writer as large
/// `write_all`s, so saving to an unbuffered `File` does not degenerate
/// into one syscall per element.
const WRITE_CHUNK: usize = 8192;

fn write_vec_u32(w: &mut dyn Write, values: &[u32]) -> io::Result<()> {
    write_u64(w, values.len() as u64)?;
    let mut buf = Vec::with_capacity(WRITE_CHUNK.min(values.len()) * 4);
    for chunk in values.chunks(WRITE_CHUNK) {
        buf.clear();
        for &v in chunk {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

fn read_vec_u32(r: &mut dyn Read) -> io::Result<Vec<u32>> {
    let len = read_len(r)?;
    let bytes = read_byte_vec(
        r,
        len.checked_mul(4)
            .ok_or_else(|| bad("u32 vector overflow"))?,
    )?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn write_vec_u16(w: &mut dyn Write, values: &[u16]) -> io::Result<()> {
    write_u64(w, values.len() as u64)?;
    let mut buf = Vec::with_capacity(WRITE_CHUNK.min(values.len()) * 2);
    for chunk in values.chunks(WRITE_CHUNK) {
        buf.clear();
        for &v in chunk {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

fn read_vec_u16(r: &mut dyn Read) -> io::Result<Vec<u16>> {
    let len = read_len(r)?;
    let bytes = read_byte_vec(
        r,
        len.checked_mul(2)
            .ok_or_else(|| bad("u16 vector overflow"))?,
    )?;
    Ok(bytes
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes([c[0], c[1]]))
        .collect())
}

fn write_vec_u64(w: &mut dyn Write, values: &[u64]) -> io::Result<()> {
    write_u64(w, values.len() as u64)?;
    let mut buf = Vec::with_capacity(WRITE_CHUNK.min(values.len()) * 8);
    for chunk in values.chunks(WRITE_CHUNK) {
        buf.clear();
        for &v in chunk {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

fn read_vec_u64(r: &mut dyn Read) -> io::Result<Vec<u64>> {
    let len = read_len(r)?;
    let bytes = read_byte_vec(
        r,
        len.checked_mul(8)
            .ok_or_else(|| bad("u64 vector overflow"))?,
    )?;
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect())
}

fn write_vec_f64(w: &mut dyn Write, values: &[f64]) -> io::Result<()> {
    write_u64(w, values.len() as u64)?;
    let mut buf = Vec::with_capacity(WRITE_CHUNK.min(values.len()) * 8);
    for chunk in values.chunks(WRITE_CHUNK) {
        buf.clear();
        for &v in chunk {
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

fn read_vec_f64(r: &mut dyn Read) -> io::Result<Vec<f64>> {
    Ok(read_vec_u64(r)?.into_iter().map(f64::from_bits).collect())
}

// ---------------------------------------------------------------------------
// Bit packing (section encoding 1)
// ---------------------------------------------------------------------------

/// Bits needed to represent every value of `data` (≥ 1 so empty/zero data
/// still has a valid width).
fn packed_width(data: &[u32]) -> usize {
    let max = data.iter().copied().max().unwrap_or(0);
    (32 - max.leading_zeros()).max(1) as usize
}

/// Packs `data` LSB-first at a fixed `width` bits per value.
fn pack_u32(data: &[u32], width: usize) -> Vec<u64> {
    let mut words = vec![0u64; (data.len() * width).div_ceil(64)];
    let mut bit = 0usize;
    for &v in data {
        let (word, off) = (bit / 64, bit % 64);
        words[word] |= (v as u64) << off;
        if off + width > 64 {
            words[word + 1] |= (v as u64) >> (64 - off);
        }
        bit += width;
    }
    words
}

/// Inverse of [`pack_u32`]; `words` must hold `⌈len·width/64⌉` words
/// (validated by the caller).
fn unpack_u32(words: &[u64], len: usize, width: usize) -> Vec<u32> {
    let mask = if width == 32 {
        u64::from(u32::MAX)
    } else {
        (1u64 << width) - 1
    };
    let mut out = Vec::with_capacity(len);
    let mut bit = 0usize;
    for _ in 0..len {
        let (word, off) = (bit / 64, bit % 64);
        let mut v = words[word] >> off;
        if off + width > 64 {
            v |= words[word + 1] << (64 - off);
        }
        out.push((v & mask) as u32);
        bit += width;
    }
    out
}

// ---------------------------------------------------------------------------
// v3 writer: one in-memory buffer per envelope
// ---------------------------------------------------------------------------

/// Accumulates one complete v3 envelope in memory. Offsets relative to the
/// envelope start are simply `buf.len()`, which makes the 8-byte section
/// alignment trivial; the finished envelope (header patched with the total
/// length, CRC32 trailer appended) reaches the output writer as a single
/// `write_all` — the buffered save path.
struct V3Writer {
    buf: Vec<u8>,
    opts: SaveOptions,
}

impl Write for V3Writer {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl V3Writer {
    fn pad8(&mut self) {
        while !self.buf.len().is_multiple_of(8) {
            self.buf.push(0);
        }
    }

    /// Writes one raw-encoded section of any [`Pod`] type.
    fn section<T: Pod>(&mut self, data: &[T]) {
        self.buf
            .extend_from_slice(&(data.len() as u64).to_le_bytes());
        self.buf.push(ENC_RAW);
        self.pad8();
        self.buf.extend_from_slice(&as_le_bytes(data));
    }

    /// Writes a `u32` section, bit-packed when [`SaveOptions::pack_u32`] is
    /// on and packing actually shrinks it.
    fn section_u32(&mut self, data: &[u32]) {
        if self.opts.pack_u32 && !data.is_empty() {
            let width = packed_width(data);
            let words = (data.len() * width).div_ceil(64);
            // 9 header bytes (width + word count) buy `4 − width/8` bytes
            // per element; only pack when that is a net win.
            if words * 8 + 9 < data.len() * 4 {
                self.buf
                    .extend_from_slice(&(data.len() as u64).to_le_bytes());
                self.buf.push(ENC_PACKED);
                self.buf.push(width as u8);
                self.buf.extend_from_slice(&(words as u64).to_le_bytes());
                self.pad8();
                self.buf
                    .extend_from_slice(&as_le_bytes(&pack_u32(data, width)));
                return;
            }
        }
        self.section(data);
    }
}

/// Writes one complete checksummed v3 envelope into `w` as a single
/// buffered write.
fn write_checksummed_v3(
    w: &mut dyn Write,
    tag: u8,
    opts: SaveOptions,
    payload: impl FnOnce(&mut V3Writer) -> io::Result<()>,
) -> io::Result<()> {
    let mut vw = V3Writer {
        buf: Vec::with_capacity(256),
        opts,
    };
    vw.buf.extend_from_slice(&MAGIC);
    vw.buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    vw.buf.push(tag);
    vw.buf.extend_from_slice(&0u64.to_le_bytes()); // length, patched below
    payload(&mut vw)?;
    let total = (vw.buf.len() + 4) as u64;
    vw.buf[7..V3_HEADER].copy_from_slice(&total.to_le_bytes());
    let crc = crc32(&vw.buf);
    vw.buf.extend_from_slice(&crc.to_le_bytes());
    w.write_all(&vw.buf)
}

// ---------------------------------------------------------------------------
// v3 readers: one generic payload decoder over two sources
// ---------------------------------------------------------------------------

/// One v3 payload byte source. Each family's payload reader is written
/// once, generic over this trait; the stream impl decodes sections into
/// owned vectors, the arena impl hands out zero-copy views.
trait SectionSource {
    /// Reads exactly `buf.len()` bytes (scalar header fields).
    fn read_buf(&mut self, buf: &mut [u8]) -> io::Result<()>;
    /// Current offset from the envelope start.
    fn pos(&self) -> u64;
    /// Consumes `n` padding bytes, rejecting nonzero padding.
    fn skip_pad(&mut self, n: usize) -> io::Result<()>;
    /// Takes `elems` raw little-endian elements at the current (8-aligned)
    /// position: a borrowed view for the arena source, a decoded owned
    /// vector for the stream source.
    fn take<T: Pod>(&mut self, elems: usize) -> io::Result<ArenaVec<T>>;
    /// The arena handle the loaded index should retain for size
    /// accounting, if any (`None` for streams and for nested envelopes,
    /// whose enclosing sharded index retains the one handle).
    fn retained_arena(&self) -> Option<Arena>;
    /// Reads one complete nested single-family envelope starting at the
    /// current position (the caller aligns to 8 first).
    fn read_nested_index(&mut self) -> io::Result<AnyIndex>;
}

fn src_u8<S: SectionSource>(s: &mut S) -> io::Result<u8> {
    let mut buf = [0u8; 1];
    s.read_buf(&mut buf)?;
    Ok(buf[0])
}

fn src_u32<S: SectionSource>(s: &mut S) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    s.read_buf(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn src_u64<S: SectionSource>(s: &mut S) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    s.read_buf(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn src_f64<S: SectionSource>(s: &mut S) -> io::Result<f64> {
    Ok(f64::from_bits(src_u64(s)?))
}

fn src_len<S: SectionSource>(s: &mut S) -> io::Result<usize> {
    usize::try_from(src_u64(s)?).map_err(|_| bad("length prefix exceeds the address space"))
}

/// Skips to the next 8-byte-aligned offset relative to the envelope start.
fn src_align8<S: SectionSource>(s: &mut S) -> io::Result<()> {
    let pad = (8 - (s.pos() % 8) as usize) % 8;
    s.skip_pad(pad)
}

/// Reads one section of any [`Pod`] type (raw encoding only).
fn read_section<T: Pod, S: SectionSource>(s: &mut S) -> io::Result<ArenaVec<T>> {
    let elems = src_len(s)?;
    match src_u8(s)? {
        ENC_RAW => {
            src_align8(s)?;
            s.take::<T>(elems)
        }
        other => Err(bad(format!("unsupported section encoding {other}"))),
    }
}

/// Reads one `u32` section (raw or bit-packed).
fn read_section_u32<S: SectionSource>(s: &mut S) -> io::Result<ArenaVec<u32>> {
    let elems = src_len(s)?;
    match src_u8(s)? {
        ENC_RAW => {
            src_align8(s)?;
            s.take::<u32>(elems)
        }
        ENC_PACKED => {
            let width = src_u8(s)? as usize;
            if !(1..=32).contains(&width) {
                return Err(bad(format!("invalid packed-section width {width}")));
            }
            let words = src_len(s)?;
            let expected = elems
                .checked_mul(width)
                .ok_or_else(|| bad("packed section overflows"))?
                .div_ceil(64);
            if words != expected {
                return Err(bad("packed section word count does not match"));
            }
            src_align8(s)?;
            let packed = s.take::<u64>(words)?;
            Ok(ArenaVec::from(unpack_u32(&packed, elems, width)))
        }
        other => Err(bad(format!("unsupported section encoding {other}"))),
    }
}

/// Byte-counting reader adapter: tracks the offset from the envelope start
/// across scalar reads, sections and nested envelopes alike.
struct CountingReader<'a> {
    inner: &'a mut dyn Read,
    pos: u64,
}

impl Read for CountingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.pos += n as u64;
        Ok(n)
    }
}

/// The streaming v3 source: decodes every section into owned memory.
/// Needed wherever the envelope is embedded mid-stream (live-index segment
/// files) or the caller wants plain owned vectors.
struct StreamSource<'a> {
    cr: CountingReader<'a>,
}

impl<'a> StreamSource<'a> {
    /// `r` must be positioned just past the 7 header bytes the envelope
    /// reader consumed (magic, version, tag).
    fn new(r: &'a mut dyn Read) -> Self {
        Self {
            cr: CountingReader { inner: r, pos: 7 },
        }
    }
}

impl SectionSource for StreamSource<'_> {
    fn read_buf(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.cr.read_exact(buf)
    }

    fn pos(&self) -> u64 {
        self.cr.pos
    }

    fn skip_pad(&mut self, n: usize) -> io::Result<()> {
        let mut buf = [0u8; 8];
        self.cr.read_exact(&mut buf[..n])?;
        if buf[..n].iter().any(|&b| b != 0) {
            return Err(bad("nonzero section padding"));
        }
        Ok(())
    }

    fn take<T: Pod>(&mut self, elems: usize) -> io::Result<ArenaVec<T>> {
        let bytes = elems
            .checked_mul(T::SIZE)
            .ok_or_else(|| bad("section length overflows"))?;
        let raw = read_byte_vec(&mut self.cr, bytes)?;
        let mut out = Vec::with_capacity(elems);
        out.extend(raw.chunks_exact(T::SIZE).map(T::read_le));
        Ok(ArenaVec::from(out))
    }

    fn retained_arena(&self) -> Option<Arena> {
        None
    }

    fn read_nested_index(&mut self) -> io::Result<AnyIndex> {
        load_index(&mut self.cr)
    }
}

/// The zero-copy v3 source: a bounds-checked cursor over an [`Arena`]
/// whose envelope CRC was verified once, up front.
struct ArenaSource {
    arena: Arena,
    base: usize,
    cursor: usize,
    /// First byte past the payload (the trailer's offset).
    end: usize,
    /// Total envelope length including the trailer.
    envelope_len: usize,
    /// Whether loaded structures should retain the arena handle (false for
    /// nested shard envelopes — the sharded composite holds the one handle).
    retain: bool,
}

impl ArenaSource {
    /// Validates the envelope at `base` (magic, version, length bounds,
    /// CRC32 over the raw bytes) and returns its family tag plus a cursor
    /// positioned at the first payload byte.
    fn open(arena: &Arena, base: usize, retain: bool) -> io::Result<(u8, Self)> {
        if !base.is_multiple_of(8) {
            return Err(bad("envelope does not start 8-byte aligned"));
        }
        let bytes = arena.as_bytes();
        let head = bytes
            .get(base..base + V3_HEADER)
            .ok_or_else(|| bad("file too short for an IUSX v3 envelope"))?;
        if head[..4] != MAGIC {
            return Err(bad("not an IUSX index file (bad magic)"));
        }
        let version = u16::from_le_bytes([head[4], head[5]]);
        if version != FORMAT_VERSION {
            return Err(bad(format!(
                "unsupported format version {version} for arena open \
                 (this build opens version {FORMAT_VERSION})"
            )));
        }
        let tag = head[6];
        let envelope_len = usize::try_from(u64::from_le_bytes(
            head[7..V3_HEADER].try_into().expect("8-byte slice"),
        ))
        .map_err(|_| bad("envelope length exceeds the address space"))?;
        let end_total = base
            .checked_add(envelope_len)
            .filter(|&e| e <= bytes.len() && envelope_len >= V3_HEADER + 4)
            .ok_or_else(|| bad("envelope length field escapes the file"))?;
        let end = end_total - 4;
        let stored = u32::from_le_bytes(bytes[end..end_total].try_into().expect("4-byte slice"));
        let computed = crc32(&bytes[base..end]);
        if stored != computed {
            return Err(bad(format!(
                "index checksum mismatch (stored {stored:#010x}, computed {computed:#010x}): \
                 the file is corrupt"
            )));
        }
        Ok((
            tag,
            Self {
                arena: arena.clone(),
                base,
                cursor: base + V3_HEADER,
                end,
                envelope_len,
                retain,
            },
        ))
    }

    /// Rejects trailing payload bytes the decoder did not consume.
    fn expect_consumed(&self) -> io::Result<()> {
        if self.cursor != self.end {
            return Err(bad(format!(
                "envelope payload has {} undecoded trailing bytes",
                self.end - self.cursor
            )));
        }
        Ok(())
    }
}

impl SectionSource for ArenaSource {
    fn read_buf(&mut self, buf: &mut [u8]) -> io::Result<()> {
        let next = self
            .cursor
            .checked_add(buf.len())
            .filter(|&n| n <= self.end)
            .ok_or_else(|| bad("payload field escapes the envelope"))?;
        buf.copy_from_slice(&self.arena.as_bytes()[self.cursor..next]);
        self.cursor = next;
        Ok(())
    }

    fn pos(&self) -> u64 {
        (self.cursor - self.base) as u64
    }

    fn skip_pad(&mut self, n: usize) -> io::Result<()> {
        let mut buf = [0u8; 8];
        self.read_buf(&mut buf[..n])?;
        if buf[..n].iter().any(|&b| b != 0) {
            return Err(bad("nonzero section padding"));
        }
        Ok(())
    }

    fn take<T: Pod>(&mut self, elems: usize) -> io::Result<ArenaVec<T>> {
        let bytes = elems
            .checked_mul(T::SIZE)
            .ok_or_else(|| bad("section length overflows"))?;
        let next = self
            .cursor
            .checked_add(bytes)
            .filter(|&n| n <= self.end)
            .ok_or_else(|| bad("section escapes the envelope"))?;
        let view = self
            .arena
            .view::<T>(self.cursor, elems)
            .ok_or_else(|| bad("section is not aligned for its element type"))?;
        self.cursor = next;
        Ok(view)
    }

    fn retained_arena(&self) -> Option<Arena> {
        self.retain.then(|| self.arena.clone())
    }

    fn read_nested_index(&mut self) -> io::Result<AnyIndex> {
        let (tag, mut nested) = ArenaSource::open(&self.arena, self.cursor, false)?;
        let index = load_index_payload_v3(tag, &mut nested)?;
        nested.expect_consumed()?;
        self.cursor += nested.envelope_len;
        Ok(index)
    }
}

// ---------------------------------------------------------------------------
// Envelope
// ---------------------------------------------------------------------------

fn write_envelope_v2(w: &mut dyn Write, tag: u8) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    write_u16(w, V2_FORMAT_VERSION)?;
    write_u8(w, tag)
}

/// Reads magic, version and family tag, accepting versions 2 and 3.
fn read_envelope(r: &mut dyn Read) -> io::Result<(u8, u16)> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(bad("not an IUSX index file (bad magic)"));
    }
    let version = read_u16(r)?;
    if version != FORMAT_VERSION && version != V2_FORMAT_VERSION {
        return Err(bad(format!(
            "unsupported format version {version} \
             (this build reads versions {V2_FORMAT_VERSION} and {FORMAT_VERSION})"
        )));
    }
    Ok((read_u8(r)?, version))
}

/// Writes one complete checksummed **v2** envelope (the doc(hidden)
/// backward-compat writer): magic/version/tag and the payload emitted by
/// `payload` go through a CRC32 hasher, then the checksum follows as a
/// trailer.
fn write_checksummed_v2(
    w: &mut dyn Write,
    tag: u8,
    payload: impl FnOnce(&mut dyn Write) -> io::Result<()>,
) -> io::Result<()> {
    let mut cw = Crc32Writer::new(w);
    write_envelope_v2(&mut cw, tag)?;
    payload(&mut cw)?;
    let crc = cw.crc();
    write_u32(cw.into_inner(), crc)
}

/// Reads one complete checksummed envelope (either version), handing the
/// tag, version and checksummed payload stream to `body`, then verifies
/// the trailer.
fn read_checksummed<T>(
    r: &mut dyn Read,
    body: impl FnOnce(u8, u16, &mut dyn Read) -> io::Result<T>,
) -> io::Result<T> {
    let mut cr = Crc32Reader::new(r);
    let (tag, version) = read_envelope(&mut cr)?;
    let value = body(tag, version, &mut cr)?;
    let computed = cr.crc();
    let stored = read_u32(cr.inner_mut())?;
    if stored != computed {
        return Err(bad(format!(
            "index checksum mismatch (stored {stored:#010x}, computed {computed:#010x}): \
             the file is corrupt"
        )));
    }
    Ok(value)
}

/// Runs a v3 payload decoder over a stream positioned just past the 7
/// header bytes, validating the envelope length field against the bytes
/// actually consumed.
fn run_v3_stream<'a, T>(
    r: &'a mut dyn Read,
    body: impl FnOnce(&mut StreamSource<'a>) -> io::Result<T>,
) -> io::Result<T> {
    let mut src = StreamSource::new(r);
    let declared = src_u64(&mut src)?;
    let value = body(&mut src)?;
    if src.pos() + 4 != declared {
        return Err(bad("envelope length field does not match the payload"));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Shared scalar components (identical bytes in v2 and v3 payloads)
// ---------------------------------------------------------------------------

fn write_order(w: &mut dyn Write, order: KmerOrder) -> io::Result<()> {
    match order {
        KmerOrder::Lexicographic => {
            write_u8(w, 0)?;
            write_u64(w, 0)
        }
        KmerOrder::KarpRabin { seed } => {
            write_u8(w, 1)?;
            write_u64(w, seed)
        }
    }
}

fn read_order(r: &mut dyn Read) -> io::Result<KmerOrder> {
    let tag = read_u8(r)?;
    let seed = read_u64(r)?;
    match tag {
        0 => Ok(KmerOrder::Lexicographic),
        1 => Ok(KmerOrder::KarpRabin { seed }),
        other => Err(bad(format!("unknown k-mer order tag {other}"))),
    }
}

pub(crate) fn write_params(w: &mut dyn Write, params: &IndexParams) -> io::Result<()> {
    write_f64(w, params.z)?;
    write_u64(w, params.ell as u64)?;
    write_u64(w, params.k as u64)?;
    write_order(w, params.order)
}

pub(crate) fn read_params(r: &mut dyn Read) -> io::Result<IndexParams> {
    let z = read_f64(r)?;
    let ell = read_len(r)?;
    let k = read_len(r)?;
    let order = read_order(r)?;
    validate_params(z, ell, k)?;
    Ok(IndexParams { z, ell, k, order })
}

fn validate_params(z: f64, ell: usize, k: usize) -> io::Result<()> {
    if !(z.is_finite() && z >= 1.0) {
        return Err(bad(format!("invalid stored threshold z = {z}")));
    }
    if ell == 0 || k == 0 || k > ell {
        return Err(bad(format!("invalid stored parameters ℓ = {ell}, k = {k}")));
    }
    Ok(())
}

fn src_order<S: SectionSource>(s: &mut S) -> io::Result<KmerOrder> {
    let tag = src_u8(s)?;
    let seed = src_u64(s)?;
    match tag {
        0 => Ok(KmerOrder::Lexicographic),
        1 => Ok(KmerOrder::KarpRabin { seed }),
        other => Err(bad(format!("unknown k-mer order tag {other}"))),
    }
}

fn src_params<S: SectionSource>(s: &mut S) -> io::Result<IndexParams> {
    let z = src_f64(s)?;
    let ell = src_len(s)?;
    let k = src_len(s)?;
    let order = src_order(s)?;
    validate_params(z, ell, k)?;
    Ok(IndexParams { z, ell, k, order })
}

// ---------------------------------------------------------------------------
// v2 component readers/writers (streamed scalar layout)
// ---------------------------------------------------------------------------

fn write_property_text_v2(w: &mut dyn Write, pt: &PropertyText) -> io::Result<()> {
    write_u64(w, pt.n() as u64)?;
    write_u64(w, pt.num_strands() as u64)?;
    write_bytes(w, pt.text())?;
    write_vec_u32(w, pt.trunc_raw())?;
    write_vec_u32(w, pt.psa())?;
    match pt.trunc_lcp_raw() {
        Some(lcps) => {
            write_u8(w, 1)?;
            write_vec_u32(w, lcps)
        }
        None => write_u8(w, 0),
    }
}

fn read_property_text_v2(r: &mut dyn Read) -> io::Result<PropertyText> {
    let n = read_len(r)?;
    let num_strands = read_len(r)?;
    let text = read_bytes(r)?;
    let trunc = read_vec_u32(r)?;
    let psa = read_vec_u32(r)?;
    let trunc_lcp = match read_u8(r)? {
        0 => None,
        1 => Some(ArenaVec::from(read_vec_u32(r)?)),
        other => return Err(bad(format!("bad truncated-LCP flag {other}"))),
    };
    PropertyText::from_parts(
        n,
        num_strands,
        text.into(),
        trunc.into(),
        psa.into(),
        trunc_lcp,
    )
    .map_err(bad)
}

fn write_trie_v2(w: &mut dyn Write, trie: &CompactedTrie) -> io::Result<()> {
    let parts = trie.to_parts();
    write_vec_u32(w, &parts.depth)?;
    write_vec_u32(w, &parts.leaf_lo)?;
    write_vec_u32(w, &parts.leaf_hi)?;
    write_vec_u32(w, &parts.children_start)?;
    write_vec_u16(w, &parts.children_len)?;
    write_bytes(w, &parts.is_leaf)?;
    write_bytes(w, &parts.child_letters)?;
    write_vec_u32(w, &parts.child_nodes)?;
    write_u32(w, parts.root)?;
    write_u64(w, parts.num_leaves)
}

fn read_trie_v2(r: &mut dyn Read) -> io::Result<CompactedTrie> {
    let parts = TrieParts {
        depth: read_vec_u32(r)?.into(),
        leaf_lo: read_vec_u32(r)?.into(),
        leaf_hi: read_vec_u32(r)?.into(),
        children_start: read_vec_u32(r)?.into(),
        children_len: read_vec_u16(r)?.into(),
        is_leaf: read_bytes(r)?.into(),
        child_letters: read_bytes(r)?.into(),
        child_nodes: read_vec_u32(r)?.into(),
        root: read_u32(r)?,
        num_leaves: read_u64(r)?,
    };
    CompactedTrie::from_parts(parts).map_err(bad)
}

fn write_reporter_v2(w: &mut dyn Write, reporter: &RangeReporter) -> io::Result<()> {
    let parts = reporter.to_parts();
    write_u64(w, parts.len)?;
    write_vec_u32(w, &parts.xs)?;
    write_vec_u32(w, &parts.node_lens)?;
    write_vec_u32(w, &parts.ys)?;
    write_vec_u32(w, &parts.payloads)
}

fn read_reporter_parts_v2(r: &mut dyn Read) -> io::Result<ReporterParts> {
    Ok(ReporterParts {
        len: read_u64(r)?,
        xs: read_vec_u32(r)?.into(),
        node_lens: read_vec_u32(r)?.into(),
        ys: read_vec_u32(r)?.into(),
        payloads: read_vec_u32(r)?.into(),
    })
}

fn write_heavy_v2(w: &mut dyn Write, heavy: &HeavyString) -> io::Result<()> {
    write_bytes(w, heavy.as_ranks())?;
    write_vec_f64(w, heavy.log_prefix())
}

fn read_heavy_v2(r: &mut dyn Read) -> io::Result<HeavyString> {
    let letters = read_bytes(r)?;
    let log_prefix = read_vec_f64(r)?;
    HeavyString::from_parts(letters, log_prefix.into()).map_err(|e| bad(e.to_string()))
}

/// Writes a factor set in the v2 layout: the three mismatch pools are
/// interleaved back into the legacy `(depth, letter, ratio)` records, so
/// the emitted bytes are identical to what version 2 of this crate wrote.
fn write_factor_set_v2(w: &mut dyn Write, set: &EncodedFactorSet) -> io::Result<()> {
    write_u8(
        w,
        match set.direction() {
            Direction::Forward => 0,
            Direction::Backward => 1,
        },
    )?;
    write_u8(w, u8::from(set.owns_heavy_view()))?;
    write_vec_u32(w, set.anchor_x_raw())?;
    write_vec_u32(w, set.lens_raw())?;
    write_vec_u32(w, set.strands_raw())?;
    write_vec_u32(w, set.mism_start_raw())?;
    let depths = set.mism_depths_raw();
    let letters = set.mism_letters_raw();
    let ratios = set.mism_ratios_raw();
    write_u64(w, depths.len() as u64)?;
    let mut buf = Vec::with_capacity(WRITE_CHUNK.min(depths.len()) * 13);
    for start in (0..depths.len()).step_by(WRITE_CHUNK) {
        buf.clear();
        let end = (start + WRITE_CHUNK).min(depths.len());
        for i in start..end {
            buf.extend_from_slice(&depths[i].to_le_bytes());
            buf.push(letters[i]);
            buf.extend_from_slice(&ratios[i].to_bits().to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    write_vec_u64(w, set.prefix_keys_raw())
}

/// Reconstructs the heavy view a factor set reads through: forward sets
/// see the index-wide heavy string (shared, or their own copy when the
/// ownership flag says so), backward sets see its reversal.
fn factor_heavy_view(direction: Direction, owns_view: bool, heavy: &HeavyString) -> Arc<Vec<u8>> {
    match (direction, owns_view) {
        (Direction::Forward, false) => heavy.shared_ranks(),
        (Direction::Forward, true) => Arc::new(heavy.as_ranks().to_vec()),
        (Direction::Backward, _) => {
            let mut reversed = heavy.as_ranks().to_vec();
            reversed.reverse();
            Arc::new(reversed)
        }
    }
}

fn read_factor_set_v2(r: &mut dyn Read, heavy: &HeavyString) -> io::Result<EncodedFactorSet> {
    let direction = match read_u8(r)? {
        0 => Direction::Forward,
        1 => Direction::Backward,
        other => return Err(bad(format!("unknown factor-set direction {other}"))),
    };
    let owns_view = match read_u8(r)? {
        0 => false,
        1 => true,
        other => return Err(bad(format!("bad heavy-view ownership flag {other}"))),
    };
    let heavy_view = factor_heavy_view(direction, owns_view, heavy);
    let anchor_x = read_vec_u32(r)?;
    let lens = read_vec_u32(r)?;
    let strands = read_vec_u32(r)?;
    let mism_start = read_vec_u32(r)?;
    let mism_count = read_len(r)?;
    let cap = mism_count.min(1 << 20);
    let mut mism_depths = Vec::with_capacity(cap);
    let mut mism_letters = Vec::with_capacity(cap);
    let mut mism_ratios = Vec::with_capacity(cap);
    for _ in 0..mism_count {
        mism_depths.push(read_u32(r)?);
        mism_letters.push(read_u8(r)?);
        mism_ratios.push(read_f64(r)?);
    }
    mism_depths.shrink_to_fit();
    mism_letters.shrink_to_fit();
    mism_ratios.shrink_to_fit();
    let prefix_keys = read_vec_u64(r)?;
    EncodedFactorSet::from_loaded_parts(
        direction,
        heavy_view,
        anchor_x.into(),
        lens.into(),
        strands.into(),
        mism_start.into(),
        mism_depths.into(),
        mism_letters.into(),
        mism_ratios.into(),
        prefix_keys.into(),
    )
    .map_err(bad)
}

// ---------------------------------------------------------------------------
// v3 component writers/readers (aligned sections)
// ---------------------------------------------------------------------------

fn write_property_text_v3(vw: &mut V3Writer, pt: &PropertyText) -> io::Result<()> {
    write_u64(vw, pt.n() as u64)?;
    write_u64(vw, pt.num_strands() as u64)?;
    vw.section::<u8>(pt.text());
    vw.section_u32(pt.trunc_raw());
    vw.section_u32(pt.psa());
    match pt.trunc_lcp_raw() {
        Some(lcps) => {
            write_u8(vw, 1)?;
            vw.section_u32(lcps);
        }
        None => write_u8(vw, 0)?,
    }
    Ok(())
}

fn read_property_text_v3<S: SectionSource>(s: &mut S) -> io::Result<PropertyText> {
    let n = src_len(s)?;
    let num_strands = src_len(s)?;
    let text = read_section::<u8, _>(s)?;
    let trunc = read_section_u32(s)?;
    let psa = read_section_u32(s)?;
    let trunc_lcp = match src_u8(s)? {
        0 => None,
        1 => Some(read_section_u32(s)?),
        other => return Err(bad(format!("bad truncated-LCP flag {other}"))),
    };
    PropertyText::from_parts(n, num_strands, text, trunc, psa, trunc_lcp).map_err(bad)
}

fn write_trie_v3(vw: &mut V3Writer, trie: &CompactedTrie) -> io::Result<()> {
    let parts = trie.to_parts();
    vw.section_u32(&parts.depth);
    vw.section_u32(&parts.leaf_lo);
    vw.section_u32(&parts.leaf_hi);
    vw.section_u32(&parts.children_start);
    vw.section::<u16>(&parts.children_len);
    vw.section::<u8>(&parts.is_leaf);
    vw.section::<u8>(&parts.child_letters);
    vw.section_u32(&parts.child_nodes);
    write_u32(vw, parts.root)?;
    write_u64(vw, parts.num_leaves)
}

fn read_trie_v3<S: SectionSource>(s: &mut S) -> io::Result<CompactedTrie> {
    let parts = TrieParts {
        depth: read_section_u32(s)?,
        leaf_lo: read_section_u32(s)?,
        leaf_hi: read_section_u32(s)?,
        children_start: read_section_u32(s)?,
        children_len: read_section::<u16, _>(s)?,
        is_leaf: read_section::<u8, _>(s)?,
        child_letters: read_section::<u8, _>(s)?,
        child_nodes: read_section_u32(s)?,
        root: src_u32(s)?,
        num_leaves: src_u64(s)?,
    };
    CompactedTrie::from_parts(parts).map_err(bad)
}

fn write_reporter_v3(vw: &mut V3Writer, reporter: &RangeReporter) -> io::Result<()> {
    let parts = reporter.to_parts();
    write_u64(vw, parts.len)?;
    vw.section_u32(&parts.xs);
    vw.section_u32(&parts.node_lens);
    vw.section_u32(&parts.ys);
    vw.section_u32(&parts.payloads);
    Ok(())
}

fn read_reporter_parts_v3<S: SectionSource>(s: &mut S) -> io::Result<ReporterParts> {
    Ok(ReporterParts {
        len: src_u64(s)?,
        xs: read_section_u32(s)?,
        node_lens: read_section_u32(s)?,
        ys: read_section_u32(s)?,
        payloads: read_section_u32(s)?,
    })
}

fn write_heavy_v3(vw: &mut V3Writer, heavy: &HeavyString) -> io::Result<()> {
    vw.section::<u8>(heavy.as_ranks());
    vw.section::<f64>(heavy.log_prefix());
    Ok(())
}

fn read_heavy_v3<S: SectionSource>(s: &mut S) -> io::Result<HeavyString> {
    // The heavy letters live behind an `Arc<Vec<u8>>` shared with the
    // factor sets, so they are copied out of the arena (n bytes — tiny
    // next to the O(n·z) tables that stay zero-copy).
    let letters = read_section::<u8, _>(s)?.to_vec();
    let log_prefix = read_section::<f64, _>(s)?;
    HeavyString::from_parts(letters, log_prefix).map_err(|e| bad(e.to_string()))
}

fn write_factor_set_v3(vw: &mut V3Writer, set: &EncodedFactorSet) -> io::Result<()> {
    write_u8(
        vw,
        match set.direction() {
            Direction::Forward => 0,
            Direction::Backward => 1,
        },
    )?;
    write_u8(vw, u8::from(set.owns_heavy_view()))?;
    vw.section_u32(set.anchor_x_raw());
    vw.section_u32(set.lens_raw());
    vw.section_u32(set.strands_raw());
    vw.section_u32(set.mism_start_raw());
    vw.section_u32(set.mism_depths_raw());
    vw.section::<u8>(set.mism_letters_raw());
    vw.section::<f64>(set.mism_ratios_raw());
    vw.section::<u64>(set.prefix_keys_raw());
    Ok(())
}

fn read_factor_set_v3<S: SectionSource>(
    s: &mut S,
    heavy: &HeavyString,
) -> io::Result<EncodedFactorSet> {
    let direction = match src_u8(s)? {
        0 => Direction::Forward,
        1 => Direction::Backward,
        other => return Err(bad(format!("unknown factor-set direction {other}"))),
    };
    let owns_view = match src_u8(s)? {
        0 => false,
        1 => true,
        other => return Err(bad(format!("bad heavy-view ownership flag {other}"))),
    };
    let heavy_view = factor_heavy_view(direction, owns_view, heavy);
    let anchor_x = read_section_u32(s)?;
    let lens = read_section_u32(s)?;
    let strands = read_section_u32(s)?;
    let mism_start = read_section_u32(s)?;
    let mism_depths = read_section_u32(s)?;
    let mism_letters = read_section::<u8, _>(s)?;
    let mism_ratios = read_section::<f64, _>(s)?;
    let prefix_keys = read_section::<u64, _>(s)?;
    EncodedFactorSet::from_loaded_parts(
        direction,
        heavy_view,
        anchor_x,
        lens,
        strands,
        mism_start,
        mism_depths,
        mism_letters,
        mism_ratios,
        prefix_keys,
    )
    .map_err(bad)
}

// ---------------------------------------------------------------------------
// Family payloads
// ---------------------------------------------------------------------------

fn variant_tag(variant: IndexVariant) -> u8 {
    match variant {
        IndexVariant::Tree => 0,
        IndexVariant::Array => 1,
        IndexVariant::TreeGrid => 2,
        IndexVariant::ArrayGrid => 3,
    }
}

fn variant_from_tag(tag: u8) -> io::Result<IndexVariant> {
    Ok(match tag {
        0 => IndexVariant::Tree,
        1 => IndexVariant::Array,
        2 => IndexVariant::TreeGrid,
        3 => IndexVariant::ArrayGrid,
        other => return Err(bad(format!("unknown index variant tag {other}"))),
    })
}

fn construction_tag(construction: &str) -> u8 {
    match construction {
        "space-efficient" => 1,
        _ => 0,
    }
}

fn construction_from_tag(tag: u8) -> io::Result<&'static str> {
    Ok(match tag {
        0 => "explicit",
        1 => "space-efficient",
        other => return Err(bad(format!("unknown construction tag {other}"))),
    })
}

fn write_minimizer_payload_v2(w: &mut dyn Write, index: &MinimizerIndex) -> io::Result<()> {
    write_params(w, index.params())?;
    write_u8(w, variant_tag(index.variant()))?;
    write_u8(w, construction_tag(index.construction()))?;
    let parts = index.persist_parts();
    write_u64(w, parts.n as u64)?;
    write_u64(w, parts.sigma as u64)?;
    write_heavy_v2(w, parts.heavy)?;
    write_factor_set_v2(w, parts.fwd)?;
    write_factor_set_v2(w, parts.bwd)?;
    for trie in [parts.fwd_trie, parts.bwd_trie] {
        match trie {
            Some(trie) => {
                write_u8(w, 1)?;
                write_trie_v2(w, trie)?;
            }
            None => write_u8(w, 0)?,
        }
    }
    match parts.grid {
        Some(grid) => {
            write_u8(w, 1)?;
            write_reporter_v2(w, grid)?;
            write_u64(w, (parts.pairs.len() / 2) as u64)?;
            for pair in parts.pairs.chunks_exact(2) {
                write_u32(w, pair[0])?;
                write_u32(w, pair[1])?;
            }
        }
        None => write_u8(w, 0)?,
    }
    Ok(())
}

fn write_minimizer_payload_v3(vw: &mut V3Writer, index: &MinimizerIndex) -> io::Result<()> {
    write_params(vw, index.params())?;
    write_u8(vw, variant_tag(index.variant()))?;
    write_u8(vw, construction_tag(index.construction()))?;
    let parts = index.persist_parts();
    write_u64(vw, parts.n as u64)?;
    write_u64(vw, parts.sigma as u64)?;
    write_heavy_v3(vw, parts.heavy)?;
    write_factor_set_v3(vw, parts.fwd)?;
    write_factor_set_v3(vw, parts.bwd)?;
    for trie in [parts.fwd_trie, parts.bwd_trie] {
        match trie {
            Some(trie) => {
                write_u8(vw, 1)?;
                write_trie_v3(vw, trie)?;
            }
            None => write_u8(vw, 0)?,
        }
    }
    match parts.grid {
        Some(grid) => {
            write_u8(vw, 1)?;
            write_reporter_v3(vw, grid)?;
            vw.section_u32(parts.pairs);
        }
        None => write_u8(vw, 0)?,
    }
    Ok(())
}

/// Validates the cross-component invariants shared by both minimizer
/// readers and assembles the index.
#[allow(clippy::too_many_arguments)]
fn assemble_minimizer(
    params: IndexParams,
    variant: IndexVariant,
    n: usize,
    sigma: usize,
    heavy: HeavyString,
    fwd: EncodedFactorSet,
    bwd: EncodedFactorSet,
    fwd_trie: Option<CompactedTrie>,
    bwd_trie: Option<CompactedTrie>,
    grid: Option<RangeReporter>,
    pairs: ArenaVec<u32>,
    arena: Option<Arena>,
    construction: &'static str,
) -> io::Result<MinimizerIndex> {
    if sigma == 0 || sigma > 256 {
        return Err(bad(format!("invalid stored alphabet size {sigma}")));
    }
    if heavy.len() != n {
        return Err(bad("heavy string length does not match the stored n"));
    }
    if fwd.direction() != Direction::Forward || bwd.direction() != Direction::Backward {
        return Err(bad("factor sets stored in the wrong order"));
    }
    if variant.has_tree() != fwd_trie.is_some() || variant.has_tree() != bwd_trie.is_some() {
        return Err(bad("stored tries do not match the index variant"));
    }
    if let (Some(trie), set_len) = (&fwd_trie, fwd.len()) {
        if trie.num_leaves() != set_len {
            return Err(bad("forward trie does not match the forward factor set"));
        }
    }
    if let (Some(trie), set_len) = (&bwd_trie, bwd.len()) {
        if trie.num_leaves() != set_len {
            return Err(bad("backward trie does not match the backward factor set"));
        }
    }
    if variant.has_grid() != grid.is_some() {
        return Err(bad("stored grid does not match the index variant"));
    }
    if !pairs.len().is_multiple_of(2) {
        return Err(bad("grid pair pool has an odd element count"));
    }
    // Max-scan instead of an early-exit loop: this covers the whole pair
    // pool on every open, so it must vectorize.
    let (worst_fwd, worst_bwd) = pairs
        .chunks_exact(2)
        .fold((0u32, 0u32), |(f, b), p| (f.max(p[0]), b.max(p[1])));
    if !pairs.is_empty() && (worst_fwd as usize >= fwd.len() || worst_bwd as usize >= bwd.len()) {
        return Err(bad("grid pair references a leaf out of range"));
    }
    if let Some(grid) = &grid {
        if grid.len() != pairs.len() / 2 {
            return Err(bad("grid point count does not match the pair table"));
        }
    } else if !pairs.is_empty() {
        return Err(bad("grid pair pool stored without a grid"));
    }
    Ok(MinimizerIndex::from_loaded_parts(
        params,
        variant,
        n,
        sigma,
        heavy,
        fwd,
        bwd,
        fwd_trie,
        bwd_trie,
        grid,
        pairs,
        arena,
        construction,
    ))
}

fn read_minimizer_payload_v2(r: &mut dyn Read) -> io::Result<MinimizerIndex> {
    let params = read_params(r)?;
    let variant = variant_from_tag(read_u8(r)?)?;
    let construction = construction_from_tag(read_u8(r)?)?;
    let n = read_len(r)?;
    let sigma = read_len(r)?;
    let heavy = read_heavy_v2(r)?;
    let fwd = read_factor_set_v2(r, &heavy)?;
    let bwd = read_factor_set_v2(r, &heavy)?;
    let mut tries = [None, None];
    for slot in &mut tries {
        *slot = match read_u8(r)? {
            0 => None,
            1 => Some(read_trie_v2(r)?),
            other => return Err(bad(format!("bad trie presence flag {other}"))),
        };
    }
    let [fwd_trie, bwd_trie] = tries;
    let (grid, pairs) = match read_u8(r)? {
        0 => (None, Vec::new()),
        1 => {
            let grid_parts = read_reporter_parts_v2(r)?;
            let count = read_len(r)?;
            let mut pairs = Vec::with_capacity(count.min(1 << 20).saturating_mul(2));
            for _ in 0..count {
                pairs.push(read_u32(r)?);
                pairs.push(read_u32(r)?);
            }
            pairs.shrink_to_fit();
            // Every grid point's payload indexes the pair table at query
            // time; reject out-of-range payloads here rather than panicking
            // on the first grid query.
            if grid_parts
                .payloads
                .iter()
                .any(|&payload| payload as usize >= count)
            {
                return Err(bad("grid payload references a pair out of range"));
            }
            (
                Some(RangeReporter::from_parts(grid_parts).map_err(bad)?),
                pairs,
            )
        }
        other => return Err(bad(format!("bad grid presence flag {other}"))),
    };
    assemble_minimizer(
        params,
        variant,
        n,
        sigma,
        heavy,
        fwd,
        bwd,
        fwd_trie,
        bwd_trie,
        grid,
        pairs.into(),
        None,
        construction,
    )
}

fn read_minimizer_payload_v3<S: SectionSource>(src: &mut S) -> io::Result<MinimizerIndex> {
    let params = src_params(src)?;
    let variant = variant_from_tag(src_u8(src)?)?;
    let construction = construction_from_tag(src_u8(src)?)?;
    let n = src_len(src)?;
    let sigma = src_len(src)?;
    let heavy = read_heavy_v3(src)?;
    let fwd = read_factor_set_v3(src, &heavy)?;
    let bwd = read_factor_set_v3(src, &heavy)?;
    let mut tries = [None, None];
    for slot in &mut tries {
        *slot = match src_u8(src)? {
            0 => None,
            1 => Some(read_trie_v3(src)?),
            other => return Err(bad(format!("bad trie presence flag {other}"))),
        };
    }
    let [fwd_trie, bwd_trie] = tries;
    let (grid, pairs) = match src_u8(src)? {
        0 => (None, ArenaVec::new()),
        1 => {
            let grid_parts = read_reporter_parts_v3(src)?;
            let pairs = read_section_u32(src)?;
            let worst = grid_parts.payloads.iter().fold(0u32, |m, &p| m.max(p));
            if !grid_parts.payloads.is_empty() && worst as usize >= pairs.len() / 2 {
                return Err(bad("grid payload references a pair out of range"));
            }
            (
                Some(RangeReporter::from_parts(grid_parts).map_err(bad)?),
                pairs,
            )
        }
        other => return Err(bad(format!("bad grid presence flag {other}"))),
    };
    assemble_minimizer(
        params,
        variant,
        n,
        sigma,
        heavy,
        fwd,
        bwd,
        fwd_trie,
        bwd_trie,
        grid,
        pairs,
        src.retained_arena(),
        construction,
    )
}

// ---------------------------------------------------------------------------
// Public per-family API
// ---------------------------------------------------------------------------

impl NaiveIndex {
    /// Serializes the index into `w` (envelope + payload).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the writer.
    pub fn save_to(&self, w: &mut dyn Write) -> io::Result<()> {
        write_checksummed_v3(w, TAG_NAIVE, SaveOptions::default(), |vw| {
            write_f64(vw, self.z())
        })
    }

    /// Deserializes an index previously written by [`NaiveIndex::save_to`].
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on a malformed or mismatched file.
    pub fn load_from(r: &mut dyn Read) -> io::Result<Self> {
        match load_index(r)? {
            AnyIndex::Naive(index) => Ok(index),
            other => Err(bad(format!(
                "expected a NAIVE file, found {}",
                other.name()
            ))),
        }
    }
}

impl Wst {
    /// Serializes the index into `w` (envelope + payload).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the writer.
    pub fn save_to(&self, w: &mut dyn Write) -> io::Result<()> {
        self.save_to_with(w, SaveOptions::default())
    }

    /// [`Wst::save_to`] with explicit encoding options.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the writer.
    pub fn save_to_with(&self, w: &mut dyn Write, opts: SaveOptions) -> io::Result<()> {
        write_checksummed_v3(w, TAG_WST, opts, |vw| {
            write_f64(vw, self.z())?;
            write_property_text_v3(vw, self.property_text_ref())?;
            write_trie_v3(vw, self.trie_ref())
        })
    }

    /// Deserializes an index previously written by [`Wst::save_to`].
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on a malformed or mismatched file.
    pub fn load_from(r: &mut dyn Read) -> io::Result<Self> {
        match load_index(r)? {
            AnyIndex::Wst(index) => Ok(index),
            other => Err(bad(format!("expected a WST file, found {}", other.name()))),
        }
    }
}

impl Wsa {
    /// Serializes the index into `w` (envelope + payload).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the writer.
    pub fn save_to(&self, w: &mut dyn Write) -> io::Result<()> {
        self.save_to_with(w, SaveOptions::default())
    }

    /// [`Wsa::save_to`] with explicit encoding options.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the writer.
    pub fn save_to_with(&self, w: &mut dyn Write, opts: SaveOptions) -> io::Result<()> {
        write_checksummed_v3(w, TAG_WSA, opts, |vw| {
            write_f64(vw, self.z())?;
            write_property_text_v3(vw, self.property_text())
        })
    }

    /// Deserializes an index previously written by [`Wsa::save_to`].
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on a malformed or mismatched file.
    pub fn load_from(r: &mut dyn Read) -> io::Result<Self> {
        match load_index(r)? {
            AnyIndex::Wsa(index) => Ok(index),
            other => Err(bad(format!("expected a WSA file, found {}", other.name()))),
        }
    }
}

impl MinimizerIndex {
    /// Serializes the index into `w` (envelope + payload).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the writer.
    pub fn save_to(&self, w: &mut dyn Write) -> io::Result<()> {
        self.save_to_with(w, SaveOptions::default())
    }

    /// [`MinimizerIndex::save_to`] with explicit encoding options.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the writer.
    pub fn save_to_with(&self, w: &mut dyn Write, opts: SaveOptions) -> io::Result<()> {
        write_checksummed_v3(w, TAG_MINIMIZER, opts, |vw| {
            write_minimizer_payload_v3(vw, self)
        })
    }

    /// Deserializes an index previously written by
    /// [`MinimizerIndex::save_to`]. No construction is re-run: the factor
    /// sets, tries and grid come back exactly as stored.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on a malformed or mismatched file.
    pub fn load_from(r: &mut dyn Read) -> io::Result<Self> {
        match load_index(r)? {
            AnyIndex::Minimizer(index) => Ok(*index),
            other => Err(bad(format!(
                "expected a minimizer-index file, found {}",
                other.name()
            ))),
        }
    }
}

impl AnyIndex {
    /// Serializes the contained index — an alias of [`save_index`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the writer.
    pub fn save_to(&self, w: &mut dyn Write) -> io::Result<()> {
        save_index(self, w)
    }

    /// Deserializes any single-machine family — an alias of [`load_index`].
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on a malformed file.
    pub fn load_from(r: &mut dyn Read) -> io::Result<Self> {
        load_index(r)
    }

    /// Opens any single-machine family zero-copy from an arena — an alias
    /// of [`open_index`].
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on a malformed file.
    pub fn open_from(arena: &Arena) -> io::Result<Self> {
        open_index(arena)
    }
}

/// Serializes any index family into `w` with the default (raw, zero-copy
/// openable) section encoding.
///
/// # Errors
///
/// Propagates I/O errors of the writer.
pub fn save_index(index: &AnyIndex, w: &mut dyn Write) -> io::Result<()> {
    save_index_with(index, w, SaveOptions::default())
}

/// Serializes any index family into `w` with explicit encoding options.
///
/// # Errors
///
/// Propagates I/O errors of the writer.
pub fn save_index_with(index: &AnyIndex, w: &mut dyn Write, opts: SaveOptions) -> io::Result<()> {
    match index {
        AnyIndex::Naive(index) => index.save_to(w),
        AnyIndex::Wst(index) => index.save_to_with(w, opts),
        AnyIndex::Wsa(index) => index.save_to_with(w, opts),
        AnyIndex::Minimizer(index) => index.save_to_with(w, opts),
    }
}

/// Serializes any index family in the **version-2** stream layout — byte
/// identical to what version 2 of this crate wrote. Kept only for the
/// backward-compat differential suite; new files should use
/// [`save_index`].
///
/// # Errors
///
/// Propagates I/O errors of the writer.
#[doc(hidden)]
pub fn save_index_v2(index: &AnyIndex, w: &mut dyn Write) -> io::Result<()> {
    match index {
        AnyIndex::Naive(index) => write_checksummed_v2(w, TAG_NAIVE, |w| write_f64(w, index.z())),
        AnyIndex::Wst(index) => write_checksummed_v2(w, TAG_WST, |w| {
            write_f64(w, index.z())?;
            write_property_text_v2(w, index.property_text_ref())?;
            write_trie_v2(w, index.trie_ref())
        }),
        AnyIndex::Wsa(index) => write_checksummed_v2(w, TAG_WSA, |w| {
            write_f64(w, index.z())?;
            write_property_text_v2(w, index.property_text())
        }),
        AnyIndex::Minimizer(index) => {
            write_checksummed_v2(w, TAG_MINIMIZER, |w| write_minimizer_payload_v2(w, index))
        }
    }
}

/// Deserializes an index saved by [`save_index`] (or any family's
/// `save_to`), dispatching on the stored version and family tag. Reads
/// both format versions; every section is decoded into owned memory (use
/// [`open_index`] for the zero-copy arena path). Loading performs only
/// linear-time reassembly — the z-estimation, suffix sorts and tree merges
/// of construction are never re-run.
///
/// # Errors
///
/// I/O errors, or `InvalidData` on bad magic, an unknown version/tag, or a
/// structurally inconsistent payload.
pub fn load_index(r: &mut dyn Read) -> io::Result<AnyIndex> {
    read_checksummed(r, |tag, version, r| {
        if version == V2_FORMAT_VERSION {
            load_index_payload_v2(tag, r)
        } else {
            run_v3_stream(r, |src| load_index_payload_v3(tag, src))
        }
    })
}

/// Opens any single-machine family from an in-memory [`Arena`]: the CRC32
/// trailer is verified over the raw bytes, then every raw section becomes
/// a zero-copy borrowed view — open cost is O(header + validation), not
/// O(elements). Version-2 bytes fall back to the streaming decoder
/// transparently.
///
/// # Errors
///
/// `InvalidData` on bad magic, an unknown version/tag, a checksum
/// mismatch, or a structurally inconsistent payload.
pub fn open_index(arena: &Arena) -> io::Result<AnyIndex> {
    if header_version(arena.as_bytes(), 0)? == V2_FORMAT_VERSION {
        let mut bytes = arena.as_bytes();
        return load_index(&mut bytes);
    }
    let (tag, mut src) = ArenaSource::open(arena, 0, true)?;
    let index = load_index_payload_v3(tag, &mut src)?;
    src.expect_consumed()?;
    Ok(index)
}

/// Any structure a persisted index file can contain: a single-machine family
/// or a sharded composite. Returned by [`load_any_index`]/
/// [`open_any_index`], which is what consumers that accept *any* index file
/// (e.g. the `ius_server` serving layer) dispatch on.
///
/// Like [`AnyIndex`], the variants are deliberately unboxed: one such value
/// exists per loaded file, so the size skew is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum LoadedAny {
    /// A single-machine family (NAIVE/WST/WSA/minimizer variants).
    Index(AnyIndex),
    /// A sharded composite (self-contained: the shards own their chunks of
    /// `X`).
    Sharded(ShardedIndex),
}

/// Deserializes **any** index file — single-machine families and sharded
/// composites alike — dispatching on the stored version and family tag.
///
/// # Errors
///
/// I/O errors, or `InvalidData` on bad magic, an unknown version/tag, or a
/// structurally inconsistent payload.
pub fn load_any_index(r: &mut dyn Read) -> io::Result<LoadedAny> {
    read_checksummed(r, |tag, version, r| {
        if version == V2_FORMAT_VERSION {
            if tag == TAG_SHARDED {
                read_sharded_payload_v2(r).map(LoadedAny::Sharded)
            } else {
                load_index_payload_v2(tag, r).map(LoadedAny::Index)
            }
        } else {
            run_v3_stream(r, |src| {
                if tag == TAG_SHARDED {
                    read_sharded_payload_v3(src).map(LoadedAny::Sharded)
                } else {
                    load_index_payload_v3(tag, src).map(LoadedAny::Index)
                }
            })
        }
    })
}

/// Opens **any** index file from an in-memory [`Arena`] (see
/// [`open_index`] for the cost model). Version-2 bytes fall back to the
/// streaming decoder transparently.
///
/// # Errors
///
/// `InvalidData` on bad magic, an unknown version/tag, a checksum
/// mismatch, or a structurally inconsistent payload.
pub fn open_any_index(arena: &Arena) -> io::Result<LoadedAny> {
    if header_version(arena.as_bytes(), 0)? == V2_FORMAT_VERSION {
        let mut bytes = arena.as_bytes();
        return load_any_index(&mut bytes);
    }
    Ok(open_any_index_at(arena, 0)?.0)
}

/// Opens a v3 envelope embedded at `offset` inside an arena (the live
/// index stores its segment payloads behind a segment prefix). The offset
/// must be 8-byte aligned — writers pad the prefix so it is. Returns the
/// loaded structure and the envelope's total byte length.
///
/// # Errors
///
/// `InvalidData` on bad magic, a non-v3 version, a checksum mismatch, or
/// a structurally inconsistent payload.
pub fn open_any_index_at(arena: &Arena, offset: usize) -> io::Result<(LoadedAny, usize)> {
    let (tag, mut src) = ArenaSource::open(arena, offset, true)?;
    let loaded = if tag == TAG_SHARDED {
        LoadedAny::Sharded(read_sharded_payload_v3(&mut src)?)
    } else {
        LoadedAny::Index(load_index_payload_v3(tag, &mut src)?)
    };
    src.expect_consumed()?;
    Ok((loaded, src.envelope_len))
}

/// Parses the magic and version of the envelope header at `offset`.
fn header_version(bytes: &[u8], offset: usize) -> io::Result<u16> {
    let head = bytes
        .get(offset..offset + 7)
        .ok_or_else(|| bad("file too short for an IUSX envelope"))?;
    if head[..4] != MAGIC {
        return Err(bad("not an IUSX index file (bad magic)"));
    }
    Ok(u16::from_le_bytes([head[4], head[5]]))
}

fn load_index_payload_v2(tag: u8, r: &mut dyn Read) -> io::Result<AnyIndex> {
    match tag {
        TAG_NAIVE => {
            let z = read_f64(r)?;
            NaiveIndex::new(z)
                .map(AnyIndex::Naive)
                .map_err(|e| bad(e.to_string()))
        }
        TAG_WST => {
            let z = read_f64(r)?;
            if !(z.is_finite() && z >= 1.0) {
                return Err(bad(format!("invalid stored threshold z = {z}")));
            }
            let property_text = read_property_text_v2(r)?;
            let trie = read_trie_v2(r)?;
            if trie.num_leaves() != property_text.psa().len() {
                return Err(bad("trie does not match the property suffix array"));
            }
            Ok(AnyIndex::Wst(Wst::from_loaded_parts(
                z,
                property_text,
                trie,
                None,
            )))
        }
        TAG_WSA => {
            let z = read_f64(r)?;
            if !(z.is_finite() && z >= 1.0) {
                return Err(bad(format!("invalid stored threshold z = {z}")));
            }
            let property_text = read_property_text_v2(r)?;
            Ok(AnyIndex::Wsa(Wsa::from_loaded_parts(
                z,
                property_text,
                None,
            )))
        }
        TAG_MINIMIZER => Ok(AnyIndex::Minimizer(Box::new(read_minimizer_payload_v2(r)?))),
        TAG_SHARDED => Err(bad(
            "this is a sharded-index file; use ShardedIndex::load_from",
        )),
        other => Err(bad(format!("unknown family tag {other}"))),
    }
}

fn load_index_payload_v3<S: SectionSource>(tag: u8, src: &mut S) -> io::Result<AnyIndex> {
    match tag {
        TAG_NAIVE => {
            let z = src_f64(src)?;
            NaiveIndex::new(z)
                .map(AnyIndex::Naive)
                .map_err(|e| bad(e.to_string()))
        }
        TAG_WST => {
            let z = src_f64(src)?;
            if !(z.is_finite() && z >= 1.0) {
                return Err(bad(format!("invalid stored threshold z = {z}")));
            }
            let property_text = read_property_text_v3(src)?;
            let trie = read_trie_v3(src)?;
            if trie.num_leaves() != property_text.psa().len() {
                return Err(bad("trie does not match the property suffix array"));
            }
            Ok(AnyIndex::Wst(Wst::from_loaded_parts(
                z,
                property_text,
                trie,
                src.retained_arena(),
            )))
        }
        TAG_WSA => {
            let z = src_f64(src)?;
            if !(z.is_finite() && z >= 1.0) {
                return Err(bad(format!("invalid stored threshold z = {z}")));
            }
            let property_text = read_property_text_v3(src)?;
            Ok(AnyIndex::Wsa(Wsa::from_loaded_parts(
                z,
                property_text,
                src.retained_arena(),
            )))
        }
        TAG_MINIMIZER => Ok(AnyIndex::Minimizer(Box::new(read_minimizer_payload_v3(
            src,
        )?))),
        TAG_SHARDED => Err(bad(
            "this is a sharded-index file; use ShardedIndex::load_from",
        )),
        other => Err(bad(format!("unknown family tag {other}"))),
    }
}

// ---------------------------------------------------------------------------
// Sharded indexes (payload nests one envelope per shard)
// ---------------------------------------------------------------------------

impl ShardedIndex {
    /// Serializes the sharded index: routing metadata, the per-shard chunks
    /// of `X` (each shard owns its chunk, so the file is self-contained) and
    /// one nested index envelope per shard, each starting at an
    /// 8-byte-aligned file offset.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the writer.
    pub fn save_to(&self, w: &mut dyn Write) -> io::Result<()> {
        self.save_to_with(w, SaveOptions::default())
    }

    /// [`ShardedIndex::save_to`] with explicit encoding options.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the writer.
    pub fn save_to_with(&self, w: &mut dyn Write, opts: SaveOptions) -> io::Result<()> {
        write_checksummed_v3(w, TAG_SHARDED, opts, |vw| {
            write_params(vw, &self.spec().params)?;
            write_u8(vw, family_tag(self.spec().family))?;
            write_u64(vw, self.len() as u64)?;
            write_u64(vw, self.max_pattern_len() as u64)?;
            write_u64(vw, self.num_shards() as u64)?;
            for shard in self.shards() {
                write_u64(vw, shard.offset as u64)?;
                write_u64(vw, shard.home_len as u64)?;
                vw.section::<u8>(shard.x.alphabet().symbols());
                write_u64(vw, shard.x.len() as u64)?;
                vw.section::<f64>(shard.x.flat_probs());
                vw.pad8();
                save_index_with(&shard.index, vw, opts)?;
            }
            Ok(())
        })
    }

    /// Serializes the sharded index in the **version-2** stream layout.
    /// Kept only for the backward-compat differential suite.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the writer.
    #[doc(hidden)]
    pub fn save_to_v2(&self, w: &mut dyn Write) -> io::Result<()> {
        write_checksummed_v2(w, TAG_SHARDED, |w| {
            write_params(w, &self.spec().params)?;
            write_u8(w, family_tag(self.spec().family))?;
            write_u64(w, self.len() as u64)?;
            write_u64(w, self.max_pattern_len() as u64)?;
            write_u64(w, self.num_shards() as u64)?;
            for shard in self.shards() {
                write_u64(w, shard.offset as u64)?;
                write_u64(w, shard.home_len as u64)?;
                write_bytes(w, shard.x.alphabet().symbols())?;
                write_u64(w, shard.x.len() as u64)?;
                write_vec_f64(w, shard.x.flat_probs())?;
                save_index_v2(&shard.index, w)?;
            }
            Ok(())
        })
    }

    /// Deserializes a sharded index written by [`ShardedIndex::save_to`]
    /// (either format version).
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on a malformed file.
    pub fn load_from(r: &mut dyn Read) -> io::Result<Self> {
        read_checksummed(r, |tag, version, r| {
            if tag != TAG_SHARDED {
                return Err(bad(format!(
                    "expected a sharded-index file (tag {TAG_SHARDED}), found tag {tag}"
                )));
            }
            if version == V2_FORMAT_VERSION {
                read_sharded_payload_v2(r)
            } else {
                run_v3_stream(r, read_sharded_payload_v3)
            }
        })
    }
}

/// Builds one shard from its decoded routing fields, validating the
/// probability matrix shape.
fn assemble_shard(
    offset: usize,
    home_len: usize,
    symbols: &[u8],
    chunk_len: usize,
    probs: Vec<f64>,
    index: AnyIndex,
) -> io::Result<crate::shard::Shard> {
    let alphabet = ius_weighted::Alphabet::new(symbols).map_err(|e| bad(e.to_string()))?;
    if probs.len() != chunk_len * alphabet.size() {
        return Err(bad("shard probability matrix has the wrong shape"));
    }
    let x =
        ius_weighted::WeightedString::from_flat(alphabet, probs).map_err(|e| bad(e.to_string()))?;
    Ok(crate::shard::Shard {
        offset,
        home_len,
        x,
        index,
    })
}

/// Reads the v2 sharded payload (everything after the envelope).
fn read_sharded_payload_v2(r: &mut dyn Read) -> io::Result<ShardedIndex> {
    let params = read_params(r)?;
    let family = family_from_tag(read_u8(r)?)?;
    let n = read_len(r)?;
    let max_pattern_len = read_len(r)?;
    let num_shards = read_len(r)?;
    let mut shards = Vec::with_capacity(num_shards.min(1 << 16));
    for _ in 0..num_shards {
        let offset = read_len(r)?;
        let home_len = read_len(r)?;
        let symbols = read_bytes(r)?;
        let chunk_len = read_len(r)?;
        let probs = read_vec_f64(r)?;
        let index = load_index(r)?;
        shards.push(assemble_shard(
            offset, home_len, &symbols, chunk_len, probs, index,
        )?);
    }
    ShardedIndex::from_loaded_parts(
        crate::builder::IndexSpec::new(family, params),
        n,
        max_pattern_len,
        shards,
        None,
    )
    .map_err(bad)
}

/// Reads the v3 sharded payload (everything after the length field). The
/// per-shard weighted strings are decoded into owned memory even on the
/// arena path (they are consumed by value); the nested index envelopes
/// stay zero-copy.
fn read_sharded_payload_v3<S: SectionSource>(src: &mut S) -> io::Result<ShardedIndex> {
    let params = src_params(src)?;
    let family = family_from_tag(src_u8(src)?)?;
    let n = src_len(src)?;
    let max_pattern_len = src_len(src)?;
    let num_shards = src_len(src)?;
    let mut shards = Vec::with_capacity(num_shards.min(1 << 16));
    for _ in 0..num_shards {
        let offset = src_len(src)?;
        let home_len = src_len(src)?;
        let symbols = read_section::<u8, _>(src)?;
        let chunk_len = src_len(src)?;
        let probs = read_section::<f64, _>(src)?.to_vec();
        src_align8(src)?;
        let index = src.read_nested_index()?;
        shards.push(assemble_shard(
            offset, home_len, &symbols, chunk_len, probs, index,
        )?);
    }
    ShardedIndex::from_loaded_parts(
        crate::builder::IndexSpec::new(family, params),
        n,
        max_pattern_len,
        shards,
        src.retained_arena(),
    )
    .map_err(bad)
}

fn family_tag(family: crate::builder::IndexFamily) -> u8 {
    use crate::builder::IndexFamily;
    match family {
        IndexFamily::Naive => 0,
        IndexFamily::Wst => 1,
        IndexFamily::Wsa => 2,
        IndexFamily::Minimizer(IndexVariant::Tree) => 3,
        IndexFamily::Minimizer(IndexVariant::Array) => 4,
        IndexFamily::Minimizer(IndexVariant::TreeGrid) => 5,
        IndexFamily::Minimizer(IndexVariant::ArrayGrid) => 6,
        IndexFamily::SpaceEfficient(IndexVariant::Tree) => 7,
        IndexFamily::SpaceEfficient(IndexVariant::Array) => 8,
        IndexFamily::SpaceEfficient(IndexVariant::TreeGrid) => 9,
        IndexFamily::SpaceEfficient(IndexVariant::ArrayGrid) => 10,
    }
}

fn family_from_tag(tag: u8) -> io::Result<crate::builder::IndexFamily> {
    use crate::builder::IndexFamily;
    Ok(match tag {
        0 => IndexFamily::Naive,
        1 => IndexFamily::Wst,
        2 => IndexFamily::Wsa,
        3 => IndexFamily::Minimizer(IndexVariant::Tree),
        4 => IndexFamily::Minimizer(IndexVariant::Array),
        5 => IndexFamily::Minimizer(IndexVariant::TreeGrid),
        6 => IndexFamily::Minimizer(IndexVariant::ArrayGrid),
        7 => IndexFamily::SpaceEfficient(IndexVariant::Tree),
        8 => IndexFamily::SpaceEfficient(IndexVariant::Array),
        9 => IndexFamily::SpaceEfficient(IndexVariant::TreeGrid),
        10 => IndexFamily::SpaceEfficient(IndexVariant::ArrayGrid),
        other => return Err(bad(format!("unknown index-family tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{IndexFamily, IndexSpec};
    use crate::traits::UncertainIndex;
    use ius_datasets::uniform::UniformConfig;

    fn sample_index() -> AnyIndex {
        let x = UniformConfig {
            n: 160,
            sigma: 2,
            spread: 0.5,
            seed: 8,
        }
        .generate();
        let params = IndexParams::new(4.0, 8, x.sigma()).unwrap();
        IndexSpec::new(IndexFamily::Minimizer(IndexVariant::ArrayGrid), params)
            .build(&x)
            .unwrap()
    }

    fn sample_bytes() -> Vec<u8> {
        let mut bytes = Vec::new();
        sample_index().save_to(&mut bytes).unwrap();
        bytes
    }

    #[test]
    fn envelope_is_validated() {
        let bytes = sample_bytes();
        // Truncation anywhere fails cleanly, never panics.
        for cut in [0usize, 3, 5, 7, 20, bytes.len() - 1] {
            assert!(load_index(&mut &bytes[..cut]).is_err(), "cut at {cut}");
            assert!(
                open_index(&Arena::from_bytes(&bytes[..cut])).is_err(),
                "arena cut at {cut}"
            );
        }
        // Bad magic.
        let mut corrupt = bytes.clone();
        corrupt[0] = b'X';
        assert!(load_index(&mut corrupt.as_slice()).is_err());
        assert!(open_index(&Arena::from_bytes(&corrupt)).is_err());
        // Unknown version.
        let mut corrupt = bytes.clone();
        corrupt[4] = 0xFF;
        assert!(load_index(&mut corrupt.as_slice()).is_err());
        assert!(open_index(&Arena::from_bytes(&corrupt)).is_err());
        // Unknown family tag.
        let mut corrupt = bytes;
        corrupt[6] = 0xEE;
        assert!(load_index(&mut corrupt.as_slice()).is_err());
        assert!(open_index(&Arena::from_bytes(&corrupt)).is_err());
    }

    #[test]
    fn checksum_detects_silent_bit_rot() {
        let bytes = sample_bytes();
        // An untouched file round-trips on both read paths.
        assert!(load_index(&mut bytes.as_slice()).is_ok());
        assert!(open_index(&Arena::from_bytes(&bytes)).is_ok());
        // Flip one bit deep in the payload (past the envelope, before the
        // trailer): structurally the file may still parse, but the CRC32
        // trailer must catch it with a typed error, never a panic.
        for &at in &[16usize, bytes.len() / 2, bytes.len() - 8] {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 0x40;
            let err = load_index(&mut corrupt.as_slice())
                .expect_err("bit flip must not load")
                .to_string();
            assert!(!err.is_empty());
            let err = open_index(&Arena::from_bytes(&corrupt))
                .expect_err("bit flip must not open")
                .to_string();
            assert!(!err.is_empty());
        }
        // Corrupting the trailer itself is also detected.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        assert!(load_index(&mut corrupt.as_slice()).is_err());
        assert!(open_index(&Arena::from_bytes(&corrupt)).is_err());
    }

    #[test]
    fn typed_loaders_reject_other_families() {
        let bytes = sample_bytes();
        assert!(Wsa::load_from(&mut bytes.as_slice()).is_err());
        assert!(Wst::load_from(&mut bytes.as_slice()).is_err());
        assert!(NaiveIndex::load_from(&mut bytes.as_slice()).is_err());
        assert!(ShardedIndex::load_from(&mut bytes.as_slice()).is_err());
        assert!(MinimizerIndex::load_from(&mut bytes.as_slice()).is_ok());
    }

    #[test]
    fn naive_round_trip() {
        let naive = NaiveIndex::new(7.5).unwrap();
        let mut bytes = Vec::new();
        naive.save_to(&mut bytes).unwrap();
        let loaded = NaiveIndex::load_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(loaded.z(), 7.5);
        assert_eq!(loaded.name(), "NAIVE");
    }

    #[test]
    fn arena_open_matches_streaming_load() {
        let index = sample_index();
        let mut bytes = Vec::new();
        index.save_to(&mut bytes).unwrap();
        let loaded = load_index(&mut bytes.as_slice()).unwrap();
        let opened = open_index(&Arena::from_bytes(&bytes)).unwrap();
        let x = UniformConfig {
            n: 160,
            sigma: 2,
            spread: 0.5,
            seed: 8,
        }
        .generate();
        for pattern in [&b"ABABABAB"[..], b"AAAAAAAA", b"BBABBABB", b"ABBABBABB"] {
            let built = index.query(pattern, &x).unwrap();
            assert_eq!(loaded.query(pattern, &x).unwrap(), built);
            assert_eq!(opened.query(pattern, &x).unwrap(), built);
        }
        // The arena-opened index accounts the backing allocation once.
        assert!(opened.size_bytes() >= bytes.len());
    }

    #[test]
    fn resave_is_byte_identical_after_both_read_paths() {
        let bytes = sample_bytes();
        let loaded = load_index(&mut bytes.as_slice()).unwrap();
        let mut resaved = Vec::new();
        loaded.save_to(&mut resaved).unwrap();
        assert_eq!(bytes, resaved, "stream load → save must be byte identical");
        let opened = open_index(&Arena::from_bytes(&bytes)).unwrap();
        let mut resaved = Vec::new();
        opened.save_to(&mut resaved).unwrap();
        assert_eq!(bytes, resaved, "arena open → save must be byte identical");
    }

    #[test]
    fn packed_sections_shrink_and_round_trip() {
        let index = sample_index();
        let mut raw = Vec::new();
        index.save_to(&mut raw).unwrap();
        let mut packed = Vec::new();
        save_index_with(&index, &mut packed, SaveOptions { pack_u32: true }).unwrap();
        assert!(
            packed.len() < raw.len(),
            "packing must shrink the file ({} vs {} bytes)",
            packed.len(),
            raw.len()
        );
        let x = UniformConfig {
            n: 160,
            sigma: 2,
            spread: 0.5,
            seed: 8,
        }
        .generate();
        let loaded = load_index(&mut packed.as_slice()).unwrap();
        let opened = open_index(&Arena::from_bytes(&packed)).unwrap();
        for pattern in [&b"ABABABAB"[..], b"AAAAAAAA", b"BBABBABB"] {
            let built = index.query(pattern, &x).unwrap();
            assert_eq!(loaded.query(pattern, &x).unwrap(), built);
            assert_eq!(opened.query(pattern, &x).unwrap(), built);
        }
    }

    #[test]
    fn v2_writer_round_trips_through_every_path() {
        let index = sample_index();
        let mut v2 = Vec::new();
        save_index_v2(&index, &mut v2).unwrap();
        assert_eq!(u16::from_le_bytes([v2[4], v2[5]]), V2_FORMAT_VERSION);
        let x = UniformConfig {
            n: 160,
            sigma: 2,
            spread: 0.5,
            seed: 8,
        }
        .generate();
        let loaded = load_index(&mut v2.as_slice()).unwrap();
        // Arena open of v2 bytes falls back to the streaming decoder.
        let opened = open_index(&Arena::from_bytes(&v2)).unwrap();
        for pattern in [&b"ABABABAB"[..], b"AAAAAAAA", b"BBABBABB"] {
            let built = index.query(pattern, &x).unwrap();
            assert_eq!(loaded.query(pattern, &x).unwrap(), built);
            assert_eq!(opened.query(pattern, &x).unwrap(), built);
        }
    }
}
