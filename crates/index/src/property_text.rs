//! The property text: the concatenated z-estimation with per-position
//! truncation lengths, plus its *property suffix array* (PSA).
//!
//! Both state-of-the-art baselines are views over this structure:
//!
//! * the weighted suffix array ([`crate::Wsa`]) is the PSA itself,
//! * the weighted suffix tree ([`crate::Wst`]) is the compacted trie of the
//!   truncated suffixes, built from the PSA and the truncated LCP values.
//!
//! A *truncated suffix* of the concatenation `T = S_1 S_2 … S_⌊z⌋` at text
//! position `s` is `T[s .. s + t(s))` where `t(s)` is the length of the
//! longest property-respecting factor starting at `s` inside its strand.
//! Truncated suffixes are exactly the maximal solid factors' suffixes, so an
//! occurrence of a pattern `P` as a *prefix of a truncated suffix* is exactly
//! a property-respecting (hence z-solid) occurrence of `P`.

use ius_arena::ArenaVec;
use ius_text::lce::LceIndex;
use ius_text::trie::SliceLabels;
use ius_weighted::{Error, Result, ZEstimation};
use std::cmp::Ordering;

/// The concatenated z-estimation with truncation lengths and its PSA.
#[derive(Debug, Clone)]
pub struct PropertyText {
    /// Length `n` of the original weighted string.
    n: usize,
    /// Number of strands `⌊z⌋`.
    num_strands: usize,
    /// Concatenated strand letters (strand j occupies `[j·n, (j+1)·n)`).
    text: ArenaVec<u8>,
    /// Truncation length per text position (0 ⇒ position not covered).
    trunc: ArenaVec<u32>,
    /// Text positions with positive truncation, sorted by truncated suffix.
    psa: ArenaVec<u32>,
    /// LCPs of adjacent truncated suffixes in PSA order; only kept when the
    /// structure is built for the tree-based baseline.
    trunc_lcp: Option<ArenaVec<u32>>,
}

impl PropertyText {
    /// Builds the property text and its PSA from a z-estimation.
    ///
    /// Uses an LCE index over the concatenation to compare truncated suffixes
    /// in `O(1)`-ish time; the LCE structures are dropped before returning,
    /// so the retained memory is `text + trunc + psa` — the `O(nz)` footprint
    /// the paper reports for the WSA.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyInput`] if the estimation has no strands.
    pub fn build(estimation: &ZEstimation) -> Result<Self> {
        Self::build_internal(estimation, false)
    }

    /// Like [`PropertyText::build`], additionally retaining the truncated
    /// LCP values of adjacent PSA entries (needed to assemble the WST).
    ///
    /// # Errors
    ///
    /// [`Error::EmptyInput`] if the estimation has no strands.
    pub fn build_with_lcp(estimation: &ZEstimation) -> Result<Self> {
        Self::build_internal(estimation, true)
    }

    fn build_internal(estimation: &ZEstimation, want_lcp: bool) -> Result<Self> {
        let strands = estimation.strands();
        if strands.is_empty() {
            return Err(Error::EmptyInput("z-estimation"));
        }
        let n = estimation.len();
        let num_strands = strands.len();
        let total = n * num_strands;
        let mut text = Vec::with_capacity(total);
        let mut trunc = Vec::with_capacity(total);
        for strand in strands {
            text.extend_from_slice(strand.seq());
            for i in 0..n {
                trunc.push((strand.extent(i) - i) as u32);
            }
        }

        // Sort the covered positions by truncated suffix.
        let lce = LceIndex::new(&text);
        let mut psa: Vec<u32> = (0..total as u32)
            .filter(|&s| trunc[s as usize] > 0)
            .collect();
        // `collect` through a filter can overshoot; the PSA is retained for
        // the index's whole lifetime, so drop the slack.
        psa.shrink_to_fit();
        psa.sort_unstable_by(|&a, &b| {
            compare_truncated(&text, &trunc, &lce, a as usize, b as usize)
        });
        let trunc_lcp = if want_lcp {
            let mut lcps = vec![0u32; psa.len()];
            for r in 1..psa.len() {
                let a = psa[r - 1] as usize;
                let b = psa[r] as usize;
                let cap = trunc[a].min(trunc[b]) as usize;
                lcps[r] = lce.lce(a, b).min(cap) as u32;
            }
            Some(lcps)
        } else {
            None
        };
        Ok(Self {
            n,
            num_strands,
            text: ArenaVec::from(text),
            trunc: ArenaVec::from(trunc),
            psa: ArenaVec::from(psa),
            trunc_lcp: trunc_lcp.map(ArenaVec::from),
        })
    }

    /// Length of the original weighted string.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of strands.
    #[inline]
    pub fn num_strands(&self) -> usize {
        self.num_strands
    }

    /// The concatenated strand text.
    #[inline]
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// Truncation length of text position `s`.
    #[inline]
    pub fn trunc(&self, s: usize) -> usize {
        self.trunc[s] as usize
    }

    /// The property suffix array (positions of covered text suffixes in
    /// truncated-lexicographic order).
    #[inline]
    pub fn psa(&self) -> &[u32] {
        &self.psa
    }

    /// Maps a text position to the position in `X` it stands for.
    #[inline]
    pub fn position_in_x(&self, text_pos: usize) -> usize {
        text_pos % self.n
    }

    /// Maps a text position to its strand id.
    #[inline]
    pub fn strand_of(&self, text_pos: usize) -> usize {
        text_pos / self.n
    }

    /// The truncated suffix starting at text position `s`.
    #[inline]
    pub fn truncated_suffix(&self, s: usize) -> &[u8] {
        &self.text[s..s + self.trunc[s] as usize]
    }

    /// A [`SliceLabels`] provider exposing the truncated suffixes in PSA
    /// order (used to build and to traverse the WST).
    pub fn labels(&self) -> SliceLabels<'_> {
        let fragments: Vec<(u32, u32)> = self
            .psa
            .iter()
            .map(|&s| (s, self.trunc[s as usize]))
            .collect();
        SliceLabels::new(&self.text, fragments)
    }

    /// Lengths of the truncated suffixes in PSA order.
    pub fn psa_lengths(&self) -> Vec<usize> {
        self.psa
            .iter()
            .map(|&s| self.trunc[s as usize] as usize)
            .collect()
    }

    /// LCP values of adjacent truncated suffixes in PSA order (entry 0 is 0).
    ///
    /// Returns the values computed during [`PropertyText::build_with_lcp`]
    /// when available; otherwise falls back to direct character comparison
    /// (only appropriate for small inputs, e.g. in tests).
    pub fn psa_truncated_lcp(&self) -> Vec<usize> {
        if let Some(stored) = &self.trunc_lcp {
            return stored.iter().map(|&v| v as usize).collect();
        }
        let mut lcps = vec![0usize; self.psa.len()];
        #[allow(clippy::needless_range_loop)]
        for r in 1..self.psa.len() {
            let a = self.psa[r - 1] as usize;
            let b = self.psa[r] as usize;
            let max = (self.trunc[a] as usize).min(self.trunc[b] as usize);
            let mut l = 0usize;
            while l < max && self.text[a + l] == self.text[b + l] {
                l += 1;
            }
            lcps[r] = l;
        }
        lcps
    }

    /// The half-open PSA interval of truncated suffixes having `pattern` as a
    /// prefix (binary search, `O(m log(nz))`).
    pub fn equal_range(&self, pattern: &[u8]) -> (usize, usize) {
        let lo = self.partition_point(|suffix| suffix < pattern);
        let hi = self.partition_point(|suffix| {
            let prefix = &suffix[..suffix.len().min(pattern.len())];
            prefix <= pattern
        });
        (lo, hi)
    }

    /// All positions of `X` at which `pattern` occurs respecting the
    /// property (sorted, deduplicated across strands).
    pub fn positions_of(&self, pattern: &[u8]) -> Vec<usize> {
        let (lo, hi) = self.equal_range(pattern);
        let mut positions: Vec<usize> = self.psa[lo..hi]
            .iter()
            .map(|&s| self.position_in_x(s as usize))
            .collect();
        positions.sort_unstable();
        positions.dedup();
        positions
    }

    /// Appends the (unsorted, possibly duplicated across strands) `X`
    /// positions of the PSA interval matching `pattern` into `out` and
    /// returns the interval width — the allocation-free locate step of the
    /// sink-based WSA query, which sorts and deduplicates once downstream.
    pub fn positions_into(&self, pattern: &[u8], out: &mut Vec<usize>) -> usize {
        let (lo, hi) = self.equal_range(pattern);
        out.extend(
            self.psa[lo..hi]
                .iter()
                .map(|&s| self.position_in_x(s as usize)),
        );
        hi - lo
    }

    // ---- persistence support (see `crate::persist`) --------------------

    /// The full truncation table (one entry per text position).
    pub(crate) fn trunc_raw(&self) -> &[u32] {
        &self.trunc
    }

    /// The stored truncated-LCP table, when the structure was built for the
    /// tree baseline.
    pub(crate) fn trunc_lcp_raw(&self) -> Option<&[u32]> {
        self.trunc_lcp.as_deref()
    }

    /// Reassembles a property text from its persisted parts without re-running
    /// the suffix sort.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural inconsistency (the PSA
    /// order itself is trusted; it is covered by the round-trip tests).
    pub(crate) fn from_parts(
        n: usize,
        num_strands: usize,
        text: ArenaVec<u8>,
        trunc: ArenaVec<u32>,
        psa: ArenaVec<u32>,
        trunc_lcp: Option<ArenaVec<u32>>,
    ) -> std::result::Result<Self, String> {
        let total = n
            .checked_mul(num_strands)
            .ok_or("property-text dimensions overflow")?;
        if text.len() != total || trunc.len() != total {
            return Err("text/truncation tables do not match n × strands".into());
        }
        // These checks run over `n·z` entries on every arena open, so they
        // are phrased as whole-array reduction scans — division-free, no
        // early exit, no random access — that compile to SIMD; the offending
        // entry is located by a second pass only on the error path.
        //
        // A truncated suffix never crosses its strand's end; the covered-
        // position count rides along in the same pass over the table.
        let mut covered = 0usize;
        for strand in 0..num_strands {
            let base = strand * n;
            let (worst, strand_covered) = trunc[base..base + n]
                .iter()
                .enumerate()
                .fold((0usize, 0usize), |(m, c), (i, &t)| {
                    (m.max(i + t as usize), c + usize::from(t > 0))
                });
            if worst > n {
                let i = trunc[base..base + n]
                    .iter()
                    .enumerate()
                    .position(|(i, &t)| i + t as usize > n)
                    .unwrap_or(0);
                return Err(format!(
                    "truncation at text position {} crosses a strand",
                    base + i
                ));
            }
            covered += strand_covered;
        }
        // Every PSA entry is in range, and the PSA lists exactly the covered
        // positions (one entry per `trunc > 0` slot — checked by count, so
        // no per-entry gather into the truncation table is needed; the sort
        // order itself is trusted, as documented above).
        let max_psa = psa.iter().fold(0u32, |m, &s| m.max(s));
        if !psa.is_empty() && max_psa as usize >= total {
            return Err("PSA references an uncovered or out-of-range position".into());
        }
        if psa.len() != covered {
            return Err(format!(
                "PSA lists {} positions but {covered} are covered",
                psa.len()
            ));
        }
        if let Some(lcps) = &trunc_lcp {
            if lcps.len() != psa.len() {
                return Err("truncated-LCP table length does not match the PSA".into());
            }
        }
        Ok(Self {
            n,
            num_strands,
            text,
            trunc,
            psa,
            trunc_lcp,
        })
    }

    /// Heap bytes retained by the structure. Arena-backed tables count as
    /// zero here; the arena is counted once by whoever retains its handle.
    pub fn memory_bytes(&self) -> usize {
        self.text.heap_bytes()
            + self.trunc.heap_bytes()
            + self.psa.heap_bytes()
            + self.trunc_lcp.as_ref().map_or(0, ArenaVec::heap_bytes)
    }

    fn partition_point<F: Fn(&[u8]) -> bool>(&self, pred: F) -> usize {
        let mut lo = 0usize;
        let mut hi = self.psa.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let s = self.psa[mid] as usize;
            let suffix = self.truncated_suffix(s);
            if pred(suffix) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// Compares two truncated suffixes using the LCE index over the concatenation.
fn compare_truncated(text: &[u8], trunc: &[u32], lce: &LceIndex, a: usize, b: usize) -> Ordering {
    if a == b {
        return Ordering::Equal;
    }
    let ta = trunc[a] as usize;
    let tb = trunc[b] as usize;
    // Fast path: resolve on the first few characters without an LCE query.
    let quick = ta.min(tb).min(4);
    for d in 0..quick {
        match text[a + d].cmp(&text[b + d]) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    if quick == ta.min(tb) {
        return ta.cmp(&tb).then(a.cmp(&b));
    }
    lce.compare_fragments(a, ta, b, tb).then(a.cmp(&b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ius_datasets::uniform::UniformConfig;
    use ius_weighted::string::paper_example;
    use ius_weighted::ZEstimation;

    fn build_example(z: f64) -> (ius_weighted::WeightedString, PropertyText) {
        let x = paper_example();
        let est = ZEstimation::build(&x, z).unwrap();
        let pt = PropertyText::build(&est).unwrap();
        (x, pt)
    }

    #[test]
    fn psa_contains_only_covered_positions_in_sorted_order() {
        let (_x, pt) = build_example(4.0);
        assert_eq!(pt.n(), 6);
        assert_eq!(pt.num_strands(), 4);
        for r in 0..pt.psa().len() {
            let s = pt.psa()[r] as usize;
            assert!(pt.trunc(s) > 0);
            if r > 0 {
                let prev = pt.psa()[r - 1] as usize;
                assert!(
                    pt.truncated_suffix(prev) <= pt.truncated_suffix(s),
                    "PSA not sorted at rank {r}"
                );
            }
        }
    }

    #[test]
    fn equal_range_finds_solid_occurrences() {
        let (x, pt) = build_example(4.0);
        // AB is solid at positions 0, 3, 4 of the paper's example (0-based).
        let positions = pt.positions_of(&[0, 1]);
        assert_eq!(
            positions,
            ius_weighted::solid::occurrences(&x, &[0, 1], 4.0)
        );
        // AAAA is solid only at 0.
        assert_eq!(pt.positions_of(&[0, 0, 0, 0]), vec![0]);
        // ABAB occurs nowhere with probability ≥ 1/4.
        assert!(pt.positions_of(&[0, 1, 0, 1]).is_empty());
    }

    #[test]
    fn positions_match_naive_matcher_on_random_input() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let x = UniformConfig {
            n: 200,
            sigma: 3,
            spread: 0.6,
            seed: 5,
        }
        .generate();
        let z = 6.0;
        let est = ZEstimation::build(&x, z).unwrap();
        let pt = PropertyText::build(&est).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for len in 1..=6 {
            for _ in 0..40 {
                let pattern: Vec<u8> = (0..len).map(|_| rng.gen_range(0..3u8)).collect();
                assert_eq!(
                    pt.positions_of(&pattern),
                    ius_weighted::solid::occurrences(&x, &pattern, z),
                    "pattern {pattern:?}"
                );
            }
        }
    }

    #[test]
    fn truncated_lcp_matches_direct_comparison() {
        let x = paper_example();
        let est = ZEstimation::build(&x, 4.0).unwrap();
        for pt in [
            PropertyText::build(&est).unwrap(),
            PropertyText::build_with_lcp(&est).unwrap(),
        ] {
            let lcps = pt.psa_truncated_lcp();
            assert_eq!(lcps.len(), pt.psa().len());
            #[allow(clippy::needless_range_loop)]
            for r in 1..pt.psa().len() {
                let a = pt.truncated_suffix(pt.psa()[r - 1] as usize);
                let b = pt.truncated_suffix(pt.psa()[r] as usize);
                let expected = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
                assert_eq!(lcps[r], expected);
            }
        }
    }

    #[test]
    fn strand_and_position_mapping() {
        let (_x, pt) = build_example(3.0);
        assert_eq!(pt.position_in_x(0), 0);
        assert_eq!(pt.position_in_x(7), 1);
        assert_eq!(pt.strand_of(7), 1);
        assert_eq!(pt.strand_of(17), 2);
        assert!(pt.memory_bytes() > 0);
    }
}
