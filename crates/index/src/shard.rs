//! Sharded composite indexes: one logical index over `S` overlapping chunks
//! of `X`.
//!
//! A [`ShardedIndex`] partitions the weighted string into `S` *home ranges*
//! of roughly `n/S` positions each and builds one per-shard index (any
//! family, through the [`crate::builder`] layer) over the home range
//! extended by an **overlap** of `max_pattern_len − 1` positions to the
//! right. Any occurrence starts in exactly one home range, and because its
//! window is at most `max_pattern_len` letters it lies entirely inside that
//! shard's chunk — so no cross-boundary occurrence is ever lost, and
//! occurrence probabilities computed inside a chunk equal the global ones
//! (they only read the window's distributions).
//!
//! A query is routed to every shard through the PR-2 [`QueryBatch`]
//! executor (one [`QueryScratch`] per worker). Each shard reports
//! shard-local positions; hits that fall into the overlap region (their
//! start belongs to the *next* shard's home range) are dropped before the
//! sink sees them — that single home-range filter is the deduplication, and
//! it makes the concatenated per-shard outputs globally sorted, so the
//! final merge is allocation-free and sort-free. The differential harness
//! asserts the result identical to the unsharded index for every family.

use crate::builder::{AnyIndex, IndexSpec};
use crate::overlap::{chunk_end, overlap_len, retain_home_and_globalize};
use crate::traits::{validate_pattern, IndexStats, UncertainIndex};
use ius_arena::Arena;
use ius_obs::trace;
use ius_query::{finalize_into, MatchSink, QueryBatch, QueryScratch, QueryStats};
use ius_weighted::{Error, Result, WeightedString};

/// One shard: its global offset, the width of the home range it is
/// authoritative for, its chunk of `X` and the index built over the chunk.
#[derive(Debug, Clone)]
pub(crate) struct Shard {
    /// Global position of the chunk's first letter.
    pub(crate) offset: usize,
    /// Width of the home range (occurrence starts this shard reports).
    pub(crate) home_len: usize,
    /// The chunk of `X` (home range + overlap), owned by the shard.
    pub(crate) x: WeightedString,
    /// The index over the chunk.
    pub(crate) index: AnyIndex,
}

/// A sharded composite index over one weighted string.
#[derive(Debug, Clone)]
pub struct ShardedIndex {
    spec: IndexSpec,
    /// Length of the global string.
    n: usize,
    /// Upper bound on supported pattern lengths (the overlap covers
    /// occurrences up to this length; longer patterns are rejected).
    max_pattern_len: usize,
    shards: Vec<Shard>,
    executor: QueryBatch,
    /// The backing arena when opened zero-copy from a v3 file. The nested
    /// per-shard indexes borrow from it but do not retain a handle of their
    /// own, so the allocation is counted exactly once, here.
    arena: Option<Arena>,
}

impl ShardedIndex {
    /// Builds one per-shard index of the `spec`'s family over `num_shards`
    /// overlapping chunks of `x`. `max_pattern_len` bounds the pattern
    /// lengths the sharded index will serve; the chunk overlap is
    /// `max_pattern_len − 1`.
    ///
    /// Home ranges are `⌈n / num_shards⌉` wide; when `n` is not an exact
    /// multiple, trailing shards shrink and empty trailing home ranges are
    /// dropped (so [`ShardedIndex::num_shards`] can be smaller than
    /// requested).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameters`] if `num_shards` is zero or exceeds `n`,
    /// or if `max_pattern_len` is smaller than the family's minimum pattern
    /// length; construction errors of the per-shard builds are propagated.
    pub fn build(
        x: &WeightedString,
        spec: IndexSpec,
        num_shards: usize,
        max_pattern_len: usize,
    ) -> Result<Self> {
        Self::build_with_threads(x, spec, num_shards, max_pattern_len, 1)
    }

    /// [`ShardedIndex::build`] with the per-shard builds fanned out over
    /// `build_threads` workers (0 = all CPUs) on the shared
    /// [`ius_exec::Executor`]. Shard boundaries are planned serially before
    /// the fan-out, each shard builds independently over its own chunk, and
    /// errors propagate in shard order — the built index is byte-identical
    /// to the serial [`ShardedIndex::build`] at every thread count. Keep the
    /// `spec`'s own fan-out at 1 when building shards concurrently; nesting
    /// the two multiplies the worker count.
    ///
    /// # Errors
    ///
    /// Same contract as [`ShardedIndex::build`].
    pub fn build_with_threads(
        x: &WeightedString,
        spec: IndexSpec,
        num_shards: usize,
        max_pattern_len: usize,
        build_threads: usize,
    ) -> Result<Self> {
        let n = x.len();
        if n == 0 {
            return Err(Error::EmptyInput("weighted string"));
        }
        if num_shards == 0 {
            return Err(Error::InvalidParameters(
                "num_shards = 0: a sharded index needs at least one shard".into(),
            ));
        }
        if num_shards > n {
            return Err(Error::InvalidParameters(format!(
                "num_shards = {num_shards} exceeds the string length {n} \
                 (every shard needs a non-empty home range)"
            )));
        }
        if max_pattern_len == 0 {
            return Err(Error::InvalidParameters(
                "max_pattern_len = 0: the sharded index could not serve any pattern".into(),
            ));
        }
        if max_pattern_len < spec.lower_bound() {
            return Err(Error::InvalidParameters(format!(
                "max_pattern_len = {max_pattern_len} is below the family's minimum \
                 pattern length {}",
                spec.lower_bound()
            )));
        }
        let overlap = overlap_len(max_pattern_len);
        let home = n.div_ceil(num_shards);
        // Plan every shard's boundaries serially, then fan the independent
        // chunk builds out; assembling in plan order keeps the shard list —
        // and any propagated error — identical at every thread count.
        let mut plans: Vec<(usize, usize)> = Vec::with_capacity(num_shards);
        let mut offset = 0usize;
        while offset < n {
            let home_len = home.min(n - offset);
            plans.push((offset, home_len));
            offset += home_len;
        }
        let executor = ius_exec::Executor::with_threads(build_threads);
        let built = executor.run(plans.len(), |i| -> Result<Shard> {
            let (offset, home_len) = plans[i];
            let end = chunk_end(offset, home_len, overlap, n);
            let chunk = x.substring(offset, end)?;
            let index = spec.build(&chunk)?;
            Ok(Shard {
                offset,
                home_len,
                x: chunk,
                index,
            })
        });
        let mut shards = Vec::with_capacity(plans.len());
        for outcome in built {
            match outcome {
                Ok(shard) => shards.push(shard?),
                Err(task_panic) => panic!("{task_panic}"),
            }
        }
        Ok(Self {
            spec,
            n,
            max_pattern_len,
            shards,
            executor: QueryBatch::new(),
            arena: None,
        })
    }

    /// Overrides the number of worker threads the routing executor uses
    /// (defaults to all available CPUs).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.executor = QueryBatch::with_threads(threads);
        self
    }

    /// The family/parameter descriptor the shards were built from.
    pub fn spec(&self) -> &IndexSpec {
        &self.spec
    }

    /// Length of the global string.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff the global string is empty (never the case for a
    /// successfully built index).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of shards actually built.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The maximum pattern length this index serves.
    pub fn max_pattern_len(&self) -> usize {
        self.max_pattern_len
    }

    /// The chunk overlap (`max_pattern_len − 1`).
    pub fn overlap(&self) -> usize {
        self.max_pattern_len - 1
    }

    pub(crate) fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The sink-based query without an external corpus: every shard owns its
    /// chunk of `X`, so a sharded index is fully self-contained (which is
    /// what lets a persisted sharded file be served without regenerating the
    /// corpus). [`UncertainIndex::query_into`] delegates here, ignoring its
    /// `x` argument.
    ///
    /// # Errors
    ///
    /// Pattern-validation errors ([`Error::EmptyInput`],
    /// [`Error::PatternTooShort`], [`Error::PatternTooLong`]) and query
    /// errors of the per-shard indexes.
    pub fn query_owned_into(
        &self,
        pattern: &[u8],
        scratch: &mut QueryScratch,
        sink: &mut dyn MatchSink,
    ) -> Result<QueryStats> {
        validate_pattern(pattern, self.spec.lower_bound())?;
        if pattern.len() > self.max_pattern_len {
            return Err(Error::PatternTooLong {
                pattern: pattern.len(),
                upper_bound: self.max_pattern_len,
            });
        }
        // Fan out over the shards; every worker queries against its shard's
        // own chunk (shard-local coordinates), then hits are filtered to the
        // home range and translated to global offsets.
        let per_shard = self.executor.run::<(Vec<usize>, QueryStats), Error, _>(
            self.shards.len(),
            |i, worker_scratch| {
                let shard = &self.shards[i];
                let mut local = Vec::new();
                let stats =
                    shard
                        .index
                        .query_into(pattern, &shard.x, worker_scratch, &mut local)?;
                // Keep only home-range starts: overlap-region hits are the
                // next shard's responsibility (this is the deduplication —
                // see `crate::overlap`).
                retain_home_and_globalize(&mut local, shard.home_len, shard.offset);
                Ok((local, stats))
            },
        );
        let mut total = QueryStats::default();
        scratch.positions.clear();
        // The shards ran on executor threads, but their stats come back to
        // this (request) thread: record them as duration-only children of
        // the caller's query span, one group per shard with the sampled
        // stage breakdown nested inside.
        let traced = trace::active();
        for (i, entry) in per_shard.into_iter().enumerate() {
            let (positions, stats) = entry?;
            total.accumulate(&stats);
            if traced {
                trace::group(
                    trace::STAGE_PART,
                    stats.staged_ns(),
                    i as u64,
                    stats.reported as u64,
                );
                if stats.timed {
                    trace::leaf(trace::STAGE_SCAN, stats.scan_ns, 0, 0);
                    trace::leaf(trace::STAGE_LOCATE, stats.locate_ns, 0, 0);
                    trace::leaf(
                        trace::STAGE_VERIFY,
                        stats.verify_ns,
                        stats.candidates as u64,
                        0,
                    );
                    trace::leaf(trace::STAGE_REPORT, stats.report_ns, 0, 0);
                }
                trace::end_group();
            }
            // Home ranges are disjoint and increasing, and each shard's
            // output is sorted: the concatenation is globally sorted.
            scratch.positions.extend(positions);
        }
        // The accumulated `reported` counted shard-local deliveries
        // (including overlap hits dropped above); the authoritative count is
        // what actually reaches the sink.
        total.reported = finalize_into(&mut scratch.positions, true, sink);
        Ok(total)
    }

    /// Collects all occurrence positions without an external corpus — the
    /// allocating convenience wrapper over
    /// [`ShardedIndex::query_owned_into`].
    ///
    /// # Errors
    ///
    /// Same contract as [`ShardedIndex::query_owned_into`].
    pub fn query_owned(&self, pattern: &[u8]) -> Result<Vec<usize>> {
        let mut scratch = QueryScratch::new();
        let mut positions = Vec::new();
        self.query_owned_into(pattern, &mut scratch, &mut positions)?;
        Ok(positions)
    }

    /// Reassembles a sharded index from persisted parts (see
    /// `crate::persist`), validating the routing invariants: home ranges
    /// tile `[0, n)` in order and every chunk covers its home range plus the
    /// overlap (clipped at `n`).
    pub(crate) fn from_loaded_parts(
        spec: IndexSpec,
        n: usize,
        max_pattern_len: usize,
        shards: Vec<Shard>,
        arena: Option<Arena>,
    ) -> std::result::Result<Self, String> {
        if max_pattern_len < spec.lower_bound() {
            return Err("stored max_pattern_len is below the family's lower bound".into());
        }
        if shards.is_empty() {
            return Err("a sharded index needs at least one shard".into());
        }
        let overlap = overlap_len(max_pattern_len);
        let mut expected_offset = 0usize;
        for (i, shard) in shards.iter().enumerate() {
            if shard.offset != expected_offset || shard.home_len == 0 {
                return Err(format!("shard {i} does not tile the string"));
            }
            let end = chunk_end(shard.offset, shard.home_len, overlap, n);
            if shard.x.len() != end - shard.offset {
                return Err(format!("shard {i}'s chunk does not cover its overlap"));
            }
            expected_offset += shard.home_len;
        }
        if expected_offset != n {
            return Err("shard home ranges do not cover the string".into());
        }
        Ok(Self {
            spec,
            n,
            max_pattern_len,
            shards,
            executor: QueryBatch::new(),
            arena,
        })
    }
}

impl UncertainIndex for ShardedIndex {
    fn name(&self) -> &'static str {
        "SHARDED"
    }

    fn query_into(
        &self,
        pattern: &[u8],
        _x: &WeightedString,
        scratch: &mut QueryScratch,
        sink: &mut dyn MatchSink,
    ) -> Result<QueryStats> {
        self.query_owned_into(pattern, scratch, sink)
    }

    fn size_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.index.size_bytes() + shard.x.memory_bytes())
            .sum::<usize>()
            + self.arena.as_ref().map_or(0, Arena::alloc_bytes)
    }

    fn stats(&self) -> IndexStats {
        let mut aggregate = IndexStats {
            name: format!(
                "SHARDED-{}(S={})",
                self.spec.family.name(),
                self.shards.len()
            ),
            ..Default::default()
        };
        for shard in &self.shards {
            let stats = shard.index.stats();
            aggregate.size_bytes += stats.size_bytes + shard.x.memory_bytes();
            aggregate.num_nodes += stats.num_nodes;
            aggregate.num_leaves += stats.num_leaves;
            aggregate.num_grid_points += stats.num_grid_points;
            aggregate.num_mismatches += stats.num_mismatches;
        }
        aggregate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexFamily;
    use crate::minimizer_index::IndexVariant;
    use crate::naive::NaiveIndex;
    use crate::params::IndexParams;
    use ius_datasets::pangenome::PangenomeConfig;
    use ius_datasets::patterns::PatternSampler;
    use ius_datasets::uniform::UniformConfig;
    use ius_weighted::ZEstimation;

    #[test]
    fn sharded_output_is_identical_to_unsharded_for_any_shard_count() {
        let x = PangenomeConfig {
            n: 1_100,
            delta: 0.07,
            seed: 23,
            ..Default::default()
        }
        .generate();
        let (z, ell) = (16.0, 32usize);
        let params = IndexParams::new(z, ell, x.sigma()).unwrap();
        let spec = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::ArrayGrid), params);
        let unsharded = spec.build(&x).unwrap();
        let est = ZEstimation::build(&x, z).unwrap();
        let mut sampler = PatternSampler::new(&est, 9);
        let mut patterns = sampler.sample_many(ell, 20);
        patterns.extend(sampler.sample_many(2 * ell, 10));
        patterns.extend(sampler.sample_random(ell, 10, 7));
        assert!(!patterns.is_empty());
        for num_shards in [1usize, 3, 4, 7] {
            let sharded = ShardedIndex::build(&x, spec, num_shards, 2 * ell)
                .unwrap()
                .with_threads(2);
            assert!(sharded.num_shards() >= 1 && sharded.num_shards() <= num_shards);
            assert_eq!(sharded.overlap(), 2 * ell - 1);
            for pattern in &patterns {
                assert_eq!(
                    sharded.query(pattern, &x).unwrap(),
                    unsharded.query(pattern, &x).unwrap(),
                    "S = {num_shards}, pattern {:?}…",
                    &pattern[..4]
                );
            }
        }
    }

    #[test]
    fn parallel_shard_build_matches_serial_at_every_thread_count() {
        let x = PangenomeConfig {
            n: 900,
            delta: 0.06,
            seed: 41,
            ..Default::default()
        }
        .generate();
        let (z, ell) = (8.0, 16usize);
        let params = IndexParams::new(z, ell, x.sigma()).unwrap();
        let spec = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::Array), params);
        let serial = ShardedIndex::build(&x, spec, 5, 2 * ell).unwrap();
        let est = ZEstimation::build(&x, z).unwrap();
        let mut sampler = PatternSampler::new(&est, 3);
        let patterns = sampler.sample_many(ell, 15);
        assert!(!patterns.is_empty());
        for threads in [2usize, 3, 8] {
            let parallel = ShardedIndex::build_with_threads(&x, spec, 5, 2 * ell, threads).unwrap();
            assert_eq!(parallel.num_shards(), serial.num_shards());
            assert_eq!(parallel.stats().size_bytes, serial.stats().size_bytes);
            for pattern in &patterns {
                assert_eq!(
                    parallel.query(pattern, &x).unwrap(),
                    serial.query(pattern, &x).unwrap(),
                    "threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn sharded_naive_matches_direct_scan_including_boundaries() {
        // A deliberately tiny string with many shards, so nearly every
        // occurrence window crosses a chunk boundary.
        let x = UniformConfig {
            n: 64,
            sigma: 2,
            spread: 0.4,
            seed: 5,
        }
        .generate();
        let z = 6.0;
        let params = IndexParams::new(z, 1, x.sigma()).unwrap();
        let spec = IndexSpec::new(IndexFamily::Naive, params);
        let direct = NaiveIndex::new(z).unwrap();
        let sharded = ShardedIndex::build(&x, spec, 8, 12).unwrap();
        for len in 1..=12usize {
            for letter in 0..2u8 {
                let pattern = vec![letter; len];
                assert_eq!(
                    sharded.query(&pattern, &x).unwrap(),
                    direct.query(&pattern, &x).unwrap(),
                    "pattern {pattern:?}"
                );
            }
        }
    }

    #[test]
    fn pattern_length_contract() {
        let x = UniformConfig {
            n: 200,
            sigma: 2,
            spread: 0.5,
            seed: 2,
        }
        .generate();
        let params = IndexParams::new(8.0, 8, x.sigma()).unwrap();
        let spec = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::Array), params);
        let sharded = ShardedIndex::build(&x, spec, 4, 16).unwrap();
        assert_eq!(sharded.max_pattern_len(), 16);
        assert!(matches!(
            sharded.query(&[], &x),
            Err(Error::EmptyInput("pattern"))
        ));
        assert!(matches!(
            sharded.query(&[0u8; 4], &x),
            Err(Error::PatternTooShort { .. })
        ));
        assert!(matches!(
            sharded.query(&[0u8; 17], &x),
            Err(Error::PatternTooLong {
                pattern: 17,
                upper_bound: 16
            })
        ));
        assert!(sharded.query(&[0u8; 16], &x).is_ok());
    }

    #[test]
    fn build_validation() {
        let x = UniformConfig {
            n: 50,
            sigma: 2,
            spread: 0.5,
            seed: 1,
        }
        .generate();
        let params = IndexParams::new(4.0, 8, x.sigma()).unwrap();
        let spec = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::Array), params);
        // S = 0: typed error, no degenerate (shardless) map.
        let err = ShardedIndex::build(&x, spec, 0, 16).unwrap_err();
        assert!(matches!(err, Error::InvalidParameters(_)));
        assert!(err.to_string().contains("num_shards = 0"));
        // S > |X|: typed error instead of empty trailing shards.
        let err = ShardedIndex::build(&x, spec, 51, 16).unwrap_err();
        assert!(matches!(err, Error::InvalidParameters(_)));
        assert!(err.to_string().contains("51") && err.to_string().contains("50"));
        // max_pattern_len = 0: typed error instead of an overlap underflow.
        let err = ShardedIndex::build(&x, spec, 2, 0).unwrap_err();
        assert!(matches!(err, Error::InvalidParameters(_)));
        assert!(err.to_string().contains("max_pattern_len = 0"));
        // max_pattern_len below ℓ.
        assert!(ShardedIndex::build(&x, spec, 2, 4).is_err());
        let ok = ShardedIndex::build(&x, spec, 2, 8).unwrap();
        assert_eq!(ok.len(), 50);
        assert!(!ok.is_empty());
        assert!(ok.size_bytes() > 0);
        let stats = ok.stats();
        assert!(stats.name.contains("MWSA") && stats.name.contains("S=2"));
        assert_eq!(stats.size_bytes, ok.size_bytes());
    }

    #[test]
    fn stats_aggregate_over_shards() {
        let x = PangenomeConfig {
            n: 600,
            delta: 0.05,
            seed: 31,
            ..Default::default()
        }
        .generate();
        let params = IndexParams::new(8.0, 16, x.sigma()).unwrap();
        let spec = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::TreeGrid), params);
        let sharded = ShardedIndex::build(&x, spec, 3, 32).unwrap();
        let est = ZEstimation::build(&x, 8.0).unwrap();
        let pattern = PatternSampler::new(&est, 1).sample(16).unwrap();
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        let stats = sharded
            .query_into(&pattern, &x, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(stats.reported, out.len());
        assert!(stats.candidates >= stats.verified);
        let aggregate = sharded.stats();
        assert!(aggregate.num_nodes > 0);
        assert!(aggregate.num_grid_points > 0);
    }
}
