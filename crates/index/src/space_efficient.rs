//! Space-efficient construction of the minimizer index (MWST-SE,
//! Contribution 2 / Section 4 / Theorem 12 of the paper).
//!
//! The explicit construction of [`crate::MinimizerIndex`] first materialises
//! the z-estimation, which costs `Θ(nz)` working space even though the final
//! index only needs `O(n + (nz/ℓ)·log z)`. The construction implemented here
//! never builds the z-estimation: it simulates a DFS over the *extended solid
//! factor tree* of `X` — the trie of all solid factors extended by the heavy
//! string — keeping only the current root-to-leaf path. While walking, it
//! maintains
//!
//! * the running probability of the current solid factor,
//! * the list `Diff` of its deviations from the heavy string (at most
//!   `log₂ z`, Lemma 3),
//! * a window-minimum structure over the k-mers of the first `ℓ` letters of
//!   the current string (the paper uses a heap; we use an ordered set with
//!   the same `O(log ℓ)` update cost).
//!
//! Whenever the current length-ℓ prefix is solid, the position of its
//! minimizer is marked; when the DFS retreats past a marked position, the
//! string hanging from it becomes one leaf of the minimizer solid factor
//! tree, encoded as `(anchor, Diff)` — `O(log z)` words. The backward tree is
//! produced by running the very same procedure on the reversed string, with
//! the minimizers still computed on the *forward* orientation of each window
//! so that both trees anchor the same positions.
//!
//! The emitted factors are finally sorted with `O(log z)`-time comparisons
//! against an LCE index over the heavy string and assembled into the same
//! [`crate::MinimizerIndex`] produced by the explicit construction (grid
//! variants excepted: pairing forward and backward leaves requires strand
//! identities, which only the explicit construction has).

use crate::encode::{Direction, EncodedFactorSetBuilder, Mismatch, PendingFactor};
use crate::minimizer_index::{IndexVariant, MinimizerIndex};
use crate::params::IndexParams;
use ius_sampling::order::KmerKeyer;
use ius_sampling::{BackWindowMinimizer, FrontWindowMinimizer};
use ius_weighted::{is_solid, Error, HeavyString, Result, WeightedString};

/// Builder running the space-efficient (Section 4) construction.
#[derive(Debug, Clone)]
pub struct SpaceEfficientBuilder {
    params: IndexParams,
    /// Abort threshold on the number of visited extended-tree nodes, as a
    /// multiple of `n·z` (the paper aborts at `nz` and falls back to the
    /// classic construction; we default to a small constant multiple).
    node_cap_factor: f64,
    /// Worker count for the factor sort (1 = serial, 0 = all CPUs). The DFS
    /// itself is inherently sequential; only the final sort fans out.
    threads: usize,
}

/// Statistics reported by the space-efficient construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeBuildStats {
    /// Nodes of the extended solid factor tree visited by the forward pass.
    pub forward_nodes: usize,
    /// Nodes visited by the backward pass.
    pub backward_nodes: usize,
    /// Factors emitted into the forward tree.
    pub forward_factors: usize,
    /// Factors emitted into the backward tree.
    pub backward_factors: usize,
}

impl SpaceEfficientBuilder {
    /// Creates the builder.
    pub fn new(params: IndexParams) -> Self {
        Self {
            params,
            node_cap_factor: 64.0,
            threads: 1,
        }
    }

    /// Overrides the node-cap factor (multiples of `n·z` after which the
    /// construction aborts with an error, mirroring the paper's fallback).
    pub fn with_node_cap_factor(mut self, factor: f64) -> Self {
        self.node_cap_factor = factor.max(1.0);
        self
    }

    /// Fans the final factor sort out over `threads` workers (0 = all CPUs).
    /// The built index is byte-identical at every thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs the construction and returns the index.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidParameters`] for grid variants (they require the
    ///   strand identities of the explicit construction) or when the
    ///   extended solid factor tree exceeds the node cap;
    /// * parameter validation errors.
    pub fn build(&self, x: &WeightedString, variant: IndexVariant) -> Result<MinimizerIndex> {
        self.build_with_stats(x, variant).map(|(index, _)| index)
    }

    /// Like [`SpaceEfficientBuilder::build`] but also returns construction
    /// statistics.
    ///
    /// # Errors
    ///
    /// See [`SpaceEfficientBuilder::build`].
    pub fn build_with_stats(
        &self,
        x: &WeightedString,
        variant: IndexVariant,
    ) -> Result<(MinimizerIndex, SeBuildStats)> {
        if variant.has_grid() {
            return Err(Error::InvalidParameters(
                "the space-efficient construction does not support the grid variants \
                 (MWST-G / MWSA-G); build them from an explicit z-estimation instead"
                    .into(),
            ));
        }
        if self.params.ell > x.len() {
            return Err(Error::InvalidParameters(format!(
                "ℓ = {} exceeds the string length {}",
                self.params.ell,
                x.len()
            )));
        }
        // The DFS keys each k-mer in isolation, so it needs an order whose
        // raw keys are totally ordered. The lexicographic fallback for
        // σ^k beyond u64 produces range-local *ranks*, which cannot be
        // computed incrementally here — the explicit construction handles
        // those parameters correctly.
        if !KmerKeyer::new(self.params.order, self.params.k, x.sigma()).has_total_keys() {
            return Err(Error::InvalidParameters(format!(
                "the space-efficient construction requires a k-mer order with total \
                 keys, but σ = {} and k = {} overflow the packed lexicographic keys; \
                 use the explicit construction (or the Karp–Rabin order) instead",
                x.sigma(),
                self.params.k
            )));
        }
        let node_cap = ((x.len() as f64) * self.params.z * self.node_cap_factor)
            .min(usize::MAX as f64) as usize;
        let heavy = HeavyString::new(x);
        let mut stats = SeBuildStats::default();

        // Forward pass on X. The builder borrows the heavy ranks (no copy).
        let mut fwd_builder =
            EncodedFactorSetBuilder::new(Direction::Forward, heavy.shared_ranks());
        stats.forward_nodes = dfs_collect(
            x,
            &heavy,
            &self.params,
            Direction::Forward,
            &mut fwd_builder,
            node_cap,
        )?;
        stats.forward_factors = fwd_builder.len();

        // Backward pass on the reversed string.
        let x_rev = x.reversed();
        let heavy_rev = HeavyString::new(&x_rev);
        let mut bwd_builder =
            EncodedFactorSetBuilder::new(Direction::Backward, heavy.shared_ranks());
        stats.backward_nodes = dfs_collect(
            &x_rev,
            &heavy_rev,
            &self.params,
            Direction::Backward,
            &mut bwd_builder,
            node_cap,
        )?;
        stats.backward_factors = bwd_builder.len();

        let (fwd, fwd_lcps) = fwd_builder.finish_with_threads(self.threads);
        let (bwd, bwd_lcps) = bwd_builder.finish_with_threads(self.threads);
        let index = MinimizerIndex::assemble(
            x,
            self.params,
            variant,
            heavy,
            fwd,
            fwd_lcps,
            bwd,
            bwd_lcps,
            "space-efficient",
        )?;
        Ok((index, stats))
    }
}

/// One frame of the iterative DFS over the extended solid factor tree.
struct Frame {
    /// Position (in DFS-string coordinates) at which this node's string starts.
    pos: usize,
    /// Next letter rank to try for the child at `pos - 1`.
    next_letter: u8,
    /// Probability of the parent's solid factor, to restore on pop.
    prev_p: f64,
    /// Whether creating this node pushed an entry onto `Diff`.
    pushed_diff: bool,
    /// Whether a k-mer was pushed into the window structure for this node.
    pushed_kmer: bool,
    /// Whether this node lies on the pure-heavy spine (its solid factor is
    /// empty and its probability is exactly 1).
    spine: bool,
}

/// Either of the two window-minimum structures, depending on the pass.
enum WindowMin {
    Forward(FrontWindowMinimizer),
    Backward(BackWindowMinimizer),
}

impl WindowMin {
    fn argmin(&self) -> Option<usize> {
        match self {
            WindowMin::Forward(w) => w.argmin(),
            WindowMin::Backward(w) => w.argmin(),
        }
    }
}

/// Runs one DFS pass and pushes the emitted factors into `builder`.
///
/// `dfs_x` is the string being walked (X itself for the forward pass, its
/// reverse for the backward pass); `dfs_heavy` is its heavy string. Emitted
/// anchors are always expressed in the coordinates of the *original* string.
fn dfs_collect(
    dfs_x: &WeightedString,
    dfs_heavy: &HeavyString,
    params: &IndexParams,
    orientation: Direction,
    builder: &mut EncodedFactorSetBuilder,
    node_cap: usize,
) -> Result<usize> {
    let n = dfs_x.len();
    let sigma = dfs_x.sigma() as u8;
    let ell = params.ell;
    let k = params.k;
    let z = params.z;
    let keyer = KmerKeyer::new(params.order, k, sigma as usize);
    let width = ell - k + 1;

    // Current letters of the DFS string (heavy by default, overridden along
    // the current path), the deviation stack and the running probability.
    let mut cur: Vec<u8> = dfs_heavy.as_ranks().to_vec();
    let mut diff: Vec<Mismatch0> = Vec::new();
    let mut cur_p = 1.0f64;
    let mut marked = vec![false; n];
    let mut window = match orientation {
        Direction::Forward => WindowMin::Forward(FrontWindowMinimizer::new(width)),
        Direction::Backward => WindowMin::Backward(BackWindowMinimizer::new(width)),
    };
    let mut kmer_buf = vec![0u8; k];
    let mut nodes = 0usize;

    let mut stack: Vec<Frame> = Vec::with_capacity(n + 1);
    stack.push(Frame {
        pos: n,
        next_letter: 0,
        prev_p: 1.0,
        pushed_diff: false,
        pushed_kmer: false,
        spine: true,
    });

    while let Some(frame_pos) = stack.last().map(|f| f.pos) {
        // Try to descend to the next viable child of the top frame.
        let mut descended = false;
        if frame_pos > 0 {
            let i = frame_pos - 1;
            let top_spine = stack.last().expect("non-empty").spine;
            let heavy_letter = dfs_heavy.letter(i);
            let start_letter = stack.last().expect("non-empty").next_letter;
            for c in start_letter..sigma {
                let p_letter = dfs_x.prob(i, c);
                let (child_p, child_spine) = if top_spine && c == heavy_letter {
                    (1.0, true)
                } else {
                    (cur_p * p_letter, false)
                };
                if !child_spine && !is_solid(child_p, z) {
                    continue;
                }
                // Viable child: record where to resume, apply the prepend.
                stack.last_mut().expect("non-empty").next_letter = c + 1;
                nodes += 1;
                if nodes > node_cap {
                    return Err(Error::InvalidParameters(format!(
                        "extended solid factor tree exceeded {node_cap} nodes; \
                         use the explicit construction for these parameters"
                    )));
                }
                let pushed_diff = c != heavy_letter;
                if pushed_diff {
                    let ratio = p_letter / dfs_x.prob(i, heavy_letter);
                    diff.push(Mismatch0 {
                        pos: i as u32,
                        letter: c,
                        ratio,
                    });
                }
                cur[i] = c;
                // Push the newly completed k-mer into the window structure.
                let pushed_kmer = match (&mut window, orientation) {
                    (WindowMin::Forward(w), Direction::Forward) => {
                        if i + k <= n {
                            // The forward k-mer is contiguous in `cur`; key it
                            // in place (no buffer copy).
                            w.push_front(i, keyer.key(&cur[i..i + k]));
                            true
                        } else {
                            false
                        }
                    }
                    (WindowMin::Backward(w), Direction::Backward) => {
                        // `i` is a position of the reversed string; the newly
                        // completed k-mer of the *original* string ends at
                        // original position n-1-i and starts at n-1-i-k+1.
                        let f_end = n - 1 - i;
                        if f_end + 1 >= k {
                            let f_start = f_end + 1 - k;
                            for (d, slot) in kmer_buf.iter_mut().enumerate() {
                                // Original position f_start + d ↔ reversed
                                // position n-1-(f_start+d).
                                *slot = cur[n - 1 - (f_start + d)];
                            }
                            w.push_back(f_start, keyer.key(&kmer_buf));
                            true
                        } else {
                            false
                        }
                    }
                    _ => unreachable!("window structure matches orientation"),
                };
                // If the length-ℓ prefix of the current string is solid, mark
                // its minimizer.
                if i + ell <= n {
                    let mut log_p = dfs_heavy.range_log_probability(i, i + ell);
                    for m in diff.iter().rev() {
                        if (m.pos as usize) < i + ell {
                            log_p += m.ratio.ln();
                        } else {
                            break;
                        }
                    }
                    if is_solid(log_p.exp(), z) {
                        if let Some(sel) = window.argmin() {
                            // `sel` is in original coordinates for the
                            // backward pass and DFS coordinates for the
                            // forward pass; convert to DFS coordinates for
                            // marking.
                            let mark_at = match orientation {
                                Direction::Forward => sel,
                                Direction::Backward => n - 1 - sel,
                            };
                            marked[mark_at] = true;
                        }
                    }
                }
                stack.push(Frame {
                    pos: i,
                    next_letter: 0,
                    prev_p: cur_p,
                    pushed_diff,
                    pushed_kmer,
                    spine: child_spine,
                });
                cur_p = child_p;
                descended = true;
                break;
            }
        }
        if descended {
            continue;
        }
        // No more children: retreat from the top frame.
        let frame = stack.pop().expect("non-empty");
        if frame.pos == n {
            break;
        }
        let q = frame.pos;
        if marked[q] {
            marked[q] = false;
            // Emit the factor hanging from position q: it spans the rest of
            // the DFS string and deviates from the heavy string exactly at
            // the current Diff entries (all of which lie at positions ≥ q).
            let len = (n - q) as u32;
            // `diff` is a stack of strictly decreasing DFS positions, so
            // reverse iteration yields strictly increasing depths — already
            // sorted, no post-hoc sort needed. Ratios are position-wise and
            // orientation-free.
            let mismatches: Vec<Mismatch> = diff
                .iter()
                .rev()
                .map(|m| Mismatch {
                    depth: m.pos - q as u32,
                    letter: m.letter,
                    ratio: m.ratio,
                })
                .collect();
            let anchor_x = match orientation {
                Direction::Forward => q as u32,
                Direction::Backward => (n - 1 - q) as u32,
            };
            builder.push(PendingFactor {
                anchor_x,
                len,
                strand: u32::MAX,
                mismatches,
            });
        }
        // Undo the prepend that created this node.
        if frame.pushed_diff {
            diff.pop();
        }
        cur[q] = dfs_heavy.letter(q);
        if frame.pushed_kmer {
            match &mut window {
                WindowMin::Forward(w) => {
                    w.pop_front();
                }
                WindowMin::Backward(w) => {
                    w.pop_back();
                }
            }
        }
        cur_p = frame.prev_p;
    }
    Ok(nodes)
}

/// A deviation entry on the DFS stack (absolute position within the DFS
/// string, unlike [`Mismatch`] whose depth is factor-relative).
#[derive(Debug, Clone, Copy)]
struct Mismatch0 {
    pos: u32,
    letter: u8,
    ratio: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveIndex;
    use crate::traits::UncertainIndex;
    use ius_datasets::patterns::PatternSampler;
    use ius_datasets::uniform::UniformConfig;
    use ius_weighted::ZEstimation;

    #[test]
    fn rejects_grid_variants_and_oversized_ell() {
        let x = UniformConfig {
            n: 100,
            sigma: 2,
            spread: 0.5,
            seed: 1,
        }
        .generate();
        let params = IndexParams::new(4.0, 16, 2).unwrap();
        let builder = SpaceEfficientBuilder::new(params);
        assert!(builder.build(&x, IndexVariant::TreeGrid).is_err());
        assert!(builder.build(&x, IndexVariant::ArrayGrid).is_err());
        let params = IndexParams::new(4.0, 1000, 2).unwrap();
        assert!(SpaceEfficientBuilder::new(params)
            .build(&x, IndexVariant::Tree)
            .is_err());
    }

    // The full differential coverage of the space-efficient construction
    // against the naive oracle (uniform + pangenome corpora, all entry
    // points) lives in the shared harness `tests/differential.rs`.

    #[test]
    fn se_build_stats_and_query_agree_with_the_explicit_construction() {
        let x = UniformConfig {
            n: 260,
            sigma: 2,
            spread: 0.5,
            seed: 77,
        }
        .generate();
        let z = 8.0;
        let ell = 8;
        let params = IndexParams::new(z, ell, 2).unwrap();
        let est = ZEstimation::build(&x, z).unwrap();
        let explicit =
            MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::Array).unwrap();
        let (se, stats) = SpaceEfficientBuilder::new(params)
            .build_with_stats(&x, IndexVariant::Array)
            .unwrap();
        assert_eq!(se.construction(), "space-efficient");
        assert!(stats.forward_nodes > 0 && stats.backward_nodes > 0);
        assert!(stats.forward_factors > 0 && stats.backward_factors > 0);
        let mut sampler = PatternSampler::new(&est, 5);
        let mut patterns = sampler.sample_many(ell, 20);
        patterns.extend(sampler.sample_many(14, 10));
        for pattern in &patterns {
            assert_eq!(
                se.query(pattern, &x).unwrap(),
                explicit.query(pattern, &x).unwrap(),
                "SE vs explicit {pattern:?}"
            );
        }
    }

    #[test]
    fn rejects_orders_without_total_keys() {
        // σ = 4, k = 40 overflows the packed lexicographic keys (4^40 > 2^63);
        // keying such k-mers in isolation yields the constant 0, which would
        // silently mis-sample anchors — the builder must refuse instead. The
        // explicit construction handles the same parameters correctly.
        use ius_sampling::KmerOrder;
        let x = UniformConfig {
            n: 400,
            sigma: 4,
            spread: 0.4,
            seed: 9,
        }
        .generate();
        let params = IndexParams::new(4.0, 48, 4)
            .unwrap()
            .with_k(40)
            .unwrap()
            .with_order(KmerOrder::Lexicographic);
        let err = SpaceEfficientBuilder::new(params)
            .build(&x, IndexVariant::Array)
            .unwrap_err();
        assert!(matches!(err, Error::InvalidParameters(msg) if msg.contains("total")));
        let est = ZEstimation::build(&x, 4.0).unwrap();
        let explicit =
            MinimizerIndex::build_from_estimation(&x, &est, params, IndexVariant::Array).unwrap();
        let naive = NaiveIndex::new(4.0).unwrap();
        let mut sampler = PatternSampler::new(&est, 2);
        for pattern in sampler.sample_many(48, 10) {
            assert_eq!(
                explicit.query(&pattern, &x).unwrap(),
                naive.query(&pattern, &x).unwrap()
            );
        }
    }

    #[test]
    fn node_cap_aborts_gracefully() {
        let x = UniformConfig {
            n: 400,
            sigma: 2,
            spread: 0.9,
            seed: 3,
        }
        .generate();
        let params = IndexParams::new(16.0, 8, 2).unwrap();
        let builder = SpaceEfficientBuilder::new(params).with_node_cap_factor(1.0);
        // With a cap of n·z nodes the uniform high-entropy string may or may
        // not abort; either outcome must be clean (no panic), and an abort
        // must produce the documented error.
        match builder.build(&x, IndexVariant::Array) {
            Ok(index) => assert!(index.size_bytes() > 0),
            Err(Error::InvalidParameters(msg)) => assert!(msg.contains("exceeded")),
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
}
