//! The common interface of every uncertain-string index.

use ius_weighted::{Result, WeightedString};

/// Structural statistics of an index, used by the benchmark harness to
/// reproduce the paper's size and construction-space figures and by tests to
/// check asymptotic expectations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexStats {
    /// Human-readable index name (`WST`, `MWSA-G`, …).
    pub name: String,
    /// Heap bytes owned by the index (excluding the input `X`).
    pub size_bytes: usize,
    /// Number of tree nodes (0 for array-based indexes).
    pub num_nodes: usize,
    /// Number of leaves / array entries.
    pub num_leaves: usize,
    /// Number of 2D grid points (0 when no grid is built).
    pub num_grid_points: usize,
    /// Number of stored heavy-string mismatches (minimizer indexes only).
    pub num_mismatches: usize,
}

/// An index over one uncertain string `X` and one weight threshold `1/z`,
/// answering solid-occurrence pattern-matching queries.
pub trait UncertainIndex {
    /// Short display name of the index family (e.g. `"MWSA"`).
    fn name(&self) -> &'static str;

    /// Reports all 0-based starting positions of z-solid occurrences of the
    /// rank-encoded `pattern` in `X`, sorted increasingly and deduplicated.
    ///
    /// The weighted string is passed back in so that indexes which verify
    /// candidates by random access to `X` (the simple query of Section 5 of
    /// the paper) can do so without owning a copy; indexes that do not need
    /// it simply ignore the argument.
    ///
    /// # Errors
    ///
    /// * [`ius_weighted::Error::PatternTooShort`] if the index was built with
    ///   a lower bound `ℓ` and `|pattern| < ℓ`;
    /// * [`ius_weighted::Error::EmptyInput`] for an empty pattern.
    fn query(&self, pattern: &[u8], x: &WeightedString) -> Result<Vec<usize>>;

    /// Heap bytes owned by the index (excluding `X` itself).
    fn size_bytes(&self) -> usize;

    /// Structural statistics (size, node/leaf/point counts).
    fn stats(&self) -> IndexStats;
}

/// Deduplicates and sorts a list of candidate positions in place and returns
/// it — the common post-processing step of every query implementation.
pub fn finalize_positions(mut positions: Vec<usize>) -> Vec<usize> {
    positions.sort_unstable();
    positions.dedup();
    positions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_sorts_and_dedups() {
        assert_eq!(finalize_positions(vec![5, 1, 5, 3, 1]), vec![1, 3, 5]);
        assert_eq!(finalize_positions(vec![]), Vec::<usize>::new());
    }

    #[test]
    fn stats_default_is_zeroed() {
        let s = IndexStats::default();
        assert_eq!(s.size_bytes, 0);
        assert_eq!(s.num_nodes, 0);
        assert!(s.name.is_empty());
    }
}
