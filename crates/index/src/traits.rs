//! The common interface of every uncertain-string index.

use ius_query::{MatchSink, QueryScratch, QueryStats};
use ius_weighted::{Error, Result, WeightedString};

/// Structural statistics of an index, used by the benchmark harness to
/// reproduce the paper's size and construction-space figures and by tests to
/// check asymptotic expectations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexStats {
    /// Human-readable index name (`WST`, `MWSA-G`, …).
    pub name: String,
    /// Heap bytes owned by the index (excluding the input `X`).
    pub size_bytes: usize,
    /// Number of tree nodes (0 for array-based indexes).
    pub num_nodes: usize,
    /// Number of leaves / array entries.
    pub num_leaves: usize,
    /// Number of 2D grid points (0 when no grid is built).
    pub num_grid_points: usize,
    /// Number of stored heavy-string mismatches (minimizer indexes only).
    pub num_mismatches: usize,
}

/// An index over one uncertain string `X` and one weight threshold `1/z`,
/// answering solid-occurrence pattern-matching queries.
pub trait UncertainIndex {
    /// Short display name of the index family (e.g. `"MWSA"`).
    fn name(&self) -> &'static str;

    /// The sink-based query entry point: reports every 0-based starting
    /// position of a z-solid occurrence of the rank-encoded `pattern` in `X`
    /// to `sink`, sorted increasingly and deduplicated, and returns the
    /// query's [`QueryStats`].
    ///
    /// `scratch` owns the reusable buffers; once they have warmed up to the
    /// workload's high-water mark, steady-state queries perform no heap
    /// allocation on the hot paths. The weighted string is passed back in so
    /// that indexes which verify candidates by random access to `X` (the
    /// simple query of Section 5 of the paper) can do so without owning a
    /// copy; indexes that do not need it simply ignore the argument.
    ///
    /// # Errors
    ///
    /// * [`ius_weighted::Error::PatternTooShort`] if the index was built with
    ///   a lower bound `ℓ` and `|pattern| < ℓ`;
    /// * [`ius_weighted::Error::EmptyInput`] for an empty pattern.
    fn query_into(
        &self,
        pattern: &[u8],
        x: &WeightedString,
        scratch: &mut QueryScratch,
        sink: &mut dyn MatchSink,
    ) -> Result<QueryStats>;

    /// Reports all z-solid occurrence positions as a fresh vector — a thin
    /// wrapper over [`UncertainIndex::query_into`] with a one-shot scratch
    /// and a collect-all sink.
    ///
    /// # Errors
    ///
    /// Same contract as [`UncertainIndex::query_into`].
    fn query(&self, pattern: &[u8], x: &WeightedString) -> Result<Vec<usize>> {
        let mut scratch = QueryScratch::new();
        let mut positions = Vec::new();
        self.query_into(pattern, x, &mut scratch, &mut positions)?;
        Ok(positions)
    }

    /// The retained pre-overhaul single-shot query implementation, kept
    /// compiled so the query benchmark measures real old code (fresh buffers
    /// at every layer, byte-at-a-time factor comparisons, per-query scheme
    /// setup). Families without a distinct legacy path fall back to
    /// [`UncertainIndex::query`].
    ///
    /// # Errors
    ///
    /// Same contract as [`UncertainIndex::query`].
    fn query_reference(&self, pattern: &[u8], x: &WeightedString) -> Result<Vec<usize>> {
        self.query(pattern, x)
    }

    /// Heap bytes owned by the index (excluding `X` itself).
    fn size_bytes(&self) -> usize;

    /// Structural statistics (size, node/leaf/point counts).
    fn stats(&self) -> IndexStats;
}

/// Validates the pattern-length contract shared by every index family:
/// a pattern must be non-empty and at least `lower_bound` letters long
/// (families without a length bound pass `lower_bound = 1`).
///
/// # Errors
///
/// [`Error::EmptyInput`] for an empty pattern,
/// [`Error::PatternTooShort`] when `|pattern| < lower_bound`.
pub fn validate_pattern(pattern: &[u8], lower_bound: usize) -> Result<()> {
    if pattern.is_empty() {
        return Err(Error::EmptyInput("pattern"));
    }
    if pattern.len() < lower_bound {
        return Err(Error::PatternTooShort {
            pattern: pattern.len(),
            lower_bound,
        });
    }
    Ok(())
}

/// Deduplicates and sorts a list of candidate positions in place and returns
/// it — the Vec-based post-processing step of the retained legacy query
/// paths. The sink-based engine uses [`ius_query::finalize_into`] instead,
/// whose `sorted` fast path lets already-sorted sources (e.g. the naive
/// scan) skip the redundant sort under a debug assertion.
pub fn finalize_positions(mut positions: Vec<usize>) -> Vec<usize> {
    positions.sort_unstable();
    positions.dedup();
    positions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_sorts_and_dedups() {
        assert_eq!(finalize_positions(vec![5, 1, 5, 3, 1]), vec![1, 3, 5]);
        assert_eq!(finalize_positions(vec![]), Vec::<usize>::new());
    }

    #[test]
    fn pattern_validation_covers_both_error_paths() {
        assert!(matches!(
            validate_pattern(&[], 1),
            Err(Error::EmptyInput("pattern"))
        ));
        assert!(matches!(
            validate_pattern(&[0, 1], 4),
            Err(Error::PatternTooShort {
                pattern: 2,
                lower_bound: 4
            })
        ));
        assert!(validate_pattern(&[0, 1], 1).is_ok());
        assert!(validate_pattern(&[0, 1], 2).is_ok());
    }

    #[test]
    fn stats_default_is_zeroed() {
        let s = IndexStats::default();
        assert_eq!(s.size_bytes, 0);
        assert_eq!(s.num_nodes, 0);
        assert!(s.name.is_empty());
    }
}
