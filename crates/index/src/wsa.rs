//! The weighted suffix array (WSA) baseline.
//!
//! The WSA (Charalampopoulos, Iliopoulos, Liu, Pissis — "Property Suffix
//! Array with applications in indexing weighted sequences") is the
//! state-of-the-art *array-based* index for Weighted Indexing: the property
//! suffix array of the z-estimation. Its size and construction space are
//! `Θ(nz)`; queries are answered by binary search in `O(m log(nz) + |Occ|)`
//! time. It is one of the two baselines every figure of the paper compares
//! against.

use crate::property_text::PropertyText;
use crate::traits::{finalize_positions, IndexStats, UncertainIndex};
use ius_weighted::{Error, Result, WeightedString, ZEstimation};

/// The weighted (property) suffix array.
#[derive(Debug, Clone)]
pub struct Wsa {
    z: f64,
    property_text: PropertyText,
}

impl Wsa {
    /// Builds the WSA from a weighted string, materialising the z-estimation
    /// internally.
    ///
    /// # Errors
    ///
    /// Propagates threshold validation errors from the z-estimation.
    pub fn build(x: &WeightedString, z: f64) -> Result<Self> {
        let estimation = ZEstimation::build(x, z)?;
        Self::build_from_estimation(&estimation)
    }

    /// Builds the WSA from an existing z-estimation (the benchmark harness
    /// shares one estimation across all indexes of a configuration).
    ///
    /// # Errors
    ///
    /// [`Error::EmptyInput`] if the estimation has no strands.
    pub fn build_from_estimation(estimation: &ZEstimation) -> Result<Self> {
        Ok(Self {
            z: estimation.z(),
            property_text: PropertyText::build(estimation)?,
        })
    }

    /// The weight-threshold denominator.
    pub fn z(&self) -> f64 {
        self.z
    }

    /// The underlying property text (exposed for the tree baseline and for
    /// white-box tests).
    pub fn property_text(&self) -> &PropertyText {
        &self.property_text
    }
}

impl UncertainIndex for Wsa {
    fn name(&self) -> &'static str {
        "WSA"
    }

    fn query(&self, pattern: &[u8], _x: &WeightedString) -> Result<Vec<usize>> {
        if pattern.is_empty() {
            return Err(Error::EmptyInput("pattern"));
        }
        Ok(finalize_positions(self.property_text.positions_of(pattern)))
    }

    fn size_bytes(&self) -> usize {
        self.property_text.memory_bytes()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            name: self.name().to_string(),
            size_bytes: self.size_bytes(),
            num_nodes: 0,
            num_leaves: self.property_text.psa().len(),
            num_grid_points: 0,
            num_mismatches: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ius_datasets::uniform::UniformConfig;
    use ius_weighted::solid;
    use ius_weighted::string::paper_example;

    #[test]
    fn paper_example_queries() {
        let x = paper_example();
        let wsa = Wsa::build(&x, 4.0).unwrap();
        assert_eq!(wsa.query(&[0, 0, 0, 0], &x).unwrap(), vec![0]);
        assert_eq!(wsa.query(&[0, 1], &x).unwrap(), vec![0, 3, 4]);
        assert_eq!(wsa.query(&[1, 0, 1, 0], &x).unwrap(), Vec::<usize>::new());
        assert!(wsa.query(&[], &x).is_err());
        assert_eq!(wsa.name(), "WSA");
        assert!(wsa.size_bytes() > 0);
        assert_eq!(wsa.z(), 4.0);
    }

    #[test]
    fn matches_naive_on_random_inputs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for (n, sigma, z) in [(150usize, 2usize, 5.0f64), (200, 4, 9.0), (120, 3, 2.0)] {
            let x = UniformConfig {
                n,
                sigma,
                spread: 0.7,
                seed: n as u64,
            }
            .generate();
            let wsa = Wsa::build(&x, z).unwrap();
            for len in 1..=7 {
                for _ in 0..25 {
                    let pattern: Vec<u8> =
                        (0..len).map(|_| rng.gen_range(0..sigma as u8)).collect();
                    assert_eq!(
                        wsa.query(&pattern, &x).unwrap(),
                        solid::occurrences(&x, &pattern, z),
                        "pattern {pattern:?} n={n} z={z}"
                    );
                }
            }
        }
    }

    #[test]
    fn stats_reflect_structure() {
        let x = paper_example();
        let wsa = Wsa::build(&x, 4.0).unwrap();
        let stats = wsa.stats();
        assert_eq!(stats.name, "WSA");
        assert!(stats.num_leaves > 0);
        assert_eq!(stats.num_nodes, 0);
        assert_eq!(stats.size_bytes, wsa.size_bytes());
    }

    #[test]
    fn size_grows_with_z() {
        let x = UniformConfig {
            n: 300,
            sigma: 4,
            spread: 0.4,
            seed: 2,
        }
        .generate();
        let small = Wsa::build(&x, 2.0).unwrap().size_bytes();
        let large = Wsa::build(&x, 16.0).unwrap().size_bytes();
        assert!(large > small);
    }
}
