//! The weighted suffix array (WSA) baseline.
//!
//! The WSA (Charalampopoulos, Iliopoulos, Liu, Pissis — "Property Suffix
//! Array with applications in indexing weighted sequences") is the
//! state-of-the-art *array-based* index for Weighted Indexing: the property
//! suffix array of the z-estimation. Its size and construction space are
//! `Θ(nz)`; queries are answered by binary search in `O(m log(nz) + |Occ|)`
//! time. It is one of the two baselines every figure of the paper compares
//! against.

use crate::property_text::PropertyText;
use crate::traits::{finalize_positions, validate_pattern, IndexStats, UncertainIndex};
use ius_arena::Arena;
use ius_query::{finalize_into, MatchSink, QueryScratch, QueryStats};
use ius_weighted::{Error, Result, WeightedString, ZEstimation};

/// The weighted (property) suffix array.
#[derive(Debug, Clone)]
pub struct Wsa {
    z: f64,
    property_text: PropertyText,
    /// The backing arena when opened zero-copy from a v3 file; counted once
    /// here since borrowing components report zero owned bytes.
    arena: Option<Arena>,
}

impl Wsa {
    /// Builds the WSA from a weighted string, materialising the z-estimation
    /// internally.
    ///
    /// # Errors
    ///
    /// Propagates threshold validation errors from the z-estimation.
    pub fn build(x: &WeightedString, z: f64) -> Result<Self> {
        let estimation = ZEstimation::build(x, z)?;
        Self::build_from_estimation(&estimation)
    }

    /// Builds the WSA from an existing z-estimation (the benchmark harness
    /// shares one estimation across all indexes of a configuration).
    ///
    /// # Errors
    ///
    /// [`Error::EmptyInput`] if the estimation has no strands.
    pub fn build_from_estimation(estimation: &ZEstimation) -> Result<Self> {
        Ok(Self {
            z: estimation.z(),
            property_text: PropertyText::build(estimation)?,
            arena: None,
        })
    }

    /// The weight-threshold denominator.
    pub fn z(&self) -> f64 {
        self.z
    }

    /// The underlying property text (exposed for the tree baseline and for
    /// white-box tests).
    pub fn property_text(&self) -> &PropertyText {
        &self.property_text
    }

    /// Reassembles a WSA from its persisted parts (see `crate::persist`).
    pub(crate) fn from_loaded_parts(
        z: f64,
        property_text: PropertyText,
        arena: Option<Arena>,
    ) -> Self {
        Self {
            z,
            property_text,
            arena,
        }
    }
}

impl UncertainIndex for Wsa {
    fn name(&self) -> &'static str {
        "WSA"
    }

    fn query_into(
        &self,
        pattern: &[u8],
        _x: &WeightedString,
        scratch: &mut QueryScratch,
        sink: &mut dyn MatchSink,
    ) -> Result<QueryStats> {
        validate_pattern(pattern, 1)?;
        let mut stats = QueryStats::default();
        scratch.positions.clear();
        let width = self
            .property_text
            .positions_into(pattern, &mut scratch.positions);
        stats.candidates = width;
        // Every PSA hit is a true occurrence (property-respecting prefix).
        stats.verified = width;
        stats.reported = finalize_into(&mut scratch.positions, false, sink);
        Ok(stats)
    }

    fn query_reference(&self, pattern: &[u8], _x: &WeightedString) -> Result<Vec<usize>> {
        // The pre-overhaul implementation: `positions_of` sorts and dedups a
        // fresh vector, then `finalize_positions` redundantly sorts it again.
        if pattern.is_empty() {
            return Err(Error::EmptyInput("pattern"));
        }
        Ok(finalize_positions(self.property_text.positions_of(pattern)))
    }

    fn size_bytes(&self) -> usize {
        self.property_text.memory_bytes() + self.arena.as_ref().map_or(0, Arena::alloc_bytes)
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            name: self.name().to_string(),
            size_bytes: self.size_bytes(),
            num_nodes: 0,
            num_leaves: self.property_text.psa().len(),
            num_grid_points: 0,
            num_mismatches: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ius_datasets::uniform::UniformConfig;
    use ius_weighted::solid;
    use ius_weighted::string::paper_example;

    #[test]
    fn paper_example_queries() {
        let x = paper_example();
        let wsa = Wsa::build(&x, 4.0).unwrap();
        assert_eq!(wsa.query(&[0, 0, 0, 0], &x).unwrap(), vec![0]);
        assert_eq!(wsa.query(&[0, 1], &x).unwrap(), vec![0, 3, 4]);
        assert_eq!(wsa.query(&[1, 0, 1, 0], &x).unwrap(), Vec::<usize>::new());
        assert!(wsa.query(&[], &x).is_err());
        assert_eq!(wsa.name(), "WSA");
        assert!(wsa.size_bytes() > 0);
        assert_eq!(wsa.z(), 4.0);
    }

    // Cross-family differential coverage (including random inputs) lives in
    // the shared harness `tests/differential.rs` of this crate.

    #[test]
    fn sink_forms_agree_with_the_reference_path() {
        use ius_query::CountSink;
        let x = UniformConfig {
            n: 150,
            sigma: 2,
            spread: 0.7,
            seed: 150,
        }
        .generate();
        let z = 5.0;
        let wsa = Wsa::build(&x, z).unwrap();
        let mut scratch = QueryScratch::new();
        for pattern in [&[0u8][..], &[0, 1], &[1, 1, 0], &[0, 0, 0, 1]] {
            let expected = solid::occurrences(&x, pattern, z);
            assert_eq!(wsa.query(pattern, &x).unwrap(), expected);
            assert_eq!(wsa.query_reference(pattern, &x).unwrap(), expected);
            let mut count = CountSink::new();
            let stats = wsa
                .query_into(pattern, &x, &mut scratch, &mut count)
                .unwrap();
            assert_eq!(count.count, expected.len());
            assert_eq!(stats.reported, expected.len());
            assert!(stats.candidates >= stats.reported);
            assert_eq!(stats.candidates, stats.verified);
        }
    }

    #[test]
    fn stats_reflect_structure() {
        let x = paper_example();
        let wsa = Wsa::build(&x, 4.0).unwrap();
        let stats = wsa.stats();
        assert_eq!(stats.name, "WSA");
        assert!(stats.num_leaves > 0);
        assert_eq!(stats.num_nodes, 0);
        assert_eq!(stats.size_bytes, wsa.size_bytes());
    }

    #[test]
    fn size_grows_with_z() {
        let x = UniformConfig {
            n: 300,
            sigma: 4,
            spread: 0.4,
            seed: 2,
        }
        .generate();
        let small = Wsa::build(&x, 2.0).unwrap().size_bytes();
        let large = Wsa::build(&x, 16.0).unwrap().size_bytes();
        assert!(large > small);
    }
}
