//! The weighted suffix tree (WST) baseline.
//!
//! The WST (Barton, Kociumaka, Liu, Pissis, Radoszewski — "Indexing weighted
//! sequences: neat and efficient") is the state-of-the-art *tree-based* index
//! for Weighted Indexing: the compacted trie of the property-respecting
//! suffixes of the z-estimation, answering queries in optimal `O(m + |Occ|)`
//! time at the price of `Θ(nz)` size and construction space — the very cost
//! the paper's minimizer-based indexes attack. It is assembled here from the
//! property suffix array plus truncated LCP values (the array-to-tree
//! construction referenced in the paper).

use crate::property_text::PropertyText;
use crate::traits::{finalize_positions, validate_pattern, IndexStats, UncertainIndex};
use ius_arena::Arena;
use ius_query::{finalize_into, MatchSink, QueryScratch, QueryStats};
use ius_text::trie::{CompactedTrie, LabelProvider};
use ius_weighted::{Error, Result, WeightedString, ZEstimation};

/// The weighted (property) suffix tree.
#[derive(Debug, Clone)]
pub struct Wst {
    z: f64,
    property_text: PropertyText,
    trie: CompactedTrie,
    /// The backing arena when the index was opened zero-copy from a v3 file;
    /// components borrowing from it report zero owned bytes, so the single
    /// allocation is counted here, once.
    arena: Option<Arena>,
}

/// Label access for [`Wst`] queries: letters come straight from the
/// concatenated z-estimation, truncated at the property extents. Leaf
/// `i`'s label is the suffix at `psa[i]` cut at `trunc[psa[i]]` — both
/// O(1) lookups into arrays the index stores anyway, so no per-leaf
/// fragment table has to be materialised at build or (crucially) at
/// zero-copy open time.
struct WstLabels<'a> {
    text: &'a [u8],
    psa: &'a [u32],
    trunc: &'a [u32],
}

impl<'a> WstLabels<'a> {
    fn new(property_text: &'a PropertyText) -> Self {
        Self {
            text: property_text.text(),
            psa: property_text.psa(),
            trunc: property_text.trunc_raw(),
        }
    }
}

impl LabelProvider for WstLabels<'_> {
    #[inline]
    fn letter(&self, leaf: usize, depth: usize) -> Option<u8> {
        let start = self.psa[leaf] as usize;
        if depth < self.trunc[start] as usize {
            Some(self.text[start + depth])
        } else {
            None
        }
    }

    #[inline]
    fn len(&self, leaf: usize) -> usize {
        self.trunc[self.psa[leaf] as usize] as usize
    }
}

impl Wst {
    /// Builds the WST from a weighted string, materialising the z-estimation
    /// internally.
    ///
    /// # Errors
    ///
    /// Propagates threshold validation errors from the z-estimation.
    pub fn build(x: &WeightedString, z: f64) -> Result<Self> {
        let estimation = ZEstimation::build(x, z)?;
        Self::build_from_estimation(&estimation)
    }

    /// Builds the WST from an existing z-estimation.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyInput`] if the estimation has no strands.
    pub fn build_from_estimation(estimation: &ZEstimation) -> Result<Self> {
        let property_text = PropertyText::build_with_lcp(estimation)?;
        let lengths = property_text.psa_lengths();
        let lcps = property_text.psa_truncated_lcp();
        let trie = CompactedTrie::build(&lengths, &lcps, &WstLabels::new(&property_text));
        Ok(Self {
            z: estimation.z(),
            property_text,
            trie,
            arena: None,
        })
    }

    /// The weight-threshold denominator.
    pub fn z(&self) -> f64 {
        self.z
    }

    /// Number of nodes of the suffix tree.
    pub fn num_nodes(&self) -> usize {
        self.trie.num_nodes()
    }

    // ---- persistence support (see `crate::persist`) --------------------

    pub(crate) fn property_text_ref(&self) -> &PropertyText {
        &self.property_text
    }

    pub(crate) fn trie_ref(&self) -> &CompactedTrie {
        &self.trie
    }

    /// Reassembles a WST from its persisted parts — O(1) beyond taking
    /// ownership: queries read labels straight out of the property text,
    /// so nothing per-leaf is rebuilt.
    pub(crate) fn from_loaded_parts(
        z: f64,
        property_text: PropertyText,
        trie: CompactedTrie,
        arena: Option<Arena>,
    ) -> Self {
        Self {
            z,
            property_text,
            trie,
            arena,
        }
    }
}

impl UncertainIndex for Wst {
    fn name(&self) -> &'static str {
        "WST"
    }

    fn query_into(
        &self,
        pattern: &[u8],
        _x: &WeightedString,
        scratch: &mut QueryScratch,
        sink: &mut dyn MatchSink,
    ) -> Result<QueryStats> {
        validate_pattern(pattern, 1)?;
        let labels = WstLabels::new(&self.property_text);
        let mut stats = QueryStats::default();
        scratch.positions.clear();
        if let Some(descent) = self.trie.descend(pattern, &labels) {
            let (lo, hi) = descent.leaves;
            stats.candidates = (hi - lo) as usize;
            // Every leaf below the descent is a true occurrence.
            stats.verified = stats.candidates;
            scratch.positions.extend((lo..hi).map(|leaf| {
                let text_pos = self.property_text.psa()[leaf as usize] as usize;
                self.property_text.position_in_x(text_pos)
            }));
        }
        stats.reported = finalize_into(&mut scratch.positions, false, sink);
        Ok(stats)
    }

    fn query_reference(&self, pattern: &[u8], _x: &WeightedString) -> Result<Vec<usize>> {
        // The pre-overhaul implementation: a fresh per-node result vector,
        // sorted and deduplicated by `finalize_positions`.
        if pattern.is_empty() {
            return Err(Error::EmptyInput("pattern"));
        }
        let labels = WstLabels::new(&self.property_text);
        let Some(descent) = self.trie.descend(pattern, &labels) else {
            return Ok(Vec::new());
        };
        let (lo, hi) = descent.leaves;
        let positions: Vec<usize> = (lo..hi)
            .map(|leaf| {
                let text_pos = self.property_text.psa()[leaf as usize] as usize;
                self.property_text.position_in_x(text_pos)
            })
            .collect();
        Ok(finalize_positions(positions))
    }

    fn size_bytes(&self) -> usize {
        self.property_text.memory_bytes()
            + self.trie.memory_bytes()
            + self.arena.as_ref().map_or(0, Arena::alloc_bytes)
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            name: self.name().to_string(),
            size_bytes: self.size_bytes(),
            num_nodes: self.trie.num_nodes(),
            num_leaves: self.trie.num_leaves(),
            num_grid_points: 0,
            num_mismatches: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wsa::Wsa;
    use ius_datasets::uniform::UniformConfig;
    use ius_weighted::solid;
    use ius_weighted::string::paper_example;

    #[test]
    fn paper_example_queries() {
        let x = paper_example();
        let wst = Wst::build(&x, 4.0).unwrap();
        assert_eq!(wst.query(&[0, 0, 0, 0], &x).unwrap(), vec![0]);
        assert_eq!(wst.query(&[0, 1], &x).unwrap(), vec![0, 3, 4]);
        assert_eq!(wst.query(&[1, 0, 1, 0], &x).unwrap(), Vec::<usize>::new());
        assert!(wst.query(&[], &x).is_err());
        assert!(wst.num_nodes() > 0);
    }

    // Cross-family differential coverage (including random inputs) lives in
    // the shared harness `tests/differential.rs` of this crate.

    #[test]
    fn sink_forms_agree_with_the_reference_path() {
        let x = UniformConfig {
            n: 150,
            sigma: 2,
            spread: 0.6,
            seed: 241,
        }
        .generate();
        let z = 6.0;
        let wst = Wst::build(&x, z).unwrap();
        let mut scratch = QueryScratch::new();
        for pattern in [&[0u8][..], &[1, 0], &[0, 0, 1], &[1, 1, 1, 0]] {
            let expected = solid::occurrences(&x, pattern, z);
            assert_eq!(wst.query(pattern, &x).unwrap(), expected);
            assert_eq!(wst.query_reference(pattern, &x).unwrap(), expected);
            let mut positions = Vec::new();
            let stats = wst
                .query_into(pattern, &x, &mut scratch, &mut positions)
                .unwrap();
            assert_eq!(positions, expected);
            assert_eq!(stats.reported, expected.len());
            assert_eq!(stats.candidates, stats.verified);
        }
    }

    #[test]
    fn tree_is_larger_than_array() {
        // The paper's Figure 6: the tree-based baseline occupies several
        // times more space than the array-based one.
        let x = UniformConfig {
            n: 400,
            sigma: 4,
            spread: 0.5,
            seed: 6,
        }
        .generate();
        let est = ius_weighted::ZEstimation::build(&x, 8.0).unwrap();
        let wst = Wst::build_from_estimation(&est).unwrap();
        let wsa = Wsa::build_from_estimation(&est).unwrap();
        assert!(wst.size_bytes() > wsa.size_bytes());
    }

    #[test]
    fn stats_reflect_structure() {
        let x = paper_example();
        let wst = Wst::build(&x, 4.0).unwrap();
        let stats = wst.stats();
        assert_eq!(stats.name, "WST");
        assert!(stats.num_nodes >= stats.num_leaves);
        assert!(stats.num_leaves > 0);
    }
}
