//! The shared differential harness: every index family must return exactly
//! the naive oracle's answers through **every** query entry point — the
//! classic `query()`, the retained `query_reference()`, the sink-based
//! `query_into` (collect and count sinks), and the batched engine — on
//! shared uniform and pangenome corpora. This replaces the per-file
//! `check_against_naive` helpers that used to be copy-pasted across
//! `minimizer_index.rs`, `wsa.rs`, `wst.rs` and `space_efficient.rs`.
//!
//! The harness also covers the **dynamic** side: `ius_live::LiveIndex`
//! (dev-dependency back-edge) after interleaved append / delete / flush /
//! compact sequences — scripted and proptest-driven — is checked against
//! NAIVE over the materialized final corpus, with the documented tombstone
//! semantics (an occurrence survives iff its window intersects no deleted
//! range) applied to the reference.

use ius_datasets::pangenome::PangenomeConfig;
use ius_datasets::patterns::PatternSampler;
use ius_datasets::uniform::UniformConfig;
use ius_index::{
    query_batch, AnyIndex, CountSink, IndexFamily, IndexParams, IndexSpec, NaiveIndex, QueryBatch,
    QueryScratch, ShardedIndex, UncertainIndex,
};
use ius_weighted::{Error, WeightedString, ZEstimation};

/// One corpus of the harness: a weighted string with its parameters and a
/// mixed pattern workload (sampled at ℓ and 2ℓ, plus random negatives and
/// short patterns that only the baselines accept).
struct Corpus {
    label: &'static str,
    x: WeightedString,
    z: f64,
    ell: usize,
    patterns: Vec<Vec<u8>>,
}

fn corpora() -> Vec<Corpus> {
    let mut out = Vec::new();
    {
        let x = UniformConfig {
            n: 300,
            sigma: 2,
            spread: 0.5,
            seed: 41,
        }
        .generate();
        let (z, ell) = (8.0, 8usize);
        let est = ZEstimation::build(&x, z).unwrap();
        let mut sampler = PatternSampler::new(&est, 11);
        let mut patterns = sampler.sample_many(ell, 25);
        patterns.extend(sampler.sample_many(2 * ell, 15));
        patterns.extend(sampler.sample_random(ell, 15, 2));
        patterns.extend(sampler.sample_many(3, 10)); // baselines only
        out.push(Corpus {
            label: "uniform",
            x,
            z,
            ell,
            patterns,
        });
    }
    {
        let x = PangenomeConfig {
            n: 1_500,
            delta: 0.08,
            seed: 5,
            ..Default::default()
        }
        .generate();
        let (z, ell) = (16.0, 32usize);
        let est = ZEstimation::build(&x, z).unwrap();
        let mut sampler = PatternSampler::new(&est, 3);
        let mut patterns = sampler.sample_many(ell, 20);
        patterns.extend(sampler.sample_many(2 * ell, 15));
        patterns.extend(sampler.sample_random(ell, 8, 4));
        patterns.extend(sampler.sample_many(5, 8)); // baselines only
        out.push(Corpus {
            label: "pangenome",
            x,
            z,
            ell,
            patterns,
        });
    }
    out
}

/// The families the harness exercises (everything buildable except the
/// NAIVE oracle itself, which is the reference side).
fn harness_families() -> Vec<IndexFamily> {
    IndexFamily::all()
        .into_iter()
        .filter(|family| !matches!(family, IndexFamily::Naive))
        .collect()
}

/// Builds every index family over one corpus through the unified builder
/// layer (no per-family match arms — see `ius_index::builder`).
fn build_families(corpus: &Corpus) -> Vec<(String, AnyIndex)> {
    let est = ZEstimation::build(&corpus.x, corpus.z).unwrap();
    let params = IndexParams::new(corpus.z, corpus.ell, corpus.x.sigma()).unwrap();
    harness_families()
        .into_iter()
        .map(|family| {
            let spec = IndexSpec::new(family, params);
            (
                family.name().to_string(),
                spec.build_with_estimation(&corpus.x, &est).unwrap(),
            )
        })
        .collect()
}

/// `true` iff this family enforces the minimum pattern length ℓ.
fn has_length_bound(label: &str) -> bool {
    !matches!(label, "WST" | "WSA")
}

#[test]
fn every_family_agrees_with_naive_through_every_entry_point() {
    for corpus in corpora() {
        let naive = NaiveIndex::new(corpus.z).unwrap();
        let expected: Vec<Vec<usize>> = corpus
            .patterns
            .iter()
            .map(|p| naive.query(p, &corpus.x).unwrap())
            .collect();
        for (label, index) in build_families(&corpus) {
            let mut scratch = QueryScratch::new();
            let mut admissible: Vec<Vec<u8>> = Vec::new();
            let mut admissible_expected: Vec<Vec<usize>> = Vec::new();
            for (pattern, expect) in corpus.patterns.iter().zip(&expected) {
                if has_length_bound(&label) && pattern.len() < corpus.ell {
                    // Short patterns must fail with the documented error.
                    assert!(
                        matches!(
                            index.query(pattern, &corpus.x),
                            Err(Error::PatternTooShort { .. })
                        ),
                        "{} on {}: short pattern must be rejected",
                        label,
                        corpus.label
                    );
                    continue;
                }
                admissible.push(pattern.clone());
                admissible_expected.push(expect.clone());
                // Classic single-shot query.
                assert_eq!(
                    &index.query(pattern, &corpus.x).unwrap(),
                    expect,
                    "{} on {}: query()",
                    label,
                    corpus.label
                );
                // Retained pre-overhaul path.
                assert_eq!(
                    &index.query_reference(pattern, &corpus.x).unwrap(),
                    expect,
                    "{} on {}: query_reference()",
                    label,
                    corpus.label
                );
                // Sink-based engine with a reused scratch.
                let mut positions = Vec::new();
                let stats = index
                    .query_into(pattern, &corpus.x, &mut scratch, &mut positions)
                    .unwrap();
                assert_eq!(
                    &positions, expect,
                    "{} on {}: query_into",
                    label, corpus.label
                );
                assert_eq!(stats.reported, expect.len());
                assert!(stats.candidates >= stats.verified);
                assert!(stats.verified >= stats.reported);
                // Count-only sink sees the same cardinality.
                let mut count = CountSink::new();
                index
                    .query_into(pattern, &corpus.x, &mut scratch, &mut count)
                    .unwrap();
                assert_eq!(count.count, expect.len());
            }
            assert!(
                !admissible.is_empty(),
                "{} on {}: no admissible patterns",
                label,
                corpus.label
            );
            // Batched engine, single- and multi-worker, deterministic order.
            for threads in [1usize, 4] {
                let executor = QueryBatch::with_threads(threads);
                let batched = query_batch(&index, &admissible, &corpus.x, &executor);
                for (i, entry) in batched.iter().enumerate() {
                    let (positions, stats) = entry.as_ref().unwrap();
                    assert_eq!(
                        positions, &admissible_expected[i],
                        "{} on {}: batch slot {} ({} threads)",
                        label, corpus.label, i, threads
                    );
                    assert_eq!(stats.reported, positions.len());
                }
            }
        }
    }
}

#[test]
fn every_family_loaded_from_disk_agrees_with_naive() {
    // The persistence half of the harness: every family is saved, reloaded
    // and the *loaded* index is run against the oracle on both corpora.
    for corpus in corpora() {
        let naive = NaiveIndex::new(corpus.z).unwrap();
        for (label, index) in build_families(&corpus) {
            let mut bytes = Vec::new();
            index.save_to(&mut bytes).unwrap();
            let loaded = AnyIndex::load_from(&mut bytes.as_slice()).unwrap();
            let mut scratch = QueryScratch::new();
            let mut checked = 0usize;
            for pattern in &corpus.patterns {
                if has_length_bound(&label) && pattern.len() < corpus.ell {
                    continue;
                }
                let expected = naive.query(pattern, &corpus.x).unwrap();
                let mut positions = Vec::new();
                loaded
                    .query_into(pattern, &corpus.x, &mut scratch, &mut positions)
                    .unwrap();
                assert_eq!(
                    positions, expected,
                    "{} on {}: loaded-from-disk index disagrees with NAIVE",
                    label, corpus.label
                );
                checked += 1;
            }
            assert!(checked > 0, "{label}: no patterns checked");
        }
    }
}

#[test]
fn sharded_indexes_agree_with_their_unsharded_family_and_naive() {
    // The acceptance gate of the sharding layer: S = 4 output identical to
    // the unsharded index — and hence to NAIVE — for every family, on both
    // corpora. Short patterns (below ℓ or above the configured maximum) are
    // rejected by the same contract as the unsharded families.
    for corpus in corpora() {
        let naive = NaiveIndex::new(corpus.z).unwrap();
        let params = IndexParams::new(corpus.z, corpus.ell, corpus.x.sigma()).unwrap();
        let max_len = 3 * corpus.ell;
        for family in harness_families() {
            let spec = IndexSpec::new(family, params);
            let unsharded = spec.build(&corpus.x).unwrap();
            let sharded = ShardedIndex::build(&corpus.x, spec, 4, max_len)
                .unwrap()
                .with_threads(2);
            let mut checked = 0usize;
            for pattern in &corpus.patterns {
                if pattern.len() < spec.lower_bound() || pattern.len() > max_len {
                    assert!(sharded.query(pattern, &corpus.x).is_err());
                    continue;
                }
                let expected = naive.query(pattern, &corpus.x).unwrap();
                assert_eq!(
                    sharded.query(pattern, &corpus.x).unwrap(),
                    expected,
                    "{} on {}: sharded (S=4) disagrees with NAIVE",
                    family.name(),
                    corpus.label
                );
                assert_eq!(unsharded.query(pattern, &corpus.x).unwrap(), expected);
                checked += 1;
            }
            assert!(checked > 0, "{}: no patterns checked", family.name());
        }
    }
}

// ---------------------------------------------------------------------
// Live (dynamic) differentials
// ---------------------------------------------------------------------

use ius_live::{LiveConfig, LiveIndex};
use proptest::prelude::*;

fn live_config(flush_threshold: usize) -> LiveConfig {
    LiveConfig {
        flush_threshold,
        compact_fanout: 3,
        auto_compact: false,
        threads: 2,
    }
}

/// The documented live-query semantics, applied to the oracle: NAIVE
/// occurrences over the materialized corpus, minus every start whose
/// window `[p, p + m)` intersects a tombstoned range.
fn live_reference(
    x: &WeightedString,
    tombstones: &[(usize, usize)],
    pattern: &[u8],
    z: f64,
) -> Vec<usize> {
    let naive = NaiveIndex::new(z).unwrap();
    let mut positions = naive.query(pattern, x).unwrap();
    positions.retain(|&p| {
        tombstones
            .iter()
            .all(|&(s, e)| p + pattern.len() <= s || p >= e)
    });
    positions
}

/// Checks the live index against the oracle over its own materialized
/// corpus for every admissible pattern of the workload.
fn check_live(live: &LiveIndex, patterns: &[Vec<u8>], label: &str) {
    let x = live.materialize().expect("non-empty live corpus");
    let tombstones = live.tombstones();
    let z = live.spec().params.z;
    let mut checked = 0usize;
    for pattern in patterns {
        if pattern.len() < live.spec().lower_bound() || pattern.len() > live.max_pattern_len() {
            assert!(
                live.query_owned(pattern).is_err(),
                "{label}: length contract"
            );
            continue;
        }
        assert_eq!(
            live.query_owned(pattern).unwrap(),
            live_reference(&x, &tombstones, pattern, z),
            "{label}: live disagrees with NAIVE over the materialized corpus"
        );
        checked += 1;
    }
    assert!(checked > 0, "{label}: no patterns checked");
}

#[test]
fn live_indexes_agree_with_naive_after_scripted_mutations() {
    // A fixed interleaving of every mutation kind, across three families,
    // on both harness corpora; answers checked after every step.
    for corpus in corpora() {
        let params = IndexParams::new(corpus.z, corpus.ell, corpus.x.sigma()).unwrap();
        for family in [
            IndexFamily::Minimizer(ius_index::IndexVariant::Array),
            IndexFamily::Minimizer(ius_index::IndexVariant::ArrayGrid),
            IndexFamily::SpaceEfficient(ius_index::IndexVariant::Array),
        ] {
            let label = format!("{} on {}", family.name(), corpus.label);
            let spec = IndexSpec::new(family, params);
            let live = LiveIndex::new(
                corpus.x.alphabet().clone(),
                spec,
                3 * corpus.ell,
                live_config(corpus.x.len() / 6),
            )
            .unwrap();
            let n = corpus.x.len();
            let step = n.div_ceil(5);
            let mut appended = 0usize;
            while appended < n {
                let end = (appended + step).min(n);
                live.append(&corpus.x.substring(appended, end).unwrap())
                    .unwrap();
                appended = end;
                check_live(&live, &corpus.patterns, &label);
            }
            live.delete_range(n / 10, n / 10 + n / 20).unwrap();
            check_live(&live, &corpus.patterns, &label);
            live.flush().unwrap();
            live.delete_range(n / 2, n / 2 + 1).unwrap();
            check_live(&live, &corpus.patterns, &label);
            while live.compact_once().unwrap() > 0 {
                check_live(&live, &corpus.patterns, &label);
            }
            live.compact_full().unwrap();
            check_live(&live, &corpus.patterns, &label);
            assert_eq!(live.len(), n);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random interleavings of append / delete / flush / compact over a
    /// random uniform corpus: after every operation the live answers must
    /// equal NAIVE over the materialized prefix with the tombstone mask.
    #[test]
    fn live_differential_under_random_op_sequences(
        seed in 0u64..1 << 32,
        threshold in 24usize..80,
        ops in prop::collection::vec((0u8..4, 0.0f64..1.0, 0.0f64..1.0), 6..16),
    ) {
        let x = UniformConfig {
            n: 400,
            sigma: 2,
            spread: 0.4,
            seed,
        }
        .generate();
        let (z, ell, max_len) = (8.0, 4usize, 12usize);
        let params = IndexParams::new(z, ell, x.sigma()).unwrap();
        let spec = IndexSpec::new(IndexFamily::Minimizer(ius_index::IndexVariant::Array), params);
        let live = LiveIndex::new(x.alphabet().clone(), spec, max_len, live_config(threshold))
            .unwrap();
        let patterns: Vec<Vec<u8>> = (0..)
            .map_while(|i| match i {
                0 => Some(vec![0u8; ell]),
                1 => Some(vec![1u8; ell]),
                2 => Some((0..8).map(|j| (j % 2) as u8).collect()),
                3 => Some(vec![0u8; max_len]),
                4 => Some((0..max_len).map(|j| (j / 3 % 2) as u8).collect()),
                _ => None,
            })
            .collect();
        let mut appended = 0usize;
        for &(kind, a, b) in &ops {
            match kind {
                // Append the next random-sized chunk of the corpus stream.
                0 => {
                    if appended < x.len() {
                        let len = 1 + ((x.len() - appended) as f64 * a * 0.4) as usize;
                        let end = (appended + len).min(x.len());
                        live.append(&x.substring(appended, end).unwrap()).unwrap();
                        appended = end;
                    }
                }
                // Delete a random range of the current corpus.
                1 => {
                    if appended > 1 {
                        let start = (a * (appended - 1) as f64) as usize;
                        let len = 1 + (b * 20.0) as usize;
                        let end = (start + len).min(appended);
                        live.delete_range(start, end).unwrap();
                    }
                }
                2 => {
                    live.flush().unwrap();
                }
                _ => {
                    live.compact_once().unwrap();
                }
            }
            if appended == 0 {
                continue;
            }
            let materialized = live.materialize().unwrap();
            prop_assert_eq!(&materialized, &x.substring(0, appended).unwrap());
            let tombstones = live.tombstones();
            for pattern in &patterns {
                prop_assert_eq!(
                    live.query_owned(pattern).unwrap(),
                    live_reference(&materialized, &tombstones, pattern, z),
                    "after op {:?}, {} rows, {} segments",
                    (kind, a, b),
                    appended,
                    live.num_segments()
                );
            }
        }
    }
}

#[test]
fn every_family_rejects_the_empty_pattern() {
    let corpus = &corpora()[0];
    let naive = NaiveIndex::new(corpus.z).unwrap();
    assert!(matches!(
        naive.query(&[], &corpus.x),
        Err(Error::EmptyInput("pattern"))
    ));
    for (label, index) in build_families(corpus) {
        assert!(
            matches!(
                index.query(&[], &corpus.x),
                Err(Error::EmptyInput("pattern"))
            ),
            "{label}: empty pattern must be rejected"
        );
        assert!(
            matches!(
                index.query_reference(&[], &corpus.x),
                Err(Error::EmptyInput("pattern"))
            ),
            "{label}: empty pattern must be rejected by the reference path"
        );
        let mut scratch = QueryScratch::new();
        let mut sink = Vec::new();
        assert!(
            index
                .query_into(&[], &corpus.x, &mut scratch, &mut sink)
                .is_err(),
            "{label}: empty pattern must be rejected by query_into"
        );
    }
}
