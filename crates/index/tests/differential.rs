//! The shared differential harness: every index family must return exactly
//! the naive oracle's answers through **every** query entry point — the
//! classic `query()`, the retained `query_reference()`, the sink-based
//! `query_into` (collect and count sinks), and the batched engine — on
//! shared uniform and pangenome corpora. This replaces the per-file
//! `check_against_naive` helpers that used to be copy-pasted across
//! `minimizer_index.rs`, `wsa.rs`, `wst.rs` and `space_efficient.rs`.

use ius_datasets::pangenome::PangenomeConfig;
use ius_datasets::patterns::PatternSampler;
use ius_datasets::uniform::UniformConfig;
use ius_index::{
    query_batch, CountSink, IndexParams, IndexVariant, MinimizerIndex, NaiveIndex, QueryBatch,
    QueryScratch, SpaceEfficientBuilder, UncertainIndex, Wsa, Wst,
};
use ius_weighted::{Error, WeightedString, ZEstimation};

/// One corpus of the harness: a weighted string with its parameters and a
/// mixed pattern workload (sampled at ℓ and 2ℓ, plus random negatives and
/// short patterns that only the baselines accept).
struct Corpus {
    label: &'static str,
    x: WeightedString,
    z: f64,
    ell: usize,
    patterns: Vec<Vec<u8>>,
}

fn corpora() -> Vec<Corpus> {
    let mut out = Vec::new();
    {
        let x = UniformConfig {
            n: 300,
            sigma: 2,
            spread: 0.5,
            seed: 41,
        }
        .generate();
        let (z, ell) = (8.0, 8usize);
        let est = ZEstimation::build(&x, z).unwrap();
        let mut sampler = PatternSampler::new(&est, 11);
        let mut patterns = sampler.sample_many(ell, 25);
        patterns.extend(sampler.sample_many(2 * ell, 15));
        patterns.extend(sampler.sample_random(ell, 15, 2));
        patterns.extend(sampler.sample_many(3, 10)); // baselines only
        out.push(Corpus {
            label: "uniform",
            x,
            z,
            ell,
            patterns,
        });
    }
    {
        let x = PangenomeConfig {
            n: 1_500,
            delta: 0.08,
            seed: 5,
            ..Default::default()
        }
        .generate();
        let (z, ell) = (16.0, 32usize);
        let est = ZEstimation::build(&x, z).unwrap();
        let mut sampler = PatternSampler::new(&est, 3);
        let mut patterns = sampler.sample_many(ell, 20);
        patterns.extend(sampler.sample_many(2 * ell, 15));
        patterns.extend(sampler.sample_random(ell, 8, 4));
        patterns.extend(sampler.sample_many(5, 8)); // baselines only
        out.push(Corpus {
            label: "pangenome",
            x,
            z,
            ell,
            patterns,
        });
    }
    out
}

/// Builds every index family over one corpus. The space-efficient builder
/// contributes both of the variants it supports.
fn build_families(corpus: &Corpus) -> Vec<(String, Box<dyn UncertainIndex + Sync>)> {
    let est = ZEstimation::build(&corpus.x, corpus.z).unwrap();
    let params = IndexParams::new(corpus.z, corpus.ell, corpus.x.sigma()).unwrap();
    let mut families: Vec<(String, Box<dyn UncertainIndex + Sync>)> = vec![
        (
            "WST".into(),
            Box::new(Wst::build_from_estimation(&est).unwrap()),
        ),
        (
            "WSA".into(),
            Box::new(Wsa::build_from_estimation(&est).unwrap()),
        ),
    ];
    for variant in [
        IndexVariant::Tree,
        IndexVariant::Array,
        IndexVariant::TreeGrid,
        IndexVariant::ArrayGrid,
    ] {
        families.push((
            variant.name().into(),
            Box::new(
                MinimizerIndex::build_from_estimation(&corpus.x, &est, params, variant).unwrap(),
            ),
        ));
    }
    for variant in [IndexVariant::Tree, IndexVariant::Array] {
        families.push((
            format!("SE-{}", variant.name()),
            Box::new(
                SpaceEfficientBuilder::new(params)
                    .build(&corpus.x, variant)
                    .unwrap(),
            ),
        ));
    }
    families
}

/// `true` iff this family enforces the minimum pattern length ℓ.
fn has_length_bound(label: &str) -> bool {
    !matches!(label, "WST" | "WSA")
}

#[test]
fn every_family_agrees_with_naive_through_every_entry_point() {
    for corpus in corpora() {
        let naive = NaiveIndex::new(corpus.z).unwrap();
        let expected: Vec<Vec<usize>> = corpus
            .patterns
            .iter()
            .map(|p| naive.query(p, &corpus.x).unwrap())
            .collect();
        for (label, index) in build_families(&corpus) {
            let mut scratch = QueryScratch::new();
            let mut admissible: Vec<Vec<u8>> = Vec::new();
            let mut admissible_expected: Vec<Vec<usize>> = Vec::new();
            for (pattern, expect) in corpus.patterns.iter().zip(&expected) {
                if has_length_bound(&label) && pattern.len() < corpus.ell {
                    // Short patterns must fail with the documented error.
                    assert!(
                        matches!(
                            index.query(pattern, &corpus.x),
                            Err(Error::PatternTooShort { .. })
                        ),
                        "{} on {}: short pattern must be rejected",
                        label,
                        corpus.label
                    );
                    continue;
                }
                admissible.push(pattern.clone());
                admissible_expected.push(expect.clone());
                // Classic single-shot query.
                assert_eq!(
                    &index.query(pattern, &corpus.x).unwrap(),
                    expect,
                    "{} on {}: query()",
                    label,
                    corpus.label
                );
                // Retained pre-overhaul path.
                assert_eq!(
                    &index.query_reference(pattern, &corpus.x).unwrap(),
                    expect,
                    "{} on {}: query_reference()",
                    label,
                    corpus.label
                );
                // Sink-based engine with a reused scratch.
                let mut positions = Vec::new();
                let stats = index
                    .query_into(pattern, &corpus.x, &mut scratch, &mut positions)
                    .unwrap();
                assert_eq!(
                    &positions, expect,
                    "{} on {}: query_into",
                    label, corpus.label
                );
                assert_eq!(stats.reported, expect.len());
                assert!(stats.candidates >= stats.verified);
                assert!(stats.verified >= stats.reported);
                // Count-only sink sees the same cardinality.
                let mut count = CountSink::new();
                index
                    .query_into(pattern, &corpus.x, &mut scratch, &mut count)
                    .unwrap();
                assert_eq!(count.count, expect.len());
            }
            assert!(
                !admissible.is_empty(),
                "{} on {}: no admissible patterns",
                label,
                corpus.label
            );
            // Batched engine, single- and multi-worker, deterministic order.
            for threads in [1usize, 4] {
                let executor = QueryBatch::with_threads(threads);
                let batched = query_batch(index.as_ref(), &admissible, &corpus.x, &executor);
                for (i, entry) in batched.iter().enumerate() {
                    let (positions, stats) = entry.as_ref().unwrap();
                    assert_eq!(
                        positions, &admissible_expected[i],
                        "{} on {}: batch slot {} ({} threads)",
                        label, corpus.label, i, threads
                    );
                    assert_eq!(stats.reported, positions.len());
                }
            }
        }
    }
}

#[test]
fn every_family_rejects_the_empty_pattern() {
    let corpus = &corpora()[0];
    let naive = NaiveIndex::new(corpus.z).unwrap();
    assert!(matches!(
        naive.query(&[], &corpus.x),
        Err(Error::EmptyInput("pattern"))
    ));
    for (label, index) in build_families(corpus) {
        assert!(
            matches!(
                index.query(&[], &corpus.x),
                Err(Error::EmptyInput("pattern"))
            ),
            "{label}: empty pattern must be rejected"
        );
        assert!(
            matches!(
                index.query_reference(&[], &corpus.x),
                Err(Error::EmptyInput("pattern"))
            ),
            "{label}: empty pattern must be rejected by the reference path"
        );
        let mut scratch = QueryScratch::new();
        let mut sink = Vec::new();
        assert!(
            index
                .query_into(&[], &corpus.x, &mut scratch, &mut sink)
                .is_err(),
            "{label}: empty pattern must be rejected by query_into"
        );
    }
}
