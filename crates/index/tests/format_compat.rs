//! Backward-compatibility differential suite for the IUSX on-disk format:
//! the same index saved as **version 2** (streamed, element-decoded) and
//! **version 3** (aligned sections, arena-openable) must answer exactly the
//! same queries through every load path —
//!
//! * v2 bytes → streaming loader,
//! * v3 bytes → streaming loader,
//! * v3 bytes → zero-copy arena open,
//! * v3 bytes with packed `u32` sections → both paths again,
//!
//! across every buildable family and all four benchmark preset corpora
//! (`uniform`, `uniform_high_entropy`, `pangenome`, `rssi`), plus the
//! sharded composite's nested envelopes.
//!
//! The second half is the corruption side of the arena path: the envelope
//! CRC is validated **at open**, so any bit flip or truncation of a v3
//! file must be rejected with a typed error before a single view is
//! handed out — never a panic, never a lazily-corrupt index.

use ius_arena::Arena;
use ius_datasets::corpora::{bench_corpus, BENCH_CORPUS_NAMES};
use ius_datasets::patterns::PatternSampler;
use ius_index::persist::save_index_v2;
use ius_index::{
    load_index, open_any_index, save_index, save_index_with, AnyIndex, IndexFamily, IndexParams,
    IndexSpec, LoadedAny, SaveOptions, ShardedIndex, UncertainIndex,
};
use ius_weighted::{WeightedString, ZEstimation};
use proptest::prelude::*;
use std::io::ErrorKind;
use std::sync::OnceLock;

/// Corpus length for the suite: large enough that every preset's ℓ (up to
/// 128 for `pangenome`) fits patterns at ℓ and 2ℓ, small enough to build
/// all families four times in a debug test run.
const N: usize = 400;

/// `(family label, built index, v2 bytes, v3 bytes, v3 packed bytes)`.
type FamilyCase = (String, AnyIndex, Vec<u8>, Vec<u8>, Vec<u8>);

struct Case {
    label: String,
    x: WeightedString,
    patterns: Vec<Vec<u8>>,
    families: Vec<FamilyCase>,
    sharded: ShardedIndex,
    sharded_v2: Vec<u8>,
    sharded_v3: Vec<u8>,
}

fn cases() -> &'static Vec<Case> {
    static CASES: OnceLock<Vec<Case>> = OnceLock::new();
    CASES.get_or_init(|| {
        BENCH_CORPUS_NAMES
            .iter()
            .map(|name| {
                let corpus = bench_corpus(name, N, None).expect("known preset");
                let est = ZEstimation::build(&corpus.x, corpus.z).expect("estimation");
                let mut sampler = PatternSampler::new(&est, 0xF0_0D);
                let mut patterns = sampler.sample_many(corpus.ell, 8);
                patterns.extend(sampler.sample_many(2 * corpus.ell, 4));
                patterns.extend(sampler.sample_random(corpus.ell, 4, corpus.x.sigma()));
                let params =
                    IndexParams::new(corpus.z, corpus.ell, corpus.x.sigma()).expect("params");
                let families = IndexFamily::all()
                    .into_iter()
                    .map(|family| {
                        let spec = IndexSpec::new(family, params);
                        let index = spec.build_with_estimation(&corpus.x, &est).expect("build");
                        let mut v2 = Vec::new();
                        save_index_v2(&index, &mut v2).expect("save v2");
                        let mut v3 = Vec::new();
                        index.save_to(&mut v3).expect("save v3");
                        let mut packed = Vec::new();
                        save_index_with(&index, &mut packed, SaveOptions { pack_u32: true })
                            .expect("save v3 packed");
                        (family.name().to_string(), index, v2, v3, packed)
                    })
                    .collect();
                let spec = IndexSpec::new(
                    IndexFamily::Minimizer(ius_index::IndexVariant::ArrayGrid),
                    params,
                );
                let sharded =
                    ShardedIndex::build(&corpus.x, spec, 3, 2 * corpus.ell).expect("sharded");
                let mut sharded_v2 = Vec::new();
                sharded
                    .save_to_v2(&mut sharded_v2)
                    .expect("save sharded v2");
                let mut sharded_v3 = Vec::new();
                sharded.save_to(&mut sharded_v3).expect("save sharded v3");
                Case {
                    label: corpus.name.to_string(),
                    x: corpus.x,
                    patterns,
                    families,
                    sharded,
                    sharded_v2,
                    sharded_v3,
                }
            })
            .collect()
    })
}

fn open_single(bytes: &[u8]) -> AnyIndex {
    let arena = Arena::from_bytes(bytes);
    match open_any_index(&arena).expect("arena open") {
        LoadedAny::Index(index) => index,
        LoadedAny::Sharded(_) => panic!("expected a single-machine index"),
    }
}

/// Every load path of every family answers exactly like the in-memory
/// build it was saved from, on all four preset corpora.
#[test]
fn v2_and_v3_load_paths_answer_identically() {
    for case in cases() {
        for (label, built, v2, v3, packed) in &case.families {
            let from_v2 = load_index(&mut v2.as_slice()).expect("load v2");
            let from_v3 = load_index(&mut v3.as_slice()).expect("load v3");
            let opened = open_single(v3);
            let from_packed = load_index(&mut packed.as_slice()).expect("load packed");
            let opened_packed = open_single(packed);
            for pattern in &case.patterns {
                let expected = built.query(pattern, &case.x);
                for (path, loaded) in [
                    ("v2 stream", &from_v2),
                    ("v3 stream", &from_v3),
                    ("v3 arena", &opened),
                    ("v3 packed stream", &from_packed),
                    ("v3 packed arena", &opened_packed),
                ] {
                    let got = loaded.query(pattern, &case.x);
                    match (&expected, &got) {
                        (Ok(a), Ok(b)) => assert_eq!(
                            a, b,
                            "{}/{label}/{path}: answers diverge on {pattern:?}",
                            case.label
                        ),
                        (Err(_), Err(_)) => {}
                        _ => panic!(
                            "{}/{label}/{path}: one side errored on {pattern:?}",
                            case.label
                        ),
                    }
                }
            }
        }
        // The sharded composite (nested envelopes) through all three paths.
        let from_v2 = ShardedIndex::load_from(&mut case.sharded_v2.as_slice()).expect("v2");
        let from_v3 = ShardedIndex::load_from(&mut case.sharded_v3.as_slice()).expect("v3");
        let arena = Arena::from_bytes(&case.sharded_v3);
        let LoadedAny::Sharded(opened) = open_any_index(&arena).expect("arena open") else {
            panic!("expected a sharded composite");
        };
        for pattern in &case.patterns {
            let expected = case.sharded.query_owned(pattern);
            for (path, loaded) in [
                ("v2 stream", &from_v2),
                ("v3 stream", &from_v3),
                ("v3 arena", &opened),
            ] {
                let got = loaded.query_owned(pattern);
                match (&expected, &got) {
                    (Ok(a), Ok(b)) => assert_eq!(
                        a, b,
                        "{}/sharded/{path}: answers diverge on {pattern:?}",
                        case.label
                    ),
                    (Err(_), Err(_)) => {}
                    _ => panic!(
                        "{}/sharded/{path}: one side errored on {pattern:?}",
                        case.label
                    ),
                }
            }
        }
    }
}

/// A v3 save of an arena-opened index is byte-identical to the file it was
/// opened from, for every family and corpus — the zero-copy views carry the
/// full structure, not a lossy projection of it.
#[test]
fn v3_arena_resave_is_byte_identical() {
    for case in cases() {
        for (label, _, _, v3, _) in &case.families {
            let opened = open_single(v3);
            let mut resaved = Vec::new();
            save_index(&opened, &mut resaved).expect("resave v3");
            assert_eq!(
                v3, &resaved,
                "{}/{label}: arena round trip changed bytes",
                case.label
            );
        }
    }
}

/// A v2 re-save of a v2 load is byte-identical — the hidden compat writer
/// really is the old format, not an approximation.
#[test]
fn v2_resave_is_byte_identical() {
    let case = &cases()[0];
    for (label, _, v2, _, _) in &case.families {
        let loaded = load_index(&mut v2.as_slice()).expect("load v2");
        let mut resaved = Vec::new();
        save_index_v2(&loaded, &mut resaved).expect("resave v2");
        assert_eq!(v2, &resaved, "{label}: v2 round trip changed bytes");
    }
}

fn is_typed(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::InvalidData | ErrorKind::UnexpectedEof)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The arena path validates the envelope CRC at open, so **any** bit
    /// flip in a v3 file is rejected typed before a view is handed out.
    #[test]
    fn arena_open_rejects_any_bit_flip(
        pick in 0usize..16,
        offset_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let case = &cases()[pick % cases().len()];
        let (label, _, _, v3, _) = &case.families[pick % case.families.len()];
        let mut corrupted = v3.clone();
        let offset = ((corrupted.len() as f64 - 1.0) * offset_frac) as usize;
        corrupted[offset] ^= 1 << bit;
        match open_any_index(&Arena::from_bytes(&corrupted)) {
            Err(err) => prop_assert!(
                is_typed(err.kind()),
                "{label}: flip at {offset} failed with untyped kind {:?}: {err}",
                err.kind()
            ),
            Ok(_) => prop_assert!(
                false,
                "{label}: flip at byte {offset} bit {bit} passed CRC validation"
            ),
        }
    }

    /// Truncating a v3 file anywhere must fail typed at open.
    #[test]
    fn arena_open_rejects_any_truncation(
        pick in 0usize..16,
        cut_frac in 0.0f64..1.0,
    ) {
        let case = &cases()[pick % cases().len()];
        let (label, _, _, v3, _) = &case.families[pick % case.families.len()];
        let cut = ((v3.len() as f64 - 1.0) * cut_frac) as usize;
        match open_any_index(&Arena::from_bytes(&v3[..cut])) {
            Err(err) => prop_assert!(
                is_typed(err.kind()),
                "{label}: truncation at {cut} failed with untyped kind {:?}: {err}",
                err.kind()
            ),
            Ok(_) => prop_assert!(false, "{label}: truncation at {cut}/{} opened", v3.len()),
        }
    }
}
