//! Corruption properties of the persistence layer: a saved index file with
//! one flipped byte, or truncated at an arbitrary offset, must **never
//! panic** the loader — truncation must always fail with an
//! `InvalidData`/`UnexpectedEof`-style error, and a byte flip must either
//! fail the same way or (when the flip lands in payload data that is
//! structurally valid either way, e.g. a probability byte) produce an index
//! that still answers queries without panicking.
//!
//! Runs across **all** families, including the sharded composite.

use ius_index::{
    load_any_index, IndexFamily, IndexParams, IndexSpec, IndexVariant, LoadedAny, ShardedIndex,
    UncertainIndex,
};
use ius_weighted::WeightedString;
use proptest::prelude::*;
use std::io::ErrorKind;
use std::sync::OnceLock;

/// `(label, serialized bytes)` for every family over one fixed corpus,
/// built once for the whole test binary.
fn family_files() -> &'static Vec<(String, Vec<u8>)> {
    static FILES: OnceLock<Vec<(String, Vec<u8>)>> = OnceLock::new();
    FILES.get_or_init(|| {
        let x = corpus();
        let params = IndexParams::new(6.0, 8, x.sigma()).expect("params");
        let mut files = Vec::new();
        for family in IndexFamily::all() {
            let spec = IndexSpec::new(family, params);
            let index = spec.build(&x).expect("build");
            let mut bytes = Vec::new();
            index.save_to(&mut bytes).expect("save");
            files.push((family.name().to_string(), bytes));
        }
        // The sharded composite exercises the nested-envelope path.
        let spec = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::ArrayGrid), params);
        let sharded = ShardedIndex::build(&x, spec, 3, 16).expect("sharded build");
        let mut bytes = Vec::new();
        sharded.save_to(&mut bytes).expect("save sharded");
        files.push(("SHARDED-MWSA-G".to_string(), bytes));
        files
    })
}

fn corpus() -> WeightedString {
    ius_datasets::uniform::UniformConfig {
        n: 180,
        sigma: 3,
        spread: 0.35,
        seed: 0xC0BB,
    }
    .generate()
}

/// The error kinds a corrupted file may legally fail with.
fn is_typed_load_error(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::InvalidData | ErrorKind::UnexpectedEof)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Flipping one byte anywhere in the file must never panic: either the
    /// load fails with a typed error, or — when the flip lands in payload
    /// bytes that stay structurally valid — the loaded index still answers
    /// queries without panicking.
    #[test]
    fn one_flipped_byte_never_panics(
        pick in 0usize..10,
        offset_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let (label, bytes) = &family_files()[pick % family_files().len()];
        let mut corrupted = bytes.clone();
        let offset = ((corrupted.len() as f64 - 1.0) * offset_frac) as usize;
        corrupted[offset] ^= flip; // flip != 0 guarantees a real change
        match load_any_index(&mut corrupted.as_slice()) {
            Err(err) => prop_assert!(
                is_typed_load_error(err.kind()),
                "{label}: flip at {offset} failed with untyped kind {:?}: {err}",
                err.kind()
            ),
            Ok(loaded) => {
                // The flip survived validation (payload data, both values
                // structurally valid). The index must still be servable:
                // queries return — right or wrong — without panicking.
                let x = corpus();
                for pattern in [vec![0u8; 8], vec![1u8; 12]] {
                    match &loaded {
                        LoadedAny::Index(index) => {
                            let _ = index.query(&pattern, &x);
                        }
                        LoadedAny::Sharded(sharded) => {
                            let _ = sharded.query_owned(&pattern);
                        }
                    }
                }
            }
        }
    }

    /// Truncating the file at any offset strictly inside it must always
    /// fail with a typed error — the format has no trailing slack, so a
    /// shortened file is always missing required bytes.
    #[test]
    fn truncation_always_fails_with_a_typed_error(
        pick in 0usize..10,
        cut_frac in 0.0f64..1.0,
    ) {
        let (label, bytes) = &family_files()[pick % family_files().len()];
        let cut = ((bytes.len() as f64 - 1.0) * cut_frac) as usize;
        let truncated = &bytes[..cut];
        match load_any_index(&mut &truncated[..]) {
            Err(err) => prop_assert!(
                is_typed_load_error(err.kind()),
                "{label}: truncation at {cut} failed with untyped kind {:?}: {err}",
                err.kind()
            ),
            Ok(_) => prop_assert!(
                false,
                "{label}: truncation at {cut}/{} loaded successfully",
                bytes.len()
            ),
        }
    }
}

/// Deterministic spot checks of the most security-relevant offsets: the
/// magic, the version, the family tag and the first length prefix.
#[test]
fn header_corruptions_fail_with_informative_messages() {
    let (_, bytes) = &family_files()[0];
    // Magic.
    let mut corrupted = bytes.clone();
    corrupted[0] = b'X';
    let err = load_any_index(&mut corrupted.as_slice()).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    assert!(err.to_string().contains("magic"), "{err}");
    // Version.
    let mut corrupted = bytes.clone();
    corrupted[4] = 0xFF;
    let err = load_any_index(&mut corrupted.as_slice()).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    assert!(err.to_string().contains("version"), "{err}");
    // Family tag.
    let mut corrupted = bytes.clone();
    corrupted[6] = 99;
    let err = load_any_index(&mut corrupted.as_slice()).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    assert!(err.to_string().contains("tag"), "{err}");
    // Empty file.
    let err = load_any_index(&mut [].as_slice()).unwrap_err();
    assert!(is_typed_load_error(err.kind()));
}
