//! Persistence round-trip properties: for every index family,
//! build → save → load must be byte-identical on re-save, answer queries
//! exactly like the original, and report the same footprint. Loading never
//! re-runs construction, so these tests are the correctness net under the
//! load-vs-rebuild numbers of `BENCH_space.json`.

use ius_datasets::pangenome::PangenomeConfig;
use ius_datasets::patterns::PatternSampler;
use ius_datasets::uniform::UniformConfig;
use ius_index::{
    AnyIndex, IndexFamily, IndexParams, IndexSpec, IndexVariant, ShardedIndex, UncertainIndex,
};
use ius_weighted::{Alphabet, WeightedString, ZEstimation};
use proptest::prelude::*;

/// Builds, saves, loads and re-saves one family over one corpus, asserting
/// the full round-trip contract. Returns the serialized size.
fn assert_round_trip(spec: IndexSpec, x: &WeightedString, patterns: &[Vec<u8>]) -> usize {
    let original = spec.build(x).expect("build");
    let mut bytes = Vec::new();
    original.save_to(&mut bytes).expect("save");
    let loaded = AnyIndex::load_from(&mut bytes.as_slice()).expect("load");
    // Re-saving the loaded index reproduces the file byte for byte.
    let mut resaved = Vec::new();
    loaded.save_to(&mut resaved).expect("re-save");
    assert_eq!(
        bytes,
        resaved,
        "{}: re-save not byte-identical",
        spec.family.name()
    );
    // The loaded index is behaviourally indistinguishable.
    assert_eq!(loaded.name(), original.name());
    assert_eq!(loaded.size_bytes(), original.size_bytes());
    assert_eq!(loaded.stats(), original.stats());
    for pattern in patterns {
        let expected = original.query(pattern, x);
        let got = loaded.query(pattern, x);
        match (expected, got) {
            (Ok(expected), Ok(got)) => {
                assert_eq!(
                    got,
                    expected,
                    "{}: loaded query differs",
                    spec.family.name()
                );
            }
            (Err(_), Err(_)) => {}
            (expected, got) => panic!(
                "{}: outcome mismatch ({expected:?} vs {got:?})",
                spec.family.name()
            ),
        }
    }
    bytes.len()
}

#[test]
fn every_family_round_trips_on_uniform_and_pangenome_corpora() {
    let corpora = [
        (
            UniformConfig {
                n: 260,
                sigma: 2,
                spread: 0.5,
                seed: 77,
            }
            .generate(),
            8.0,
            8usize,
        ),
        (
            PangenomeConfig {
                n: 900,
                delta: 0.07,
                seed: 13,
                ..Default::default()
            }
            .generate(),
            16.0,
            32usize,
        ),
    ];
    for (x, z, ell) in corpora {
        let params = IndexParams::new(z, ell, x.sigma()).unwrap();
        let est = ZEstimation::build(&x, z).unwrap();
        let mut sampler = PatternSampler::new(&est, 4);
        let mut patterns = sampler.sample_many(ell, 15);
        patterns.extend(sampler.sample_many(2 * ell, 8));
        patterns.extend(sampler.sample_random(ell, 8, x.sigma()));
        assert!(!patterns.is_empty());
        for family in IndexFamily::all() {
            let file_bytes = assert_round_trip(IndexSpec::new(family, params), &x, &patterns);
            assert!(file_bytes > 7, "{}: implausibly small file", family.name());
        }
    }
}

#[test]
fn sharded_index_round_trips_with_its_chunks() {
    let x = PangenomeConfig {
        n: 700,
        delta: 0.06,
        seed: 41,
        ..Default::default()
    }
    .generate();
    let (z, ell) = (8.0, 16usize);
    let params = IndexParams::new(z, ell, x.sigma()).unwrap();
    let spec = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::ArrayGrid), params);
    let sharded = ShardedIndex::build(&x, spec, 4, 2 * ell).unwrap();
    let mut bytes = Vec::new();
    sharded.save_to(&mut bytes).unwrap();
    let loaded = ShardedIndex::load_from(&mut bytes.as_slice()).unwrap();
    assert_eq!(loaded.num_shards(), sharded.num_shards());
    assert_eq!(loaded.max_pattern_len(), sharded.max_pattern_len());
    assert_eq!(loaded.len(), sharded.len());
    assert_eq!(loaded.size_bytes(), sharded.size_bytes());
    let mut resaved = Vec::new();
    loaded.save_to(&mut resaved).unwrap();
    assert_eq!(bytes, resaved, "sharded re-save not byte-identical");
    let est = ZEstimation::build(&x, z).unwrap();
    let mut sampler = PatternSampler::new(&est, 6);
    for pattern in sampler.sample_many(ell, 15) {
        assert_eq!(
            loaded.query(&pattern, &x).unwrap(),
            sharded.query(&pattern, &x).unwrap()
        );
    }
}

/// Random "peaked" weighted strings (most mass on one letter per position,
/// the regime where factors are long and mismatch lists non-trivial).
fn peaked_string_strategy(max_len: usize, sigma: usize) -> impl Strategy<Value = WeightedString> {
    let rows = prop::collection::vec((0usize..sigma, 0.0f64..0.3), 16..=max_len);
    rows.prop_map(move |rows| {
        let alphabet = Alphabet::integer(sigma).unwrap();
        let rows: Vec<Vec<f64>> = rows
            .into_iter()
            .map(|(major, minor_mass)| {
                let mut row = vec![minor_mass / (sigma as f64 - 1.0); sigma];
                row[major] = 1.0 - minor_mass;
                row
            })
            .collect();
        WeightedString::from_rows(alphabet, &rows).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Build → save → load → byte-identical re-save, on random corpora and a
    /// rotating family selection.
    #[test]
    fn random_corpora_round_trip(
        x in peaked_string_strategy(120, 3),
        z in 2.0f64..12.0,
        family_pick in 0usize..IndexFamily::all().len(),
    ) {
        let ell = 8usize.min(x.len());
        let params = IndexParams::new(z, ell, x.sigma()).unwrap();
        let family = IndexFamily::all()[family_pick];
        let spec = IndexSpec::new(family, params);
        let Ok(original) = spec.build(&x) else {
            // e.g. the space-efficient construction's node cap on adversarial
            // inputs — nothing to round-trip.
            return Ok(());
        };
        let mut bytes = Vec::new();
        original.save_to(&mut bytes).expect("save");
        let loaded = AnyIndex::load_from(&mut bytes.as_slice()).expect("load");
        let mut resaved = Vec::new();
        loaded.save_to(&mut resaved).expect("re-save");
        prop_assert_eq!(&bytes, &resaved);
        prop_assert_eq!(loaded.size_bytes(), original.size_bytes());
        // A handful of direct queries agree.
        for len in [ell, (2 * ell).min(x.len())] {
            let pattern = vec![0u8; len];
            match (original.query(&pattern, &x), loaded.query(&pattern, &x)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("outcome mismatch: {a:?} vs {b:?}"),
            }
        }
    }
}
