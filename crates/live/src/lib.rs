//! # ius-live — dynamic segmented indexing over uncertain strings
//!
//! Every index family in this workspace is built once over a fixed weighted
//! string. This crate adds the first *mutable-corpus* structure: an
//! LSM-style [`LiveIndex`] whose logical corpus grows by appends and
//! shrinks (logically) by range deletions **while it is being queried** —
//! no full rebuild, no downtime.
//!
//! ## Model
//!
//! The logical corpus is the weighted string `X[0, n)`; `n` only grows.
//! Three structures cover it:
//!
//! * an ordered list of immutable **segments** — each one a chunk of `X`
//!   plus a persisted-format index (any family, built through the PR-3
//!   [`IndexSpec`] builder) over that chunk. Segment *home ranges* tile a
//!   prefix `[0, h)` of the corpus, and each chunk extends
//!   `max_pattern_len − 1` positions past its home range (the shared
//!   overlap rule of `ius_index::overlap`), so every occurrence of a
//!   supported pattern lies entirely inside the chunk of the segment whose
//!   home range contains its start;
//! * a **memtable tail**: the raw probability rows of `[h, n)`, served by
//!   a naive `O(rows·m)` scan. Appends land here and are visible to the
//!   very next query;
//! * a **tombstone set** of deleted logical ranges. Positions are never
//!   renumbered: `delete_range(s, e)` invalidates every occurrence whose
//!   window intersects `[s, e)`, and reported positions keep their
//!   original coordinates. (Space is not reclaimed — tombstones are a
//!   query-time filter.)
//!
//! A **flush** freezes the memtable into a new segment: the new segment's
//! home range is `[h, n − overlap)` and its chunk is all memtable rows
//! `[h, n)`; the memtable retains the last `overlap` rows (its new home
//! start is `n − overlap`), which is exactly what makes the frozen chunk
//! cover its home range plus the overlap without ever needing future data.
//!
//! ## Queries
//!
//! [`LiveIndex::query_owned_into`] implements the workspace-wide
//! `query_into(pattern, scratch, sink) → QueryStats` contract by fanning
//! out over the segments (plus the memtable scan) through the PR-2
//! [`QueryBatch`] executor, filtering each part's output to its home range
//! (the shared dedup rule), concatenating — which is already globally
//! sorted — filtering tombstoned windows, and streaming into the sink.
//! Queries run against an [`Arc`] snapshot of the state: appends, flushes
//! and compactions swap the snapshot and never block or corrupt an
//! in-flight query (the PR-4 hot-reload discipline).
//!
//! ## Compaction
//!
//! Many small segments mean many fan-out parts per query. A **tiered**
//! compaction policy merges runs of ≥ `compact_fanout` consecutive
//! segments in the same size class (⌊log₂ home_len⌋) into one segment.
//! [`LiveIndex::compact_once`] applies one round; with
//! `LiveConfig::auto_compact` a background thread runs rounds after every
//! flush. The merged segment is built entirely **off-lock** from a
//! snapshot and swapped in only if its inputs are still present (checked
//! by segment id), so concurrent queries, appends and flushes proceed
//! untouched while a compaction builds.
//!
//! ## Persistence
//!
//! [`LiveIndex::save_to_dir`] / [`LiveIndex::open`] persist the whole
//! structure as a directory: one `live.iusl` manifest (magic `IUSL`,
//! versioned like the `IUSX` index format) naming the segment list,
//! memtable and tombstones, plus one `seg-*.iusg` file per segment
//! embedding the chunk and its index (saved via `ius_index::persist`, so
//! reopening never re-runs construction). Every file carries a CRC32
//! trailer, so silent corruption is rejected typed at open. See
//! [`manifest`].
//!
//! ## Durability
//!
//! [`LiveIndex::enable_durability`] arms a **write-ahead log**
//! (`live.wal`, see [`wal`]): every append/delete is logged — checksummed
//! and flushed per the configured [`FsyncPolicy`] — *before* it is applied,
//! so the caller's ack implies the mutation survives a crash.
//! [`LiveIndex::open`] replays the log tail over the manifest snapshot;
//! each flush checkpoints the manifest and rotates the log so it stays
//! bounded. Checkpoint failures are recorded in [`LiveStats::last_error`]
//! and retried on the next flush — they never fail an already-acked
//! mutation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod manifest;
pub mod wal;

pub use wal::FsyncPolicy;

use crate::wal::{Wal, WalRecord};
use ius_exec::{Executor, WorkerPool};
use ius_faultio::DurableSink;
use ius_index::overlap::{overlap_len, retain_home_and_globalize};
use ius_index::{validate_pattern, AnyIndex, IndexSpec, IndexStats, UncertainIndex};
use ius_obs::{clock, trace, Counter, Histogram, HistogramSnapshot};
use ius_query::{finalize_into, MatchSink, QueryBatch, QueryScratch, QueryStats};
use ius_weighted::{is_solid, Alphabet, Error, Result, WeightedString};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Tuning knobs of one [`LiveIndex`].
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Memtable rows that trigger an automatic flush on append. The
    /// effective threshold is at least `max_pattern_len` (a flush needs a
    /// non-empty home range after retaining the overlap).
    pub flush_threshold: usize,
    /// Tiered-compaction fan-out `K`: a run of at least `K` consecutive
    /// segments in the same size class is merged into one. At least 2.
    pub compact_fanout: usize,
    /// Spawn a background thread that runs compaction rounds after every
    /// flush (and periodically), so queries never see an unbounded number
    /// of small segments.
    pub auto_compact: bool,
    /// Worker threads of the query fan-out executor **and** of the
    /// segment-build executor — flushes freeze multiple segments
    /// concurrently and a compaction round runs multiple tier merges
    /// concurrently, one worker each (0 = all CPUs). Individual segment
    /// indexes always build serially inside their worker, so the built
    /// bytes are identical at every thread count.
    pub threads: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            flush_threshold: 8_192,
            compact_fanout: 4,
            auto_compact: true,
            threads: 0,
        }
    }
}

/// One immutable segment: its global offset, the width of the home range
/// it is authoritative for, its chunk of `X` (home + overlap) and the
/// index built over the chunk.
#[derive(Debug)]
pub(crate) struct Segment {
    /// Unique id (stable across compactions of *other* segments; used by
    /// the compaction swap to detect a concurrent change and by the
    /// manifest to name the segment file).
    pub(crate) id: u64,
    /// Global position of the chunk's (and home range's) first row.
    pub(crate) offset: usize,
    /// Width of the home range.
    pub(crate) home_len: usize,
    /// The chunk `[offset, offset + home_len + overlap)`, owned.
    pub(crate) x: WeightedString,
    /// The index over the chunk.
    pub(crate) index: AnyIndex,
}

/// Rows below which an append coalesces into the tail slab instead of
/// starting a new one: bounds both the copy-on-write cost of a
/// small-batch append and the slab count of the whole memtable.
const SLAB_MIN_ROWS: usize = 256;

/// The in-memory tail: raw probability rows of `[start, start + rows)`.
///
/// Rows are stored in **slabs** shared with snapshots via [`Arc`] — the
/// per-mutation state clone copies only the slab pointer list, and an
/// append either pushes a new slab or extends the (bounded) tail slab
/// copy-on-write. Every slab holds a whole number of rows, so row-at-a-
/// time wire ingest costs `O(batch + SLAB_MIN_ROWS)` per append instead
/// of re-copying the entire memtable.
#[derive(Debug, Clone)]
pub(crate) struct Memtable {
    /// Global position of the first stored row (= the memtable's home
    /// start: the memtable is authoritative for every start ≥ `start`).
    pub(crate) start: usize,
    /// Stored rows.
    pub(crate) rows: usize,
    /// Row-major probability slabs (`Σ lengths = rows × σ`).
    slabs: Vec<Arc<Vec<f64>>>,
}

impl Memtable {
    pub(crate) fn empty(start: usize) -> Self {
        Self {
            start,
            rows: 0,
            slabs: Vec::new(),
        }
    }

    /// Rebuilds a memtable from one contiguous flat buffer (manifest
    /// load).
    pub(crate) fn from_flat(start: usize, rows: usize, flat: Vec<f64>) -> Self {
        Self {
            start,
            rows,
            slabs: if rows > 0 {
                vec![Arc::new(flat)]
            } else {
                Vec::new()
            },
        }
    }

    /// Appends `rows` row-major rows.
    pub(crate) fn push_rows(&mut self, flat: &[f64], rows: usize, sigma: usize) {
        debug_assert_eq!(flat.len(), rows * sigma);
        if let Some(last) = self.slabs.last_mut() {
            if last.len() < SLAB_MIN_ROWS * sigma {
                // Coalesce into the tail slab; `make_mut` copies it only
                // when a snapshot still shares it, and the slab is
                // bounded, so the copy is too.
                Arc::make_mut(last).extend_from_slice(flat);
                self.rows += rows;
                return;
            }
        }
        self.slabs.push(Arc::new(flat.to_vec()));
        self.rows += rows;
    }

    /// Appends the rows `[row_start, row_end)` onto `out` as one
    /// contiguous row-major run.
    pub(crate) fn copy_rows_into(
        &self,
        row_start: usize,
        row_end: usize,
        sigma: usize,
        out: &mut Vec<f64>,
    ) {
        let mut skip = row_start * sigma;
        let mut take = (row_end - row_start) * sigma;
        out.reserve(take);
        for slab in &self.slabs {
            if take == 0 {
                break;
            }
            if skip >= slab.len() {
                skip -= slab.len();
                continue;
            }
            let end = (skip + take).min(slab.len());
            out.extend_from_slice(&slab[skip..end]);
            take -= end - skip;
            skip = 0;
        }
        debug_assert_eq!(take, 0, "requested rows exceed the memtable");
    }

    /// The rows `[row_start, row_end)` as one owned flat buffer.
    pub(crate) fn flat_rows(&self, row_start: usize, row_end: usize, sigma: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.copy_rows_into(row_start, row_end, sigma, &mut out);
        out
    }

    /// Drops the first `rows` rows, advancing `start` (a slab split at
    /// the boundary is replaced by a copy of its tail, never mutated in
    /// place — snapshots may share it).
    pub(crate) fn drain_front(&mut self, rows: usize, sigma: usize) {
        let mut drop_vals = rows * sigma;
        while drop_vals > 0 {
            let slab = self.slabs.first().expect("enough rows to drain");
            if slab.len() <= drop_vals {
                drop_vals -= slab.len();
                self.slabs.remove(0);
            } else {
                let tail = Arc::new(slab[drop_vals..].to_vec());
                self.slabs[0] = tail;
                drop_vals = 0;
            }
        }
        self.rows -= rows;
        self.start += rows;
    }

    /// One borrowed slice per row, in order — the random-access view the
    /// naive scan iterates.
    pub(crate) fn row_slices(&self, sigma: usize) -> Vec<&[f64]> {
        let mut rows = Vec::with_capacity(self.rows);
        for slab in &self.slabs {
            rows.extend(slab.chunks_exact(sigma));
        }
        debug_assert_eq!(rows.len(), self.rows);
        rows
    }

    /// Heap bytes held by the slabs and the pointer list.
    pub(crate) fn capacity_bytes(&self) -> usize {
        self.slabs
            .iter()
            .map(|slab| slab.capacity() * std::mem::size_of::<f64>())
            .sum::<usize>()
            + self.slabs.capacity() * std::mem::size_of::<Arc<Vec<f64>>>()
    }
}

/// One immutable snapshot of the whole structure — what queries clone and
/// mutators swap.
#[derive(Debug, Clone)]
pub(crate) struct LiveState {
    pub(crate) segments: Vec<Arc<Segment>>,
    pub(crate) memtable: Memtable,
    /// Sorted, disjoint, coalesced deleted ranges (half-open).
    pub(crate) tombstones: Vec<(usize, usize)>,
    /// Logical corpus length.
    pub(crate) n: usize,
}

/// Operational counters of a [`LiveIndex`] (monotonic since creation).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Logical corpus length `n`.
    pub corpus_len: usize,
    /// Immutable segments currently serving.
    pub segments: usize,
    /// Rows currently in the memtable tail.
    pub memtable_rows: usize,
    /// Tombstoned ranges currently filtering queries.
    pub tombstones: usize,
    /// Positions appended since creation.
    pub appended: u64,
    /// Memtable flushes since creation.
    pub flushes: u64,
    /// Compaction merges since creation.
    pub compactions: u64,
    /// Mutations logged to the write-ahead log since creation.
    pub wal_records: u64,
    /// Bytes appended to the write-ahead log since creation.
    pub wal_bytes: u64,
    /// Crash recoveries performed (1 if this instance replayed a
    /// non-empty WAL tail when it was opened, 0 otherwise).
    pub recoveries: u64,
    /// Mutations replayed from the WAL at open.
    pub recovered_records: u64,
    /// The active fsync policy as its wire code: 0 durability off,
    /// 1 per-record, 2 interval, 3 never.
    pub fsync_policy: u64,
    /// Background compaction rounds that failed (they are retried on the
    /// next wake-up; see [`LiveStats::last_error`]).
    pub compaction_errors: u64,
    /// The most recent background/durability error (compaction failure,
    /// checkpoint failure, WAL rotation failure), if any.
    pub last_error: Option<String>,
}

/// Allocation-free timing registry of the background machinery: flush and
/// compaction durations, WAL `fsync` latency, replay throughput and
/// compaction swap races. Recording is a few relaxed atomic adds, gated on
/// [`ius_obs::clock::enabled`]; [`LiveIndex::obs_snapshot`] reads it.
pub(crate) struct LiveObs {
    /// Duration of each memtable flush (plan + build + swap), ns.
    pub(crate) flush: Histogram,
    /// Duration of each compaction round that built at least one merge, ns.
    pub(crate) compaction: Histogram,
    /// Latency of each WAL `fsync`, ns (shared with the armed [`Wal`]
    /// across rotations).
    pub(crate) wal_fsync: Arc<Histogram>,
    /// Compaction swaps abandoned because a concurrent flush or competing
    /// merge consumed one of the run's inputs first.
    pub(crate) swap_in_races: Counter,
    /// WAL records scanned at open (both applied and checkpoint-skipped).
    pub(crate) replay_records: Counter,
    /// WAL bytes scanned at open.
    pub(crate) replay_bytes: Counter,
    /// Wall time of the open-time WAL scan + replay, ns.
    pub(crate) replay_ns: Counter,
}

impl LiveObs {
    fn new() -> Self {
        Self {
            flush: Histogram::new(),
            compaction: Histogram::new(),
            wal_fsync: Arc::new(Histogram::new()),
            swap_in_races: Counter::new(),
            replay_records: Counter::new(),
            replay_bytes: Counter::new(),
            replay_ns: Counter::new(),
        }
    }
}

/// Point-in-time view of a [`LiveIndex`]'s timing metrics — what the
/// serving layer folds into its `METRICS` snapshot. All durations are
/// nanoseconds; histogram quantiles carry the `ius_obs` relative-error
/// bound.
#[derive(Debug, Clone)]
pub struct LiveObsSnapshot {
    /// Memtable flush durations (plan + segment builds + swap).
    pub flush: HistogramSnapshot,
    /// Compaction round durations (rounds that built at least one merge).
    pub compaction: HistogramSnapshot,
    /// WAL `fsync` latencies (empty until durability is armed).
    pub wal_fsync: HistogramSnapshot,
    /// Compaction swaps lost to a concurrent flush or competing merge.
    pub swap_in_races: u64,
    /// WAL records scanned when this instance was opened.
    pub replay_records: u64,
    /// WAL bytes scanned when this instance was opened.
    pub replay_bytes: u64,
    /// Wall time of the open-time WAL replay, ns.
    pub replay_ns: u64,
}

/// The armed write-ahead log plus the directory it (and the checkpoint
/// manifest) lives in. `dir` is `None` for the fault-injection entry point
/// ([`LiveIndex::enable_durability_with_sink`]) — there is no directory to
/// checkpoint into, so flushes skip the checkpoint and the log never
/// rotates.
struct Durability {
    dir: Option<PathBuf>,
    wal: Wal,
}

struct Inner {
    alphabet: Alphabet,
    spec: IndexSpec,
    max_pattern_len: usize,
    config: LiveConfig,
    /// Snapshot holder: queries clone the `Arc`, mutators swap it.
    state: Mutex<Arc<LiveState>>,
    /// Serializes mutators (append/delete/flush); compaction swaps are
    /// id-checked instead, so a long merge build never stalls appends.
    write_lock: Mutex<()>,
    next_segment_id: AtomicU64,
    executor: QueryBatch,
    /// Fan-out for segment builds (flush freezes, compaction merges);
    /// shares the configured thread count with the query executor.
    build_executor: Executor,
    appended: AtomicU64,
    flushes: AtomicU64,
    compactions: AtomicU64,
    /// `Some` once durability is armed; mutators log here *before*
    /// applying (always while holding `write_lock`, so record order is
    /// the mutation order).
    durability: Mutex<Option<Durability>>,
    wal_records: AtomicU64,
    wal_bytes: AtomicU64,
    recoveries: AtomicU64,
    recovered_records: AtomicU64,
    compaction_errors: AtomicU64,
    /// Timing registry of the background machinery (flush/compaction/WAL
    /// fsync/replay); see [`LiveIndex::obs_snapshot`].
    obs: LiveObs,
    /// Most recent background/durability error, surfaced through STATS.
    last_error: Mutex<Option<String>>,
    /// Compactor wake-up: `(dirty, stop)` under the mutex.
    compact_signal: Mutex<(bool, bool)>,
    compact_cond: Condvar,
}

impl Inner {
    fn record_error(&self, message: String) {
        *self.last_error.lock().expect("error lock") = Some(message);
    }
}

/// An LSM-style dynamic index over one growing uncertain string. All
/// methods take `&self`; the structure is internally synchronized and is
/// meant to be shared behind an [`Arc`] (the serving layer does exactly
/// that).
pub struct LiveIndex {
    inner: Arc<Inner>,
    /// The background compactor thread (empty without `auto_compact`),
    /// tracked by the shared [`WorkerPool`] and joined on drop.
    compactor: Mutex<WorkerPool>,
}

impl std::fmt::Debug for LiveIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.live_stats();
        f.debug_struct("LiveIndex")
            .field("family", &self.inner.spec.family.name())
            .field("n", &stats.corpus_len)
            .field("segments", &stats.segments)
            .field("memtable_rows", &stats.memtable_rows)
            .field("tombstones", &stats.tombstones)
            .finish()
    }
}

impl LiveIndex {
    /// Creates an empty live index over `alphabet`: no segments, empty
    /// memtable, length 0. `max_pattern_len` bounds the pattern lengths
    /// the index will ever serve and fixes the segment overlap
    /// (`max_pattern_len − 1`).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameters`] if `max_pattern_len` is zero or below
    /// the family's minimum pattern length, or if `compact_fanout < 2`.
    pub fn new(
        alphabet: Alphabet,
        spec: IndexSpec,
        max_pattern_len: usize,
        config: LiveConfig,
    ) -> Result<Self> {
        if max_pattern_len == 0 {
            return Err(Error::InvalidParameters(
                "max_pattern_len = 0: the live index could not serve any pattern".into(),
            ));
        }
        if max_pattern_len < spec.lower_bound() {
            return Err(Error::InvalidParameters(format!(
                "max_pattern_len = {max_pattern_len} is below the family's minimum \
                 pattern length {}",
                spec.lower_bound()
            )));
        }
        if config.compact_fanout < 2 {
            return Err(Error::InvalidParameters(format!(
                "compact_fanout = {}: a merge needs at least two inputs",
                config.compact_fanout
            )));
        }
        let executor = if config.threads == 0 {
            QueryBatch::new()
        } else {
            QueryBatch::with_threads(config.threads)
        };
        let build_executor = Executor::with_threads(config.threads);
        let auto_compact = config.auto_compact;
        let inner = Arc::new(Inner {
            alphabet,
            spec,
            max_pattern_len,
            config,
            state: Mutex::new(Arc::new(LiveState {
                segments: Vec::new(),
                memtable: Memtable::empty(0),
                tombstones: Vec::new(),
                n: 0,
            })),
            write_lock: Mutex::new(()),
            next_segment_id: AtomicU64::new(0),
            executor,
            build_executor,
            appended: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            durability: Mutex::new(None),
            wal_records: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            recovered_records: AtomicU64::new(0),
            compaction_errors: AtomicU64::new(0),
            obs: LiveObs::new(),
            last_error: Mutex::new(None),
            compact_signal: Mutex::new((false, false)),
            compact_cond: Condvar::new(),
        });
        let mut compactor = WorkerPool::new();
        if auto_compact {
            let worker = inner.clone();
            compactor.spawn("ius-live-compact", move || compactor_loop(&worker));
        }
        Ok(Self {
            inner,
            compactor: Mutex::new(compactor),
        })
    }

    /// Seeds a live index from an existing corpus: creates an empty index,
    /// appends `x` (auto-flushing at the configured threshold) and flushes
    /// the remainder, so the bulk of the corpus serves from real segments
    /// and only the trailing overlap stays in the memtable.
    ///
    /// # Errors
    ///
    /// Construction errors of [`LiveIndex::new`], [`LiveIndex::append`]
    /// and [`LiveIndex::flush`].
    pub fn from_corpus(
        x: &WeightedString,
        spec: IndexSpec,
        max_pattern_len: usize,
        config: LiveConfig,
    ) -> Result<Self> {
        let live = Self::new(x.alphabet().clone(), spec, max_pattern_len, config)?;
        live.append(x)?;
        live.flush()?;
        Ok(live)
    }

    pub(crate) fn from_loaded_parts(
        alphabet: Alphabet,
        spec: IndexSpec,
        max_pattern_len: usize,
        config: LiveConfig,
        state: LiveState,
        next_segment_id: u64,
    ) -> Result<Self> {
        let live = Self::new(alphabet, spec, max_pattern_len, config)?;
        *live.inner.state.lock().expect("state lock") = Arc::new(state);
        live.inner
            .next_segment_id
            .store(next_segment_id, Ordering::SeqCst);
        Ok(live)
    }

    /// The alphabet every appended row must be over.
    pub fn alphabet(&self) -> &Alphabet {
        &self.inner.alphabet
    }

    /// The family/parameter descriptor segments are built from.
    pub fn spec(&self) -> &IndexSpec {
        &self.inner.spec
    }

    /// The maximum pattern length this index serves.
    pub fn max_pattern_len(&self) -> usize {
        self.inner.max_pattern_len
    }

    /// The segment overlap (`max_pattern_len − 1`).
    pub fn overlap(&self) -> usize {
        overlap_len(self.inner.max_pattern_len)
    }

    /// Logical corpus length `n`.
    pub fn len(&self) -> usize {
        self.snapshot().n
    }

    /// `true` iff nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of immutable segments currently serving.
    pub fn num_segments(&self) -> usize {
        self.snapshot().segments.len()
    }

    /// Operational counters.
    pub fn live_stats(&self) -> LiveStats {
        let state = self.snapshot();
        let fsync_policy = self
            .inner
            .durability
            .lock()
            .expect("durability lock")
            .as_ref()
            .map_or(0, |d| d.wal.policy().code());
        LiveStats {
            corpus_len: state.n,
            segments: state.segments.len(),
            memtable_rows: state.memtable.rows,
            tombstones: state.tombstones.len(),
            appended: self.inner.appended.load(Ordering::Relaxed),
            flushes: self.inner.flushes.load(Ordering::Relaxed),
            compactions: self.inner.compactions.load(Ordering::Relaxed),
            wal_records: self.inner.wal_records.load(Ordering::Relaxed),
            wal_bytes: self.inner.wal_bytes.load(Ordering::Relaxed),
            recoveries: self.inner.recoveries.load(Ordering::Relaxed),
            recovered_records: self.inner.recovered_records.load(Ordering::Relaxed),
            fsync_policy,
            compaction_errors: self.inner.compaction_errors.load(Ordering::Relaxed),
            last_error: self.inner.last_error.lock().expect("error lock").clone(),
        }
    }

    /// Point-in-time timing metrics of the background machinery: flush
    /// and compaction duration histograms, WAL `fsync` latency, replay
    /// throughput and compaction swap races. Durations are only recorded
    /// while the shared [`ius_obs::clock`] is enabled; reading is
    /// lock-free and never blocks a mutator.
    pub fn obs_snapshot(&self) -> LiveObsSnapshot {
        let obs = &self.inner.obs;
        LiveObsSnapshot {
            flush: obs.flush.snapshot(),
            compaction: obs.compaction.snapshot(),
            wal_fsync: obs.wal_fsync.snapshot(),
            swap_in_races: obs.swap_in_races.get(),
            replay_records: obs.replay_records.get(),
            replay_bytes: obs.replay_bytes.get(),
            replay_ns: obs.replay_ns.get(),
        }
    }

    /// The current tombstone set (sorted, disjoint, coalesced half-open
    /// ranges) — what the differential harness replays onto its reference.
    pub fn tombstones(&self) -> Vec<(usize, usize)> {
        self.snapshot().tombstones.clone()
    }

    /// Materializes the full logical corpus `X[0, n)` as one weighted
    /// string (`None` while the index is empty). Linear time and space —
    /// meant for tests and for differential verification, not serving.
    pub fn materialize(&self) -> Option<WeightedString> {
        let state = self.snapshot();
        if state.n == 0 {
            return None;
        }
        let sigma = self.inner.alphabet.size();
        let mut flat = Vec::with_capacity(state.n * sigma);
        for segment in &state.segments {
            flat.extend_from_slice(&segment.x.flat_probs()[..segment.home_len * sigma]);
        }
        state
            .memtable
            .copy_rows_into(0, state.memtable.rows, sigma, &mut flat);
        debug_assert_eq!(flat.len(), state.n * sigma);
        Some(
            WeightedString::from_flat(self.inner.alphabet.clone(), flat)
                .expect("segment and memtable rows were validated on append"),
        )
    }

    fn snapshot(&self) -> Arc<LiveState> {
        self.inner.state.lock().expect("state lock").clone()
    }

    // -----------------------------------------------------------------
    // Mutations
    // -----------------------------------------------------------------

    /// Appends `batch` to the logical corpus. The new rows are visible to
    /// the very next query (served by the memtable scan until a flush
    /// freezes them into a segment). Auto-flushes when the memtable
    /// reaches the configured threshold.
    ///
    /// With durability armed the batch is logged to the write-ahead log —
    /// and flushed per the [`FsyncPolicy`] — **before** it is applied, so
    /// a returned `Ok` implies the append survives a crash.
    ///
    /// Returns the new corpus length.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameters`] if `batch` is over a different
    /// alphabet; [`Error::Io`] if the write-ahead log refused the record
    /// (the batch was then **not** applied); flush errors when the
    /// threshold triggers.
    pub fn append(&self, batch: &WeightedString) -> Result<usize> {
        if batch.alphabet() != &self.inner.alphabet {
            return Err(Error::InvalidParameters(format!(
                "appended rows are over alphabet {:?}, the live index over {:?}",
                batch.alphabet().symbols(),
                self.inner.alphabet.symbols()
            )));
        }
        if batch.is_empty() {
            // Nothing to log or apply; keep the WAL free of zero-row
            // records (replay rejects them as malformed).
            return Ok(self.len());
        }
        let _write = self.inner.write_lock.lock().expect("write lock");
        // Log before applying: the record must be durable (per policy)
        // before the caller can observe the new rows.
        let n_before = self.snapshot().n;
        self.log_mutation(|| WalRecord::Append {
            n_before: n_before as u64,
            rows: batch.len() as u64,
            flat: batch.flat_probs().to_vec(),
        })?;
        let new_n;
        {
            let mut holder = self.inner.state.lock().expect("state lock");
            let mut state = LiveState::clone(&holder);
            state
                .memtable
                .push_rows(batch.flat_probs(), batch.len(), self.inner.alphabet.size());
            state.n += batch.len();
            new_n = state.n;
            *holder = Arc::new(state);
        }
        self.inner
            .appended
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        // Auto-flush freezes only *full* threshold-sized segments (the
        // remainder stays in the memtable), so segment sizes — and hence
        // the tiered compaction classes — do not depend on how appends
        // were batched.
        if self.snapshot().memtable.rows >= self.max_home() + self.overlap() {
            self.flush_locked(false)?;
        }
        Ok(new_n)
    }

    /// Home rows per frozen segment (the effective flush threshold).
    fn max_home(&self) -> usize {
        self.inner
            .config
            .flush_threshold
            .max(self.inner.max_pattern_len)
    }

    /// Tombstones the logical range `[start, end)`: every occurrence whose
    /// window intersects it disappears from query results. Positions are
    /// never renumbered and space is not reclaimed.
    ///
    /// With durability armed the deletion is logged to the write-ahead
    /// log — and flushed per the [`FsyncPolicy`] — **before** it is
    /// applied, so a returned `Ok` implies it survives a crash.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameters`] if `start ≥ end`;
    /// [`Error::PositionOutOfBounds`] if `end` exceeds the corpus length;
    /// [`Error::Io`] if the write-ahead log refused the record (the
    /// deletion was then **not** applied).
    pub fn delete_range(&self, start: usize, end: usize) -> Result<()> {
        if start >= end {
            return Err(Error::InvalidParameters(format!(
                "delete_range({start}, {end}): the range is empty"
            )));
        }
        let _write = self.inner.write_lock.lock().expect("write lock");
        let n_before = self.snapshot().n;
        if end > n_before {
            return Err(Error::PositionOutOfBounds {
                position: end,
                length: n_before,
            });
        }
        self.log_mutation(|| WalRecord::Delete {
            n_before: n_before as u64,
            start: start as u64,
            end: end as u64,
        })?;
        let mut holder = self.inner.state.lock().expect("state lock");
        let mut state = LiveState::clone(&holder);
        insert_tombstone(&mut state.tombstones, start, end);
        *holder = Arc::new(state);
        Ok(())
    }

    /// Freezes the memtable into a new segment: home range
    /// `[h, n − overlap)`, chunk `[h, n)`; the memtable retains the last
    /// `overlap` rows. Returns `true` if a segment was created (`false`
    /// when the memtable holds no more than `overlap` rows — there would
    /// be nothing to be authoritative for).
    ///
    /// # Errors
    ///
    /// Construction errors of the per-segment build.
    pub fn flush(&self) -> Result<bool> {
        let _write = self.inner.write_lock.lock().expect("write lock");
        self.flush_locked(true)
    }

    /// The flush body; the caller holds `write_lock`, so the memtable can
    /// only be observed, not changed, while the segments build. A memtable
    /// larger than the threshold (one huge append, a seeding
    /// [`LiveIndex::from_corpus`]) is split into segments of at most
    /// `flush_threshold` home rows each, so segmentation does not depend
    /// on the append batching. With `drain == false` (the append-triggered
    /// auto-flush) only *full* threshold-sized segments are frozen and the
    /// remainder stays in the memtable — which keeps segment sizes (and
    /// hence the tiered compaction classes) uniform; `drain == true` (an
    /// explicit [`LiveIndex::flush`]) freezes everything above the
    /// retained overlap.
    fn flush_locked(&self, drain: bool) -> Result<bool> {
        let overlap = self.overlap();
        let snapshot = self.snapshot();
        let mem = &snapshot.memtable;
        if mem.rows <= overlap {
            return Ok(false);
        }
        let flush_start = clock::now_ns();
        let sigma = self.inner.alphabet.size();
        let max_home = self.max_home();
        // Plan the freeze serially (cheap), then build the per-segment
        // indexes concurrently off-lock (queries proceed on the old
        // snapshot; concurrent appends are excluded by write_lock).
        // Segment ids are assigned in plan order before the fan-out, so
        // the resulting segment list is identical at every thread count.
        let mut plans: Vec<(u64, usize, usize)> = Vec::new(); // (id, consumed, home_len)
        let mut consumed = 0usize;
        while if drain {
            mem.rows - consumed > overlap
        } else {
            mem.rows - consumed >= max_home + overlap
        } {
            let home_len = (mem.rows - consumed - overlap).min(max_home);
            let id = self.inner.next_segment_id.fetch_add(1, Ordering::SeqCst);
            plans.push((id, consumed, home_len));
            consumed += home_len;
        }
        if plans.is_empty() {
            return Ok(false);
        }
        let built = self
            .inner
            .build_executor
            .run(plans.len(), |i| -> Result<Arc<Segment>> {
                let (id, start, home_len) = plans[i];
                let chunk_rows = home_len + overlap;
                let flat = mem.flat_rows(start, start + chunk_rows, sigma);
                let chunk = WeightedString::from_flat(self.inner.alphabet.clone(), flat)
                    .expect("memtable rows were validated on append");
                let index = self.inner.spec.build(&chunk)?;
                Ok(Arc::new(Segment {
                    id,
                    offset: mem.start + start,
                    home_len,
                    x: chunk,
                    index,
                }))
            });
        let mut frozen: Vec<Arc<Segment>> = Vec::with_capacity(built.len());
        for outcome in built {
            match outcome {
                Ok(segment) => frozen.push(segment?),
                Err(task_panic) => panic!("{task_panic}"),
            }
        }
        {
            let mut holder = self.inner.state.lock().expect("state lock");
            let mut state = LiveState::clone(&holder);
            debug_assert_eq!(state.memtable.start, mem.start, "write_lock held");
            debug_assert_eq!(state.memtable.rows, mem.rows, "write_lock held");
            state.segments.extend(frozen);
            state.memtable.drain_front(consumed, sigma);
            *holder = Arc::new(state);
        }
        self.inner.flushes.fetch_add(1, Ordering::Relaxed);
        if clock::enabled() {
            self.inner
                .obs
                .flush
                .record(clock::now_ns().saturating_sub(flush_start));
        }
        // Wake the background compactor: a flush is what grows the
        // segment list.
        {
            let mut signal = self.inner.compact_signal.lock().expect("signal lock");
            signal.0 = true;
            self.inner.compact_cond.notify_all();
        }
        // Checkpoint: fold the frozen segments into the manifest and
        // rotate the WAL so it stays bounded. Failures are recorded and
        // retried on the next flush, never propagated — the mutations
        // behind this flush were already applied and acked through the
        // WAL, and the (kept) old log still covers them.
        self.checkpoint_locked();
        Ok(true)
    }

    // -----------------------------------------------------------------
    // Durability
    // -----------------------------------------------------------------

    /// Arms durability: checkpoints the current state into `dir` (the
    /// manifest directory of [`LiveIndex::save_to_dir`]) and starts a
    /// fresh write-ahead log `live.wal` there. From now on every
    /// append/delete is logged — checksummed and flushed per `policy` —
    /// *before* it is applied, and every flush re-checkpoints and rotates
    /// the log. Reopening the directory with [`LiveIndex::open`] replays
    /// any log tail the last checkpoint had not folded in.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if the checkpoint or the log file cannot be written.
    pub fn enable_durability(&self, dir: &Path, policy: FsyncPolicy) -> Result<()> {
        let _write = self.inner.write_lock.lock().expect("write lock");
        self.save_to_dir_locked(dir)
            .map_err(|e| Error::Io(format!("initial checkpoint into {}: {e}", dir.display())))?;
        let file = wal::create_wal_file(dir).map_err(|e| {
            Error::Io(format!(
                "creating {} in {}: {e}",
                wal::WAL_FILE,
                dir.display()
            ))
        })?;
        *self.inner.durability.lock().expect("durability lock") = Some(Durability {
            dir: Some(dir.to_path_buf()),
            wal: Wal::resume(Box::new(file), policy)
                .with_fsync_histogram(self.inner.obs.wal_fsync.clone()),
        });
        Ok(())
    }

    /// Arms durability over an injectable sink instead of a real file —
    /// the fault-injection entry point. No directory is attached, so
    /// flushes skip the checkpoint and the log never rotates: every
    /// logged mutation stays in the sink's media for the test to crash
    /// and replay.
    #[doc(hidden)]
    pub fn enable_durability_with_sink(
        &self,
        sink: Box<dyn DurableSink>,
        policy: FsyncPolicy,
    ) -> Result<()> {
        let _write = self.inner.write_lock.lock().expect("write lock");
        let wal = Wal::create(sink, policy)
            .map_err(|e| Error::Io(format!("writing the wal header: {e}")))?
            .with_fsync_histogram(self.inner.obs.wal_fsync.clone());
        *self.inner.durability.lock().expect("durability lock") =
            Some(Durability { dir: None, wal });
        Ok(())
    }

    /// Logs one mutation to the WAL (no-op when durability is off). The
    /// record is only built when a log is armed — the common undurable
    /// path never copies the batch. Caller holds `write_lock`, so record
    /// order is the mutation order.
    fn log_mutation(&self, record: impl FnOnce() -> WalRecord) -> Result<()> {
        let mut durability = self.inner.durability.lock().expect("durability lock");
        let Some(d) = durability.as_mut() else {
            return Ok(());
        };
        match d.wal.append(&record()) {
            Ok(bytes) => {
                self.inner.wal_records.fetch_add(1, Ordering::Relaxed);
                self.inner
                    .wal_bytes
                    .fetch_add(bytes as u64, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                let message = format!("wal append failed: {e}");
                self.inner.record_error(message.clone());
                Err(Error::Io(message))
            }
        }
    }

    /// The post-flush checkpoint (caller holds `write_lock`): saves the
    /// manifest and rotates the WAL. Failures are recorded in
    /// `last_error` and swallowed — an already-applied, already-acked
    /// mutation must never retroactively fail, and replaying the kept
    /// old log over the old manifest is idempotent.
    fn checkpoint_locked(&self) {
        let dir = {
            let durability = self.inner.durability.lock().expect("durability lock");
            match durability.as_ref() {
                Some(d) => match &d.dir {
                    Some(dir) => dir.clone(),
                    None => return, // sink-backed: nothing to checkpoint into
                },
                None => return,
            }
        };
        if let Err(e) = self.save_to_dir_locked(&dir) {
            self.inner.record_error(format!("checkpoint failed: {e}"));
            return;
        }
        self.rotate_wal_locked(&dir);
    }

    /// Starts a fresh WAL after a successful manifest save of
    /// `saved_dir` (caller holds `write_lock`). A rotation failure only
    /// costs boundedness, never correctness — records already folded
    /// into the manifest replay as skips — so it is recorded, not
    /// propagated.
    pub(crate) fn rotate_wal_locked(&self, saved_dir: &Path) {
        let mut durability = self.inner.durability.lock().expect("durability lock");
        let Some(d) = durability.as_mut() else { return };
        let Some(dir) = &d.dir else { return };
        if dir != saved_dir {
            return;
        }
        match wal::create_wal_file(dir) {
            Ok(file) => {
                d.wal = Wal::resume(Box::new(file), d.wal.policy())
                    .with_fsync_histogram(self.inner.obs.wal_fsync.clone());
            }
            Err(e) => self.inner.record_error(format!("wal rotation failed: {e}")),
        }
    }

    /// Applies one round of the tiered compaction policy: **every**
    /// disjoint run of at least `compact_fanout` consecutive segments in
    /// the same size class (⌊log₂ home_len⌋) is merged into one segment,
    /// and the merges build **concurrently** on the shared executor. Each
    /// merged index builds off-lock from a snapshot; every swap is
    /// id-checked independently, so a concurrent competing compaction
    /// simply loses its run and nothing is blocked meanwhile.
    ///
    /// Returns the number of merges performed this round.
    ///
    /// # Errors
    ///
    /// Construction errors of the merged builds.
    pub fn compact_once(&self) -> Result<usize> {
        compact_round(&self.inner)
    }

    /// Merges **all** segments into one (a major compaction), retrying
    /// until a single segment remains — a concurrent background tiered
    /// round may win an individual swap race, but every competitor shrinks
    /// the list, so this converges. The memtable is not touched — call
    /// [`LiveIndex::flush`] first to fold it in too.
    ///
    /// Returns the number of merges performed.
    ///
    /// # Errors
    ///
    /// Construction errors of the merged build.
    pub fn compact_full(&self) -> Result<usize> {
        let mut merges = 0usize;
        loop {
            let snapshot = self.snapshot();
            if snapshot.segments.len() < 2 {
                return Ok(merges);
            }
            merges += self.merge_run(&snapshot.segments)?;
        }
    }

    /// Builds one merged segment from a run of consecutive segments
    /// (off-lock) and swaps it in if the run is still intact.
    fn merge_run(&self, run: &[Arc<Segment>]) -> Result<usize> {
        let id = self.inner.next_segment_id.fetch_add(1, Ordering::SeqCst);
        let merged = build_merged_segment(&self.inner, run, id)?;
        Ok(swap_in_merged(&self.inner, merged, run))
    }

    // -----------------------------------------------------------------
    // Queries
    // -----------------------------------------------------------------

    /// The sink-based query over the owned corpus: fans out over the
    /// segments and the memtable scan, merges the (already globally
    /// sorted) home-filtered outputs, drops tombstoned windows and streams
    /// into `sink`. Runs against an immutable snapshot — concurrent
    /// appends, flushes and compactions never affect an in-flight query.
    ///
    /// # Errors
    ///
    /// Pattern-contract errors ([`Error::EmptyInput`],
    /// [`Error::PatternTooShort`], [`Error::PatternTooLong`],
    /// [`Error::UnknownSymbol`] for a rank outside the alphabet) and query
    /// errors of the per-segment indexes.
    pub fn query_owned_into(
        &self,
        pattern: &[u8],
        scratch: &mut QueryScratch,
        sink: &mut dyn MatchSink,
    ) -> Result<QueryStats> {
        validate_pattern(pattern, self.inner.spec.lower_bound())?;
        if pattern.len() > self.inner.max_pattern_len {
            return Err(Error::PatternTooLong {
                pattern: pattern.len(),
                upper_bound: self.inner.max_pattern_len,
            });
        }
        let sigma = self.inner.alphabet.size();
        if let Some(&rank) = pattern.iter().find(|&&rank| rank as usize >= sigma) {
            // The engines index probability rows by rank; reject foreign
            // ranks here with a typed error instead of risking a panic
            // deep inside a segment engine.
            return Err(Error::UnknownSymbol(rank));
        }
        let state = self.snapshot();
        let z = self.inner.spec.params.z;
        let jobs = state.segments.len() + 1;
        let per_part = self
            .inner
            .executor
            .run::<(Vec<usize>, QueryStats), Error, _>(jobs, |i, worker_scratch| {
                if let Some(segment) = state.segments.get(i) {
                    let mut local = Vec::new();
                    let stats = segment.index.query_into(
                        pattern,
                        &segment.x,
                        worker_scratch,
                        &mut local,
                    )?;
                    retain_home_and_globalize(&mut local, segment.home_len, segment.offset);
                    Ok((local, stats))
                } else {
                    Ok(scan_memtable(&state.memtable, sigma, pattern, z))
                }
            });
        let mut total = QueryStats::default();
        scratch.positions.clear();
        // The fan-out parts ran on executor threads, but their stats come
        // back to this (request) thread: record them as duration-only
        // children of the caller's query span, one group per part with the
        // sampled stage breakdown nested inside.
        let traced = trace::active();
        for (i, entry) in per_part.into_iter().enumerate() {
            let (positions, stats) = entry?;
            total.accumulate(&stats);
            if traced {
                let code = if i < state.segments.len() {
                    trace::STAGE_PART
                } else {
                    trace::STAGE_MEMTABLE
                };
                trace::group(code, stats.staged_ns(), i as u64, stats.reported as u64);
                if stats.timed {
                    trace::leaf(trace::STAGE_SCAN, stats.scan_ns, 0, 0);
                    trace::leaf(trace::STAGE_LOCATE, stats.locate_ns, 0, 0);
                    trace::leaf(
                        trace::STAGE_VERIFY,
                        stats.verify_ns,
                        stats.candidates as u64,
                        0,
                    );
                    trace::leaf(trace::STAGE_REPORT, stats.report_ns, 0, 0);
                }
                trace::end_group();
            }
            // Home ranges are disjoint and increasing and each part's
            // output is sorted: the concatenation is globally sorted.
            scratch.positions.extend(positions);
        }
        if traced {
            trace::enter(trace::STAGE_TOMBSTONE_FILTER);
        }
        let before = scratch.positions.len();
        filter_tombstoned_windows(&mut scratch.positions, &state.tombstones, pattern.len());
        if traced {
            trace::exit_with(before as u64, scratch.positions.len() as u64);
        }
        total.reported = finalize_into(&mut scratch.positions, true, sink);
        Ok(total)
    }

    /// Collects all occurrence positions — the allocating convenience
    /// wrapper over [`LiveIndex::query_owned_into`].
    ///
    /// # Errors
    ///
    /// Same contract as [`LiveIndex::query_owned_into`].
    pub fn query_owned(&self, pattern: &[u8]) -> Result<Vec<usize>> {
        let mut scratch = QueryScratch::new();
        let mut positions = Vec::new();
        self.query_owned_into(pattern, &mut scratch, &mut positions)?;
        Ok(positions)
    }
}

impl Drop for LiveIndex {
    fn drop(&mut self) {
        // Clean-shutdown barrier: under `interval`/`never` fsync policies
        // acked records may still sit in kernel buffers — push them to
        // stable storage before the handle goes away (best-effort).
        if let Ok(mut durability) = self.inner.durability.lock() {
            if let Some(d) = durability.as_mut() {
                let _ = d.wal.sync();
            }
        }
        let mut pool = self.compactor.lock().expect("compactor lock");
        if !pool.is_empty() {
            {
                let mut signal = self.inner.compact_signal.lock().expect("signal lock");
                signal.1 = true;
                self.inner.compact_cond.notify_all();
            }
            pool.join_all();
        }
    }
}

impl UncertainIndex for LiveIndex {
    fn name(&self) -> &'static str {
        "LIVE"
    }

    /// Delegates to [`LiveIndex::query_owned_into`]; the live index owns
    /// its corpus, so the `x` argument is ignored (same contract as
    /// `ShardedIndex`).
    fn query_into(
        &self,
        pattern: &[u8],
        _x: &WeightedString,
        scratch: &mut QueryScratch,
        sink: &mut dyn MatchSink,
    ) -> Result<QueryStats> {
        self.query_owned_into(pattern, scratch, sink)
    }

    fn size_bytes(&self) -> usize {
        let state = self.snapshot();
        state
            .segments
            .iter()
            .map(|segment| segment.index.size_bytes() + segment.x.memory_bytes())
            .sum::<usize>()
            + state.memtable.capacity_bytes()
            + state.tombstones.capacity() * std::mem::size_of::<(usize, usize)>()
    }

    fn stats(&self) -> IndexStats {
        let state = self.snapshot();
        let mut aggregate = IndexStats {
            name: format!(
                "LIVE-{}(S={})",
                self.inner.spec.family.name(),
                state.segments.len()
            ),
            size_bytes: self.size_bytes(),
            ..Default::default()
        };
        for segment in &state.segments {
            let stats = segment.index.stats();
            aggregate.num_nodes += stats.num_nodes;
            aggregate.num_leaves += stats.num_leaves;
            aggregate.num_grid_points += stats.num_grid_points;
            aggregate.num_mismatches += stats.num_mismatches;
        }
        aggregate
    }
}

/// The naive scan over the memtable tail: enumerates every start whose
/// window fits in `[0, rows)`, multiplies the per-position probabilities
/// of the pattern's ranks and keeps the z-solid ones. Output positions are
/// global (the memtable's data start *is* its home start, so no filter is
/// needed).
fn scan_memtable(
    memtable: &Memtable,
    sigma: usize,
    pattern: &[u8],
    z: f64,
) -> (Vec<usize>, QueryStats) {
    let mut positions = Vec::new();
    let mut stats = QueryStats::default();
    let m = pattern.len();
    if memtable.rows < m {
        return (positions, stats);
    }
    // One slice per row: a window's rows may span slab boundaries, and
    // this flattens the lookup back to plain indexing.
    let rows = memtable.row_slices(sigma);
    for start in 0..=rows.len() - m {
        stats.candidates += 1;
        let mut p = 1.0f64;
        for (offset, &rank) in pattern.iter().enumerate() {
            p *= rows[start + offset][rank as usize];
            if p == 0.0 {
                break;
            }
        }
        if is_solid(p, z) {
            stats.verified += 1;
            positions.push(memtable.start + start);
        }
    }
    (positions, stats)
}

/// Inserts `[start, end)` into a sorted, disjoint tombstone set,
/// coalescing with every range it touches (adjacent ranges merge too).
fn insert_tombstone(tombstones: &mut Vec<(usize, usize)>, mut start: usize, mut end: usize) {
    let mut i = 0;
    while i < tombstones.len() && tombstones[i].1 < start {
        i += 1;
    }
    let mut j = i;
    while j < tombstones.len() && tombstones[j].0 <= end {
        start = start.min(tombstones[j].0);
        end = end.max(tombstones[j].1);
        j += 1;
    }
    tombstones.splice(i..j, [(start, end)]).for_each(drop);
}

/// Drops every (sorted) position whose window `[p, p + m)` intersects a
/// tombstoned range. Two-pointer merge: linear in positions + tombstones.
fn filter_tombstoned_windows(positions: &mut Vec<usize>, tombstones: &[(usize, usize)], m: usize) {
    if tombstones.is_empty() {
        return;
    }
    let mut ti = 0usize;
    positions.retain(|&p| {
        while ti < tombstones.len() && tombstones[ti].1 <= p {
            ti += 1;
        }
        !(ti < tombstones.len() && tombstones[ti].0 < p + m)
    });
}

/// The tiered policy: **every** disjoint run of at least `fanout`
/// consecutive segments in the same size class (⌊log₂ home_len⌋), as
/// half-open index ranges into the segment list, in order. One merge
/// consumes at most `2 · fanout` segments at a time (a longer class run
/// yields several merges), so a long backlog is folded in cascading
/// rounds (each merge promotes its output to a larger class) instead of
/// one unbounded rebuild.
fn plan_tiered_runs(segments: &[Arc<Segment>], fanout: usize) -> Vec<(usize, usize)> {
    let class = |segment: &Segment| usize::BITS - segment.home_len.max(1).leading_zeros();
    let mut runs = Vec::new();
    let mut start = 0usize;
    while start < segments.len() {
        let c = class(&segments[start]);
        let mut end = start + 1;
        while end < segments.len() && class(&segments[end]) == c {
            end += 1;
        }
        // Chop the class run into merge-sized pieces; a short tail below
        // `fanout` waits for the next round.
        let mut piece = start;
        while end - piece >= fanout {
            let piece_end = end.min(piece + 2 * fanout);
            runs.push((piece, piece_end));
            piece = piece_end;
        }
        start = end;
    }
    runs
}

/// One compaction round: plans every qualifying tier run on a snapshot,
/// builds all merged segments **concurrently** on the shared executor
/// (ids assigned in plan order, so the outcome is identical at every
/// thread count), then swaps each in under its own id check. Returns the
/// number of merges that actually swapped in.
fn compact_round(inner: &Arc<Inner>) -> Result<usize> {
    let snapshot = inner.state.lock().expect("state lock").clone();
    let runs = plan_tiered_runs(&snapshot.segments, inner.config.compact_fanout);
    if runs.is_empty() {
        return Ok(0);
    }
    let round_start = clock::now_ns();
    let ids: Vec<u64> = runs
        .iter()
        .map(|_| inner.next_segment_id.fetch_add(1, Ordering::SeqCst))
        .collect();
    let built = inner.build_executor.run(runs.len(), |i| {
        let (start, end) = runs[i];
        build_merged_segment(inner, &snapshot.segments[start..end], ids[i])
    });
    let mut merges = 0usize;
    for (outcome, &(start, end)) in built.into_iter().zip(&runs) {
        let merged = match outcome {
            Ok(segment) => segment?,
            Err(task_panic) => panic!("{task_panic}"),
        };
        merges += swap_in_merged(inner, merged, &snapshot.segments[start..end]);
    }
    if clock::enabled() {
        inner
            .obs
            .compaction
            .record(clock::now_ns().saturating_sub(round_start));
    }
    Ok(merges)
}

/// The background compactor: wakes on every flush (and periodically as a
/// safety net) and applies tiered rounds until the policy no longer
/// triggers. Build errors are reported and retried on the next wake-up
/// rather than crashing the thread.
fn compactor_loop(inner: &Arc<Inner>) {
    loop {
        {
            let signal = inner.compact_signal.lock().expect("signal lock");
            // Wake on a flush signal or a stop; the timeout doubles as a
            // periodic safety-net round.
            let (mut signal, _timeout) = inner
                .compact_cond
                .wait_timeout_while(
                    signal,
                    std::time::Duration::from_millis(200),
                    |(dirty, stop)| !*dirty && !*stop,
                )
                .expect("signal lock");
            if signal.1 {
                return;
            }
            signal.0 = false;
        }
        // Apply tiered rounds (each round merges every qualifying run
        // concurrently) until the policy no longer triggers.
        loop {
            match compact_round(inner) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(err) => {
                    // Surface through STATS (counter + last-error string)
                    // instead of stderr; the next wake-up retries.
                    inner.compaction_errors.fetch_add(1, Ordering::Relaxed);
                    inner.record_error(format!("background compaction failed (will retry): {err}"));
                    break;
                }
            }
        }
    }
}

/// Builds one merged segment covering a run of consecutive segments —
/// pure construction, no shared-state mutation, so several merges can
/// build concurrently. The caller supplies the segment id (assigned in
/// plan order, which keeps the segment list deterministic under
/// parallel rounds).
fn build_merged_segment(inner: &Arc<Inner>, run: &[Arc<Segment>], id: u64) -> Result<Arc<Segment>> {
    debug_assert!(run.len() >= 2);
    let sigma = inner.alphabet.size();
    let last = run.last().expect("non-empty run");
    let offset = run[0].offset;
    let home_len = last.offset + last.home_len - offset;
    let mut flat = Vec::with_capacity((home_len + overlap_len(inner.max_pattern_len)) * sigma);
    for segment in &run[..run.len() - 1] {
        flat.extend_from_slice(&segment.x.flat_probs()[..segment.home_len * sigma]);
    }
    flat.extend_from_slice(last.x.flat_probs());
    let chunk = WeightedString::from_flat(inner.alphabet.clone(), flat)
        .expect("segment rows were validated on append");
    let index = inner.spec.build(&chunk)?;
    Ok(Arc::new(Segment {
        id,
        offset,
        home_len,
        x: chunk,
        index,
    }))
}

/// Swaps a merged segment in for its inputs if — and only if — the run
/// is still intact (checked by segment id). A concurrent flush or a
/// competing merge that already consumed one of the inputs makes this a
/// no-op: the merged segment is dropped and nothing changes.
fn swap_in_merged(inner: &Arc<Inner>, merged: Arc<Segment>, run: &[Arc<Segment>]) -> usize {
    let ids: Vec<u64> = run.iter().map(|segment| segment.id).collect();
    let mut holder = inner.state.lock().expect("state lock");
    let Some(first) = holder.segments.iter().position(|s| s.id == ids[0]) else {
        inner.obs.swap_in_races.inc();
        return 0;
    };
    let intact = holder.segments.len() >= first + ids.len()
        && holder.segments[first..first + ids.len()]
            .iter()
            .zip(&ids)
            .all(|(s, &id)| s.id == id);
    if !intact {
        inner.obs.swap_in_races.inc();
        return 0;
    }
    let mut state = LiveState::clone(&holder);
    state
        .segments
        .splice(first..first + ids.len(), [merged])
        .for_each(drop);
    *holder = Arc::new(state);
    drop(holder);
    inner.compactions.fetch_add(1, Ordering::Relaxed);
    1
}

#[cfg(test)]
mod tests;
