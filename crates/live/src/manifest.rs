//! `IUSL` manifest persistence: a [`LiveIndex`] saved as a directory.
//!
//! ```text
//! <dir>/live.iusl      manifest: magic "IUSL" · version u16 · alphabet ·
//!                      family tag + params · max_pattern_len · n ·
//!                      memtable (start, rows, probs) · tombstones ·
//!                      segment table (id, offset, home_len each) ·
//!                      next segment id · CRC32 trailer (u32)
//! <dir>/seg-<id>.iusg  one per segment: magic "IUSG" · version u16 ·
//!                      id/offset/home_len · chunk rows · σ · chunk probs ·
//!                      zero pad to an 8-aligned offset · nested IUSX
//!                      index envelope (ius_index::persist) · CRC32
//!                      trailer (u32)
//! <dir>/live.wal       write-ahead log tail, when durability is armed
//!                      (see [`crate::wal`]); replayed over the manifest
//!                      snapshot by [`LiveIndex::open`]
//! ```
//!
//! Everything is little-endian (`f64` as the LE bytes of its IEEE-754
//! bits), matching the `IUSX` on-disk format. **Version policy** is the
//! same too: any layout change bumps the version and readers reject
//! versions they do not know — version 2 added the CRC32 trailer (over
//! everything from the magic to the last payload byte), so version-1
//! files (no checksum) are rejected typed; version 3 zero-pads the
//! segment prefix so the nested index envelope starts on an 8-aligned
//! offset. Reopening never re-runs construction: a version-3 segment is
//! read into one [`ius_arena::Arena`] and its index opened zero-copy by
//! `ius_index::persist::open_any_index_at` (O(header + validation), not
//! O(elements)); version-2 segment files stay loadable through the
//! streaming decoder and answer identically.
//!
//! [`LiveIndex::save_to_dir`] writes the segment files first and the
//! manifest last, **every file through a temporary name + atomic rename**;
//! segments are immutable and ids never reused, so a segment file already
//! present under its final name is skipped (no pointless rewrite, and no
//! in-place truncation of a file the current manifest references). It then
//! removes `seg-*.iusg` files the new manifest no longer references (left
//! behind by compactions) and stale `.tmp` debris. A torn save therefore
//! always leaves the *previous* manifest intact and loadable.
//!
//! [`LiveIndex::open`] fails with a **typed** `InvalidData`/`UnexpectedEof`
//! error on any corrupt or truncated manifest or segment file, and with a
//! typed `NotFound` error naming the missing file when a segment file the
//! manifest references is gone — never with a panic, and never lazily at
//! first query (everything is validated at open).

use crate::wal::{self, WalRecord};
use crate::{insert_tombstone, LiveConfig, LiveIndex, LiveState, Memtable, Segment};
use ius_arena::Arena;
use ius_faultio::{crc32, Crc32Reader, Crc32Writer};
use ius_index::overlap::overlap_len;
use ius_index::{
    AnyIndex, IndexFamily, IndexParams, IndexSpec, IndexVariant, LoadedAny, UncertainIndex,
};
use ius_sampling::KmerOrder;
use ius_weighted::{Alphabet, WeightedString};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

/// The four magic bytes opening a live-index manifest.
pub const MANIFEST_MAGIC: [u8; 4] = *b"IUSL";

/// The four magic bytes opening a segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"IUSG";

/// The current manifest / segment-file format version. Version 2 added
/// the CRC32 trailer behind both file kinds; version-1 files (no
/// checksum) are rejected typed. Version 3 zero-pads the segment prefix
/// so the nested `IUSX` envelope starts 8-aligned and reopens through
/// the zero-copy arena path; version-2 files are still read (streaming).
pub const LIVE_FORMAT_VERSION: u16 = 3;

/// The oldest format version this build still reads.
pub const LIVE_MIN_READ_VERSION: u16 = 2;

/// File name of the manifest inside a live-index directory.
pub const MANIFEST_FILE: &str = "live.iusl";

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// ---------------------------------------------------------------------
// Wire primitives (the IUSX helpers are private to ius_index::persist;
// the handful needed here are small enough to keep local).
// ---------------------------------------------------------------------

fn write_u8(w: &mut dyn Write, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

fn write_u16(w: &mut dyn Write, v: u16) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u32(w: &mut dyn Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut dyn Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64(w: &mut dyn Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_bits().to_le_bytes())
}

fn read_u8(r: &mut dyn Read) -> io::Result<u8> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    Ok(buf[0])
}

fn read_u16(r: &mut dyn Read) -> io::Result<u16> {
    let mut buf = [0u8; 2];
    r.read_exact(&mut buf)?;
    Ok(u16::from_le_bytes(buf))
}

fn read_u32(r: &mut dyn Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Reads the CRC32 trailer from the checksummed reader's *underlying*
/// stream and compares it against the digest of everything read so far.
fn check_trailer<R: Read>(cr: &mut Crc32Reader<R>, what: &str) -> io::Result<()> {
    let computed = cr.crc();
    let stored = read_u32(cr.inner_mut())?;
    if stored != computed {
        return Err(bad(format!(
            "{what} checksum mismatch (stored {stored:#010x}, computed {computed:#010x}): the \
             file is corrupt"
        )));
    }
    Ok(())
}

fn read_u64(r: &mut dyn Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_f64(r: &mut dyn Read) -> io::Result<f64> {
    Ok(f64::from_bits(read_u64(r)?))
}

fn read_len(r: &mut dyn Read) -> io::Result<usize> {
    usize::try_from(read_u64(r)?).map_err(|_| bad("length prefix exceeds the address space"))
}

/// Writes a float slice in bounded chunks (large `write_all`s, no
/// syscall-per-element on unbuffered writers).
fn write_f64_slice(w: &mut dyn Write, values: &[f64]) -> io::Result<()> {
    const CHUNK: usize = 8192;
    let mut buf = Vec::with_capacity(CHUNK.min(values.len()) * 8);
    for chunk in values.chunks(CHUNK) {
        buf.clear();
        for &v in chunk {
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

/// Reads `count` floats in bounded chunks, so a corrupted count fails with
/// EOF instead of one absurd up-front allocation.
fn read_f64_vec(r: &mut dyn Read, count: usize) -> io::Result<Vec<f64>> {
    let mut out = Vec::new();
    let mut buf = [0u8; 8192];
    let mut remaining = count
        .checked_mul(8)
        .ok_or_else(|| bad("f64 vector overflow"))?;
    while remaining > 0 {
        let take = remaining.min(buf.len());
        r.read_exact(&mut buf[..take])?;
        out.extend(
            buf[..take]
                .chunks_exact(8)
                .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8-byte chunk")))),
        );
        remaining -= take;
    }
    out.shrink_to_fit();
    Ok(out)
}

// ---------------------------------------------------------------------
// Spec encoding (family tag numbering matches the sharded payload of
// ius_index::persist for consistency across formats)
// ---------------------------------------------------------------------

fn family_tag(family: IndexFamily) -> u8 {
    match family {
        IndexFamily::Naive => 0,
        IndexFamily::Wst => 1,
        IndexFamily::Wsa => 2,
        IndexFamily::Minimizer(IndexVariant::Tree) => 3,
        IndexFamily::Minimizer(IndexVariant::Array) => 4,
        IndexFamily::Minimizer(IndexVariant::TreeGrid) => 5,
        IndexFamily::Minimizer(IndexVariant::ArrayGrid) => 6,
        IndexFamily::SpaceEfficient(IndexVariant::Tree) => 7,
        IndexFamily::SpaceEfficient(IndexVariant::Array) => 8,
        IndexFamily::SpaceEfficient(IndexVariant::TreeGrid) => 9,
        IndexFamily::SpaceEfficient(IndexVariant::ArrayGrid) => 10,
    }
}

fn family_from_tag(tag: u8) -> io::Result<IndexFamily> {
    Ok(match tag {
        0 => IndexFamily::Naive,
        1 => IndexFamily::Wst,
        2 => IndexFamily::Wsa,
        3 => IndexFamily::Minimizer(IndexVariant::Tree),
        4 => IndexFamily::Minimizer(IndexVariant::Array),
        5 => IndexFamily::Minimizer(IndexVariant::TreeGrid),
        6 => IndexFamily::Minimizer(IndexVariant::ArrayGrid),
        7 => IndexFamily::SpaceEfficient(IndexVariant::Tree),
        8 => IndexFamily::SpaceEfficient(IndexVariant::Array),
        9 => IndexFamily::SpaceEfficient(IndexVariant::TreeGrid),
        10 => IndexFamily::SpaceEfficient(IndexVariant::ArrayGrid),
        other => return Err(bad(format!("unknown index-family tag {other}"))),
    })
}

fn write_spec(w: &mut dyn Write, spec: &IndexSpec) -> io::Result<()> {
    write_u8(w, family_tag(spec.family))?;
    write_f64(w, spec.params.z)?;
    write_u64(w, spec.params.ell as u64)?;
    write_u64(w, spec.params.k as u64)?;
    match spec.params.order {
        KmerOrder::Lexicographic => {
            write_u8(w, 0)?;
            write_u64(w, 0)
        }
        KmerOrder::KarpRabin { seed } => {
            write_u8(w, 1)?;
            write_u64(w, seed)
        }
    }
}

fn read_spec(r: &mut dyn Read) -> io::Result<IndexSpec> {
    let family = family_from_tag(read_u8(r)?)?;
    let z = read_f64(r)?;
    let ell = read_len(r)?;
    let k = read_len(r)?;
    let order = match read_u8(r)? {
        0 => {
            read_u64(r)?;
            KmerOrder::Lexicographic
        }
        1 => KmerOrder::KarpRabin { seed: read_u64(r)? },
        other => return Err(bad(format!("unknown k-mer order tag {other}"))),
    };
    if !(z.is_finite() && z >= 1.0) {
        return Err(bad(format!("invalid stored threshold z = {z}")));
    }
    if ell == 0 || k == 0 || k > ell {
        return Err(bad(format!("invalid stored parameters ℓ = {ell}, k = {k}")));
    }
    Ok(IndexSpec::new(family, IndexParams { z, ell, k, order }))
}

fn read_magic_version(r: &mut dyn Read, magic: [u8; 4], what: &str) -> io::Result<u16> {
    let mut got = [0u8; 4];
    r.read_exact(&mut got)?;
    if got != magic {
        return Err(bad(format!("not a {what} file (bad magic {got:02x?})")));
    }
    let version = read_u16(r)?;
    if !(LIVE_MIN_READ_VERSION..=LIVE_FORMAT_VERSION).contains(&version) {
        return Err(bad(format!(
            "unsupported {what} version {version} (this build reads versions \
             {LIVE_MIN_READ_VERSION}..={LIVE_FORMAT_VERSION})"
        )));
    }
    Ok(version)
}

fn segment_file_name(id: u64) -> String {
    format!("seg-{id:016x}.iusg")
}

// ---------------------------------------------------------------------
// Save / open
// ---------------------------------------------------------------------

impl LiveIndex {
    /// Persists the live index into `dir` (created if missing): one
    /// segment file per segment, then the `live.iusl` manifest via an
    /// atomic rename, then unreferenced stale segment files are removed.
    /// The saved snapshot is consistent: it is taken once under the
    /// mutation lock, so a concurrent append cannot tear it. When
    /// durability is armed into this same directory, the write-ahead log
    /// is rotated afterwards — the fresh manifest covers everything the
    /// old log held.
    ///
    /// # Errors
    ///
    /// I/O errors of the directory and file writes.
    pub fn save_to_dir(&self, dir: &Path) -> io::Result<()> {
        // Hold the write lock so the saved (segments, memtable, tombstones,
        // n) tuple is one mutation-consistent snapshot.
        let _write = self.inner.write_lock.lock().expect("write lock");
        self.save_to_dir_locked(dir)?;
        self.rotate_wal_locked(dir);
        Ok(())
    }

    /// The save body; the caller holds `write_lock` (the flush-time
    /// checkpoint calls this while already inside a mutation).
    pub(crate) fn save_to_dir_locked(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let state = self.inner.state.lock().expect("state lock").clone();
        let sigma = self.inner.alphabet.size();
        for segment in &state.segments {
            let path = dir.join(segment_file_name(segment.id));
            // Segments are immutable and ids are never reused (the next
            // id persists in the manifest), so a segment file that exists
            // under its final name was completed by an earlier save's
            // rename and is byte-identical to what would be rewritten —
            // skip it. New segments go through a temp name + atomic
            // rename, so a crash mid-save can only leave unreferenced
            // `.tmp` debris, never a truncated file the *previous*
            // manifest references: a torn save always leaves the prior
            // state loadable.
            if path.exists() {
                continue;
            }
            let tmp = dir.join(format!("{}.tmp", segment_file_name(segment.id)));
            {
                let mut w = BufWriter::new(std::fs::File::create(&tmp)?);
                let mut cw = Crc32Writer::new(&mut w);
                cw.write_all(&SEGMENT_MAGIC)?;
                write_u16(&mut cw, LIVE_FORMAT_VERSION)?;
                write_u64(&mut cw, segment.id)?;
                write_u64(&mut cw, segment.offset as u64)?;
                write_u64(&mut cw, segment.home_len as u64)?;
                write_u64(&mut cw, segment.x.len() as u64)?;
                write_u64(&mut cw, sigma as u64)?;
                write_f64_slice(&mut cw, segment.x.flat_probs())?;
                // Zero-pad so the nested envelope starts 8-aligned: reopen
                // then maps the file once and borrows the arrays in place.
                let prefix = SEGMENT_MAGIC.len() + 2 + 5 * 8 + segment.x.len() * sigma * 8;
                cw.write_all(&[0u8; 8][..prefix.next_multiple_of(8) - prefix])?;
                segment.index.save_to(&mut cw)?;
                let crc = cw.crc();
                write_u32(cw.into_inner(), crc)?;
                w.flush()?;
            }
            std::fs::rename(&tmp, &path)?;
        }
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
        {
            let mut w = BufWriter::new(std::fs::File::create(&tmp)?);
            let mut cw = Crc32Writer::new(&mut w);
            cw.write_all(&MANIFEST_MAGIC)?;
            write_u16(&mut cw, LIVE_FORMAT_VERSION)?;
            let symbols = self.inner.alphabet.symbols();
            write_u64(&mut cw, symbols.len() as u64)?;
            cw.write_all(symbols)?;
            write_spec(&mut cw, &self.inner.spec)?;
            write_u64(&mut cw, self.inner.max_pattern_len as u64)?;
            write_u64(&mut cw, state.n as u64)?;
            write_u64(&mut cw, state.memtable.start as u64)?;
            write_u64(&mut cw, state.memtable.rows as u64)?;
            write_f64_slice(
                &mut cw,
                &state.memtable.flat_rows(0, state.memtable.rows, sigma),
            )?;
            write_u64(&mut cw, state.tombstones.len() as u64)?;
            for &(start, end) in &state.tombstones {
                write_u64(&mut cw, start as u64)?;
                write_u64(&mut cw, end as u64)?;
            }
            write_u64(&mut cw, state.segments.len() as u64)?;
            for segment in &state.segments {
                write_u64(&mut cw, segment.id)?;
                write_u64(&mut cw, segment.offset as u64)?;
                write_u64(&mut cw, segment.home_len as u64)?;
            }
            write_u64(
                &mut cw,
                self.inner
                    .next_segment_id
                    .load(std::sync::atomic::Ordering::SeqCst),
            )?;
            let crc = cw.crc();
            write_u32(cw.into_inner(), crc)?;
            w.flush()?;
        }
        std::fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
        // Garbage-collect segment files a compaction has retired, plus any
        // `.tmp` debris a crashed earlier save left behind.
        let referenced: Vec<String> = state
            .segments
            .iter()
            .map(|segment| segment_file_name(segment.id))
            .collect();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("seg-")
                && (name.ends_with(".iusg.tmp")
                    || (name.ends_with(".iusg") && !referenced.iter().any(|r| r == name)))
            {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        Ok(())
    }

    /// Reopens a live index previously saved by
    /// [`LiveIndex::save_to_dir`]. No construction is re-run: segment
    /// indexes come back through `ius_index::persist`. Everything is
    /// validated here — a corrupt manifest or segment file fails with a
    /// typed `InvalidData`/`UnexpectedEof` error, a missing segment file
    /// with a typed `NotFound` naming it — so a successfully opened index
    /// cannot fail structurally at first query.
    ///
    /// # Errors
    ///
    /// I/O errors, `InvalidData` on malformed content.
    pub fn open(dir: &Path, config: LiveConfig) -> io::Result<Self> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let file = std::fs::File::open(&manifest_path).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("cannot open manifest {}: {e}", manifest_path.display()),
            )
        })?;
        let mut r = Crc32Reader::new(BufReader::new(file));
        read_magic_version(&mut r, MANIFEST_MAGIC, "live-index manifest")?;
        let symbols_len = read_len(&mut r)?;
        if symbols_len == 0 || symbols_len > 256 {
            return Err(bad(format!("invalid stored alphabet size {symbols_len}")));
        }
        let mut symbols = vec![0u8; symbols_len];
        r.read_exact(&mut symbols)?;
        let alphabet = Alphabet::new(&symbols).map_err(|e| bad(e.to_string()))?;
        let sigma = alphabet.size();
        let spec = read_spec(&mut r)?;
        let max_pattern_len = read_len(&mut r)?;
        if max_pattern_len == 0 || max_pattern_len < spec.lower_bound() {
            return Err(bad(format!(
                "stored max_pattern_len {max_pattern_len} is below the family's lower bound"
            )));
        }
        let overlap = overlap_len(max_pattern_len);
        let n = read_len(&mut r)?;
        let mem_start = read_len(&mut r)?;
        let mem_rows = read_len(&mut r)?;
        if mem_start.checked_add(mem_rows) != Some(n) {
            return Err(bad(format!(
                "memtable [{mem_start}, {mem_start}+{mem_rows}) does not end at n = {n}"
            )));
        }
        let mem_probs = read_f64_vec(
            &mut r,
            mem_rows
                .checked_mul(sigma)
                .ok_or_else(|| bad("memtable size overflow"))?,
        )?;
        if mem_rows > 0 {
            // Row validation (sums to 1, entries in [0, 1]) via the
            // WeightedString constructor; the flat copy is then discarded.
            WeightedString::from_flat(alphabet.clone(), mem_probs.clone())
                .map_err(|e| bad(format!("memtable rows: {e}")))?;
        }
        let tombstone_count = read_len(&mut r)?;
        let mut tombstones = Vec::with_capacity(tombstone_count.min(1 << 20));
        let mut prev_end = 0usize;
        for i in 0..tombstone_count {
            let start = read_len(&mut r)?;
            let end = read_len(&mut r)?;
            if start >= end || end > n || (i > 0 && start <= prev_end) {
                return Err(bad(format!(
                    "tombstone {i} [{start}, {end}) is not sorted/disjoint within [0, {n})"
                )));
            }
            prev_end = end;
            tombstones.push((start, end));
        }
        let segment_count = read_len(&mut r)?;
        let mut table = Vec::with_capacity(segment_count.min(1 << 20));
        for _ in 0..segment_count {
            let id = read_u64(&mut r)?;
            let offset = read_len(&mut r)?;
            let home_len = read_len(&mut r)?;
            table.push((id, offset, home_len));
        }
        let next_segment_id = read_u64(&mut r)?;
        check_trailer(&mut r, "manifest")?;
        {
            // Nothing may trail the manifest trailer.
            let mut probe = [0u8; 1];
            if r.inner_mut().read(&mut probe)? != 0 {
                return Err(bad("trailing bytes after the manifest checksum"));
            }
        }
        // Tiling: home ranges cover [0, mem_start) consecutively.
        let mut expected_offset = 0usize;
        for (i, &(id, offset, home_len)) in table.iter().enumerate() {
            if offset != expected_offset || home_len == 0 {
                return Err(bad(format!("segment {i} does not tile the corpus")));
            }
            if id >= next_segment_id {
                return Err(bad(format!(
                    "segment {i} id {id} is not below the stored next id {next_segment_id}"
                )));
            }
            expected_offset += home_len;
        }
        if expected_offset != mem_start {
            return Err(bad(format!(
                "segment home ranges cover [0, {expected_offset}) but the memtable starts at \
                 {mem_start}"
            )));
        }

        let mut segments = Vec::with_capacity(table.len());
        for &(id, offset, home_len) in &table {
            let path = dir.join(segment_file_name(id));
            let arena = Arena::from_file(&path).map_err(|e| {
                io::Error::new(
                    e.kind(),
                    format!(
                        "segment file {} referenced by the manifest cannot be opened: {e}",
                        path.display()
                    ),
                )
            })?;
            let segment = read_segment_file(arena, &alphabet, id, offset, home_len, overlap)
                .map_err(|e| {
                    io::Error::new(e.kind(), format!("segment file {}: {e}", path.display()))
                })?;
            segments.push(Arc::new(segment));
        }

        let mut state = LiveState {
            segments,
            memtable: Memtable::from_flat(mem_start, mem_rows, mem_probs),
            tombstones,
            n,
        };

        // Replay the write-ahead log tail, if one exists: mutations acked
        // after the last checkpoint live only there. `wal::scan` already
        // applied the torn-tail rule, so every record seen here was fully
        // written; records the checkpoint folded in replay as skips.
        let wal_path = dir.join(wal::WAL_FILE);
        let mut recovered_records = 0u64;
        let mut replay_records = 0u64;
        let mut replay_bytes = 0u64;
        let replay_start = ius_obs::clock::now_ns();
        match std::fs::read(&wal_path) {
            Ok(bytes) => {
                replay_bytes = bytes.len() as u64;
                let records = wal::scan(&bytes).map_err(|e| {
                    io::Error::new(e.kind(), format!("wal {}: {e}", wal_path.display()))
                })?;
                replay_records = records.len() as u64;
                for (i, record) in records.iter().enumerate() {
                    let applied = apply_wal_record(&mut state, &alphabet, record).map_err(|e| {
                        io::Error::new(
                            e.kind(),
                            format!("wal {} record {i}: {e}", wal_path.display()),
                        )
                    })?;
                    recovered_records += u64::from(applied);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(io::Error::new(
                    e.kind(),
                    format!("cannot read wal {}: {e}", wal_path.display()),
                ))
            }
        }
        let replay_ns = ius_obs::clock::now_ns().saturating_sub(replay_start);

        let live = LiveIndex::from_loaded_parts(
            alphabet,
            spec,
            max_pattern_len,
            config,
            state,
            next_segment_id,
        )
        .map_err(|e| bad(e.to_string()))?;
        if recovered_records > 0 {
            use std::sync::atomic::Ordering;
            live.inner.recoveries.store(1, Ordering::Relaxed);
            live.inner
                .recovered_records
                .store(recovered_records, Ordering::Relaxed);
        }
        live.inner.obs.replay_records.add(replay_records);
        live.inner.obs.replay_bytes.add(replay_bytes);
        live.inner.obs.replay_ns.add(replay_ns);
        Ok(live)
    }
}

/// Applies one replayed WAL record onto the manifest snapshot. Returns
/// `false` for a record the checkpoint had already folded in (its
/// `n_before` stamp lies strictly inside the manifest corpus), `true`
/// when the record mutated the state.
fn apply_wal_record(
    state: &mut LiveState,
    alphabet: &Alphabet,
    record: &WalRecord,
) -> io::Result<bool> {
    let as_len = |v: u64, what: &str| {
        usize::try_from(v).map_err(|_| bad(format!("{what} exceeds the address space")))
    };
    match record {
        WalRecord::Append {
            n_before,
            rows,
            flat,
        } => {
            let n_before = as_len(*n_before, "append position")?;
            let rows = as_len(*rows, "append rows")?;
            let sigma = alphabet.size();
            if rows == 0 || flat.len() != rows * sigma {
                return Err(bad(format!(
                    "append carries {} values for {rows} rows over σ = {sigma}",
                    flat.len()
                )));
            }
            let end = n_before
                .checked_add(rows)
                .ok_or_else(|| bad("append end overflows"))?;
            if end <= state.n {
                // Logged before the checkpoint this manifest is: already in.
                return Ok(false);
            }
            if n_before != state.n {
                return Err(bad(format!(
                    "append stamped at n = {n_before} does not resume the corpus at n = {}",
                    state.n
                )));
            }
            // Row validation (sums to 1, entries in [0, 1]) — same gate the
            // original live append ran; the copy is then discarded.
            WeightedString::from_flat(alphabet.clone(), flat.clone())
                .map_err(|e| bad(format!("append rows: {e}")))?;
            state.memtable.push_rows(flat, rows, sigma);
            state.n = end;
            Ok(true)
        }
        WalRecord::Delete {
            n_before,
            start,
            end,
        } => {
            let logged_n = as_len(*n_before, "delete stamp")?;
            let start = as_len(*start, "delete start")?;
            let end = as_len(*end, "delete end")?;
            if start >= end || end > logged_n || logged_n > state.n {
                return Err(bad(format!(
                    "delete [{start}, {end}) stamped at n = {logged_n} is invalid against the \
                     corpus at n = {}",
                    state.n
                )));
            }
            // Tombstone insertion coalesces, so re-applying a delete the
            // checkpoint already folded in is a no-op — idempotent either way.
            insert_tombstone(&mut state.tombstones, start, end);
            Ok(true)
        }
    }
}

/// Reads and fully validates one segment file against its manifest entry.
///
/// Version-3 files keep the nested `IUSX` envelope at an 8-aligned offset,
/// so the index reopens through the zero-copy arena path
/// (`ius_index::persist::open_any_index_at`): open cost is header parsing
/// plus checksum validation, not element-by-element decoding. Version-2
/// files (unaligned envelope) fall back to the streaming loader and answer
/// identically.
fn read_segment_file(
    arena: Arena,
    alphabet: &Alphabet,
    id: u64,
    offset: usize,
    home_len: usize,
    overlap: usize,
) -> io::Result<Segment> {
    let bytes = arena.as_bytes();
    if bytes.len() < SEGMENT_MAGIC.len() + 2 + 4 {
        return Err(bad("segment file is too short"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let mut r: &[u8] = body;
    // Magic and version first (the most informative failures), then the
    // file-wide checksum, then the payload fields.
    let version = read_magic_version(&mut r, SEGMENT_MAGIC, "live-index segment")?;
    let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
    let computed = crc32(body);
    if stored != computed {
        return Err(bad(format!(
            "segment checksum mismatch (stored {stored:#010x}, computed {computed:#010x}): the \
             file is corrupt"
        )));
    }
    let stored_id = read_u64(&mut r)?;
    let stored_offset = read_len(&mut r)?;
    let stored_home = read_len(&mut r)?;
    if stored_id != id || stored_offset != offset || stored_home != home_len {
        return Err(bad(format!(
            "segment header (id {stored_id}, offset {stored_offset}, home {stored_home}) does \
             not match the manifest entry (id {id}, offset {offset}, home {home_len})"
        )));
    }
    let chunk_rows = read_len(&mut r)?;
    if chunk_rows != home_len + overlap {
        return Err(bad(format!(
            "segment chunk has {chunk_rows} rows, expected home {home_len} + overlap {overlap}"
        )));
    }
    let stored_sigma = read_len(&mut r)?;
    if stored_sigma != alphabet.size() {
        return Err(bad(format!(
            "segment σ = {stored_sigma} does not match the manifest alphabet (σ = {})",
            alphabet.size()
        )));
    }
    let probs = read_f64_vec(
        &mut r,
        chunk_rows
            .checked_mul(stored_sigma)
            .ok_or_else(|| bad("segment size overflow"))?,
    )?;
    let x = WeightedString::from_flat(alphabet.clone(), probs)
        .map_err(|e| bad(format!("segment rows: {e}")))?;
    let index = if version >= 3 {
        let pos = body.len() - r.len();
        let aligned = pos.next_multiple_of(8);
        match body.get(pos..aligned) {
            Some(pad) if pad.iter().all(|&b| b == 0) => {}
            _ => return Err(bad("segment alignment padding is missing or not zeroed")),
        }
        let (loaded, consumed) = ius_index::persist::open_any_index_at(&arena, aligned)?;
        if aligned + consumed != body.len() {
            return Err(bad("trailing bytes after the segment's index envelope"));
        }
        match loaded {
            LoadedAny::Index(index) => index,
            LoadedAny::Sharded(_) => {
                return Err(bad("a live segment cannot hold a sharded composite"))
            }
        }
    } else {
        let index = AnyIndex::load_from(&mut r)?;
        if !r.is_empty() {
            return Err(bad("trailing bytes after the segment checksum"));
        }
        index
    };
    if let Some(expected) = index.corpus_len_hint() {
        if expected != chunk_rows {
            return Err(bad(format!(
                "segment index was built over {expected} rows, the stored chunk has {chunk_rows}"
            )));
        }
    }
    // A cheap structural smoke: the index must answer its size without
    // panicking (full query behavior is covered by the corruption tests).
    let _ = index.size_bytes();
    Ok(Segment {
        id,
        offset,
        home_len,
        x,
        index,
    })
}
