use super::*;
use ius_datasets::pangenome::PangenomeConfig;
use ius_datasets::patterns::PatternSampler;
use ius_datasets::uniform::UniformConfig;
use ius_index::{IndexFamily, IndexParams, IndexSpec, IndexVariant, NaiveIndex};
use ius_weighted::ZEstimation;

fn uniform(n: usize, seed: u64) -> WeightedString {
    UniformConfig {
        n,
        sigma: 2,
        spread: 0.4,
        seed,
    }
    .generate()
}

fn mwsa_spec(z: f64, ell: usize, sigma: usize) -> IndexSpec {
    IndexSpec::new(
        IndexFamily::Minimizer(IndexVariant::Array),
        IndexParams::new(z, ell, sigma).unwrap(),
    )
}

fn config(flush_threshold: usize) -> LiveConfig {
    LiveConfig {
        flush_threshold,
        compact_fanout: 3,
        auto_compact: false,
        threads: 2,
    }
}

/// The documented reference semantics: NAIVE occurrences over the
/// materialized corpus, minus every start whose window intersects a
/// tombstone.
fn reference(
    x: &WeightedString,
    tombstones: &[(usize, usize)],
    pattern: &[u8],
    z: f64,
) -> Vec<usize> {
    let naive = NaiveIndex::new(z).unwrap();
    let mut positions = naive.query(pattern, x).unwrap();
    filter_tombstoned_windows(&mut positions, tombstones, pattern.len());
    positions
}

#[test]
fn appends_are_visible_to_the_very_next_query() {
    let x = uniform(400, 7);
    let z = 6.0;
    let spec = mwsa_spec(z, 4, x.sigma());
    let live = LiveIndex::new(x.alphabet().clone(), spec, 16, config(64)).unwrap();
    assert!(live.is_empty());
    let mut appended = 0usize;
    for chunk_start in (0..x.len()).step_by(50) {
        let batch = x
            .substring(chunk_start, (chunk_start + 50).min(x.len()))
            .unwrap();
        appended += batch.len();
        assert_eq!(live.append(&batch).unwrap(), appended);
        // Immediately after the append, the live answers must equal the
        // oracle over the materialized prefix — no flush required.
        let prefix = x.substring(0, appended).unwrap();
        assert_eq!(live.materialize().unwrap(), prefix);
        for pattern in [vec![0u8; 6], vec![1u8; 4], vec![0, 1, 0, 1]] {
            assert_eq!(
                live.query_owned(&pattern).unwrap(),
                reference(&prefix, &[], &pattern, z),
                "after appending {appended} rows"
            );
        }
    }
    let stats = live.live_stats();
    assert_eq!(stats.corpus_len, x.len());
    assert_eq!(stats.appended, x.len() as u64);
    assert!(stats.flushes >= 1, "threshold 64 must have auto-flushed");
    assert!(live.num_segments() >= 1);
}

#[test]
fn flush_freezes_the_memtable_and_retains_the_overlap() {
    let x = uniform(300, 3);
    let z = 6.0;
    let spec = mwsa_spec(z, 4, x.sigma());
    let live = LiveIndex::new(x.alphabet().clone(), spec, 12, config(10_000)).unwrap();
    live.append(&x).unwrap();
    assert_eq!(live.num_segments(), 0);
    assert!(live.flush().unwrap());
    let stats = live.live_stats();
    assert_eq!(stats.segments, 1);
    // The memtable retains exactly the overlap (max_pattern_len − 1).
    assert_eq!(stats.memtable_rows, live.overlap());
    assert_eq!(stats.corpus_len, 300);
    // Flushing again is a no-op: nothing beyond the overlap to freeze.
    assert!(!live.flush().unwrap());
    for pattern in [vec![0u8; 12], vec![1u8; 5], vec![0, 1, 0, 1, 0, 1]] {
        assert_eq!(
            live.query_owned(&pattern).unwrap(),
            reference(&x, &[], &pattern, z)
        );
    }
}

#[test]
fn delete_range_masks_every_intersecting_window() {
    let x = uniform(256, 11);
    let z = 6.0;
    let spec = mwsa_spec(z, 4, x.sigma());
    let live = LiveIndex::from_corpus(&x, spec, 16, config(60)).unwrap();
    live.delete_range(40, 60).unwrap();
    live.delete_range(55, 70).unwrap(); // coalesces with the first
    live.delete_range(200, 201).unwrap();
    let tombstones = live.tombstones();
    assert_eq!(tombstones, vec![(40, 70), (200, 201)]);
    for pattern in [vec![0u8; 4], vec![1u8; 6], vec![0, 1, 0, 1, 0, 1, 0, 1]] {
        let got = live.query_owned(&pattern).unwrap();
        assert_eq!(got, reference(&x, &tombstones, &pattern, z));
        // Nothing whose window touches a tombstone survives.
        for &p in &got {
            assert!(tombstones
                .iter()
                .all(|&(s, e)| p + pattern.len() <= s || p >= e));
        }
    }
    // Contract errors.
    assert!(matches!(
        live.delete_range(5, 5),
        Err(Error::InvalidParameters(_))
    ));
    assert!(matches!(
        live.delete_range(0, 10_000),
        Err(Error::PositionOutOfBounds { .. })
    ));
}

#[test]
fn compaction_merges_segments_without_changing_answers() {
    let x = PangenomeConfig {
        n: 1_200,
        delta: 0.06,
        seed: 19,
        ..Default::default()
    }
    .generate();
    let (z, ell) = (16.0, 16usize);
    let spec = IndexSpec::new(
        IndexFamily::Minimizer(IndexVariant::ArrayGrid),
        IndexParams::new(z, ell, x.sigma()).unwrap(),
    );
    let live = LiveIndex::from_corpus(&x, spec, 2 * ell, config(150)).unwrap();
    let before = live.num_segments();
    assert!(
        before >= 4,
        "threshold 150 over n=1200 must leave many segments"
    );
    let est = ZEstimation::build(&x, z).unwrap();
    let mut sampler = PatternSampler::new(&est, 9);
    let mut patterns = sampler.sample_many(ell, 15);
    patterns.extend(sampler.sample_many(2 * ell, 10));
    let expected: Vec<Vec<usize>> = patterns.iter().map(|p| reference(&x, &[], p, z)).collect();
    let check = |live: &LiveIndex| {
        for (pattern, expect) in patterns.iter().zip(&expected) {
            assert_eq!(&live.query_owned(pattern).unwrap(), expect);
        }
    };
    check(&live);
    // Tiered rounds until the policy is exhausted.
    let mut merges = 0usize;
    while live.compact_once().unwrap() > 0 {
        merges += 1;
        check(&live);
    }
    assert!(merges >= 1, "fanout 3 must trigger at least one merge");
    assert!(live.num_segments() < before);
    // A major compaction folds everything into one segment.
    live.compact_full().unwrap();
    assert_eq!(live.num_segments(), 1);
    check(&live);
    assert_eq!(live.live_stats().compactions as usize, merges + 1);
    let stats = live.stats();
    assert!(stats.name.contains("LIVE-MWSA-G") && stats.name.contains("S=1"));
    assert!(live.size_bytes() > 0);
}

#[test]
fn background_compactor_converges_after_flushes() {
    let x = uniform(900, 23);
    let spec = mwsa_spec(6.0, 4, x.sigma());
    let live = LiveIndex::from_corpus(
        &x,
        spec,
        8,
        LiveConfig {
            flush_threshold: 50,
            compact_fanout: 3,
            auto_compact: true,
            threads: 2,
        },
    )
    .unwrap();
    // The compactor runs asynchronously; wait for it to exhaust the
    // tiered policy.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    loop {
        let snapshot = live.snapshot();
        if plan_tiered_runs(&snapshot.segments, 3).is_empty() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "background compactor did not converge"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(live.live_stats().compactions >= 1);
    assert_eq!(
        live.query_owned(&[0u8; 6]).unwrap(),
        reference(&x, &[], &[0u8; 6], 6.0)
    );
}

#[test]
fn pattern_contract_is_enforced() {
    let x = uniform(200, 2);
    let spec = mwsa_spec(8.0, 8, x.sigma());
    let live = LiveIndex::from_corpus(&x, spec, 16, config(64)).unwrap();
    assert!(matches!(
        live.query_owned(&[]),
        Err(Error::EmptyInput("pattern"))
    ));
    assert!(matches!(
        live.query_owned(&[0u8; 4]),
        Err(Error::PatternTooShort { .. })
    ));
    assert!(matches!(
        live.query_owned(&[0u8; 17]),
        Err(Error::PatternTooLong {
            pattern: 17,
            upper_bound: 16
        })
    ));
    // Ranks outside the alphabet are rejected, not panicked on.
    let mut bad = vec![0u8; 16];
    bad[3] = 9;
    assert!(matches!(
        live.query_owned(&bad),
        Err(Error::UnknownSymbol(9))
    ));
    assert!(live.query_owned(&[0u8; 16]).is_ok());
}

#[test]
fn construction_and_append_validation() {
    let x = uniform(100, 5);
    let spec = mwsa_spec(8.0, 8, x.sigma());
    // max_pattern_len below ℓ.
    assert!(LiveIndex::new(x.alphabet().clone(), spec, 4, config(64)).is_err());
    assert!(LiveIndex::new(x.alphabet().clone(), spec, 0, config(64)).is_err());
    // Degenerate fan-out.
    let mut cfg = config(64);
    cfg.compact_fanout = 1;
    assert!(LiveIndex::new(x.alphabet().clone(), spec, 16, cfg).is_err());
    // Alphabet mismatch on append.
    let live = LiveIndex::new(x.alphabet().clone(), spec, 16, config(64)).unwrap();
    let other = UniformConfig {
        n: 40,
        sigma: 3,
        spread: 0.4,
        seed: 5,
    }
    .generate();
    assert!(matches!(
        live.append(&other),
        Err(Error::InvalidParameters(_))
    ));
    // Queries on an empty live index return empty, not an error.
    assert_eq!(live.query_owned(&[0u8; 16]).unwrap(), Vec::<usize>::new());
}

#[test]
fn query_stats_are_aggregated_across_parts() {
    let x = uniform(500, 13);
    let z = 6.0;
    let spec = mwsa_spec(z, 4, x.sigma());
    let live = LiveIndex::from_corpus(&x, spec, 12, config(80)).unwrap();
    assert!(live.num_segments() >= 2);
    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();
    let pattern = vec![0u8; 5];
    let stats = live
        .query_owned_into(&pattern, &mut scratch, &mut out)
        .unwrap();
    assert_eq!(out, reference(&x, &[], &pattern, z));
    assert_eq!(stats.reported, out.len());
    assert!(stats.candidates >= stats.verified);
    // Count sink agrees.
    let mut count = ius_query::CountSink::new();
    live.query_owned_into(&pattern, &mut scratch, &mut count)
        .unwrap();
    assert_eq!(count.count, out.len());
}

#[test]
fn manifest_round_trip_preserves_everything() {
    let x = PangenomeConfig {
        n: 800,
        delta: 0.06,
        seed: 31,
        ..Default::default()
    }
    .generate();
    let (z, ell) = (8.0, 8usize);
    let spec = IndexSpec::new(
        IndexFamily::Minimizer(IndexVariant::Array),
        IndexParams::new(z, ell, x.sigma()).unwrap(),
    );
    let live = LiveIndex::from_corpus(&x, spec, 2 * ell, config(120)).unwrap();
    live.delete_range(100, 130).unwrap();
    let tail = uniform_like_tail(&x, 40);
    live.append(&tail).unwrap();
    let dir = std::env::temp_dir().join(format!("ius-live-roundtrip-{}", std::process::id()));
    live.save_to_dir(&dir).unwrap();
    let reopened = LiveIndex::open(&dir, config(120)).unwrap();
    assert_eq!(reopened.len(), live.len());
    assert_eq!(reopened.num_segments(), live.num_segments());
    assert_eq!(reopened.tombstones(), live.tombstones());
    assert_eq!(reopened.materialize(), live.materialize());
    let est = ZEstimation::build(&x, z).unwrap();
    let mut sampler = PatternSampler::new(&est, 4);
    for pattern in sampler.sample_many(ell, 12) {
        assert_eq!(
            reopened.query_owned(&pattern).unwrap(),
            live.query_owned(&pattern).unwrap()
        );
    }
    // The reopened index stays mutable: ids continue past the stored ones.
    reopened.append(&tail).unwrap();
    reopened.flush().unwrap();
    assert_eq!(reopened.len(), live.len() + tail.len());
    // A second save garbage-collects retired segment files after a
    // compaction, plus any `.tmp` debris a crashed save could have left;
    // unchanged segments keep their files (immutable + id-named, so they
    // are skipped instead of truncated in place — a torn save can never
    // corrupt a file the previous manifest references).
    reopened.compact_full().unwrap();
    std::fs::write(dir.join("seg-00000000deadbeef.iusg.tmp"), b"debris").unwrap();
    reopened.save_to_dir(&dir).unwrap();
    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(!names.iter().any(|n| n.ends_with(".tmp")), "{names:?}");
    let seg_files = names.iter().filter(|n| n.ends_with(".iusg")).count();
    assert_eq!(seg_files, reopened.num_segments());
    // Idempotent re-save: the surviving segment file is skipped, and the
    // directory still reopens to the identical state.
    reopened.save_to_dir(&dir).unwrap();
    let again = LiveIndex::open(&dir, config(120)).unwrap();
    assert_eq!(again.materialize(), reopened.materialize());
    std::fs::remove_dir_all(&dir).ok();
}

/// A deterministic batch over the same alphabet as `x` (rows borrowed from
/// its prefix), used to grow a corpus in tests.
fn uniform_like_tail(x: &WeightedString, rows: usize) -> WeightedString {
    x.substring(0, rows.min(x.len())).unwrap()
}

#[test]
fn memtable_slabs_coalesce_split_and_drain_at_row_boundaries() {
    let sigma = 2usize;
    let mut mt = Memtable::empty(5);
    let mut mirror: Vec<f64> = Vec::new();
    // 600 one-row appends: the tail slab coalesces, so the slab count
    // stays ~rows / SLAB_MIN_ROWS instead of one slab per append.
    for i in 0..600usize {
        let p = (i % 7) as f64 / 10.0;
        let row = [p, 1.0 - p];
        mt.push_rows(&row, 1, sigma);
        mirror.extend_from_slice(&row);
    }
    assert_eq!(mt.rows, 600);
    assert_eq!(mt.flat_rows(0, 600, sigma), mirror);
    // Row views flatten the slab structure back to plain indexing.
    let rows = mt.row_slices(sigma);
    assert_eq!(rows.len(), 600);
    assert_eq!(rows[599], &mirror[599 * sigma..]);
    // Copies and drains may land mid-slab; both stay row-aligned.
    assert_eq!(
        mt.flat_rows(100, 350, sigma),
        mirror[100 * sigma..350 * sigma]
    );
    // Draining while a snapshot shares the slabs must not mutate the
    // snapshot's view.
    let snapshot = mt.clone();
    mt.drain_front(123, sigma);
    assert_eq!(mt.start, 5 + 123);
    assert_eq!(mt.rows, 477);
    assert_eq!(mt.flat_rows(0, 477, sigma), mirror[123 * sigma..]);
    assert_eq!(snapshot.flat_rows(0, 600, sigma), mirror, "snapshot intact");
    assert!(mt.capacity_bytes() > 0);
}

#[test]
fn row_at_a_time_ingest_matches_the_oracle() {
    // The degenerate wire-client pattern: one-row appends across flush
    // boundaries (slab splits) must stay correct and visible.
    let x = uniform(300, 77);
    let z = 6.0;
    let spec = mwsa_spec(z, 4, x.sigma());
    let live = LiveIndex::new(x.alphabet().clone(), spec, 12, config(64)).unwrap();
    for i in 0..x.len() {
        live.append(&x.substring(i, i + 1).unwrap()).unwrap();
    }
    assert_eq!(live.len(), x.len());
    assert!(live.num_segments() >= 2);
    assert_eq!(live.materialize().unwrap(), x);
    for pattern in [vec![0u8; 5], vec![1u8; 4], vec![0, 1, 0, 1, 0, 1]] {
        assert_eq!(
            live.query_owned(&pattern).unwrap(),
            reference(&x, &[], &pattern, z)
        );
    }
}

#[test]
fn tombstone_insertion_coalesces() {
    let mut tombs = Vec::new();
    insert_tombstone(&mut tombs, 10, 20);
    insert_tombstone(&mut tombs, 30, 40);
    insert_tombstone(&mut tombs, 5, 8);
    assert_eq!(tombs, vec![(5, 8), (10, 20), (30, 40)]);
    // Bridging insert swallows two neighbours (adjacent counts as
    // touching).
    insert_tombstone(&mut tombs, 8, 30);
    assert_eq!(tombs, vec![(5, 40)]);
    insert_tombstone(&mut tombs, 50, 60);
    insert_tombstone(&mut tombs, 40, 50);
    assert_eq!(tombs, vec![(5, 60)]);
}

#[test]
fn window_filter_uses_half_open_intersection() {
    let tombs = vec![(10, 12), (20, 25)];
    let mut positions = vec![5, 6, 7, 8, 9, 10, 11, 12, 15, 16, 17, 18, 25, 30];
    // m = 3: window [p, p+3) intersects [10,12) for p ∈ {8..11}, and
    // [20,25) for p ∈ {18..24}.
    filter_tombstoned_windows(&mut positions, &tombs, 3);
    assert_eq!(positions, vec![5, 6, 7, 12, 15, 16, 17, 25, 30]);
}

#[test]
fn tiered_plan_finds_the_first_long_same_class_run() {
    let segment = |id: u64, home_len: usize| {
        Arc::new(Segment {
            id,
            offset: 0,
            home_len,
            x: uniform(4, id + 1),
            index: AnyIndexForTest::build(),
        })
    };
    // Classes: 100→7 bits, 100→7, 1000→10, 90→7, 80→7, 70→7.
    let segments = vec![
        segment(0, 100),
        segment(1, 100),
        segment(2, 1000),
        segment(3, 90),
        segment(4, 80),
        segment(5, 70),
    ];
    assert_eq!(plan_tiered_runs(&segments, 3), vec![(3, 6)]);
    // With fanout 2 both class-7 runs qualify: the prefix pair and the
    // suffix triple (disjoint, planned in one round).
    assert_eq!(plan_tiered_runs(&segments, 2), vec![(0, 2), (3, 6)]);
    assert_eq!(plan_tiered_runs(&segments, 4), Vec::<(usize, usize)>::new());
    assert_eq!(plan_tiered_runs(&[], 2), Vec::<(usize, usize)>::new());
    // A long class run is chopped into at-most-2·fanout merges, with a
    // short tail below fanout left for the next round.
    let long: Vec<_> = (0..11).map(|id| segment(id, 100)).collect();
    assert_eq!(plan_tiered_runs(&long, 2), vec![(0, 4), (4, 8), (8, 11)]);
    let thirteen: Vec<_> = (0..13).map(|id| segment(id, 100)).collect();
    assert_eq!(
        plan_tiered_runs(&thirteen, 3),
        vec![(0, 6), (6, 12)],
        "the 1-segment tail waits"
    );
}

/// Minimal index value for plan tests (never queried).
struct AnyIndexForTest;

impl AnyIndexForTest {
    fn build() -> ius_index::AnyIndex {
        ius_index::AnyIndex::Naive(NaiveIndex::new(2.0).unwrap())
    }
}
