//! The write-ahead log behind a durable [`LiveIndex`](crate::LiveIndex).
//!
//! ## File layout
//!
//! ```text
//! <dir>/live.wal   magic "IUSJ" · version u16 · records…
//! record           payload_len u32 · crc32(payload) u32 · payload
//! payload          kind u8 · n_before u64 · body
//!   kind 1 APPEND  rows u64 · rows × σ probability f64s
//!   kind 2 DELETE  start u64 · end u64
//! ```
//!
//! Everything is little-endian; the CRC32 is the IEEE one from
//! [`ius_faultio`]. `n_before` is the logical corpus length at the moment
//! the mutation was logged — that stamp is what makes replay idempotent
//! across the checkpoint window: an `APPEND` whose `n_before` is below the
//! reopened manifest's `n` is already reflected in the manifest and is
//! skipped, the first one at exactly `n` resumes the log, and a gap is a
//! typed corruption error. Deletes re-apply idempotently (tombstone
//! insertion coalesces).
//!
//! ## Torn-tail rule
//!
//! A crash can only tear the *last* record (records are appended with a
//! single `write_all` and the file only ever grows between rotations).
//! [`scan`] therefore stops cleanly — no error, no panic — at the first
//! short record header, short payload, or checksum mismatch, and returns
//! everything before it. A bad file *header* is different: the header is
//! created via a temp file + atomic rename before the log is ever armed,
//! so a bad magic/version is real corruption and fails typed.
//!
//! ## Durability contract
//!
//! [`Wal::append`] writes the record and applies the configured
//! [`FsyncPolicy`] *before* returning; the caller acks the mutation only
//! after. A failed write (torn record, full disk) **poisons** the log:
//! the failed mutation was never applied or acked, but the file now ends
//! in a torn record that a later append must not bury, so every following
//! append is refused typed until the next checkpoint rotates the log.
//! The log is rotated (checkpoint + fresh file) on every flush/manifest
//! save, which keeps it bounded.

use ius_faultio::{crc32, DurableSink};
use ius_obs::{clock, Histogram};
use std::io::{self, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// File name of the write-ahead log inside a live-index directory.
pub const WAL_FILE: &str = "live.wal";

/// The four magic bytes opening a write-ahead log.
pub const WAL_MAGIC: [u8; 4] = *b"IUSJ";

/// The current WAL format version.
pub const WAL_VERSION: u16 = 1;

/// Bytes of the fixed file header (magic + version).
pub const WAL_HEADER_LEN: usize = 6;

/// Bytes of a record header (payload length + checksum).
pub const WAL_RECORD_HEADER_LEN: usize = 8;

const KIND_APPEND: u8 = 1;
const KIND_DELETE: u8 = 2;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// When a logged record is forced to stable storage, relative to the ack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record, before the ack: an acked mutation
    /// survives even an immediate power loss.
    Record,
    /// `fsync` at most once per interval (checked on append): bounded
    /// data-loss window, near-`Never` throughput.
    Interval(Duration),
    /// Never `fsync` explicitly: acked mutations survive a process crash
    /// (the kernel holds the bytes) but not necessarily a power loss.
    Never,
}

impl FsyncPolicy {
    /// Parses the `serve --fsync` syntax: `record`, `interval:<ms>` or
    /// `never`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the accepted forms.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "record" => Ok(FsyncPolicy::Record),
            "never" => Ok(FsyncPolicy::Never),
            _ => {
                if let Some(ms) = s.strip_prefix("interval:") {
                    let ms: u64 = ms.parse().map_err(|_| {
                        format!("invalid fsync interval {ms:?} (expected milliseconds)")
                    })?;
                    if ms == 0 {
                        return Err("fsync interval must be positive (use `record`)".into());
                    }
                    Ok(FsyncPolicy::Interval(Duration::from_millis(ms)))
                } else {
                    Err(format!(
                        "unknown fsync policy {s:?} (expected record, interval:<ms> or never)"
                    ))
                }
            }
        }
    }

    /// The numeric code STATS reports: 1 record, 2 interval, 3 never
    /// (0 means durability is off entirely).
    pub fn code(self) -> u64 {
        match self {
            FsyncPolicy::Record => 1,
            FsyncPolicy::Interval(_) => 2,
            FsyncPolicy::Never => 3,
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Record => f.write_str("record"),
            FsyncPolicy::Interval(d) => write!(f, "interval:{}", d.as_millis()),
            FsyncPolicy::Never => f.write_str("never"),
        }
    }
}

/// One logged mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// `rows` appended when the corpus length was `n_before`; `flat` holds
    /// the row-major `rows × σ` probabilities.
    Append {
        /// Corpus length at log time.
        n_before: u64,
        /// Rows in the batch.
        rows: u64,
        /// Row-major probabilities.
        flat: Vec<f64>,
    },
    /// `delete_range(start, end)` issued when the corpus length was
    /// `n_before`.
    Delete {
        /// Corpus length at log time.
        n_before: u64,
        /// First deleted position.
        start: u64,
        /// One past the last deleted position.
        end: u64,
    },
}

/// Appends the full encoding of `record` (record header + payload) onto
/// `out`. Exposed so tests can compute exact record boundaries when
/// enumerating crash offsets.
pub fn encode_record(out: &mut Vec<u8>, record: &WalRecord) {
    let payload_at = out.len() + WAL_RECORD_HEADER_LEN;
    out.extend_from_slice(&[0u8; WAL_RECORD_HEADER_LEN]);
    match record {
        WalRecord::Append {
            n_before,
            rows,
            flat,
        } => {
            out.push(KIND_APPEND);
            out.extend_from_slice(&n_before.to_le_bytes());
            out.extend_from_slice(&rows.to_le_bytes());
            for &p in flat {
                out.extend_from_slice(&p.to_bits().to_le_bytes());
            }
        }
        WalRecord::Delete {
            n_before,
            start,
            end,
        } => {
            out.push(KIND_DELETE);
            out.extend_from_slice(&n_before.to_le_bytes());
            out.extend_from_slice(&start.to_le_bytes());
            out.extend_from_slice(&end.to_le_bytes());
        }
    }
    let payload_len = (out.len() - payload_at) as u32;
    let crc = crc32(&out[payload_at..]);
    out[payload_at - 8..payload_at - 4].copy_from_slice(&payload_len.to_le_bytes());
    out[payload_at - 4..payload_at].copy_from_slice(&crc.to_le_bytes());
}

fn decode_payload(payload: &[u8]) -> io::Result<WalRecord> {
    // The payload passed its checksum, so a malformed one is written-side
    // corruption (or an unknown future kind), not a torn tail: typed error.
    let take_u64 = |bytes: &[u8], at: usize| -> io::Result<u64> {
        bytes
            .get(at..at + 8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
            .ok_or_else(|| bad("wal payload too short for its kind"))
    };
    let kind = *payload.first().ok_or_else(|| bad("empty wal payload"))?;
    let n_before = take_u64(payload, 1)?;
    match kind {
        KIND_APPEND => {
            let rows = take_u64(payload, 9)?;
            let body = &payload[17..];
            if rows == 0 || !body.len().is_multiple_of(8) {
                return Err(bad("malformed wal APPEND payload"));
            }
            let flat: Vec<f64> = body
                .chunks_exact(8)
                .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
                .collect();
            if !(flat.len() as u64).is_multiple_of(rows) {
                return Err(bad(format!(
                    "wal APPEND carries {} values, not a multiple of its {rows} rows",
                    flat.len()
                )));
            }
            Ok(WalRecord::Append {
                n_before,
                rows,
                flat,
            })
        }
        KIND_DELETE => {
            if payload.len() != 25 {
                return Err(bad("malformed wal DELETE payload"));
            }
            Ok(WalRecord::Delete {
                n_before,
                start: take_u64(payload, 9)?,
                end: take_u64(payload, 17)?,
            })
        }
        other => Err(bad(format!("unknown wal record kind {other}"))),
    }
}

/// Parses a whole WAL image: validates the file header, then decodes
/// records until the first torn one (short header, short payload or
/// checksum mismatch), at which point it stops **cleanly** and returns
/// everything before it — the torn-tail truncation rule.
///
/// # Errors
///
/// `InvalidData` on a bad file header (the header is written atomically,
/// so this is real corruption, not a crash artifact) or on a payload that
/// passes its checksum but does not decode (written-side corruption).
pub fn scan(bytes: &[u8]) -> io::Result<Vec<WalRecord>> {
    if bytes.len() < WAL_HEADER_LEN {
        return Err(bad("wal shorter than its fixed header"));
    }
    if bytes[..4] != WAL_MAGIC {
        return Err(bad(format!(
            "not a wal file (bad magic {:02x?})",
            &bytes[..4]
        )));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != WAL_VERSION {
        return Err(bad(format!(
            "unsupported wal version {version} (this build reads version {WAL_VERSION})"
        )));
    }
    let mut records = Vec::new();
    let mut at = WAL_HEADER_LEN;
    while at < bytes.len() {
        let Some(header) = bytes.get(at..at + WAL_RECORD_HEADER_LEN) else {
            break; // torn record header
        };
        let payload_len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let stored_crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
        let payload_at = at + WAL_RECORD_HEADER_LEN;
        let Some(payload) = payload_at
            .checked_add(payload_len)
            .and_then(|end| bytes.get(payload_at..end))
        else {
            break; // torn payload
        };
        if crc32(payload) != stored_crc {
            break; // torn or bit-flipped tail record
        }
        records.push(decode_payload(payload)?);
        at = payload_at + payload_len;
    }
    Ok(records)
}

/// The live write side of one WAL file.
pub(crate) struct Wal {
    sink: Box<dyn DurableSink>,
    policy: FsyncPolicy,
    last_sync: Instant,
    /// Set when a write or sync failed: the file may end in a torn record,
    /// so further appends are refused until the log is rotated.
    poisoned: bool,
    buf: Vec<u8>,
    /// Observability hook: every `fsync` latency (ns) is recorded here
    /// when the shared clock is enabled. Survives rotations — the owner
    /// re-attaches the same histogram to the fresh log.
    fsync_hist: Option<Arc<Histogram>>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("policy", &self.policy)
            .field("poisoned", &self.poisoned)
            .finish_non_exhaustive()
    }
}

impl Wal {
    /// Wraps a sink whose media already carries the file header (a real
    /// file created by [`create_wal_file`]).
    pub(crate) fn resume(sink: Box<dyn DurableSink>, policy: FsyncPolicy) -> Self {
        Self {
            sink,
            policy,
            last_sync: Instant::now(),
            poisoned: false,
            buf: Vec::new(),
            fsync_hist: None,
        }
    }

    /// Attaches the histogram `fsync` latencies are recorded into.
    pub(crate) fn with_fsync_histogram(mut self, hist: Arc<Histogram>) -> Self {
        self.fsync_hist = Some(hist);
        self
    }

    /// Writes the file header through `sink`, then wraps it — the
    /// fault-injection entry point, where the "file" is a scripted sink.
    pub(crate) fn create(mut sink: Box<dyn DurableSink>, policy: FsyncPolicy) -> io::Result<Self> {
        sink.write_all(&WAL_MAGIC)?;
        sink.write_all(&WAL_VERSION.to_le_bytes())?;
        Ok(Self::resume(sink, policy))
    }

    pub(crate) fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Logs one record and applies the fsync policy; only after this
    /// returns `Ok` may the mutation be applied and acked. Returns the
    /// encoded record size in bytes.
    ///
    /// # Errors
    ///
    /// The underlying write/sync error; the log is then poisoned and
    /// every later append is refused typed until a rotation.
    pub(crate) fn append(&mut self, record: &WalRecord) -> io::Result<usize> {
        if self.poisoned {
            return Err(io::Error::other(
                "wal poisoned by an earlier write failure; a checkpoint (flush) rotates it",
            ));
        }
        self.buf.clear();
        encode_record(&mut self.buf, record);
        if let Err(e) = self.sink.write_all(&self.buf) {
            self.poisoned = true;
            return Err(e);
        }
        let need_sync = match self.policy {
            FsyncPolicy::Record => true,
            FsyncPolicy::Interval(every) => self.last_sync.elapsed() >= every,
            FsyncPolicy::Never => false,
        };
        if need_sync {
            if let Err(e) = self.timed_sync() {
                // The record may not be on stable storage: refuse the ack
                // and stop trusting the file.
                self.poisoned = true;
                return Err(e);
            }
            self.last_sync = Instant::now();
        }
        Ok(self.buf.len())
    }

    /// Forces the log to stable storage (rotation and shutdown barrier).
    pub(crate) fn sync(&mut self) -> io::Result<()> {
        self.timed_sync()
    }

    /// One `sync` through the sink, its latency recorded into the attached
    /// histogram when the shared clock is enabled (failures are not
    /// recorded — a refused ack is not a latency sample).
    fn timed_sync(&mut self) -> io::Result<()> {
        if let Some(hist) = &self.fsync_hist {
            if clock::enabled() {
                let start = clock::now_ns();
                self.sink.sync()?;
                hist.record(clock::now_ns().saturating_sub(start));
                return Ok(());
            }
        }
        self.sink.sync()
    }
}

/// Creates a fresh, empty WAL at `dir/live.wal` — header written to a
/// temp name, synced, then atomically renamed — and reopens it for
/// appending. The rename is what makes a crash window leave either the
/// old complete log or the new empty one, never a header-less file.
pub(crate) fn create_wal_file(dir: &Path) -> io::Result<std::fs::File> {
    let tmp = dir.join(format!("{WAL_FILE}.tmp"));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&WAL_MAGIC)?;
        f.write_all(&WAL_VERSION.to_le_bytes())?;
        f.sync_data()?;
    }
    let path = dir.join(WAL_FILE);
    std::fs::rename(&tmp, &path)?;
    std::fs::OpenOptions::new().append(true).open(&path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ius_faultio::{FaultPlan, SimSink};

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Append {
                n_before: 0,
                rows: 2,
                flat: vec![0.25, 0.75, 1.0, 0.0],
            },
            WalRecord::Delete {
                n_before: 2,
                start: 0,
                end: 1,
            },
            WalRecord::Append {
                n_before: 2,
                rows: 1,
                flat: vec![0.5, 0.5],
            },
        ]
    }

    fn image(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC);
        bytes.extend_from_slice(&WAL_VERSION.to_le_bytes());
        for record in records {
            encode_record(&mut bytes, record);
        }
        bytes
    }

    #[test]
    fn scan_round_trips() {
        let records = sample_records();
        assert_eq!(scan(&image(&records)).unwrap(), records);
        assert_eq!(scan(&image(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn torn_tail_truncates_cleanly_at_every_offset() {
        let records = sample_records();
        let bytes = image(&records);
        // Record boundaries, for deciding how many records must survive a
        // truncation at each byte offset.
        let mut boundaries = vec![WAL_HEADER_LEN];
        {
            let mut partial = Vec::new();
            for record in &records {
                encode_record(&mut partial, record);
                boundaries.push(WAL_HEADER_LEN + partial.len());
            }
        }
        for cut in WAL_HEADER_LEN..=bytes.len() {
            let survivors = scan(&bytes[..cut])
                .unwrap_or_else(|e| panic!("cut at {cut} must truncate cleanly, got error {e}"));
            let expected = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(survivors.len(), expected, "cut at {cut}");
            assert_eq!(survivors, records[..expected], "cut at {cut}");
        }
    }

    #[test]
    fn bit_flip_in_tail_record_truncates_it() {
        let records = sample_records();
        let mut bytes = image(&records);
        let last = bytes.len() - 3;
        bytes[last] ^= 0x10;
        let survivors = scan(&bytes).unwrap();
        assert_eq!(survivors, records[..2]);
    }

    #[test]
    fn bad_header_is_a_typed_error() {
        assert!(scan(b"IUS").is_err());
        assert!(scan(b"NOPE\x01\x00").is_err());
        let mut wrong_version = image(&[]);
        wrong_version[4] = 0xEE;
        assert!(scan(&wrong_version).is_err());
    }

    #[test]
    fn fsync_policy_parses_and_refuses_typed() {
        assert_eq!(FsyncPolicy::parse("record").unwrap(), FsyncPolicy::Record);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(
            FsyncPolicy::parse("interval:25").unwrap(),
            FsyncPolicy::Interval(Duration::from_millis(25))
        );
        for bad in ["always", "interval:", "interval:0", "interval:abc", ""] {
            assert!(FsyncPolicy::parse(bad).is_err(), "{bad:?} must be refused");
        }
        assert_eq!(
            FsyncPolicy::parse("interval:25").unwrap().to_string(),
            "interval:25"
        );
    }

    #[test]
    fn wal_append_syncs_per_policy() {
        let sink = SimSink::healthy();
        let media = sink.media();
        let mut wal = Wal::create(Box::new(sink), FsyncPolicy::Record).unwrap();
        for record in &sample_records() {
            wal.append(record).unwrap();
        }
        let bytes = media.lock().unwrap().clone();
        assert_eq!(scan(&bytes).unwrap(), sample_records());
    }

    #[test]
    fn write_failure_poisons_until_rotation() {
        let sink = SimSink::new(FaultPlan {
            disk_capacity: Some(40),
            ..Default::default()
        });
        let media = sink.media();
        let mut wal = Wal::create(Box::new(sink), FsyncPolicy::Never).unwrap();
        let records = sample_records();
        // The first record (2 rows × 2 floats = 49 bytes encoded) cannot
        // fit in 40 bytes: the write tears and fails.
        assert!(wal.append(&records[0]).is_err());
        // Poisoned: even a record that would fit is refused, typed.
        let err = wal.append(&records[1]).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        // The torn media still scans cleanly to zero records.
        let bytes = media.lock().unwrap().clone();
        assert_eq!(scan(&bytes).unwrap(), Vec::new());
    }

    #[test]
    fn fsync_failure_refuses_the_ack() {
        let sink = SimSink::new(FaultPlan {
            fail_sync_from: Some(0),
            ..Default::default()
        });
        let mut wal = Wal::create(Box::new(sink), FsyncPolicy::Record).unwrap();
        assert!(wal.append(&sample_records()[0]).is_err());
        assert!(wal
            .append(&sample_records()[1])
            .unwrap_err()
            .to_string()
            .contains("poisoned"));
    }
}
