//! Corruption properties of the `IUSL` manifest format, mirroring the
//! `IUSX` guarantees of `crates/index/tests/persist_corruption.rs`: a
//! flipped byte or a truncation anywhere in the manifest or a segment file
//! must **never panic** the loader — it must fail with a typed
//! `InvalidData`/`UnexpectedEof` error or (when the flip lands in payload
//! data that stays structurally valid) open an index that still answers
//! queries without panicking. A segment file the manifest references but
//! that is missing on disk must fail **typed at open**, naming the file —
//! never lazily at first query.

use ius_index::{IndexFamily, IndexParams, IndexSpec, IndexVariant};
use ius_live::{LiveConfig, LiveIndex};
use proptest::prelude::*;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

fn config() -> LiveConfig {
    LiveConfig {
        flush_threshold: 60,
        compact_fanout: 4,
        auto_compact: false,
        threads: 1,
    }
}

/// One saved live index (several segments, a tombstone, a non-empty
/// memtable), serialized once for the whole test binary.
struct Saved {
    manifest: Vec<u8>,
    segment_files: Vec<(PathBuf, Vec<u8>)>,
}

fn saved() -> &'static Saved {
    static SAVED: OnceLock<Saved> = OnceLock::new();
    SAVED.get_or_init(|| {
        let x = ius_datasets::uniform::UniformConfig {
            n: 400,
            sigma: 3,
            spread: 0.35,
            seed: 0xC0DE,
        }
        .generate();
        let params = IndexParams::new(6.0, 8, x.sigma()).expect("params");
        let spec = IndexSpec::new(IndexFamily::Minimizer(IndexVariant::Array), params);
        let live = LiveIndex::from_corpus(&x, spec, 16, config()).expect("build");
        live.delete_range(50, 80).expect("tombstone");
        // A trailing batch keeps the memtable non-empty beyond the overlap.
        live.append(&x.substring(0, 30).expect("batch"))
            .expect("append");
        let dir = std::env::temp_dir().join(format!("ius-live-corruption-{}", std::process::id()));
        live.save_to_dir(&dir).expect("save");
        let manifest = std::fs::read(dir.join("live.iusl")).expect("read manifest");
        let mut segment_files = Vec::new();
        for entry in std::fs::read_dir(&dir).expect("read dir") {
            let entry = entry.expect("entry");
            if entry.file_name().to_string_lossy().ends_with(".iusg") {
                segment_files.push((
                    entry.path(),
                    std::fs::read(entry.path()).expect("read segment"),
                ));
            }
        }
        segment_files.sort();
        assert!(segment_files.len() >= 2, "need several segment files");
        Saved {
            manifest,
            segment_files,
        }
    })
}

fn is_typed_load_error(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::InvalidData | ErrorKind::UnexpectedEof)
}

/// Copies the saved directory into a fresh scratch directory so each case
/// can corrupt it independently.
fn scratch_copy(tag: &str) -> PathBuf {
    let saved = saved();
    let dir = std::env::temp_dir().join(format!(
        "ius-live-corruption-case-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    std::fs::write(dir.join("live.iusl"), &saved.manifest).expect("copy manifest");
    for (path, bytes) in &saved.segment_files {
        std::fs::write(dir.join(path.file_name().expect("name")), bytes).expect("copy segment");
    }
    dir
}

/// Opening must either fail typed or produce a queryable index.
fn open_never_panics(dir: &Path, label: &str) -> Result<(), TestCaseError> {
    match LiveIndex::open(dir, config()) {
        Err(err) => prop_assert!(
            is_typed_load_error(err.kind()) || err.kind() == ErrorKind::NotFound,
            "{label}: untyped error kind {:?}: {err}",
            err.kind()
        ),
        Ok(live) => {
            // The corruption survived validation (structurally valid
            // either way): the index must still answer — right or wrong —
            // without panicking.
            for pattern in [vec![0u8; 8], vec![1u8; 12], vec![2u8; 16]] {
                let _ = live.query_owned(&pattern);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One flipped byte anywhere in the manifest never panics the loader.
    #[test]
    fn one_flipped_manifest_byte_never_panics(
        offset_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let dir = scratch_copy("mflip");
        let mut bytes = saved().manifest.clone();
        let offset = ((bytes.len() as f64 - 1.0) * offset_frac) as usize;
        bytes[offset] ^= flip;
        std::fs::write(dir.join("live.iusl"), &bytes).expect("write corrupted manifest");
        open_never_panics(&dir, &format!("manifest flip at {offset}"))?;
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Truncating the manifest at any offset strictly inside it always
    /// fails with a typed error (the format has no trailing slack).
    #[test]
    fn manifest_truncation_always_fails_typed(cut_frac in 0.0f64..1.0) {
        let dir = scratch_copy("mtrunc");
        let bytes = &saved().manifest;
        let cut = ((bytes.len() as f64 - 1.0) * cut_frac) as usize;
        std::fs::write(dir.join("live.iusl"), &bytes[..cut]).expect("write truncated manifest");
        let err = LiveIndex::open(&dir, config());
        prop_assert!(err.is_err(), "truncation at {cut} opened successfully");
        let kind = err.unwrap_err().kind();
        prop_assert!(
            is_typed_load_error(kind),
            "truncation at {cut} failed with untyped kind {kind:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// One flipped byte anywhere in a segment file never panics: typed
    /// failure at open, or a still-queryable index.
    #[test]
    fn one_flipped_segment_byte_never_panics(
        pick in 0usize..8,
        offset_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let dir = scratch_copy("sflip");
        let (path, bytes) = &saved().segment_files[pick % saved().segment_files.len()];
        let mut corrupted = bytes.clone();
        let offset = ((corrupted.len() as f64 - 1.0) * offset_frac) as usize;
        corrupted[offset] ^= flip;
        std::fs::write(dir.join(path.file_name().expect("name")), &corrupted)
            .expect("write corrupted segment");
        open_never_panics(&dir, &format!("segment flip at {offset}"))?;
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Truncating a segment file always fails typed at open.
    #[test]
    fn segment_truncation_always_fails_typed(
        pick in 0usize..8,
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = scratch_copy("strunc");
        let (path, bytes) = &saved().segment_files[pick % saved().segment_files.len()];
        let cut = ((bytes.len() as f64 - 1.0) * cut_frac) as usize;
        std::fs::write(dir.join(path.file_name().expect("name")), &bytes[..cut])
            .expect("write truncated segment");
        let err = LiveIndex::open(&dir, config());
        prop_assert!(err.is_err(), "segment truncation at {cut} opened successfully");
        let kind = err.unwrap_err().kind();
        prop_assert!(
            is_typed_load_error(kind),
            "segment truncation at {cut} failed with untyped kind {kind:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A segment file the manifest references but that is missing on disk
/// fails **at open** with a typed `NotFound` error naming the file —
/// never at first query.
#[test]
fn missing_segment_file_fails_typed_at_open() {
    for pick in 0..saved().segment_files.len() {
        let dir = scratch_copy(&format!("missing-{pick}"));
        let name = saved().segment_files[pick]
            .0
            .file_name()
            .expect("name")
            .to_string_lossy()
            .into_owned();
        std::fs::remove_file(dir.join(&name)).expect("remove segment file");
        let err = LiveIndex::open(&dir, config()).expect_err("open must fail");
        assert_eq!(err.kind(), ErrorKind::NotFound, "{err}");
        assert!(
            err.to_string().contains(&name),
            "error must name the missing file: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Deterministic spot checks of the security-relevant header offsets.
#[test]
fn header_corruptions_fail_with_informative_messages() {
    // Manifest magic.
    let dir = scratch_copy("hdr-magic");
    let mut bytes = saved().manifest.clone();
    bytes[0] = b'X';
    std::fs::write(dir.join("live.iusl"), &bytes).unwrap();
    let err = LiveIndex::open(&dir, config()).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    assert!(err.to_string().contains("magic"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
    // Manifest version.
    let dir = scratch_copy("hdr-version");
    let mut bytes = saved().manifest.clone();
    bytes[4] = 0xFF;
    std::fs::write(dir.join("live.iusl"), &bytes).unwrap();
    let err = LiveIndex::open(&dir, config()).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    assert!(err.to_string().contains("version"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
    // Segment magic.
    let dir = scratch_copy("hdr-seg-magic");
    let (path, bytes) = &saved().segment_files[0];
    let mut corrupted = bytes.clone();
    corrupted[0] = b'X';
    std::fs::write(dir.join(path.file_name().unwrap()), &corrupted).unwrap();
    let err = LiveIndex::open(&dir, config()).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    assert!(err.to_string().contains("magic"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
    // Empty manifest.
    let dir = scratch_copy("hdr-empty");
    std::fs::write(dir.join("live.iusl"), []).unwrap();
    let err = LiveIndex::open(&dir, config()).unwrap_err();
    assert!(is_typed_load_error(err.kind()), "{err}");
    std::fs::remove_dir_all(&dir).ok();
    // Missing manifest entirely.
    let dir = scratch_copy("hdr-nomanifest");
    std::fs::remove_file(dir.join("live.iusl")).unwrap();
    let err = LiveIndex::open(&dir, config()).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::NotFound);
    assert!(err.to_string().contains("live.iusl"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
