//! Property test of the parallel compaction path: tiered merges running
//! on the shared scoped-thread executor, **concurrent with appends and
//! queries**, must be invisible — every answer issued while the merges
//! race the ingest is compared to the NAIVE oracle over the acked corpus
//! prefix, and the executor width must never change an answer.

use ius_datasets::uniform::UniformConfig;
use ius_index::{IndexFamily, IndexParams, IndexSpec, IndexVariant, NaiveIndex, UncertainIndex};
use ius_live::{LiveConfig, LiveIndex};
use ius_weighted::WeightedString;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

const Z: f64 = 6.0;

fn uniform(n: usize, seed: u64) -> WeightedString {
    UniformConfig {
        n,
        sigma: 2,
        spread: 0.4,
        seed,
    }
    .generate()
}

/// The documented reference semantics: NAIVE occurrences over the
/// materialized corpus prefix.
fn oracle(prefix: &WeightedString, pattern: &[u8]) -> Vec<usize> {
    NaiveIndex::new(Z)
        .expect("naive oracle")
        .query(pattern, prefix)
        .expect("oracle query")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Appends stream in batch-by-batch while a compactor thread keeps
    /// firing tiered rounds (segment builds and merges both fan out on a
    /// `threads`-wide executor). After every acked batch, every pattern's
    /// answer must equal the oracle over exactly the acked prefix — no
    /// matter where the racing merges are. A final full merge must still
    /// agree on the complete corpus.
    #[test]
    fn compaction_under_load_is_invisible_at_every_executor_width(
        seed in 0u64..1_000,
        n in 300usize..700,
        batch in 20usize..90,
        threads in 1usize..=4,
        flush_threshold in 48usize..160,
    ) {
        let x = uniform(n, seed);
        let spec = IndexSpec::new(
            IndexFamily::Minimizer(IndexVariant::Array),
            IndexParams::new(Z, 4, x.sigma()).expect("params"),
        );
        let live = LiveIndex::new(
            x.alphabet().clone(),
            spec,
            16,
            LiveConfig {
                flush_threshold,
                compact_fanout: 2,
                auto_compact: false,
                threads,
            },
        )
        .expect("live index");
        let patterns: [&[u8]; 4] = [&[0, 0, 0, 0], &[1, 1, 1, 1], &[0, 1, 0, 1], &[0, 0, 1, 1, 0]];
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let live_ref = &live;
            let stop_ref = &stop;
            scope.spawn(move || {
                // The racing compactor: tiered rounds pick up whatever
                // segments the threshold flushes have produced so far.
                while !stop_ref.load(Ordering::Relaxed) {
                    if live_ref.compact_once().expect("tiered round under load") == 0 {
                        std::thread::yield_now();
                    }
                }
            });
            let mut appended = 0usize;
            while appended < x.len() {
                let end = (appended + batch).min(x.len());
                live.append(&x.substring(appended, end).expect("batch"))
                    .expect("append under compaction");
                appended = end;
                let prefix = x.substring(0, appended).expect("prefix");
                for pattern in patterns {
                    assert_eq!(
                        live.query_owned(pattern).expect("query under compaction"),
                        oracle(&prefix, pattern),
                        "answer diverged from NAIVE at {appended}/{} rows \
                         (threads {threads}, flush {flush_threshold})",
                        x.len()
                    );
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        live.compact_full().expect("full merge");
        prop_assert_eq!(live.num_segments(), 1);
        for pattern in patterns {
            prop_assert_eq!(
                live.query_owned(pattern).expect("query after full merge"),
                oracle(&x, pattern)
            );
        }
    }
}
