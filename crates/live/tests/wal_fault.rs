//! Crash-durability properties of the write-ahead log, driven through the
//! injectable sink layer of `ius_faultio`.
//!
//! The **acked-durable invariant**: once `append`/`delete_range` returns
//! `Ok`, the mutation survives any crash. Concretely:
//!
//! * truncating `live.wal` at **every byte offset** (a simulated crash —
//!   the kernel persists a prefix of what was written) and reopening the
//!   directory recovers a corpus and tombstone set **byte-identical** to
//!   a naive oracle over exactly the acked mutation prefix whose records
//!   fit below the cut — never a partial record, never a panic. Exercised
//!   across two index families and across a checkpoint boundary;
//! * a scripted sink crash (`FaultPlan::crash_at`) makes the in-flight
//!   mutation fail typed and **not** apply, poisons the log for later
//!   mutations, and leaves exactly the acked records decodable;
//! * a full disk (`FaultPlan::disk_capacity`) behaves the same way.

use ius_faultio::{FaultPlan, SimSink};
use ius_index::{IndexFamily, IndexParams, IndexSpec, IndexVariant};
use ius_live::wal::{encode_record, scan, WalRecord, WAL_FILE, WAL_HEADER_LEN};
use ius_live::{FsyncPolicy, LiveConfig, LiveIndex};
use ius_weighted::{Alphabet, Error, WeightedString};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn config() -> LiveConfig {
    LiveConfig {
        // No auto-flush: the WAL holds the whole mutation history, so a
        // crash offset maps 1:1 onto a mutation prefix.
        flush_threshold: 1 << 20,
        compact_fanout: 4,
        auto_compact: false,
        threads: 1,
    }
}

fn alphabet() -> Alphabet {
    Alphabet::new(b"ab").expect("alphabet")
}

fn spec(family: IndexFamily) -> IndexSpec {
    IndexSpec::new(family, IndexParams::new(4.0, 4, 2).expect("params"))
}

const MAX_PATTERN_LEN: usize = 6;

/// Tiny deterministic generator (split-mix style) so every test derives
/// its mutation sequence from one seed.
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

#[derive(Debug, Clone)]
enum Op {
    Append(WeightedString),
    Delete(usize, usize),
}

/// Generates `count` valid mutations (appends of 1–4 rows, deletions of
/// in-bounds ranges) over the 2-symbol alphabet.
fn gen_ops(seed: u64, count: usize) -> Vec<Op> {
    let alphabet = alphabet();
    let mut rng = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut n = 0usize;
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        if n >= 2 && next(&mut rng).is_multiple_of(4) {
            let start = (next(&mut rng) as usize) % (n - 1);
            let len = 1 + (next(&mut rng) as usize) % (n - start - 1).max(1);
            ops.push(Op::Delete(start, (start + len).min(n)));
        } else {
            let rows = 1 + (next(&mut rng) as usize) % 4;
            let mut flat = Vec::with_capacity(rows * 2);
            for _ in 0..rows {
                let p = (next(&mut rng) % 101) as f64 / 100.0;
                flat.push(p);
                flat.push(1.0 - p);
            }
            n += rows;
            ops.push(Op::Append(
                WeightedString::from_flat(alphabet.clone(), flat).expect("valid rows"),
            ));
        }
    }
    ops
}

/// The naive oracle: the flat corpus and a per-position deleted flag.
#[derive(Debug, Clone, PartialEq, Default)]
struct Oracle {
    flat: Vec<f64>,
    deleted: Vec<bool>,
}

impl Oracle {
    fn apply(&mut self, op: &Op) {
        match op {
            Op::Append(batch) => {
                self.flat.extend_from_slice(batch.flat_probs());
                self.deleted.extend(std::iter::repeat_n(false, batch.len()));
            }
            Op::Delete(start, end) => {
                for flag in &mut self.deleted[*start..*end] {
                    *flag = true;
                }
            }
        }
    }
}

/// What one op would have logged, given the corpus length at log time —
/// used to compute exact record boundaries in the WAL image.
fn expected_record(op: &Op, n_before: usize) -> WalRecord {
    match op {
        Op::Append(batch) => WalRecord::Append {
            n_before: n_before as u64,
            rows: batch.len() as u64,
            flat: batch.flat_probs().to_vec(),
        },
        Op::Delete(start, end) => WalRecord::Delete {
            n_before: n_before as u64,
            start: *start as u64,
            end: *end as u64,
        },
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ius-wal-fault-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Copies `src` into a scratch directory with `live.wal` truncated at
/// `cut` bytes — the simulated crash image.
fn crashed_copy(src: &Path, tag: &str, cut: usize) -> PathBuf {
    let dir = scratch_dir(tag);
    for entry in std::fs::read_dir(src).expect("read dir") {
        let entry = entry.expect("entry");
        let name = entry.file_name();
        let bytes = std::fs::read(entry.path()).expect("read file");
        if name.to_string_lossy() == WAL_FILE {
            std::fs::write(dir.join(&name), &bytes[..cut.min(bytes.len())]).expect("write wal");
        } else {
            std::fs::write(dir.join(&name), &bytes).expect("copy file");
        }
    }
    dir
}

fn assert_matches_oracle(live: &LiveIndex, oracle: &Oracle, label: &str) {
    let flat = live
        .materialize()
        .map(|x| x.flat_probs().to_vec())
        .unwrap_or_default();
    assert_eq!(flat, oracle.flat, "{label}: corpus is not byte-identical");
    let mut deleted = vec![false; oracle.deleted.len()];
    for (start, end) in live.tombstones() {
        for flag in &mut deleted[start..end] {
            *flag = true;
        }
    }
    assert_eq!(
        deleted, oracle.deleted,
        "{label}: tombstone coverage differs"
    );
}

/// The exhaustive property: run a mutation sequence durably into a real
/// directory, then for **every byte offset** of the WAL simulate a crash
/// there and reopen — the recovered state must equal the oracle over the
/// longest record prefix below the cut. `flush_after` optionally inserts
/// a checkpoint (manifest save + WAL rotation) mid-sequence, so the cut
/// enumeration also covers the post-checkpoint log and the pre-checkpoint
/// mutations must *always* be recovered.
fn crash_at_every_offset(family: IndexFamily, seed: u64, flush_after: Option<usize>, tag: &str) {
    let ops = gen_ops(seed, 10);
    let dir = scratch_dir(&format!("{tag}-base"));
    let live = LiveIndex::new(alphabet(), spec(family), MAX_PATTERN_LEN, config()).expect("build");
    live.enable_durability(&dir, FsyncPolicy::Never)
        .expect("arm durability");

    // Replay the ops, tracking the oracle after each one plus the exact
    // records the post-checkpoint WAL holds.
    let mut oracle = Oracle::default();
    // oracles[k] = state after the first `wal_floor + k` acked mutations.
    let mut oracles = vec![oracle.clone()];
    let mut wal_image = Vec::from(&b"IUSJ\x01\x00"[..]);
    let mut boundaries = vec![wal_image.len()];
    for (i, op) in ops.iter().enumerate() {
        let n_before = oracle.deleted.len();
        match op {
            Op::Append(batch) => {
                live.append(batch).expect("append");
            }
            Op::Delete(start, end) => {
                live.delete_range(*start, *end).expect("delete");
            }
        }
        oracle.apply(op);
        if flush_after == Some(i) {
            // Checkpoint: everything so far moves into the manifest and
            // the WAL starts over.
            assert!(live.flush().expect("flush"), "flush froze no segment");
            wal_image.truncate(0);
            wal_image.extend_from_slice(b"IUSJ\x01\x00");
            boundaries = vec![wal_image.len()];
            oracles = vec![oracle.clone()];
        } else {
            encode_record(&mut wal_image, &expected_record(op, n_before));
            boundaries.push(wal_image.len());
            oracles.push(oracle.clone());
        }
    }
    drop(live);
    let on_disk = std::fs::read(dir.join(WAL_FILE)).expect("read wal");
    assert_eq!(
        on_disk, wal_image,
        "the WAL image must match the re-encoding"
    );

    for cut in WAL_HEADER_LEN..=on_disk.len() {
        let crashed = crashed_copy(&dir, &format!("{tag}-cut"), cut);
        let reopened = LiveIndex::open(&crashed, config())
            .unwrap_or_else(|e| panic!("{tag}: crash at byte {cut} broke reopen: {e}"));
        let survivors = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        assert_matches_oracle(
            &reopened,
            &oracles[survivors],
            &format!("{tag}: crash at byte {cut} ({survivors} surviving records)"),
        );
        let stats = reopened.live_stats();
        assert_eq!(stats.recovered_records, survivors as u64, "{tag} cut {cut}");
        assert_eq!(
            stats.recoveries,
            u64::from(survivors > 0),
            "{tag} cut {cut}"
        );
        drop(reopened);
        std::fs::remove_dir_all(&crashed).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_at_every_offset_naive_family() {
    crash_at_every_offset(IndexFamily::Naive, 0xA11CE, None, "naive");
}

#[test]
fn crash_at_every_offset_minimizer_family() {
    crash_at_every_offset(
        IndexFamily::Minimizer(IndexVariant::Array),
        0xB0B,
        None,
        "minimizer",
    );
}

#[test]
fn crash_at_every_offset_across_a_checkpoint() {
    crash_at_every_offset(
        IndexFamily::Minimizer(IndexVariant::Array),
        0xCAFE,
        Some(5),
        "checkpointed",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A scripted sink crash mid-sequence: every mutation acked before the
    /// crash is decodable from the surviving media (and nothing partial
    /// is); the in-flight mutation fails typed and is **not** applied; the
    /// poisoned log refuses every later mutation typed.
    #[test]
    fn acked_mutations_survive_a_sink_crash(
        seed in 0u64..1 << 48,
        crash_frac in 0.0f64..1.0,
    ) {
        let ops = gen_ops(seed, 12);
        // Dry run on a healthy sink to learn the full image size.
        let full_len = {
            let live = LiveIndex::new(alphabet(), spec(IndexFamily::Naive), MAX_PATTERN_LEN, config())
                .expect("build");
            let sink = SimSink::healthy();
            let media = sink.media();
            live.enable_durability_with_sink(Box::new(sink), FsyncPolicy::Never)
                .expect("arm durability");
            for op in &ops {
                match op {
                    Op::Append(batch) => drop(live.append(batch).expect("append")),
                    Op::Delete(start, end) => live.delete_range(*start, *end).expect("delete"),
                }
            }
            let len = media.lock().expect("media").len();
            len
        };
        let crash_at = WAL_HEADER_LEN as u64
            + ((full_len - WAL_HEADER_LEN) as f64 * crash_frac) as u64;

        let live = LiveIndex::new(alphabet(), spec(IndexFamily::Naive), MAX_PATTERN_LEN, config())
            .expect("build");
        let sink = SimSink::new(FaultPlan { crash_at: Some(crash_at), ..Default::default() });
        let media = sink.media();
        live.enable_durability_with_sink(Box::new(sink), FsyncPolicy::Never)
            .expect("arm durability");

        let mut oracle = Oracle::default();
        let mut acked_records = Vec::new();
        let mut crashed = false;
        for op in &ops {
            let n_before = oracle.deleted.len();
            // A delete may target rows whose append was refused by the
            // crash — then the bounds check fires before the WAL does.
            let in_bounds = match op {
                Op::Delete(_, end) => *end <= n_before,
                Op::Append(_) => true,
            };
            let result = match op {
                Op::Append(batch) => live.append(batch).map(drop),
                Op::Delete(start, end) => live.delete_range(*start, *end),
            };
            match result {
                Ok(()) => {
                    prop_assert!(!crashed, "a mutation succeeded after the crash (no poisoning)");
                    acked_records.push(expected_record(op, n_before));
                    oracle.apply(op);
                }
                Err(Error::Io(_)) => {
                    // Typed refusal; the mutation must not have applied.
                    crashed = true;
                    prop_assert_eq!(live.len(), oracle.deleted.len(), "a failed append applied");
                }
                Err(Error::PositionOutOfBounds { .. }) if !in_bounds => {}
                Err(other) => prop_assert!(false, "untyped durability failure: {}", other),
            }
        }
        // The surviving media decodes to exactly the acked records.
        let bytes = media.lock().expect("media").clone();
        let recovered = scan(&bytes).expect("scan the crashed media");
        prop_assert_eq!(recovered, acked_records);
        // And the live (in-memory) state still matches the oracle.
        assert_matches_oracle(&live, &oracle, "post-crash in-memory state");
    }

    /// Running out of disk behaves like a crash: typed refusals, nothing
    /// partial recoverable, earlier acks intact.
    #[test]
    fn full_disk_keeps_acked_mutations_recoverable(
        seed in 0u64..1 << 48,
        capacity_frac in 0.0f64..1.0,
    ) {
        let ops = gen_ops(seed, 10);
        let capacity = WAL_HEADER_LEN as u64 + (600.0 * capacity_frac) as u64;
        let live = LiveIndex::new(alphabet(), spec(IndexFamily::Naive), MAX_PATTERN_LEN, config())
            .expect("build");
        let sink = SimSink::new(FaultPlan { disk_capacity: Some(capacity), ..Default::default() });
        let media = sink.media();
        live.enable_durability_with_sink(Box::new(sink), FsyncPolicy::Never)
            .expect("arm durability");
        let mut oracle = Oracle::default();
        let mut acked_records = Vec::new();
        for op in &ops {
            let n_before = oracle.deleted.len();
            let in_bounds = match op {
                Op::Delete(_, end) => *end <= n_before,
                Op::Append(_) => true,
            };
            let result = match op {
                Op::Append(batch) => live.append(batch).map(drop),
                Op::Delete(start, end) => live.delete_range(*start, *end),
            };
            match result {
                Ok(()) => {
                    acked_records.push(expected_record(op, n_before));
                    oracle.apply(op);
                }
                Err(Error::Io(_)) => {}
                Err(Error::PositionOutOfBounds { .. }) if !in_bounds => {}
                Err(other) => prop_assert!(false, "untyped durability failure: {}", other),
            }
        }
        let bytes = media.lock().expect("media").clone();
        let recovered = scan(&bytes).expect("scan the full-disk media");
        prop_assert_eq!(recovered, acked_records);
        assert_matches_oracle(&live, &oracle, "post-ENOSPC in-memory state");
    }
}

/// A failing fsync under the per-record policy refuses the ack (the
/// record may not be on stable storage) and the mutation is not applied.
#[test]
fn fsync_failure_refuses_the_ack_and_does_not_apply() {
    let live = LiveIndex::new(
        alphabet(),
        spec(IndexFamily::Naive),
        MAX_PATTERN_LEN,
        config(),
    )
    .expect("build");
    let sink = SimSink::new(FaultPlan {
        fail_sync_from: Some(1),
        ..Default::default()
    });
    live.enable_durability_with_sink(Box::new(sink), FsyncPolicy::Record)
        .expect("arm durability");
    let ops = gen_ops(7, 4);
    let Op::Append(first) = &ops[0] else {
        panic!("first op is always an append");
    };
    live.append(first).expect("first record syncs fine");
    let n = live.len();
    let err = live
        .append(first)
        .expect_err("second sync is scripted to fail");
    assert!(matches!(err, Error::Io(_)), "{err}");
    assert_eq!(live.len(), n, "the refused append must not apply");
    let stats = live.live_stats();
    assert_eq!(stats.fsync_policy, 1, "record policy wire code");
    assert!(
        stats
            .last_error
            .expect("a durability error is surfaced")
            .contains("wal"),
        "last_error names the wal"
    );
}

/// Reopening after a clean shutdown (no crash) replays the whole WAL tail
/// and `enable_durability` folds it into a fresh checkpoint, after which
/// a reopen recovers from the manifest alone.
#[test]
fn reopen_checkpoint_reopen_round_trip() {
    let dir = scratch_dir("roundtrip");
    let ops = gen_ops(0xD00D, 8);
    let mut oracle = Oracle::default();
    {
        let live = LiveIndex::new(
            alphabet(),
            spec(IndexFamily::Naive),
            MAX_PATTERN_LEN,
            config(),
        )
        .expect("build");
        live.enable_durability(&dir, FsyncPolicy::Record)
            .expect("arm");
        for op in &ops {
            match op {
                Op::Append(batch) => drop(live.append(batch).expect("append")),
                Op::Delete(start, end) => live.delete_range(*start, *end).expect("delete"),
            }
            oracle.apply(op);
        }
    }
    let reopened = LiveIndex::open(&dir, config()).expect("reopen");
    assert_matches_oracle(&reopened, &oracle, "first reopen");
    assert!(reopened.live_stats().recovered_records > 0);
    // Re-arm: checkpoints the replayed state and rotates the log.
    reopened
        .enable_durability(&dir, FsyncPolicy::Record)
        .expect("re-arm");
    let wal = std::fs::read(dir.join(WAL_FILE)).expect("wal");
    assert_eq!(wal.len(), WAL_HEADER_LEN, "the rotated log is empty");
    drop(reopened);
    let again = LiveIndex::open(&dir, config()).expect("second reopen");
    assert_matches_oracle(&again, &oracle, "second reopen");
    assert_eq!(
        again.live_stats().recovered_records,
        0,
        "manifest-only recovery"
    );
    std::fs::remove_dir_all(&dir).ok();
}
