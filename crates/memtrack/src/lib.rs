//! # ius-memtrack — peak-heap measurement
//!
//! The paper evaluates *construction space* as the maximum resident set size
//! of the construction process (`/usr/bin/time -v`). This crate provides the
//! deterministic, in-process equivalent: a counting [`std::alloc::GlobalAlloc`]
//! wrapper that tracks live and peak heap bytes, plus a [`measure`] helper
//! that runs a closure and reports the peak heap growth it caused.
//!
//! Usage (typically in a benchmark binary):
//!
//! ```
//! use ius_memtrack::{measure, CountingAllocator};
//!
//! // In a binary: #[global_allocator] static A: CountingAllocator = CountingAllocator::new();
//! let (value, stats) = measure(|| vec![0u8; 1 << 16]);
//! assert_eq!(value.len(), 1 << 16);
//! // When the counting allocator is not installed the stats are zero, but the
//! // closure's value is still returned.
//! assert!(stats.peak_bytes == 0 || stats.peak_bytes >= 1 << 16);
//! ```

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Live heap bytes allocated through [`CountingAllocator`].
static LIVE: AtomicUsize = AtomicUsize::new(0);
/// Peak of [`LIVE`] since the last reset.
static PEAK: AtomicUsize = AtomicUsize::new(0);
/// Allocation calls served (alloc/alloc_zeroed/realloc) since process start.
static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);
/// Whether a `CountingAllocator` has been installed as the global allocator.
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Serialises [`measure`] calls so concurrent measurements do not interleave.
static MEASURE_LOCK: Mutex<()> = Mutex::new(());

/// A `#[global_allocator]`-compatible allocator that counts live and peak
/// heap usage while delegating to the system allocator.
pub struct CountingAllocator {
    _private: (),
}

impl CountingAllocator {
    /// Creates the allocator (const so it can be used in a `static`).
    pub const fn new() -> Self {
        Self { _private: () }
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        INSTALLED.store(true, Ordering::Relaxed);
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            track_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        track_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        INSTALLED.store(true, Ordering::Relaxed);
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            track_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            track_dealloc(layout.size());
            track_alloc(new_size);
        }
        new_ptr
    }
}

#[inline]
fn track_alloc(size: usize) {
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn track_dealloc(size: usize) {
    LIVE.fetch_sub(size, Ordering::Relaxed);
}

/// A snapshot of heap statistics produced by [`measure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// Peak heap growth (bytes above the live level at the start of the
    /// measured closure). Zero when the counting allocator is not installed.
    pub peak_bytes: usize,
    /// Net heap growth retained by the closure's return value (bytes).
    pub retained_bytes: usize,
    /// Allocation calls served during the closure (an arena open shows up
    /// here as **one** call for the buffer, however many typed views are
    /// carved out of it — views attribute bytes, they do not allocate).
    pub alloc_calls: usize,
}

/// Live heap bytes currently allocated (0 when the allocator is not
/// installed as the global allocator).
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Peak heap bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Returns `true` if a [`CountingAllocator`] appears to be installed (i.e. it
/// has served at least one allocation).
pub fn is_installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Resets the peak to the current live level.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Allocation calls served since process start (0 when the allocator is
/// not installed).
pub fn alloc_calls() -> usize {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Runs `f`, measuring the peak heap growth above the level at entry and the
/// bytes retained by its return value.
///
/// Measurements are serialised by an internal lock; nested calls would
/// deadlock, so keep measured regions flat (the benchmark harness does).
pub fn measure<T, F: FnOnce() -> T>(f: F) -> (T, MemoryStats) {
    // A poisoned lock only means a previous measurement panicked; the
    // counters are monotone and self-consistent, so continue regardless.
    let _guard = MEASURE_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let before = live_bytes();
    let calls_before = alloc_calls();
    reset_peak();
    let value = f();
    let peak = peak_bytes();
    let after = live_bytes();
    let stats = MemoryStats {
        peak_bytes: peak.saturating_sub(before),
        retained_bytes: after.saturating_sub(before),
        alloc_calls: alloc_calls().saturating_sub(calls_before),
    };
    (value, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the counting allocator is *not* installed as the global allocator
    // of the test binary (that would affect every other test in the
    // workspace); these tests exercise the bookkeeping directly.

    #[test]
    fn tracking_math() {
        reset_peak();
        let base_live = live_bytes();
        track_alloc(1000);
        track_alloc(500);
        assert_eq!(live_bytes(), base_live + 1500);
        assert!(peak_bytes() >= base_live + 1500);
        track_dealloc(1000);
        assert_eq!(live_bytes(), base_live + 500);
        // Peak must not decrease.
        assert!(peak_bytes() >= base_live + 1500);
        track_dealloc(500);
        assert_eq!(live_bytes(), base_live);
    }

    #[test]
    fn measure_returns_closure_value() {
        let (v, stats) = measure(|| (0..100).sum::<u64>());
        assert_eq!(v, 4950);
        // Without the allocator installed the stats are zero — but never
        // garbage.
        assert!(stats.peak_bytes < 1 << 30);
        assert!(stats.retained_bytes <= stats.peak_bytes || stats.peak_bytes == 0);
    }

    #[test]
    fn measure_is_serialised() {
        // Concurrent measures must not deadlock or panic.
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let (v, _) = measure(move || vec![i as u8; 10_000].len());
                    v
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 10_000);
        }
    }

    #[test]
    fn default_constructs() {
        let _a = CountingAllocator::default();
        let _b = CountingAllocator::new();
    }
}
