//! # ius-obs — allocation-free runtime metrics
//!
//! The observability primitives shared by the query engine, the server, the
//! live (LSM) index and the write-ahead log:
//!
//! * [`Counter`] — a monotone event counter (one relaxed atomic add).
//! * [`Gauge`] — a last-value instrument for levels (segment count,
//!   memtable rows).
//! * [`Histogram`] — a mergeable log-linear (HDR-style) latency histogram
//!   with an exact total count and bounded-relative-error quantiles.
//! * [`EventLog`] — a fixed-capacity lock-free ring buffer of small binary
//!   events (used for the slow-query log and span-style tracing).
//! * [`trace`] — request-scoped span tracing: a fixed-depth,
//!   allocation-free per-thread span buffer recording one request's stage
//!   tree (sampled with the same ticket discipline as the stage
//!   histograms).
//! * [`clock`] — a process-wide monotonic nanosecond clock that can be
//!   stubbed out at runtime to measure instrumentation overhead.
//!
//! Everything is designed around one rule: **recording must never lock,
//! allocate, or enter the kernel**. A histogram record is two relaxed
//! atomic read-modify-writes plus two load-guarded extreme updates that
//! almost never fire after warmup; a counter add is one; an event-log
//! append is
//! a handful of relaxed stores plus one release store. Aggregation
//! (snapshotting, merging per-worker registries, quantile estimation,
//! text formatting) happens on the scrape path, where allocation is fine.
//!
//! ## Histogram accuracy contract
//!
//! Values (nanoseconds) are bucketed log-linearly: exact unit buckets below
//! 32, then 32 linear sub-buckets per power of two up to
//! [`Histogram::MAX_TRACKABLE`] (2⁴⁰ − 1 ns ≈ 18 minutes); larger values
//! clamp into the top bucket. Quantiles report the midpoint of the bucket
//! containing the requested rank, so any quantile of values within the
//! trackable range is off by **at most 1/64 ≈ 1.6 % relative error**
//! (exactly 0 below 32 ns). `count` and `sum` are exact; `min` and `max`
//! are the exact recorded extremes. The proptests in
//! `tests/histogram_props.rs` pin this bound against a sorted-vec oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod trace;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The process-wide monotonic nanosecond clock used by every timing site.
///
/// `now_ns` reads a vDSO monotonic clock (no syscall on Linux) relative to
/// a process-wide base instant; it never allocates. The clock can be
/// disabled ([`clock::set_enabled`]) so benchmarks can measure the cost of
/// the instrumentation itself: a disabled clock returns 0 from every call,
/// turning all recorded durations into zeros without branching at the
/// subtraction sites.
pub mod clock {
    use super::*;
    use std::cell::Cell;

    static START: OnceLock<Instant> = OnceLock::new();
    static ENABLED: AtomicBool = AtomicBool::new(true);

    /// One query in [`STAGE_SAMPLE_EVERY`] pays for per-stage tracing.
    ///
    /// A monotonic clock read costs ~30–40 ns on a virtualized host, and a
    /// fully staged query takes five of them plus four histogram records —
    /// too much to spend on every request when the whole wire round trip is
    /// ~14 µs. End-to-end timing (one stamp pair per request) stays always
    /// on; the stage *breakdown* is statistical, which is all a breakdown
    /// is for.
    pub const STAGE_SAMPLE_EVERY: u32 = 16;

    thread_local! {
        static STAGE_TICK: Cell<u32> = const { Cell::new(0) };
    }

    /// Draws a stage-tracing ticket: `true` on the first call on each
    /// thread and every [`STAGE_SAMPLE_EVERY`]th call after that, always
    /// `false` while the clock is disabled.
    ///
    /// The tick is thread-local, so workers never contend on it and the
    /// first query a worker serves is always traced (scrapes see per-stage
    /// data immediately, and single-query tests stay deterministic).
    #[inline]
    pub fn stage_ticket() -> bool {
        if !ENABLED.load(Ordering::Relaxed) {
            return false;
        }
        STAGE_TICK.with(|tick| {
            let t = tick.get();
            tick.set(t.wrapping_add(1));
            t % STAGE_SAMPLE_EVERY == 0
        })
    }

    /// Nanoseconds since the first call in this process (0 when disabled).
    #[inline]
    pub fn now_ns() -> u64 {
        if !ENABLED.load(Ordering::Relaxed) {
            return 0;
        }
        START.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }

    /// Enables or disables the clock (used by the overhead benchmark to
    /// compare instrumented vs. stubbed hot paths).
    pub fn set_enabled(enabled: bool) {
        ENABLED.store(enabled, Ordering::Relaxed);
    }

    /// Whether the clock is currently enabled.
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Forces the base instant to exist so the first timed operation does
    /// not pay the one-time initialization.
    pub fn warm_up() {
        let _ = START.get_or_init(Instant::now);
    }
}

/// A monotone event counter. Recording is one relaxed atomic add.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value instrument for levels that go up and down (queue depths,
/// segment counts, memtable sizes). Recording is one relaxed store.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Linear sub-buckets per power-of-two range: 2⁵ = 32.
const SUB_BITS: u32 = 5;
/// Number of linear sub-buckets per octave (and the exact-bucket range).
const SUB: u64 = 1 << SUB_BITS;
/// Largest exponent tracked: values up to 2⁴⁰ − 1 keep the error bound.
const MAX_EXP: u32 = 39;

/// A mergeable log-linear latency histogram over `u64` nanosecond values.
///
/// See the crate docs for the accuracy contract. Recording is two relaxed
/// atomic read-modify-writes (sum, bucket) plus load-guarded min/max
/// updates that stop firing once the extremes settle; the total count is
/// derived from the buckets on the scrape path, so the hot path does not
/// pay for it. There are no locks and no allocation after construction.
#[derive(Debug)]
pub struct Histogram {
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl Histogram {
    /// Total number of buckets: 32 exact + 35 octaves × 32 sub-buckets.
    pub const BUCKETS: usize = (SUB as usize) * (1 + (MAX_EXP - SUB_BITS + 1) as usize);

    /// Largest value recorded without clamping (≈ 18 minutes in ns).
    pub const MAX_TRACKABLE: u64 = (1 << (MAX_EXP + 1)) - 1;

    /// Worst-case relative error of any quantile over trackable values.
    pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / 64.0;

    /// Creates an empty histogram (allocates its bucket array once).
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..Self::BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: buckets.into_boxed_slice(),
        }
    }

    /// The bucket index a value lands in.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        let v = value.min(Self::MAX_TRACKABLE);
        if v < SUB {
            v as usize
        } else {
            // Floor log2 is in SUB_BITS..=MAX_EXP after the clamp.
            let e = 63 - v.leading_zeros();
            let sub = (v >> (e - SUB_BITS)) - SUB;
            (SUB + (e - SUB_BITS) as u64 * SUB + sub) as usize
        }
    }

    /// The representative (midpoint) value reported for a bucket.
    #[inline]
    pub fn bucket_value(index: usize) -> u64 {
        let idx = index as u64;
        if idx < SUB {
            idx
        } else {
            let group = (idx - SUB) >> SUB_BITS;
            let sub = (idx - SUB) & (SUB - 1);
            let lo = (SUB + sub) << group;
            let width = 1u64 << group;
            lo + width / 2
        }
    }

    /// Records one value. Lock-free, allocation-free, no syscalls.
    #[inline]
    pub fn record(&self, value: u64) {
        self.sum.fetch_add(value, Ordering::Relaxed);
        // min/max change rarely after warmup: guard the RMWs behind plain
        // loads so the steady state pays two reads instead of two writes.
        // The fetch_min/fetch_max keep the extremes exact under races.
        if value < self.min.load(Ordering::Relaxed) {
            self.min.fetch_min(value, Ordering::Relaxed);
        }
        if value > self.max.load(Ordering::Relaxed) {
            self.max.fetch_max(value, Ordering::Relaxed);
        }
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded values (exact; a scrape-path sum over the
    /// buckets, not a hot-path atomic).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Folds another histogram into this one, bucket-wise. Equivalent to
    /// having recorded the concatenation of both streams (the proptests
    /// pin this).
    pub fn merge(&self, other: &Histogram) {
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Captures a point-in-time snapshot (sparse: only nonzero buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n != 0 {
                buckets.push((idx as u32, n));
                count += n;
            }
        }
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time, mergeable copy of a [`Histogram`] (sparse bucket list,
/// sorted by bucket index). This is the form that crosses the wire.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Exact number of recorded values.
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: u64,
    /// Exact smallest recorded value (0 when empty).
    pub min: u64,
    /// Exact largest recorded value (0 when empty).
    pub max: u64,
    /// `(bucket index, count)` for every nonzero bucket, ascending index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// The value at quantile `q ∈ [0, 1]` (midpoint of the bucket holding
    /// rank ⌈q·count⌉), within [`Histogram::RELATIVE_ERROR_BOUND`] of the
    /// exact order statistic for trackable values. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Histogram::bucket_value(idx as usize);
            }
        }
        Histogram::bucket_value(self.buckets.last().map_or(0, |&(idx, _)| idx as usize))
    }

    /// Median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile (see [`HistogramSnapshot::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Exact arithmetic mean of the recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Folds `other` into `self`, equivalent to snapshotting a histogram
    /// that recorded both streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        while let (Some(&&(ia, na)), Some(&&(ib, nb))) = (a.peek(), b.peek()) {
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => {
                    merged.push((ia, na));
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    merged.push((ib, nb));
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    merged.push((ia, na + nb));
                    a.next();
                    b.next();
                }
            }
        }
        merged.extend(a.copied());
        merged.extend(b.copied());
        self.buckets = merged;
    }

    /// One-line human summary: `count=…  mean=…  p50=…  p99=…  max=…`.
    pub fn summary_line(&self) -> String {
        format!(
            "count={}  mean={}  p50={}  p99={}  max={}",
            self.count,
            fmt_ns(self.mean()),
            fmt_ns(self.p50()),
            fmt_ns(self.p99()),
            fmt_ns(self.max)
        )
    }
}

/// Formats a nanosecond duration with a human-scale unit (`ns`, `µs`,
/// `ms`, `s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// One entry of an [`EventLog`]: a timestamp plus three opaque words whose
/// meaning is fixed by the recording site's `code`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Monotone sequence number (global order of appends).
    pub seq: u64,
    /// [`clock::now_ns`] at record time.
    pub ts_ns: u64,
    /// Site-defined event kind.
    pub code: u64,
    /// First site-defined payload word.
    pub a: u64,
    /// Second site-defined payload word.
    pub b: u64,
}

struct EventSlot {
    seq: AtomicU64,
    ts_ns: AtomicU64,
    code: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

/// A fixed-capacity lock-free ring buffer of [`Event`]s: the newest
/// `capacity` events survive, older ones are overwritten. Appending is a
/// few relaxed stores plus one release store; no locks, no allocation.
///
/// A reader that races a writer on the same slot is detected by the
/// sequence stamp and the torn entry is dropped from the snapshot — the
/// log is a diagnostic aid, not a durable record.
pub struct EventLog {
    head: AtomicU64,
    slots: Box<[EventSlot]>,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl EventLog {
    /// Creates a log keeping the newest `capacity` events (rounded up to a
    /// power of two, at least 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Vec<EventSlot> = (0..cap)
            .map(|_| EventSlot {
                seq: AtomicU64::new(u64::MAX),
                ts_ns: AtomicU64::new(0),
                code: AtomicU64::new(0),
                a: AtomicU64::new(0),
                b: AtomicU64::new(0),
            })
            .collect();
        Self {
            head: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// Appends an event, overwriting the oldest once full.
    #[inline]
    pub fn record(&self, code: u64, a: u64, b: u64) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq as usize) & (self.slots.len() - 1)];
        slot.ts_ns.store(clock::now_ns(), Ordering::Relaxed);
        slot.code.store(code, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Release);
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// The surviving events, oldest first. Entries being overwritten
    /// concurrently are dropped.
    pub fn snapshot(&self) -> Vec<Event> {
        let head = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let mut events = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == u64::MAX || seq >= head {
                continue;
            }
            let event = Event {
                seq,
                ts_ns: slot.ts_ns.load(Ordering::Relaxed),
                code: slot.code.load(Ordering::Relaxed),
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
            };
            // Re-check the stamp: if a writer claimed this slot while the
            // fields were being read, the entry may be torn — drop it.
            if slot.seq.load(Ordering::Acquire) == seq && head.saturating_sub(seq) <= cap {
                events.push(event);
            }
        }
        events.sort_unstable_by_key(|e| e.seq);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(42);
        assert_eq!(g.get(), 42);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_index_is_monotone_and_contiguous() {
        let mut last = Histogram::bucket_index(0);
        assert_eq!(last, 0);
        for v in 1..100_000u64 {
            let idx = Histogram::bucket_index(v);
            assert!(idx == last || idx == last + 1, "gap at {v}");
            last = idx;
        }
        assert_eq!(
            Histogram::bucket_index(u64::MAX),
            Histogram::BUCKETS - 1,
            "clamped into the top bucket"
        );
    }

    #[test]
    fn bucket_value_round_trips_within_the_error_bound() {
        for v in [
            0,
            1,
            31,
            32,
            33,
            100,
            1_000,
            123_456,
            1 << 30,
            (1 << 40) - 1,
        ] {
            let idx = Histogram::bucket_index(v);
            let rep = Histogram::bucket_value(idx);
            let err = rep.abs_diff(v) as f64;
            assert!(
                err <= Histogram::RELATIVE_ERROR_BOUND * v as f64 + 0.5,
                "value {v}: representative {rep} off by {err}"
            );
        }
    }

    #[test]
    fn quantiles_of_a_small_stream() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v * 1_000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.min, 1_000);
        assert_eq!(snap.max, 100_000);
        let p50 = snap.p50() as f64;
        assert!((p50 - 50_000.0).abs() / 50_000.0 <= Histogram::RELATIVE_ERROR_BOUND);
        let p99 = snap.p99() as f64;
        assert!((p99 - 99_000.0).abs() / 99_000.0 <= Histogram::RELATIVE_ERROR_BOUND);
        assert!(snap.p50() <= snap.p99());
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.mean(), 0);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn snapshot_merge_matches_histogram_merge() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [5u64, 500, 50_000, 5_000_000] {
            a.record(v);
        }
        for v in [7u64, 500, 1 << 35] {
            b.record(v);
        }
        let mut merged_snap = a.snapshot();
        merged_snap.merge(&b.snapshot());
        a.merge(&b);
        assert_eq!(merged_snap, a.snapshot());
        assert_eq!(merged_snap.count, 7);
    }

    #[test]
    fn event_log_keeps_the_newest_entries() {
        let log = EventLog::new(4);
        for i in 0..10u64 {
            log.record(1, i, 100 + i);
        }
        let events = log.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events.iter().map(|e| e.a).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "oldest entries were overwritten"
        );
        assert_eq!(log.recorded(), 10);
    }

    #[test]
    fn event_log_is_thread_safe() {
        let log = std::sync::Arc::new(EventLog::new(64));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let log = log.clone();
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        log.record(t, i, 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.recorded(), 4_000);
        let events = log.snapshot();
        assert!(events.len() <= 64);
        assert!(!events.is_empty());
    }

    #[test]
    fn clock_stub_returns_zero() {
        clock::warm_up();
        assert!(clock::enabled());
        let t = clock::now_ns();
        let t2 = clock::now_ns();
        assert!(t2 >= t);
        clock::set_enabled(false);
        assert_eq!(clock::now_ns(), 0);
        clock::set_enabled(true);
        assert!(clock::now_ns() >= t2);
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
