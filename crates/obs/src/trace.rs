//! Request-scoped span tracing: a fixed-depth, allocation-free span buffer
//! that records where one request's time went as a tree of stage timings.
//!
//! The metrics in the crate root aggregate *across* requests; this module
//! answers the orthogonal question of *one* request's breakdown: how long
//! it waited in the admission queue, how long the frame decode took, how
//! the query fan-out split across segments/shards and their
//! scan/locate/verify/report stages, and what the response encode/write
//! cost. A trace is a flat array of [`Span`]s in pre-order with explicit
//! depths — no pointers, no allocation, `Copy` all the way down — so a
//! server can move a finished trace into a flight-recorder ring with one
//! `memcpy`-shaped copy.
//!
//! ## Recording discipline
//!
//! Tracing follows the same sampling rules as the stage histograms:
//!
//! * A trace only arms ([`begin`]) while the [`clock`](super::clock) is
//!   enabled, and callers are expected to arm with the same 1-in-N ticket
//!   discipline they use for [`clock::stage_ticket`](super::clock); the
//!   un-sampled fast path pays one thread-local flag read per
//!   instrumentation site ([`active`]).
//! * The buffer is a thread-local with [`MAX_SPANS`] inline slots and a
//!   [`MAX_DEPTH`] open-span stack. When either limit is hit the trace is
//!   marked truncated and recording degrades gracefully — enters and exits
//!   stay balanced, nothing allocates, nothing panics.
//! * Wall-clocked spans ([`enter`]/[`exit_with`]) carry a start offset
//!   relative to the trace's begin time plus a duration. Duration-only
//!   spans ([`leaf`], [`group`]) carry timings measured elsewhere (queue
//!   wait measured before the trace armed, per-part stage nanoseconds
//!   summed on executor threads); their `start_ns` is 0 because the
//!   recording thread never observed when they ran.
//!
//! A request is served entirely on one worker thread, so the thread-local
//! buffer needs no synchronization and no signature changes in the layers
//! it threads through. Fan-out parts run on executor threads, but their
//! `QueryStats` return to the request thread, which records them as
//! duration-only children ([`group`] + [`leaf`]) after the join.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

use super::clock;

/// Inline span slots per trace. A fully staged live query over a dozen
/// segments fits (1 query + 12 parts × 5 + filter + frame spans ≈ 50);
/// deeper fan-outs truncate gracefully and say so.
pub const MAX_SPANS: usize = 64;

/// Maximum nesting depth of open spans (request → query → part → stage is
/// 4; the rest is headroom).
pub const MAX_DEPTH: usize = 8;

/// Stage code: time between accept and worker pickup (duration-only).
pub const STAGE_QUEUE_WAIT: u16 = 1;
/// Stage code: wire-frame header + body decode.
pub const STAGE_FRAME_DECODE: u16 = 2;
/// Stage code: the whole query execution (fan-out + merge + finalize).
pub const STAGE_QUERY: u16 = 3;
/// Stage code: one segment/shard of a fan-out (duration-only group; `a` is
/// the part index, `b` the part's reported count).
pub const STAGE_PART: u16 = 4;
/// Stage code: the live index's memtable scan part (duration-only group).
pub const STAGE_MEMTABLE: u16 = 5;
/// Stage code: minimizer selection / pattern staging (`QueryStats::scan_ns`).
pub const STAGE_SCAN: u16 = 6;
/// Stage code: candidate range location (`QueryStats::locate_ns`).
pub const STAGE_LOCATE: u16 = 7;
/// Stage code: candidate verification (`QueryStats::verify_ns`).
pub const STAGE_VERIFY: u16 = 8;
/// Stage code: finalize/sort/dedup/stream (`QueryStats::report_ns`).
pub const STAGE_REPORT: u16 = 9;
/// Stage code: tombstone-range filtering of merged live results.
pub const STAGE_TOMBSTONE_FILTER: u16 = 10;
/// Stage code: response body encoding.
pub const STAGE_RESPONSE_ENCODE: u16 = 11;
/// Stage code: response frame write to the socket.
pub const STAGE_RESPONSE_WRITE: u16 = 12;

/// Human name for a stage code (`"?"` for codes this build does not know).
pub fn stage_name(code: u16) -> &'static str {
    match code {
        STAGE_QUEUE_WAIT => "queue_wait",
        STAGE_FRAME_DECODE => "frame_decode",
        STAGE_QUERY => "query",
        STAGE_PART => "part",
        STAGE_MEMTABLE => "memtable",
        STAGE_SCAN => "scan",
        STAGE_LOCATE => "locate",
        STAGE_VERIFY => "verify",
        STAGE_REPORT => "report",
        STAGE_TOMBSTONE_FILTER => "tombstone_filter",
        STAGE_RESPONSE_ENCODE => "response_encode",
        STAGE_RESPONSE_WRITE => "response_write",
        _ => "?",
    }
}

/// One node of a trace tree, in pre-order with an explicit depth.
///
/// `start_ns` is relative to the trace's begin time for wall-clocked spans
/// and 0 for duration-only spans (see the module docs). `a` and `b` are
/// site-defined payload words, like [`Event`](super::Event)'s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Stage code (one of the `STAGE_*` constants).
    pub code: u16,
    /// Nesting depth (0 = child of the request root).
    pub depth: u8,
    /// Start offset relative to the trace begin (0 for duration-only spans).
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// First site-defined payload word.
    pub a: u64,
    /// Second site-defined payload word.
    pub b: u64,
}

impl Span {
    /// The all-zero span used to const-initialize buffers.
    pub const EMPTY: Span = Span {
        code: 0,
        depth: 0,
        start_ns: 0,
        dur_ns: 0,
        a: 0,
        b: 0,
    };
}

/// Open-stack sentinel: the matching enter was dropped (buffer full) or
/// was a pre-closed group, so the matching exit must not stamp anything.
const OPEN_NONE: u16 = u16::MAX;

/// A fixed-capacity span recorder. All storage is inline; recording never
/// allocates, locks, or panics. Normally used through the thread-local
/// free functions ([`begin`], [`enter`], …), but constructible directly
/// for tests.
#[derive(Debug)]
pub struct SpanBuffer {
    trace_id: u64,
    started_ns: u64,
    active: bool,
    len: usize,
    open_len: usize,
    overflow_depth: u32,
    skipped: u32,
    open: [u16; MAX_DEPTH],
    spans: [Span; MAX_SPANS],
}

impl SpanBuffer {
    /// Creates an inactive, empty buffer.
    pub const fn new() -> Self {
        Self {
            trace_id: 0,
            started_ns: 0,
            active: false,
            len: 0,
            open_len: 0,
            overflow_depth: 0,
            skipped: 0,
            open: [OPEN_NONE; MAX_DEPTH],
            spans: [Span::EMPTY; MAX_SPANS],
        }
    }

    /// Arms the buffer for a new trace. Returns `false` (and stays
    /// inactive) while the [`clock`] is disabled, so a stubbed-clock
    /// overhead run never records spans.
    pub fn begin(&mut self, trace_id: u64) -> bool {
        if !clock::enabled() {
            self.active = false;
            return false;
        }
        self.trace_id = trace_id;
        self.started_ns = clock::now_ns();
        self.active = true;
        self.len = 0;
        self.open_len = 0;
        self.overflow_depth = 0;
        self.skipped = 0;
        true
    }

    /// Whether a trace is currently armed.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    #[inline]
    fn rel_now(&self) -> u64 {
        clock::now_ns().saturating_sub(self.started_ns)
    }

    /// Opens a wall-clocked span as a child of the innermost open span.
    #[inline]
    pub fn enter(&mut self, code: u16) {
        if !self.active {
            return;
        }
        if self.open_len == MAX_DEPTH {
            self.overflow_depth += 1;
            self.skipped += 1;
            return;
        }
        if self.len == MAX_SPANS {
            self.open[self.open_len] = OPEN_NONE;
            self.open_len += 1;
            self.skipped += 1;
            return;
        }
        self.spans[self.len] = Span {
            code,
            depth: self.open_len as u8,
            start_ns: self.rel_now(),
            dur_ns: 0,
            a: 0,
            b: 0,
        };
        self.open[self.open_len] = self.len as u16;
        self.open_len += 1;
        self.len += 1;
    }

    /// Closes the innermost open span, stamping its duration and payload.
    #[inline]
    pub fn exit_with(&mut self, a: u64, b: u64) {
        if !self.active {
            return;
        }
        if self.overflow_depth > 0 {
            self.overflow_depth -= 1;
            return;
        }
        if self.open_len == 0 {
            return;
        }
        self.open_len -= 1;
        let idx = self.open[self.open_len];
        if idx == OPEN_NONE {
            return;
        }
        let now = self.rel_now();
        let span = &mut self.spans[idx as usize];
        span.dur_ns = now.saturating_sub(span.start_ns);
        span.a = a;
        span.b = b;
    }

    /// Closes the innermost open span with a zero payload.
    #[inline]
    pub fn exit(&mut self) {
        self.exit_with(0, 0);
    }

    /// Records a completed duration-only span (no children).
    #[inline]
    pub fn leaf(&mut self, code: u16, dur_ns: u64, a: u64, b: u64) {
        if !self.active {
            return;
        }
        if self.len == MAX_SPANS {
            self.skipped += 1;
            return;
        }
        self.spans[self.len] = Span {
            code,
            depth: self.open_len.min(MAX_DEPTH) as u8,
            start_ns: 0,
            dur_ns,
            a,
            b,
        };
        self.len += 1;
    }

    /// Records a completed duration-only span and nests subsequent spans
    /// under it until the matching [`SpanBuffer::end_group`]. Used for
    /// fan-out parts whose timings were measured on executor threads.
    #[inline]
    pub fn group(&mut self, code: u16, dur_ns: u64, a: u64, b: u64) {
        if !self.active {
            return;
        }
        if self.open_len == MAX_DEPTH {
            self.overflow_depth += 1;
            self.skipped += 1;
            return;
        }
        if self.len < MAX_SPANS {
            self.spans[self.len] = Span {
                code,
                depth: self.open_len as u8,
                start_ns: 0,
                dur_ns,
                a,
                b,
            };
            self.len += 1;
        } else {
            self.skipped += 1;
        }
        // The group span is already complete: push a sentinel so the
        // matching end_group pops depth without stamping anything.
        self.open[self.open_len] = OPEN_NONE;
        self.open_len += 1;
    }

    /// Closes the innermost [`SpanBuffer::group`].
    #[inline]
    pub fn end_group(&mut self) {
        self.exit_with(0, 0);
    }

    /// Disarms the buffer without reading it (error paths).
    pub fn abandon(&mut self) {
        self.active = false;
    }

    /// The trace id the buffer was armed with.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Absolute [`clock::now_ns`] when the trace was armed.
    pub fn started_ns(&self) -> u64 {
        self.started_ns
    }

    /// The recorded spans, in pre-order.
    pub fn spans(&self) -> &[Span] {
        &self.spans[..self.len]
    }

    /// Whether any span was dropped for capacity or depth.
    pub fn truncated(&self) -> bool {
        self.skipped > 0
    }

    /// Number of spans dropped for capacity or depth.
    pub fn skipped(&self) -> u32 {
        self.skipped
    }
}

impl Default for SpanBuffer {
    fn default() -> Self {
        Self::new()
    }
}

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a process-unique trace id (monotone, never 0).
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static TRACE: RefCell<SpanBuffer> = const { RefCell::new(SpanBuffer::new()) };
}

/// Arms this thread's trace buffer (see [`SpanBuffer::begin`]).
pub fn begin(trace_id: u64) -> bool {
    TRACE.with_borrow_mut(|t| t.begin(trace_id))
}

/// Whether this thread has an armed trace. This is the whole cost an
/// un-sampled request pays per instrumentation site.
#[inline]
pub fn active() -> bool {
    TRACE.with_borrow(|t| t.is_active())
}

/// Opens a wall-clocked span on this thread's trace (no-op when inactive).
#[inline]
pub fn enter(code: u16) {
    TRACE.with_borrow_mut(|t| t.enter(code));
}

/// Closes the innermost open span with a payload (no-op when inactive).
#[inline]
pub fn exit_with(a: u64, b: u64) {
    TRACE.with_borrow_mut(|t| t.exit_with(a, b));
}

/// Closes the innermost open span (no-op when inactive).
#[inline]
pub fn exit() {
    TRACE.with_borrow_mut(|t| t.exit());
}

/// Records a duration-only leaf span (no-op when inactive).
#[inline]
pub fn leaf(code: u16, dur_ns: u64, a: u64, b: u64) {
    TRACE.with_borrow_mut(|t| t.leaf(code, dur_ns, a, b));
}

/// Opens a duration-only group span (no-op when inactive).
#[inline]
pub fn group(code: u16, dur_ns: u64, a: u64, b: u64) {
    TRACE.with_borrow_mut(|t| t.group(code, dur_ns, a, b));
}

/// Closes the innermost group (no-op when inactive).
#[inline]
pub fn end_group() {
    TRACE.with_borrow_mut(|t| t.end_group());
}

/// Disarms this thread's trace without reading it.
pub fn abandon() {
    TRACE.with_borrow_mut(|t| t.abandon());
}

/// Reads this thread's finished trace and disarms it. Returns `None` if no
/// trace was armed. The callback borrows the buffer in place so the caller
/// can copy the spans out without an intermediate allocation.
pub fn finish<R>(f: impl FnOnce(&SpanBuffer) -> R) -> Option<R> {
    TRACE.with_borrow_mut(|t| {
        if !t.is_active() {
            return None;
        }
        let r = f(t);
        t.abandon();
        Some(r)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_nested_tree_with_wall_and_synthetic_spans() {
        let mut buf = SpanBuffer::new();
        assert!(!buf.is_active());
        assert!(buf.begin(42));
        buf.leaf(STAGE_QUEUE_WAIT, 1_000, 0, 0);
        buf.enter(STAGE_QUERY);
        buf.group(STAGE_PART, 5_000, 0, 17);
        buf.leaf(STAGE_SCAN, 1_200, 0, 0);
        buf.leaf(STAGE_VERIFY, 3_800, 0, 0);
        buf.end_group();
        buf.exit_with(99, 17);
        assert!(buf.is_active());
        assert!(!buf.truncated());
        let spans = buf.spans();
        assert_eq!(spans.len(), 5);
        assert_eq!(
            spans.iter().map(|s| s.code).collect::<Vec<_>>(),
            vec![
                STAGE_QUEUE_WAIT,
                STAGE_QUERY,
                STAGE_PART,
                STAGE_SCAN,
                STAGE_VERIFY
            ]
        );
        assert_eq!(
            spans.iter().map(|s| s.depth).collect::<Vec<_>>(),
            vec![0, 0, 1, 2, 2]
        );
        let query = &spans[1];
        assert_eq!((query.a, query.b), (99, 17));
        let part = &spans[2];
        assert_eq!(part.dur_ns, 5_000);
        assert_eq!(part.start_ns, 0, "synthetic spans carry no start offset");
        assert_eq!(buf.trace_id(), 42);
    }

    #[test]
    fn depth_overflow_keeps_enters_and_exits_balanced() {
        let mut buf = SpanBuffer::new();
        assert!(buf.begin(1));
        for _ in 0..MAX_DEPTH + 3 {
            buf.enter(STAGE_QUERY);
        }
        assert!(buf.truncated());
        assert_eq!(buf.spans().len(), MAX_DEPTH);
        for _ in 0..MAX_DEPTH + 3 {
            buf.exit();
        }
        // A fresh top-level span still records at depth 0.
        buf.enter(STAGE_RESPONSE_WRITE);
        buf.exit();
        let last = *buf.spans().last().unwrap();
        assert_eq!(last.code, STAGE_RESPONSE_WRITE);
        assert_eq!(last.depth, 0);
    }

    #[test]
    fn span_overflow_truncates_without_losing_balance() {
        let mut buf = SpanBuffer::new();
        assert!(buf.begin(1));
        for _ in 0..MAX_SPANS + 5 {
            buf.leaf(STAGE_SCAN, 1, 0, 0);
        }
        assert_eq!(buf.spans().len(), MAX_SPANS);
        assert_eq!(buf.skipped(), 5);
        // Enter/exit on a full buffer must still pair cleanly.
        buf.enter(STAGE_QUERY);
        buf.exit_with(7, 7);
        assert_eq!(buf.spans().len(), MAX_SPANS);
        assert!(buf.truncated());
    }

    #[test]
    fn begin_refuses_while_the_clock_is_stubbed() {
        clock::set_enabled(false);
        let mut buf = SpanBuffer::new();
        assert!(!buf.begin(9));
        assert!(!buf.is_active());
        buf.enter(STAGE_QUERY);
        buf.leaf(STAGE_SCAN, 1, 0, 0);
        buf.exit();
        assert!(buf.spans().is_empty());
        clock::set_enabled(true);
        assert!(buf.begin(9));
        assert!(buf.is_active());
    }

    #[test]
    fn thread_local_finish_reads_and_disarms() {
        assert!(!active());
        assert!(begin(next_trace_id()));
        assert!(active());
        enter(STAGE_QUERY);
        leaf(STAGE_SCAN, 10, 0, 0);
        exit_with(1, 2);
        let got = finish(|t| (t.trace_id(), t.spans().len())).expect("trace was armed");
        assert!(got.0 >= 1);
        assert_eq!(got.1, 2);
        assert!(!active());
        assert!(finish(|_| ()).is_none(), "finish disarmed the buffer");
    }

    #[test]
    fn stage_names_cover_every_code() {
        for code in STAGE_QUEUE_WAIT..=STAGE_RESPONSE_WRITE {
            assert_ne!(stage_name(code), "?");
        }
        assert_eq!(stage_name(999), "?");
    }
}
