//! Property tests pinning the [`Histogram`] accuracy contract against an
//! exact sorted-vec oracle: every quantile is within the documented
//! relative-error bound, counts and sums are exact, and merging two
//! histograms is equivalent to recording the concatenated stream. Also
//! pins the [`EventLog`] wraparound contract under concurrent writers.

use ius_obs::{EventLog, Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// The exact order statistic the histogram quantile approximates:
/// `sorted[⌈q·n⌉ − 1]` (clamped into range).
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn record_all(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// A value mix covering every regime: exact unit buckets, mid-range
/// log-linear buckets, and near-the-cap magnitudes.
fn value_strategy() -> impl Strategy<Value = u64> {
    (0u32..40, 0u64..u64::MAX).prop_map(|(exp, raw)| raw % (1u64 << exp).max(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Quantiles vs the exact oracle: within the documented relative-error
    /// bound at every probed q, and count/sum/min/max exact.
    #[test]
    fn quantiles_match_the_sorted_oracle(
        values in prop::collection::vec(value_strategy(), 1..400),
    ) {
        let snap = record_all(&values).snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();

        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.min, *sorted.first().unwrap());
        prop_assert_eq!(snap.max, *sorted.last().unwrap());

        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let exact = oracle_quantile(&sorted, q);
            let approx = snap.quantile(q);
            let err = approx.abs_diff(exact) as f64;
            // +0.5 absorbs the integer midpoint of odd-width buckets.
            prop_assert!(
                err <= Histogram::RELATIVE_ERROR_BOUND * exact as f64 + 0.5,
                "q={} exact={} approx={} err={}", q, exact, approx, err
            );
        }
        prop_assert!(snap.p50() <= snap.p99());
    }

    /// merge(a, b) — at both the histogram and the snapshot level — is
    /// indistinguishable from recording the concatenated stream.
    #[test]
    fn merge_equals_concatenated_recording(
        a in prop::collection::vec(value_strategy(), 0..200),
        b in prop::collection::vec(value_strategy(), 0..200),
    ) {
        let concat: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let expected = record_all(&concat).snapshot();

        let ha = record_all(&a);
        let hb = record_all(&b);
        let mut snap_merged = ha.snapshot();
        snap_merged.merge(&hb.snapshot());
        prop_assert_eq!(&snap_merged, &expected, "snapshot-level merge");

        ha.merge(&hb);
        prop_assert_eq!(&ha.snapshot(), &expected, "histogram-level merge");
    }

    /// Merging is commutative and the empty snapshot is its identity.
    #[test]
    fn merge_is_commutative_with_empty_identity(
        a in prop::collection::vec(value_strategy(), 0..100),
        b in prop::collection::vec(value_strategy(), 0..100),
    ) {
        let sa = record_all(&a).snapshot();
        let sb = record_all(&b).snapshot();
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        let mut with_empty = sa.clone();
        with_empty.merge(&HistogramSnapshot::default());
        prop_assert_eq!(&with_empty, &sa);
        let mut from_empty = HistogramSnapshot::default();
        from_empty.merge(&sa);
        prop_assert_eq!(&from_empty, &sa);
    }
}

/// Histogram-level merge with an empty operand, both directions: the empty
/// side's internal sentinels (`u64::MAX` min, 0 max) must never leak into
/// the reported extremes, which stay exact.
#[test]
fn histogram_merge_with_an_empty_operand_keeps_min_max_exact() {
    // Empty right operand: the populated side is unchanged.
    let populated = record_all(&[7, 1_000, 31]);
    populated.merge(&Histogram::new());
    let snap = populated.snapshot();
    assert_eq!(
        (snap.count, snap.sum, snap.min, snap.max),
        (3, 1_038, 7, 1_000)
    );

    // Empty left operand: the extremes cross over exactly.
    let empty = Histogram::new();
    empty.merge(&record_all(&[7, 1_000, 31]));
    let snap = empty.snapshot();
    assert_eq!(
        (snap.count, snap.sum, snap.min, snap.max),
        (3, 1_038, 7, 1_000)
    );

    // Empty into empty stays a well-formed empty snapshot.
    let still_empty = Histogram::new();
    still_empty.merge(&Histogram::new());
    let snap = still_empty.snapshot();
    assert_eq!((snap.count, snap.sum, snap.min, snap.max), (0, 0, 0, 0));
    assert!(snap.buckets.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Concurrent writers wrap the ring several times over while a reader
    /// keeps snapshotting: no snapshot may ever contain a torn entry (the
    /// payload identity `b = code·10⁶ + a` would break), and once the
    /// writers quiesce exactly the newest `capacity` events survive with
    /// unique, contiguous sequence numbers, oldest first.
    #[test]
    fn event_log_wraparound_is_consistent_under_concurrent_writers(
        writers in 1usize..4,
        per_writer in 16usize..80,
        capacity in 2usize..17,
    ) {
        let log = EventLog::new(capacity);
        let cap = capacity.max(2).next_power_of_two() as u64;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let log = &log;
                scope.spawn(move || {
                    for i in 0..per_writer as u64 {
                        log.record(w as u64, i, w as u64 * 1_000_000 + i);
                    }
                });
            }
            let log = &log;
            scope.spawn(move || {
                for _ in 0..50 {
                    for e in log.snapshot() {
                        assert_eq!(
                            e.b,
                            e.code * 1_000_000 + e.a,
                            "snapshot surfaced a torn entry mid-wraparound"
                        );
                    }
                }
            });
        });
        let total = (writers * per_writer) as u64;
        prop_assert_eq!(log.recorded(), total);
        let events = log.snapshot();
        let survivors = total.min(cap);
        prop_assert_eq!(events.len() as u64, survivors);
        for (k, e) in events.iter().enumerate() {
            prop_assert_eq!(e.seq, total - survivors + k as u64);
            prop_assert_eq!(e.b, e.code * 1_000_000 + e.a);
        }
    }
}
