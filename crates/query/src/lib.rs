//! # ius-query — the sink-based query engine layer
//!
//! Every query algorithm in this workspace (WST subtree enumeration, MWSA
//! property-text binary search, minimizer locate-then-verify) decomposes into
//! *emit candidate → verify → report*. This crate provides the serving-side
//! machinery that shape needs:
//!
//! * [`MatchSink`] — where verified occurrence positions go: collect them all
//!   (`Vec<usize>` implements the trait), count them ([`CountSink`]), or stop
//!   after the first `k` ([`FirstKSink`]);
//! * [`QueryScratch`] — the reusable buffers of one query "lane" (candidate
//!   positions, reversed-prefix staging, grid-report output, k-mer key
//!   decode), so steady-state queries perform **no heap allocation** once the
//!   buffers have warmed up;
//! * [`QueryStats`] — the per-query instrumentation every index family
//!   reports (candidates enumerated, candidates verified, survivors
//!   delivered, grid nodes touched);
//! * [`finalize_into`] — the shared sort/dedup/stream step between a raw
//!   candidate buffer and a sink, with a `sorted` fast path for sources that
//!   already emit increasing positions;
//! * [`QueryBatch`] — a batched runner on the shared [`ius_exec::Executor`],
//!   answering many queries over one shared index with one scratch per worker
//!   and deterministic output order.
//!
//! The indexes themselves live in `ius-index`; they implement
//! `UncertainIndex::query_into(pattern, x, &mut QueryScratch, &mut dyn
//! MatchSink)` on top of these primitives, and the classic allocating
//! `query()` is a thin wrapper over that entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ius_exec::Executor;

/// A consumer of verified occurrence positions.
///
/// [`finalize_into`] feeds positions to the sink **sorted increasingly and
/// deduplicated**. `push` returns `false` to stop early (e.g. a first-`k`
/// sink that is full); engines are free to stop producing once that happens.
pub trait MatchSink {
    /// Accepts one verified position; returns `false` to stop the query.
    fn push(&mut self, pos: usize) -> bool;
}

/// Collect-all sink: the classic `query()` result vector.
impl MatchSink for Vec<usize> {
    #[inline]
    fn push(&mut self, pos: usize) -> bool {
        self.push(pos);
        true
    }
}

/// Count-only sink: counts distinct occurrences without materialising them.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountSink {
    /// Number of distinct positions seen so far.
    pub count: usize,
}

impl CountSink {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MatchSink for CountSink {
    #[inline]
    fn push(&mut self, _pos: usize) -> bool {
        self.count += 1;
        true
    }
}

/// First-`k` sink: keeps the `k` smallest occurrence positions and stops the
/// query as soon as it has them.
#[derive(Debug, Clone)]
pub struct FirstKSink {
    k: usize,
    /// The collected positions (at most `k`, sorted increasingly).
    pub positions: Vec<usize>,
}

impl FirstKSink {
    /// Creates a sink that accepts at most `k` positions.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            positions: Vec::with_capacity(k),
        }
    }

    /// `true` iff the sink has reached its capacity.
    pub fn is_full(&self) -> bool {
        self.positions.len() >= self.k
    }
}

impl MatchSink for FirstKSink {
    #[inline]
    fn push(&mut self, pos: usize) -> bool {
        if self.positions.len() < self.k {
            self.positions.push(pos);
        }
        self.positions.len() < self.k
    }
}

/// Reusable buffers of one query lane.
///
/// A scratch is cheap to create but each buffer grows to the high-water mark
/// of the queries run through it, after which `query_into` is allocation-free
/// on the hot paths (asserted by `tests/query_alloc.rs` at the workspace
/// root). One scratch serves one thread; [`QueryBatch`] creates one per
/// worker.
#[derive(Debug, Clone, Default)]
pub struct QueryScratch {
    /// Raw candidate/verified positions before [`finalize_into`].
    pub positions: Vec<usize>,
    /// Reversed-prefix staging (the backward pattern part of the minimizer
    /// indexes).
    pub pattern_rev: Vec<u8>,
    /// 2D-grid report output (point payloads).
    pub grid: Vec<u32>,
    /// k-mer keys of the pattern's first window (minimizer selection).
    pub kmer_keys: Vec<u64>,
}

impl QueryScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total capacity currently held by the buffers, in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.positions.capacity() * std::mem::size_of::<usize>()
            + self.pattern_rev.capacity()
            + self.grid.capacity() * 4
            + self.kmer_keys.capacity() * 8
    }
}

/// Per-query instrumentation, reported by every index family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Candidate occurrences enumerated before verification.
    pub candidates: usize,
    /// Candidates that passed verification (counted with multiplicity).
    pub verified: usize,
    /// Distinct positions delivered to the sink (fewer than the distinct
    /// survivors when the sink stopped the query early).
    pub reported: usize,
    /// Canonical 2D-grid nodes touched (0 for non-grid indexes).
    pub grid_nodes: usize,
    /// Nanoseconds spent selecting the pattern's minimizer and staging the
    /// split pattern (0 for engines without that stage, or when the
    /// `ius_obs` clock is stubbed out).
    pub scan_ns: u64,
    /// Nanoseconds spent locating candidate ranges (`equal_range` over the
    /// property arrays, or the compacted-trie descent).
    pub locate_ns: u64,
    /// Nanoseconds spent in candidate verification (grid reporting plus
    /// per-candidate probability checks).
    pub verify_ns: u64,
    /// Nanoseconds spent finalizing (sort/dedup/stream into the sink).
    pub report_ns: u64,
    /// Whether this query drew a stage-tracing ticket
    /// ([`ius_obs::clock::stage_ticket`]) and the `*_ns` stage fields were
    /// actually stamped. Stage tracing is sampled (1 in
    /// [`ius_obs::clock::STAGE_SAMPLE_EVERY`] per thread) because five
    /// clock reads per query are too expensive for the serve hot path;
    /// consumers must skip the stage fields of untimed queries instead of
    /// recording zeros. For a composite (shard/segment fan-out) the flag
    /// is true if *any* part was timed, and the stage sums cover exactly
    /// the timed parts.
    pub timed: bool,
}

impl QueryStats {
    /// Accumulates another query's counters into this one, field by field.
    ///
    /// This is the aggregation step of every composite/batched execution:
    /// the `ShardedIndex` shard fan-out, the live-index segment merge and
    /// the batch executors all sum per-part stats into one total with it.
    /// It is associative and commutative, and `QueryStats::default()` (all
    /// counters zero) is its identity — accumulating the empty stats
    /// changes nothing, and accumulating *into* the empty stats copies the
    /// other side. Composites rely on that identity to start their fold
    /// from `QueryStats::default()` without a special first-part case.
    ///
    /// Note that after a composite merge the summed `reported` counts
    /// per-part deliveries (which may include overlap hits dropped by the
    /// home-range filter); composites overwrite `reported` with the count
    /// actually delivered to the sink after deduplication.
    pub fn accumulate(&mut self, other: &QueryStats) {
        self.candidates += other.candidates;
        self.verified += other.verified;
        self.reported += other.reported;
        self.grid_nodes += other.grid_nodes;
        self.scan_ns += other.scan_ns;
        self.locate_ns += other.locate_ns;
        self.verify_ns += other.verify_ns;
        self.report_ns += other.report_ns;
        self.timed |= other.timed;
    }

    /// Total nanoseconds attributed to the per-stage timers.
    pub fn staged_ns(&self) -> u64 {
        self.scan_ns + self.locate_ns + self.verify_ns + self.report_ns
    }
}

/// Sorts (unless the producer already emitted sorted positions), deduplicates
/// and streams a candidate buffer into a sink, returning the number of
/// positions delivered.
///
/// With `sorted == true` the sort pass is skipped entirely; a debug assertion
/// guards the claimed sortedness. The dedup is a streaming comparison against
/// the previously delivered position, so no second pass or extra buffer is
/// needed either way.
pub fn finalize_into(positions: &mut [usize], sorted: bool, sink: &mut dyn MatchSink) -> usize {
    if sorted {
        debug_assert!(
            positions.windows(2).all(|w| w[0] <= w[1]),
            "caller claimed sorted candidate positions but they are not"
        );
    } else {
        positions.sort_unstable();
    }
    let mut delivered = 0usize;
    let mut last = usize::MAX;
    for &pos in positions.iter() {
        if pos == last {
            continue;
        }
        last = pos;
        delivered += 1;
        if !sink.push(pos) {
            break;
        }
    }
    delivered
}

/// A batched query executor: runs `count` independent jobs on the shared
/// [`ius_exec::Executor`], one [`QueryScratch`] per worker, writing each
/// job's result into its own slot so the output order is deterministic
/// regardless of thread scheduling.
///
/// Jobs are partitioned into contiguous chunks (one per worker); with one
/// thread (or one job) everything runs inline on the calling thread with a
/// single scratch and no thread is spawned. A panicking job is re-raised on
/// the calling thread (queries are pure; a panic is a bug, not a result).
#[derive(Debug, Clone)]
pub struct QueryBatch {
    executor: Executor,
}

impl Default for QueryBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryBatch {
    /// Creates an executor with one worker per available CPU.
    pub fn new() -> Self {
        Self {
            executor: Executor::new(),
        }
    }

    /// Creates an executor with an explicit worker count (at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            executor: Executor::with_threads(threads.max(1)),
        }
    }

    /// Number of workers this executor uses.
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// Runs `count` jobs; `run_one(i, scratch)` answers job `i`. The returned
    /// vector has exactly `count` entries, entry `i` holding job `i`'s result.
    ///
    /// # Panics
    ///
    /// Re-raises the first (by job index) panic of a job.
    pub fn run<T, E, F>(&self, count: usize, run_one: F) -> Vec<Result<T, E>>
    where
        T: Send,
        E: Send,
        F: Fn(usize, &mut QueryScratch) -> Result<T, E> + Sync,
    {
        self.executor
            .run_with(count, QueryScratch::new, |i, scratch| run_one(i, scratch))
            .into_iter()
            .map(|slot| match slot {
                Ok(result) => result,
                Err(task_panic) => panic!("{task_panic}"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_sorts_dedups_and_streams() {
        let mut buf = vec![5, 1, 5, 3, 1];
        let mut out = Vec::new();
        let delivered = finalize_into(&mut buf, false, &mut out);
        assert_eq!(out, vec![1, 3, 5]);
        assert_eq!(delivered, 3);
    }

    #[test]
    fn finalize_sorted_skips_the_sort_but_still_dedups() {
        let mut buf = vec![1, 1, 2, 7, 7, 7, 9];
        let mut out = Vec::new();
        let delivered = finalize_into(&mut buf, true, &mut out);
        assert_eq!(out, vec![1, 2, 7, 9]);
        assert_eq!(delivered, 4);
    }

    #[test]
    fn count_sink_counts_distinct_positions() {
        let mut buf = vec![4, 4, 2, 0, 2];
        let mut sink = CountSink::new();
        assert_eq!(finalize_into(&mut buf, false, &mut sink), 3);
        assert_eq!(sink.count, 3);
    }

    #[test]
    fn first_k_sink_stops_early_with_the_smallest_positions() {
        let mut buf = vec![9, 3, 7, 1, 5];
        let mut sink = FirstKSink::new(2);
        let delivered = finalize_into(&mut buf, false, &mut sink);
        assert_eq!(sink.positions, vec![1, 3]);
        assert!(sink.is_full());
        assert_eq!(delivered, 2);
        // A zero-capacity sink stores nothing; it is offered exactly one
        // position before the stream stops.
        let mut empty = FirstKSink::new(0);
        let mut buf = vec![1, 2];
        assert_eq!(finalize_into(&mut buf, false, &mut empty), 1);
        assert!(empty.positions.is_empty());
    }

    #[test]
    fn stats_accumulate() {
        let mut total = QueryStats::default();
        total.accumulate(&QueryStats {
            candidates: 3,
            verified: 2,
            reported: 2,
            grid_nodes: 5,
            scan_ns: 100,
            locate_ns: 10,
            verify_ns: 1,
            report_ns: 7,
            timed: true,
        });
        total.accumulate(&QueryStats {
            candidates: 1,
            verified: 1,
            reported: 1,
            grid_nodes: 0,
            scan_ns: 1,
            locate_ns: 2,
            verify_ns: 3,
            report_ns: 4,
            timed: false,
        });
        assert_eq!(
            total,
            QueryStats {
                candidates: 4,
                verified: 3,
                reported: 3,
                grid_nodes: 5,
                scan_ns: 101,
                locate_ns: 12,
                verify_ns: 4,
                report_ns: 11,
                timed: true,
            }
        );
        assert_eq!(total.staged_ns(), 128);
    }

    #[test]
    fn accumulating_the_empty_stats_is_the_identity() {
        // The segment/shard merge folds from QueryStats::default(); both
        // identity directions must hold exactly.
        let sample = QueryStats {
            candidates: 7,
            verified: 5,
            reported: 4,
            grid_nodes: 2,
            scan_ns: 9,
            locate_ns: 8,
            verify_ns: 7,
            report_ns: 6,
            timed: true,
        };
        let mut total = sample;
        total.accumulate(&QueryStats::default());
        assert_eq!(total, sample, "right identity");
        let mut from_empty = QueryStats::default();
        from_empty.accumulate(&sample);
        assert_eq!(from_empty, sample, "left identity");
        let mut twice = QueryStats::default();
        twice.accumulate(&QueryStats::default());
        assert_eq!(twice, QueryStats::default(), "empty + empty = empty");
    }

    #[test]
    fn batch_preserves_job_order_for_any_worker_count() {
        for threads in [1usize, 2, 3, 8] {
            let batch = QueryBatch::with_threads(threads);
            assert_eq!(batch.threads(), threads);
            let results: Vec<Result<usize, ()>> = batch.run(17, |i, scratch| {
                scratch.positions.push(i);
                Ok(i * i)
            });
            let values: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(values, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn batch_reports_per_job_errors_in_place() {
        let batch = QueryBatch::with_threads(4);
        let results: Vec<Result<usize, String>> = batch.run(6, |i, _scratch| {
            if i % 2 == 0 {
                Ok(i)
            } else {
                Err(format!("job {i}"))
            }
        });
        for (i, r) in results.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(*r.as_ref().unwrap(), i);
            } else {
                assert_eq!(r.as_ref().unwrap_err(), &format!("job {i}"));
            }
        }
    }

    #[test]
    fn batch_handles_empty_and_single_job_sets() {
        let batch = QueryBatch::new();
        let empty: Vec<Result<usize, ()>> = batch.run(0, |_, _| Ok(0));
        assert!(empty.is_empty());
        let one: Vec<Result<usize, ()>> = batch.run(1, |i, _| Ok(i + 41));
        assert_eq!(one[0], Ok(41));
    }

    #[test]
    fn scratch_reports_capacity() {
        let mut scratch = QueryScratch::new();
        assert_eq!(scratch.capacity_bytes(), 0);
        scratch.positions.reserve(10);
        scratch.kmer_keys.reserve(4);
        assert!(scratch.capacity_bytes() >= 10 * std::mem::size_of::<usize>() + 32);
    }
}
