//! Density of minimizer schemes (Definition 1 / Lemma 1 of the paper).

use crate::minimizer::MinimizerScheme;

/// The recommended k-mer length for an `(ℓ, k)`-minimizer scheme over an
/// alphabet of size `sigma`: `⌈log_σ ℓ⌉ + 1`, clamped to `[1, ℓ]`.
///
/// Lemma 1 (Zheng, Kingsford, Marçais) guarantees expected density `O(1/ℓ)`
/// for `k ≥ log_σ ℓ + c`.
pub fn recommended_k(ell: usize, sigma: usize) -> usize {
    assert!(ell > 0, "ℓ must be positive");
    let sigma = sigma.max(2) as f64;
    let k = (ell as f64).log(sigma).ceil() as usize + 1;
    k.clamp(1, ell)
}

/// The *specific density* of a scheme on a string: `|M_f(S)| / |S|`.
///
/// Returns 0 when the text is shorter than the window length.
pub fn measure_density(scheme: &MinimizerScheme, text: &[u8]) -> f64 {
    if text.is_empty() {
        return 0.0;
    }
    scheme.minimizers(text).len() as f64 / text.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::KmerOrder;

    #[test]
    fn recommended_k_values() {
        assert_eq!(recommended_k(64, 4), 4);
        assert_eq!(recommended_k(256, 4), 5);
        assert_eq!(recommended_k(1024, 4), 6);
        assert_eq!(recommended_k(1024, 91), 3);
        assert_eq!(recommended_k(4, 2), 3);
        // Clamped to ℓ.
        assert_eq!(recommended_k(2, 2), 2);
        assert_eq!(recommended_k(1, 2), 1);
    }

    #[test]
    fn density_decreases_with_ell() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let text: Vec<u8> = (0..30_000).map(|_| rng.gen_range(0..4u8)).collect();
        let mut last = 1.0f64;
        for ell in [16usize, 64, 256, 1024] {
            let scheme = MinimizerScheme::with_recommended_k(ell, 4);
            let d = measure_density(&scheme, &text);
            assert!(
                d < last,
                "density should decrease as ℓ grows ({d} !< {last})"
            );
            last = d;
        }
    }

    #[test]
    fn density_scales_like_inverse_ell_on_random_text() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let text: Vec<u8> = (0..40_000).map(|_| rng.gen_range(0..4u8)).collect();
        for ell in [32usize, 128, 512] {
            let scheme = MinimizerScheme::with_recommended_k(ell, 4);
            let d = measure_density(&scheme, &text);
            let expected = 2.0 / (ell as f64 - scheme.k() as f64 + 2.0);
            assert!(
                d < 2.5 * expected && d > 0.3 * expected,
                "ℓ = {ell}: density {d} far from the random-order expectation {expected}"
            );
        }
    }

    #[test]
    fn karp_rabin_handles_repetitive_text_better_than_lexicographic_worst_case() {
        // The paper's Section 8 worst case: on abcdefg… every position is a
        // lexicographic minimizer. On a*n the lexicographic scheme also picks
        // many positions; the fingerprint order has no such degeneracy on
        // periodic strings of period > k... here we simply document the
        // degenerate case: strictly increasing text makes every window pick
        // its first k-mer.
        let ell = 16usize;
        let k = 3usize;
        let text: Vec<u8> = (0..200u8).collect();
        let lex = MinimizerScheme::new(ell, k, 200, KmerOrder::Lexicographic);
        let lex_density = measure_density(&lex, &text);
        assert!(lex_density > 0.8, "every window selects its leftmost k-mer");
        let kr = MinimizerScheme::new(ell, k, 200, KmerOrder::KarpRabin { seed: 3 });
        let kr_density = measure_density(&kr, &text);
        assert!(
            kr_density < 0.5 * lex_density,
            "fingerprint order avoids the degeneracy"
        );
    }

    #[test]
    fn density_of_empty_text_is_zero() {
        let scheme = MinimizerScheme::with_recommended_k(8, 4);
        assert_eq!(measure_density(&scheme, &[]), 0.0);
    }
}
